//! The Lemma 1 construction, live: omissions defeat any simulator.
//!
//! Theorem 3.1 of the paper says that *no* simulator — even with infinite
//! memory — can survive omissions without extra assumptions. The proof
//! (Lemma 1) is constructive: measure the simulator's fastest transition
//! time `t = FTT`, then weave `t` omissions into a run `I*` on `2t+2`
//! agents that fools `t+1` consumers of the Pairing protocol into the
//! irrevocable `cs` state while only `t` producers exist — a safety
//! violation.
//!
//! This example runs the construction for real against `SKnO`, the
//! paper's own simulator, configured with omission bound `o`. Within its
//! budget `SKnO` is provably safe (Theorem 4.1); Lemma 1 spends
//! `FTT = 2(o+1) > o` omissions, and the wheels come off exactly as the
//! paper predicts.
//!
//! Run with: `cargo run --example omission_attack`

use ppfts::core::{fastest_transition_time, Skno, SknoState};
use ppfts::engine::OneWayModel;
use ppfts::protocols::{Pairing, PairingState};
use ppfts::verify::{lemma1_attack, AttackOutcome};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Lemma 1 / Theorem 3.1: the omission attack on SKnO (model I3)\n");
    println!(
        "{:>3} | {:>4} | {:>9} | {:>9} | {:>8} | verdict",
        "o", "FTT", "producers", "paired cs", "omitted"
    );
    println!("{}", "-".repeat(64));

    for o in 1..=3u32 {
        // The simulator's maximum speed, measured (Definition 7).
        let witness = fastest_transition_time(
            OneWayModel::I3,
            &Skno::new(Pairing, o),
            &Pairing,
            SknoState::new(PairingState::Producer),
            SknoState::new(PairingState::Consumer),
            128,
        )
        .expect("SKnO simulates the pairing transition");

        // The full construction: I, I_k, the redirected J_k, and I*.
        let report = lemma1_attack(
            OneWayModel::I3,
            Skno::new(Pairing, o),
            SknoState::new,
            128,
            512,
        )?;

        let verdict = match report.outcome {
            AttackOutcome::SafetyViolated { paired, producers } => {
                format!("SAFETY VIOLATED ({paired} paired > {producers} producers)")
            }
            AttackOutcome::NotResilient { failed_k } => {
                format!("candidate stalled at I_{failed_k}")
            }
            AttackOutcome::Withstood { paired } => format!("withstood ({paired} paired)"),
        };
        let paired = match report.outcome {
            AttackOutcome::SafetyViolated { paired, .. } | AttackOutcome::Withstood { paired } => {
                paired
            }
            AttackOutcome::NotResilient { .. } => 0,
        };
        println!(
            "{:>3} | {:>4} | {:>9} | {:>9} | {:>8} | {}",
            o, witness.steps, report.producers, paired, report.omissions_in_run, verdict
        );
        assert_eq!(report.ftt, witness.steps);
        assert!(report.violated_safety());
    }

    println!(
        "\nEvery row shows ≥ t+1 irrevocably paired consumers against t \
         producers,\nreproducing the safety violation of Theorem 3.1: \
         omission tolerance is\nimpossible once the adversary can spend \
         FTT-many omissions."
    );
    Ok(())
}

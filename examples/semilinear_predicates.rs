//! Compile an arbitrary semilinear predicate and simulate it on a weak
//! model — the full expressive power of population protocols, end to end.
//!
//! Standard population protocols stably compute exactly the semilinear
//! predicates (boolean combinations of threshold and remainder atoms over
//! the input counts). The paper's simulators quantify over *every*
//! two-way protocol, so this example stress-feeds them the whole class:
//! a compiled predicate runs natively under TW, then through `SID` on the
//! one-way IO model, and must stabilize to the same verdict.
//!
//! The scenario: a sensor swarm watches a herd where each animal is
//! `healthy` (symbol 0), `sick` (symbol 1) or `immune` (symbol 2). The
//! alert condition is:
//!
//! ```text
//!     (#sick ≥ 3)   AND   NOT (#immune + #sick ≡ 0 (mod 2))
//! ```
//!
//! Run with: `cargo run --example semilinear_predicates`

use ppfts::core::{project, Sid};
use ppfts::engine::{OneWayModel, OneWayRunner, TwoWayModel, TwoWayRunner};
use ppfts::population::{unanimous_output, Semantics};
use ppfts::protocols::semilinear::{Atom, PredicateExpr, SemilinearProtocol};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let alert = SemilinearProtocol::new(
        vec![
            Atom::Threshold {
                coeffs: vec![0, 1, 0], // count sick animals
                threshold: 3,
            },
            Atom::Remainder {
                coeffs: vec![0, 1, 1], // sick + immune
                modulus: 2,
                residue: 0,
            },
        ],
        PredicateExpr::atom(0).and(PredicateExpr::atom(1).not()),
    )?;

    // Herds to evaluate: (healthy, sick, immune).
    let herds = [(5usize, 3usize, 2usize), (4, 4, 2), (6, 2, 1), (2, 5, 0)];

    println!("alert = (#sick ≥ 3) AND NOT(#sick + #immune even)\n");
    println!(
        "{:>8} {:>5} {:>7} | {:>6} | {:>12} | {:>12}",
        "healthy", "sick", "immune", "oracle", "TW steps", "IO+SID steps"
    );
    println!("{}", "-".repeat(66));

    for (healthy, sick, immune) in herds {
        let inputs: Vec<usize> = std::iter::repeat_n(0, healthy)
            .chain(std::iter::repeat_n(1, sick))
            .chain(std::iter::repeat_n(2, immune))
            .collect();
        let expected = alert.expected(&inputs);

        // Native two-way run.
        let mut native = TwoWayRunner::builder(TwoWayModel::Tw, alert.clone())
            .config(alert.initial_configuration(&inputs))
            .seed(11)
            .build()?;
        let tw = native.run_until(5_000_000, |c| {
            unanimous_output(c, |q| alert.output(q)) == Some(expected)
        });
        assert!(tw.is_satisfied());

        // The same predicate through SID over Immediate Observation.
        let sims: Vec<_> = inputs.iter().map(|i| alert.encode(i)).collect();
        let mut simulated = OneWayRunner::builder(OneWayModel::Io, Sid::new(alert.clone()))
            .config(Sid::<SemilinearProtocol>::initial(&sims))
            .seed(11)
            .build()?;
        let io = simulated.run_until(20_000_000, |c| {
            unanimous_output(&project(c), |q| alert.output(q)) == Some(expected)
        });
        assert!(io.is_satisfied());

        println!(
            "{:>8} {:>5} {:>7} | {:>6} | {:>12} | {:>12}",
            healthy,
            sick,
            immune,
            expected,
            tw.steps(),
            io.steps()
        );
    }

    println!(
        "\nEvery herd stabilized to the oracle verdict in both worlds: the\n\
         simulator is payload-agnostic across the whole semilinear class."
    );
    Ok(())
}

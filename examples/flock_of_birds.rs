//! Flock of birds: the paper's motivating scenario under failures.
//!
//! §1.1 of the paper motivates population protocols with a passively
//! mobile sensor network: each bird of a flock carries a sensor, and the
//! flock must detect when the number of birds with elevated temperature
//! reaches a critical threshold `k`, so a sensor can intervene.
//!
//! Radio contacts between birds are unreliable: a message can vanish
//! mid-air (an *omission*), and only the receiver's radio notices the
//! corrupted frame — exactly the paper's one-way omissive model **I3**.
//! Knowing an upper bound `o` on how many frames can be lost, the flock
//! runs the threshold protocol through the `SKnO` simulator (paper §4.1):
//! every value is shipped as `o+1` redundant tokens and joker wildcards
//! patch the losses.
//!
//! Run with: `cargo run --example flock_of_birds`

use ppfts::core::{project, Skno, SknoState};
use ppfts::engine::{BoundedStrategy, OneWayModel, OneWayRunner, RateStrategy};
use ppfts::population::{unanimous_output, Semantics};
use ppfts::protocols::FlockOfBirds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const THRESHOLD: u32 = 4; // alarm when ≥ 4 birds run a fever
    const OMISSION_BOUND: u32 = 3; // the radio loses at most 3 frames

    let flock = FlockOfBirds::new(THRESHOLD);
    // 12 birds, 5 of them feverish: the alarm must fire.
    let fevers = [
        true, false, true, false, false, true, false, true, false, false, true, false,
    ];
    let sick = fevers.iter().filter(|b| **b).count();
    let expected = flock.expected(&fevers);
    println!(
        "flock of {} birds, {} feverish, threshold {THRESHOLD}",
        fevers.len(),
        sick
    );
    println!("ground truth: alarm = {expected}\n");

    let sim_states: Vec<_> = fevers.iter().map(|b| flock.encode(b)).collect();

    // The adversary loses frames at a 2% rate but is budgeted to the
    // assumed bound — the condition under which Theorem 4.1 guarantees
    // correctness.
    let mut runner = OneWayRunner::builder(OneWayModel::I3, Skno::new(flock, OMISSION_BOUND))
        .config(Skno::<FlockOfBirds>::initial(&sim_states))
        .adversary(BoundedStrategy::new(0.02, OMISSION_BOUND as u64))
        .seed(2026)
        .build()?;

    let out = runner.run_until(5_000_000, |c| {
        unanimous_output(&project(c), |q| q.detected) == Some(expected)
    });
    assert!(out.is_satisfied(), "the flock must stabilize");
    println!(
        "alarm stabilized to {expected} after {} interactions ({} frames lost)",
        out.steps(),
        runner.stats().omissive_steps,
    );

    // Memory audit (Theorem 4.1: Θ(|Q_P|·(o+1)·log n) per agent).
    let max_tokens = runner
        .config()
        .as_slice()
        .iter()
        .map(SknoState::token_footprint)
        .max()
        .unwrap_or(0);
    println!("largest per-bird token footprint: {max_tokens} tokens\n");

    // Below the threshold the alarm must stay silent — as long as the
    // adversary honours the assumed bound (Theorem 4.1's hypothesis).
    let calm = [true, false, false, true, false, true, false, false];
    let flock2 = FlockOfBirds::new(THRESHOLD);
    let calm_states: Vec<_> = calm.iter().map(|b| flock2.encode(b)).collect();
    let mut quiet = OneWayRunner::builder(OneWayModel::I3, Skno::new(flock2, OMISSION_BOUND))
        .config(Skno::<FlockOfBirds>::initial(&calm_states))
        .adversary(BoundedStrategy::new(0.02, OMISSION_BOUND as u64))
        .seed(7)
        .build()?;
    quiet.run(200_000)?;
    let false_alarm = project(quiet.config())
        .as_slice()
        .iter()
        .any(|q| q.detected);
    assert!(!false_alarm, "no spurious alarms below the threshold");
    println!(
        "control flock ({} feverish < {THRESHOLD}): no alarm after {} interactions",
        calm.iter().filter(|b| **b).count(),
        quiet.steps(),
    );

    // And the cautionary tale of Theorem 3.1: let the adversary exceed
    // the assumed bound (an unbounded 2% loss rate) and the guarantee is
    // void — surplus jokers let the same count announcement be consumed
    // several times, inflating the tally until the alarm fires spuriously.
    let flock3 = FlockOfBirds::new(THRESHOLD);
    let mut betrayed = OneWayRunner::builder(OneWayModel::I3, Skno::new(flock3, OMISSION_BOUND))
        .config(Skno::<FlockOfBirds>::initial(&calm_states))
        .adversary(RateStrategy::new(0.02)) // UO adversary: no budget
        .seed(7)
        .build()?;
    let spurious = betrayed.run_until(400_000, |c| {
        project(c).as_slice().iter().any(|q| q.detected)
    });
    println!(
        "same flock, adversary past the bound: spurious alarm {} (omissions: {})",
        if spurious.is_satisfied() {
            format!("fired after {} interactions", spurious.steps())
        } else {
            "did not fire in this window".to_string()
        },
        betrayed.stats().omissive_steps,
    );
    println!("\nWithin the assumed bound SKnO is exact; beyond it, Theorem 3.1 bites.");
    Ok(())
}

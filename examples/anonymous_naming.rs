//! Anonymous agents name themselves, then simulate (paper §4.3).
//!
//! `SID` needs unique IDs — but the standard population-protocol model is
//! anonymous. Theorem 4.6 shows that *knowing the population size `n`* is
//! enough: the `Nn` naming protocol assigns stable unique names
//! `1..=n` in the IO model (Lemma 3), and every agent that observes
//! `max_id = n` knows naming is complete and can start `SID` with its own
//! name.
//!
//! The payload here is leader election, a protocol whose specification is
//! a *configuration* property (exactly one leader) rather than an output
//! consensus — exercising a different corner of the simulation machinery.
//!
//! Run with: `cargo run --example anonymous_naming`

use ppfts::core::{project, NamedSid, NamedState};
use ppfts::engine::{OneWayModel, OneWayRunner};
use ppfts::protocols::{LeaderElection, LeaderState};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for n in [4usize, 8, 16] {
        let sims = vec![LeaderState::Leader; n];
        let mut runner = OneWayRunner::builder(OneWayModel::Io, NamedSid::new(LeaderElection, n))
            .config(NamedSid::<LeaderElection>::initial(&sims))
            .seed(n as u64)
            .build()?;

        // Phase 1: watch the naming layer converge.
        let named = runner.run_until(20_000_000, |c| {
            c.as_slice().iter().all(NamedState::is_simulating)
        });
        assert!(named.is_satisfied(), "naming must terminate (Lemma 3)");
        let naming_steps = named.steps();
        let mut ids: Vec<u32> = runner
            .config()
            .as_slice()
            .iter()
            .map(NamedState::my_id)
            .collect();
        ids.sort_unstable();
        assert_eq!(
            ids,
            (1..=n as u32).collect::<Vec<_>>(),
            "a permutation of 1..=n"
        );

        // Phase 2: the simulated leader election runs on the new names.
        let elected = runner.run_until(20_000_000, |c| {
            project(c).count_state(&LeaderState::Leader) == 1
        });
        assert!(elected.is_satisfied(), "one leader must survive");

        println!(
            "n = {n:>2}: named in {:>7} interactions (ids 1..={n}), \
             leader elected after {:>7} more",
            naming_steps,
            elected.steps() - naming_steps,
        );
    }
    println!("\nTheorem 4.6 reproduced: IO + knowledge of n simulates any two-way protocol.");
    Ok(())
}

//! The interaction-model hierarchy of Figure 1, queryable and checked.
//!
//! Prints the ten interaction models of the paper, their transition
//! relations' capabilities, the inclusion arrows with their
//! justifications, and a reachability matrix of the closure. Finishes
//! with an *empirical* collapse check: every omissive model run with a
//! zero-omission adversary behaves exactly like its fault-free base.
//!
//! Run with: `cargo run --example model_hierarchy`

use ppfts::engine::hierarchy::{direct_inclusions, includes, ArrowReason};
use ppfts::engine::{
    Model, NoOmissions, OneWayModel, OneWayProgram, OneWayRunner, TwoWayModel, TwoWayRunner,
};
use ppfts::population::Configuration;
use ppfts::protocols::Epidemic;

struct OneWayEpidemic;
impl OneWayProgram for OneWayEpidemic {
    type State = bool;
    fn on_receive(&self, s: &bool, r: &bool) -> bool {
        *s || *r
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("The ten interaction models (paper Figure 1)\n");
    println!(
        "{:<6} {:<9} {:<11} detection",
        "model", "family", "omissive?"
    );
    println!("{}", "-".repeat(48));
    for model in Model::ALL {
        let (family, detection) = match model {
            Model::TwoWay(m) => (
                "two-way",
                match (m.starter_detects(), m.reactor_detects()) {
                    (false, false) => "none",
                    (true, false) => "starter (o)",
                    (false, true) => "reactor (h)",
                    (true, true) => "both (o, h)",
                },
            ),
            Model::OneWay(m) => (
                "one-way",
                if m.starter_detects_omission() {
                    "starter (o)"
                } else if m.reactor_detects_omission() {
                    "reactor (h)"
                } else if m.starter_applies_g() {
                    "proximity (g)"
                } else {
                    "none"
                },
            ),
        };
        println!(
            "{:<6} {:<9} {:<11} {}",
            model.to_string(),
            family,
            if model.allows_omissions() {
                "yes"
            } else {
                "no"
            },
            detection
        );
    }

    println!("\nInclusion arrows (problems solvable in A ⊆ solvable in B):\n");
    for arrow in direct_inclusions() {
        let why = match arrow.reason {
            ArrowReason::Specialization(s) => format!("relation specialization: {s}"),
            ArrowReason::AdversaryAvoidance => "adversary avoids omissions".to_string(),
        };
        println!(
            "  {:>3} → {:<3}  ({why})",
            arrow.from.to_string(),
            arrow.to.to_string()
        );
    }

    println!("\nReachability matrix of the closure (✓ = row ⊆ column):\n");
    print!("{:>4}", "");
    for to in Model::ALL {
        print!("{:>4}", to.to_string());
    }
    println!();
    for from in Model::ALL {
        print!("{:>4}", from.to_string());
        for to in Model::ALL {
            print!("{:>4}", if includes(from, to) { "✓" } else { "·" });
        }
        println!();
    }

    // Empirical collapse: with a zero-omission adversary, every omissive
    // model's executions coincide with its fault-free base (same seeds →
    // same trajectories).
    let c0 = Configuration::new(vec![true, false, false, false, false]);
    let run_two_way = |m: TwoWayModel| -> Vec<bool> {
        let mut r = TwoWayRunner::builder(m, Epidemic)
            .config(c0.clone())
            .adversary(NoOmissions)
            .seed(99)
            .build()
            .expect("valid population");
        r.run(400).expect("fault-free run");
        r.config().as_slice().to_vec()
    };
    let base = run_two_way(TwoWayModel::Tw);
    for m in [TwoWayModel::T1, TwoWayModel::T2, TwoWayModel::T3] {
        assert_eq!(run_two_way(m), base, "{m} must collapse to TW");
    }

    let run_one_way = |m: OneWayModel| -> Vec<bool> {
        let mut r = OneWayRunner::builder(m, OneWayEpidemic)
            .config(c0.clone())
            .adversary(NoOmissions)
            .seed(99)
            .build()
            .expect("valid population");
        r.run(400).expect("fault-free run");
        r.config().as_slice().to_vec()
    };
    let base = run_one_way(OneWayModel::It);
    for m in [
        OneWayModel::I1,
        OneWayModel::I2,
        OneWayModel::I3,
        OneWayModel::I4,
    ] {
        assert_eq!(run_one_way(m), base, "{m} must collapse to IT");
    }
    println!("\nCollapse check passed: with zero omissions, T1–T3 ≡ TW and I1–I4 ≡ IT.");
    Ok(())
}

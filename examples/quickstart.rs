//! Quickstart: simulate a two-way protocol on a weaker interaction model.
//!
//! This example follows the paper's core storyline on the smallest useful
//! payload: the agents must stably compute the OR of their input bits
//! (an epidemic), but the only communication primitive available is
//! **Immediate Observation** (IO) — one-way, with the starter completely
//! unaware that it was observed. The `SID` simulator (paper §4.2) bridges
//! the gap using unique IDs.
//!
//! Run with: `cargo run --example quickstart`

use ppfts::core::{build_matching, extract_events, project, Sid};
use ppfts::engine::{OneWayModel, OneWayRunner, TwoWayModel, TwoWayRunner};
use ppfts::population::{unanimous_output, Semantics};
use ppfts::protocols::Epidemic;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let inputs = vec![true, false, false, false, false, false];
    let expected = Epidemic.expected(&inputs);
    println!("inputs:   {inputs:?}");
    println!("expected: OR = {expected}\n");

    // ── 1. Native run, standard two-way model ────────────────────────────
    let mut native = TwoWayRunner::builder(TwoWayModel::Tw, Epidemic)
        .config(Epidemic.initial_configuration(&inputs))
        .seed(1)
        .build()?;
    let out = native.run_until(1_000_000, |c| {
        unanimous_output(c, |q| Epidemic.output(q)) == Some(expected)
    });
    println!(
        "two-way (TW):        stabilized after {:>6} interactions",
        out.steps()
    );

    // ── 2. Same protocol, but only IO interactions are available ────────
    // Wrap it in SID: each agent gets a unique ID and the paper's locking
    // handshake turns observations into simulated two-way exchanges.
    let mut simulated = OneWayRunner::builder(OneWayModel::Io, Sid::new(Epidemic))
        .config(Sid::<Epidemic>::initial(&inputs))
        .record_trace(true)
        .seed(1)
        .build()?;
    let out = simulated.run_until(1_000_000, |c| {
        unanimous_output(&project(c), |q| Epidemic.output(q)) == Some(expected)
    });
    println!(
        "IO + SID simulator:  stabilized after {:>6} interactions",
        out.steps()
    );

    // ── 3. Audit the simulation (paper Definitions 3–4) ──────────────────
    // Extract the simulation events and build the perfect matching: every
    // simulated state change pairs up into one two-way interaction of the
    // original protocol.
    let trace = simulated.take_trace().expect("trace was enabled");
    let events = extract_events(&trace);
    let matching = build_matching(&Epidemic, &events)?;
    println!(
        "\nsimulation audit: {} events, {} matched simulated interactions, {} in flight",
        events.len(),
        matching.len(),
        matching.unmatched.len(),
    );
    println!(
        "final simulated configuration: {:?}",
        project(simulated.config()).as_slice()
    );
    Ok(())
}

//! Matching and derived-execution validity across simulators (Defs 3–4).

use ppfts::core::{
    build_matching, extract_events, project, verify_derived_execution, NamedSid, Role, Sid, Skno,
};
use ppfts::engine::{BoundedStrategy, OneWayModel, OneWayRunner};
use ppfts::protocols::{Epidemic, Pairing, PairingState};

fn pairing_sims(c: usize, p: usize) -> Vec<PairingState> {
    Pairing::initial(c, p).as_slice().to_vec()
}

#[test]
fn sid_matchings_are_exact_and_replayable() {
    for seed in 0..8u64 {
        let sims = pairing_sims(3, 3);
        let mut runner = OneWayRunner::builder(OneWayModel::Io, Sid::new(Pairing))
            .config(Sid::<Pairing>::initial(&sims))
            .record_trace(true)
            .seed(seed)
            .build()
            .unwrap();
        let initial = project(runner.config());
        runner.run(40_000).unwrap();
        let events = extract_events(&runner.take_trace().unwrap());
        let matching = build_matching(&Pairing, &events).unwrap();
        let derived = verify_derived_execution(&Pairing, &initial, &events, &matching).unwrap();
        assert_eq!(derived.len(), matching.len(), "seed {seed}");
        // SID events carry exact ids, so every pair is reciprocal.
        for &(si, ri) in &matching.pairs {
            assert_eq!(events[si].role, Role::Starter);
            assert_eq!(events[ri].role, Role::Reactor);
            assert_eq!(events[si].partner_id, events[ri].agent_protocol_id);
            assert_eq!(events[ri].partner_id, events[si].agent_protocol_id);
        }
    }
}

#[test]
fn skno_matchings_validate_at_the_multiset_level() {
    for seed in 0..8u64 {
        let o = 2;
        let sims = pairing_sims(3, 2);
        let mut runner = OneWayRunner::builder(OneWayModel::I3, Skno::new(Pairing, o))
            .config(Skno::<Pairing>::initial(&sims))
            .adversary(BoundedStrategy::new(0.03, o as u64))
            .record_trace(true)
            .seed(seed)
            .build()
            .unwrap();
        let initial = project(runner.config());
        runner.run(60_000).unwrap();
        let events = extract_events(&runner.take_trace().unwrap());
        let matching = build_matching(&Pairing, &events).unwrap();
        let derived = verify_derived_execution(&Pairing, &initial, &events, &matching).unwrap();
        assert_eq!(derived.len(), matching.len(), "seed {seed}");
        // Anonymous events never carry ids.
        assert!(events.iter().all(|e| e.partner_id.is_none()));
    }
}

#[test]
fn named_sid_matchings_are_exact_once_naming_settles() {
    let inputs = vec![true, false, false, false];
    let mut runner = OneWayRunner::builder(OneWayModel::Io, NamedSid::new(Epidemic, inputs.len()))
        .config(NamedSid::<Epidemic>::initial(&inputs))
        .record_trace(true)
        .seed(3)
        .build()
        .unwrap();
    let initial = project(runner.config());
    runner.run(100_000).unwrap();
    let events = extract_events(&runner.take_trace().unwrap());
    // All commits happen in the simulating phase, where protocol ids
    // exist and are unique.
    assert!(events.iter().all(|e| e.agent_protocol_id.is_some()));
    let matching = build_matching(&Epidemic, &events).unwrap();
    let derived = verify_derived_execution(&Epidemic, &initial, &events, &matching).unwrap();
    assert_eq!(derived.len(), matching.len());
}

#[test]
fn event_streams_respect_commit_sequence_numbers() {
    let sims = pairing_sims(2, 2);
    let mut runner = OneWayRunner::builder(OneWayModel::Io, Sid::new(Pairing))
        .config(Sid::<Pairing>::initial(&sims))
        .record_trace(true)
        .seed(5)
        .build()
        .unwrap();
    runner.run(20_000).unwrap();
    let events = extract_events(&runner.take_trace().unwrap());
    // Per agent, seq must be 0, 1, 2, … in trace order.
    use std::collections::HashMap;
    let mut next: HashMap<usize, u64> = HashMap::new();
    for e in &events {
        let want = next.entry(e.agent.index()).or_insert(0);
        assert_eq!(e.seq, *want, "agent {} commit gap", e.agent);
        *want += 1;
    }
}

#[test]
fn unmatched_events_are_only_in_flight_halves() {
    // After a long run with no mid-flight cutoff hazards (SID pairs are
    // tight), the number of unmatched events is bounded by the number of
    // agents: at most one open handshake half per agent.
    let sims = pairing_sims(4, 4);
    let mut runner = OneWayRunner::builder(OneWayModel::Io, Sid::new(Pairing))
        .config(Sid::<Pairing>::initial(&sims))
        .record_trace(true)
        .seed(11)
        .build()
        .unwrap();
    runner.run(50_000).unwrap();
    let events = extract_events(&runner.take_trace().unwrap());
    let matching = build_matching(&Pairing, &events).unwrap();
    assert!(matching.unmatched.len() <= sims.len());
}

//! Topology-layer equivalence and fairness suite.
//!
//! Three families of properties certify the graph-aware scheduling
//! refactor:
//!
//! 1. **Complete-graph equivalence** — `TopologyScheduler` over
//!    `Topology::complete(n)` is *bit-identical* to the classic
//!    `UniformScheduler` for any seed, model, omission strategy, batch
//!    size and backend: same final configuration, same `RunStats`, same
//!    step count, same recorded trace. This is the contract that makes
//!    the topology layer a strict generalization — existing complete-
//!    graph experiments keep their exact streams.
//! 2. **Graph validity** — on restricted topologies every dealt
//!    interaction is a graph arc (audited from full traces), batched
//!    runs stay bit-identical to scalar runs, and random graph
//!    construction (`RandomRegular`, `ErdosRenyi`) only ever yields
//!    simple connected graphs with the promised degrees.
//! 3. **Fairness** — statistical (chi-square-style) uniformity of
//!    topology edge sampling, and the round-robin scheduler's hard
//!    rotation guarantee.
//! 4. **Graphical simulators** — the layer-2/3 simulators (`SKnO`,
//!    `SID`, `NamedSid`) built with their `graphical` constructors on
//!    `Topology::complete(n)` are *bit-identical* (full simulator
//!    states, `RunStats`, RNG stream) to the classic anonymous
//!    simulators; on restricted graphs their traces pass the
//!    simulation-embedding audit, and the builders enforce the
//!    program-side topology negotiation with typed errors.
//!
//! CI runs this suite with `PROPTEST_CASES=32` on every push.

use proptest::prelude::*;

use ppfts::core::{NamedSid, Sid, Skno};
use ppfts::engine::{
    EngineError, FullTrace, InteractionLaw, OneWayModel, OneWayProgram, OneWayRunner, RateStrategy,
    RoundRobinScheduler, Scheduler, StatsOnly, TopologyScheduler, TwoWayModel, TwoWayRunner,
    UniformScheduler,
};
use ppfts::population::{Configuration, CountConfiguration, Topology, TopologyError};
use ppfts::protocols::{Epidemic, MaxGossip, Pairing};
use ppfts::verify::{audit_scheduler_coverage, audit_simulation_topology, audit_trace_topology};

/// One-way epidemic: the reactor catches whatever the starter carries.
struct Or;
impl OneWayProgram for Or {
    type State = bool;
    fn on_receive(&self, s: &bool, r: &bool) -> bool {
        *s || *r
    }
}

fn one_way_model_strategy() -> impl Strategy<Value = OneWayModel> {
    prop_oneof![
        Just(OneWayModel::It),
        Just(OneWayModel::Io),
        Just(OneWayModel::I1),
        Just(OneWayModel::I2),
        Just(OneWayModel::I3),
        Just(OneWayModel::I4),
    ]
}

fn two_way_model_strategy() -> impl Strategy<Value = TwoWayModel> {
    prop_oneof![
        Just(TwoWayModel::Tw),
        Just(TwoWayModel::T1),
        Just(TwoWayModel::T2),
        Just(TwoWayModel::T3),
    ]
}

/// A restricted (non-complete) topology of `n` vertices, across every
/// generator family. `n` must make each family constructible.
fn restricted_topology(n: usize, pick: u8, seed: u64) -> Topology {
    match pick % 4 {
        0 => Topology::ring(n).unwrap(),
        1 => Topology::star(n).unwrap(),
        2 => Topology::grid2d(2, n.div_ceil(2)).unwrap(),
        _ => {
            let d = if n.is_multiple_of(2) { 3 } else { 2 };
            Topology::random_regular(n, d, seed).unwrap()
        }
    }
}

/// Grid construction may round `n` up; read the real size back.
fn restricted_len(t: &Topology) -> usize {
    t.len()
}

proptest! {
    /// One-way runs: TopologyScheduler(Complete) ≡ UniformScheduler
    /// bit-for-bit, scalar and batched, across models and omission rates.
    #[test]
    fn complete_topology_equals_uniform_one_way(
        model in one_way_model_strategy(),
        infected in prop::collection::vec(any::<bool>(), 2..16),
        rate in 0u32..=100,
        seed in 0u64..10_000,
        steps in 0u64..400,
        batch in 1u64..260,
    ) {
        let n = infected.len();
        let uniform = {
            let mut r = OneWayRunner::builder(model, Or)
                .config(Configuration::new(infected.clone()))
                .scheduler(UniformScheduler::new())
                .adversary(RateStrategy::new(rate as f64 / 100.0))
                .seed(seed)
                .trace_sink(StatsOnly)
                .build()
                .unwrap();
            r.run(steps).unwrap();
            (r.config().clone(), r.stats(), r.steps())
        };
        for batched in [None, Some(batch)] {
            let mut r = OneWayRunner::builder(model, Or)
                .config(Configuration::new(infected.clone()))
                .topology(Topology::complete(n).unwrap())
                .adversary(RateStrategy::new(rate as f64 / 100.0))
                .seed(seed)
                .trace_sink(StatsOnly)
                .build()
                .unwrap();
            match batched {
                Some(b) => r.run_batched(steps, b).unwrap(),
                None => r.run(steps).unwrap(),
            }
            prop_assert_eq!(
                (r.config().clone(), r.stats(), r.steps()),
                uniform.clone(),
                "batched: {:?}",
                batched
            );
        }
    }

    /// Two-way runs under every model, including the recorded trace: the
    /// topology layer must not change a single step record.
    #[test]
    fn complete_topology_equals_uniform_two_way_with_traces(
        model in two_way_model_strategy(),
        n in 2usize..12,
        rate in 0u32..=100,
        seed in 0u64..10_000,
        steps in 0u64..300,
    ) {
        let initial: Vec<bool> = (0..n).map(|i| i == 0).collect();
        let builder = || TwoWayRunner::builder(model, Epidemic)
            .config(Configuration::new(initial.clone()))
            .adversary(RateStrategy::new(rate as f64 / 100.0))
            .seed(seed)
            .trace_sink(FullTrace::new());
        let uniform = {
            // The default scheduler, unchanged.
            let mut r = builder().build().unwrap();
            r.run(steps).unwrap();
            (r.config().clone(), r.stats(), r.take_trace())
        };
        let topo = {
            let mut r = builder()
                .topology(Topology::complete(n).unwrap())
                .build()
                .unwrap();
            r.run(steps).unwrap();
            (r.config().clone(), r.stats(), r.take_trace())
        };
        prop_assert_eq!(uniform.0.as_slice(), topo.0.as_slice());
        prop_assert_eq!(uniform.1, topo.1);
        prop_assert_eq!(uniform.2, topo.2, "traces diverged");
    }

    /// Count-backed runs accept the complete topology (its law is
    /// uniform) and stay bit-identical to the uniform-scheduler count
    /// run.
    #[test]
    fn complete_topology_equals_uniform_on_counts(
        n in 2usize..40,
        seed in 0u64..10_000,
        steps in 0u64..400,
        batch in 1u64..64,
    ) {
        let builder = || TwoWayRunner::builder(TwoWayModel::Tw, Epidemic)
            .population(CountConfiguration::from_groups([
                (true, 1),
                (false, n - 1),
            ]))
            .seed(seed)
            .trace_sink(StatsOnly);
        let mut uniform = builder().build().unwrap();
        uniform.run(steps).unwrap();
        let mut topo = builder()
            .topology(Topology::complete(n).unwrap())
            .build()
            .unwrap();
        topo.run_batched(steps, batch).unwrap();
        prop_assert_eq!(uniform.config(), topo.config());
        prop_assert_eq!(uniform.stats(), topo.stats());
    }

    /// On restricted graphs, batched stepping stays bit-identical to
    /// scalar stepping (the batched path threads the topology law
    /// through the same RNG stream).
    #[test]
    fn batched_equals_scalar_on_restricted_topologies(
        pick in 0u8..4,
        n in 4usize..14,
        gseed in 0u64..50,
        model in one_way_model_strategy(),
        rate in 0u32..=60,
        seed in 0u64..10_000,
        steps in 0u64..400,
        batch in 1u64..128,
    ) {
        let topology = restricted_topology(n, pick, gseed);
        let n = restricted_len(&topology);
        let build = || OneWayRunner::builder(model, Or)
            .config(Configuration::new((0..n).map(|i| i == 0).collect::<Vec<_>>()))
            .topology(topology.clone())
            .adversary(RateStrategy::new(rate as f64 / 100.0))
            .seed(seed)
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
        let scalar = {
            let mut r = build();
            r.run(steps).unwrap();
            (r.config().clone(), r.stats(), r.steps())
        };
        let mut batched_r = build();
        batched_r.run_batched(steps, batch).unwrap();
        prop_assert_eq!(
            (batched_r.config().clone(), batched_r.stats(), batched_r.steps()),
            scalar
        );
    }

    /// Every interaction a topology-scheduled run deals is an arc of the
    /// graph — audited from the full trace, for every generator family.
    #[test]
    fn restricted_runs_stay_on_the_graph(
        pick in 0u8..4,
        n in 4usize..14,
        gseed in 0u64..50,
        seed in 0u64..10_000,
        steps in 1u64..500,
    ) {
        let topology = restricted_topology(n, pick, gseed);
        let n = restricted_len(&topology);
        let mut r = TwoWayRunner::builder(TwoWayModel::Tw, MaxGossip)
            .config(Configuration::new((0..n as u64).collect::<Vec<_>>()))
            .topology(topology.clone())
            .seed(seed)
            .trace_sink(FullTrace::new())
            .build()
            .unwrap();
        r.run(steps).unwrap();
        let report = audit_trace_topology(r.trace().unwrap(), &topology);
        prop_assert!(report.is_ok(), "off-graph arc: {:?}", report);
        prop_assert_eq!(report.unwrap().draws, steps);
    }

    /// Random-regular construction is valid for every admissible (n, d,
    /// seed): exact degrees, no self-loops, symmetric adjacency — and
    /// connected, or it would not have been returned at all.
    #[test]
    fn random_regular_constructions_are_valid(
        n in 4usize..40,
        d in 2usize..5,
        seed in 0u64..1_000,
    ) {
        prop_assume!(d < n && (n * d) % 2 == 0);
        let t = Topology::random_regular(n, d, seed).unwrap();
        prop_assert_eq!(t.len(), n);
        prop_assert_eq!(t.edge_count(), n * d / 2);
        for v in 0..n {
            prop_assert_eq!(t.degree(v), d, "vertex {}", v);
            prop_assert!(!t.contains_arc(v, v), "self-loop at {}", v);
            for w in t.neighbors(v) {
                prop_assert!(t.contains_arc(w, v), "asymmetric arc {}-{}", v, w);
            }
        }
    }

    /// Erdős–Rényi draws that construct are simple, symmetric and
    /// connected; sub-threshold failures are always the typed
    /// Disconnected error, never a bad graph.
    #[test]
    fn erdos_renyi_constructions_are_valid(
        n in 4usize..32,
        p_pct in 1u32..=100,
        seed in 0u64..1_000,
    ) {
        let p = p_pct as f64 / 100.0;
        match Topology::erdos_renyi(n, p, seed) {
            Ok(t) => {
                prop_assert_eq!(t.len(), n);
                let mut arcs = 0usize;
                for v in 0..n {
                    prop_assert!(!t.contains_arc(v, v));
                    for w in t.neighbors(v) {
                        prop_assert!(t.contains_arc(w, v), "asymmetric {}-{}", v, w);
                        arcs += 1;
                    }
                }
                prop_assert_eq!(arcs, t.arc_count());
                // Constructors certify connectivity: sampling must reach
                // every vertex eventually; spot-check via coverage.
                let report = audit_scheduler_coverage(&t, (t.arc_count() as u64) * 60, seed);
                prop_assert!(report.is_full(), "cold arcs on {}: {:?}", t, report);
            }
            Err(ppfts::population::TopologyError::Disconnected { reachable, len }) => {
                prop_assert!(reachable < len);
            }
            Err(e) => prop_assert!(false, "unexpected error {:?}", e),
        }
    }

    /// Chi-square-style uniformity of topology edge sampling: with k
    /// arcs and N = 200k draws, the statistic Σ (obs − exp)²/exp
    /// concentrates around its mean k−1. The bound 2(k−1) + 20 sits far
    /// beyond the distribution's 99.99th percentile at these k (its
    /// upper tail is heavier than √(2k)-normal for small k), yet any
    /// systematically hot or cold arc inflates the statistic linearly
    /// in N and blows straight past it.
    #[test]
    fn topology_edge_sampling_is_chi_square_uniform(
        pick in 0u8..4,
        n in 4usize..12,
        gseed in 0u64..50,
        seed in 0u64..10_000,
    ) {
        let topology = restricted_topology(n, pick, gseed);
        let arcs = topology.arc_count() as u64;
        let draws = arcs * 200;
        let mut scheduler = TopologyScheduler::new(topology.clone());
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
        let mut hits = vec![0u64; arcs as usize];
        for _ in 0..draws {
            let i = scheduler.next_interaction(topology.len(), &mut rng);
            let a = topology
                .arc_index(i.starter().index(), i.reactor().index())
                .expect("on-graph by construction");
            hits[a] += 1;
        }
        let expected = draws as f64 / arcs as f64;
        let chi2: f64 = hits
            .iter()
            .map(|&h| {
                let d = h as f64 - expected;
                d * d / expected
            })
            .sum();
        let df = (arcs - 1) as f64;
        let bound = 2.0 * df + 20.0;
        prop_assert!(
            chi2 < bound,
            "chi² = {} over bound {} on {} ({} draws)",
            chi2,
            bound,
            topology,
            draws
        );
    }

    /// Graphical `SKnO` on the complete topology is bit-identical to the
    /// classic anonymous `SKnO`: same full simulator states (token
    /// queues, sites, pending flags), same `RunStats`, same RNG stream —
    /// across models, omission rates, batch sizes and bounds.
    #[test]
    fn graphical_skno_on_complete_equals_anonymous_skno(
        n in 2usize..10,
        o in 0u32..3,
        i3 in any::<bool>(),
        rate in 0u32..=60,
        seed in 0u64..10_000,
        steps in 0u64..400,
        batch in 1u64..130,
    ) {
        let model = if i3 { OneWayModel::I3 } else { OneWayModel::I4 };
        let sims: Vec<_> = Pairing::initial(n / 2, n - n / 2).as_slice().to_vec();
        let anonymous = {
            let mut r = OneWayRunner::builder(model, Skno::new(Pairing, o))
                .config(Skno::<Pairing>::initial(&sims))
                .adversary(RateStrategy::new(rate as f64 / 100.0))
                .seed(seed)
                .trace_sink(StatsOnly)
                .build()
                .unwrap();
            r.run(steps).unwrap();
            (r.config().clone(), r.stats(), r.steps())
        };
        for batched in [None, Some(batch)] {
            let mut r = OneWayRunner::builder(
                model,
                Skno::graphical(Pairing, o, Topology::complete(n).unwrap()),
            )
            .config(Skno::<Pairing>::initial(&sims))
            .topology(Topology::complete(n).unwrap())
            .adversary(RateStrategy::new(rate as f64 / 100.0))
            .seed(seed)
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
            match batched {
                Some(b) => r.run_batched(steps, b).unwrap(),
                None => r.run(steps).unwrap(),
            }
            prop_assert_eq!(
                (r.config().clone(), r.stats(), r.steps()),
                anonymous.clone(),
                "batched: {:?}",
                batched
            );
        }
    }

    /// Graphical `SID` and `NamedSid` on the complete topology are
    /// bit-identical to their classic constructors (full states and RNG
    /// stream; `SID`'s adjacency guard is vacuous on the complete graph).
    #[test]
    fn graphical_sid_and_named_on_complete_equal_classic(
        n in 2usize..10,
        named in any::<bool>(),
        seed in 0u64..10_000,
        steps in 0u64..400,
        batch in 1u64..130,
    ) {
        let sims: Vec<_> = Pairing::initial(n / 2, n - n / 2).as_slice().to_vec();
        if named {
            let classic = {
                let mut r = OneWayRunner::builder(OneWayModel::Io, NamedSid::new(Pairing, n))
                    .config(NamedSid::<Pairing>::initial(&sims))
                    .seed(seed)
                    .trace_sink(StatsOnly)
                    .build()
                    .unwrap();
                r.run(steps).unwrap();
                (r.config().clone(), r.stats(), r.steps())
            };
            let mut r = OneWayRunner::builder(
                OneWayModel::Io,
                NamedSid::graphical(Pairing, Topology::complete(n).unwrap()),
            )
            .config(NamedSid::<Pairing>::initial(&sims))
            .topology(Topology::complete(n).unwrap())
            .seed(seed)
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
            r.run_batched(steps, batch).unwrap();
            prop_assert_eq!((r.config().clone(), r.stats(), r.steps()), classic);
        } else {
            let classic = {
                let mut r = OneWayRunner::builder(OneWayModel::Io, Sid::new(Pairing))
                    .config(Sid::<Pairing>::initial(&sims))
                    .seed(seed)
                    .trace_sink(StatsOnly)
                    .build()
                    .unwrap();
                r.run(steps).unwrap();
                (r.config().clone(), r.stats(), r.steps())
            };
            let mut r = OneWayRunner::builder(
                OneWayModel::Io,
                Sid::graphical(Pairing, Topology::complete(n).unwrap()),
            )
            .config(Sid::<Pairing>::initial(&sims))
            .topology(Topology::complete(n).unwrap())
            .seed(seed)
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
            r.run_batched(steps, batch).unwrap();
            prop_assert_eq!((r.config().clone(), r.stats(), r.steps()), classic);
        }
    }

    /// On restricted graphs, every trace a graphical simulator produces
    /// passes the simulation-embedding audit: physical interactions are
    /// graph arcs AND every simulated commit pairs adjacent vertices.
    #[test]
    fn graphical_simulator_traces_stay_on_graph(
        pick in 0u8..4,
        n in 4usize..12,
        gseed in 0u64..50,
        skno in any::<bool>(),
        o in 0u32..2,
        seed in 0u64..10_000,
        steps in 1u64..600,
    ) {
        let topology = restricted_topology(n, pick, gseed);
        let n = restricted_len(&topology);
        let sims: Vec<_> = Pairing::initial(n / 2, n - n / 2).as_slice().to_vec();
        if skno {
            let mut r = OneWayRunner::builder(
                OneWayModel::I3,
                Skno::graphical(Pairing, o, topology.clone()),
            )
            .config(Skno::<Pairing>::initial(&sims))
            .topology(topology.clone())
            .adversary(RateStrategy::new(0.1))
            .seed(seed)
            .record_trace(true)
            .build()
            .unwrap();
            r.run(steps).unwrap();
            let report = audit_simulation_topology(r.trace().unwrap(), &topology);
            prop_assert!(report.is_ok(), "violation: {:?}", report);
            let report = report.unwrap();
            prop_assert_eq!(report.physical.draws, steps);
            // Every graphical SKnO commit names its partner vertex.
            prop_assert_eq!(report.commits, report.located_commits);
        } else {
            let mut r = OneWayRunner::builder(
                OneWayModel::Io,
                Sid::graphical(Pairing, topology.clone()),
            )
            .config(Sid::<Pairing>::initial(&sims))
            .topology(topology.clone())
            .seed(seed)
            .record_trace(true)
            .build()
            .unwrap();
            r.run(steps).unwrap();
            let report = audit_simulation_topology(r.trace().unwrap(), &topology);
            prop_assert!(report.is_ok(), "violation: {:?}", report);
            prop_assert_eq!(report.unwrap().physical.draws, steps);
        }
    }

    /// The satellite fix: `Topology::random_regular`'s stub-pairing loop
    /// is hard-bounded. For *any* admissible-looking parameterization it
    /// terminates with either a valid graph or a typed error — never a
    /// hang, never a panic — and `d = 1` on more than two vertices
    /// (perfect matchings, never connected) always fails typed.
    #[test]
    fn random_regular_retry_loop_is_bounded_and_typed(
        n in 2usize..40,
        d in 1usize..6,
        seed in 0u64..5_000,
    ) {
        match Topology::random_regular(n, d, seed) {
            Ok(t) => {
                prop_assert_eq!(t.len(), n);
                for v in 0..n {
                    prop_assert_eq!(t.degree(v), d);
                }
            }
            Err(TopologyError::InvalidDegree { .. }) => {
                prop_assert!(d == 0 || d >= n || (n * d) % 2 == 1);
            }
            Err(TopologyError::PairingFailed { attempts }) => {
                prop_assert!(attempts > 0);
            }
            Err(e) => prop_assert!(false, "unexpected error {:?}", e),
        }
        if n > 2 && d == 1 {
            prop_assert!(matches!(
                Topology::random_regular(n, 1, seed),
                Err(TopologyError::InvalidDegree { .. })
                    | Err(TopologyError::PairingFailed { .. })
            ));
        }
    }

    /// Round-robin rotation fairness: over r complete rounds every
    /// ordered pair is dealt exactly r times — the hard guarantee the
    /// scheduler documents, checked across population sizes and seeds.
    #[test]
    fn round_robin_rotation_deals_every_pair_exactly_once_per_round(
        n in 3usize..8,
        rounds in 1u64..4,
        seed in 0u64..10_000,
    ) {
        let mut scheduler = RoundRobinScheduler::new();
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
        let per_round = (n * (n - 1)) as u64;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..rounds * per_round {
            *counts
                .entry(scheduler.next_interaction(n, &mut rng))
                .or_insert(0u64) += 1;
        }
        prop_assert_eq!(counts.len() as u64, per_round);
        for (pair, count) in counts {
            prop_assert_eq!(count, rounds, "pair {} dealt {} times", pair, count);
        }
    }
}

#[test]
fn builders_negotiate_program_topologies() {
    let ring = Topology::ring(8).unwrap();
    let sims: Vec<_> = Pairing::initial(4, 4).as_slice().to_vec();
    // A graphical simulator with the default (uniform) scheduler: the
    // program is graph-bound, the scheduler deals another law.
    let err = OneWayRunner::builder(OneWayModel::Io, Sid::graphical(Pairing, ring.clone()))
        .config(Sid::<Pairing>::initial(&sims))
        .build()
        .err()
        .expect("graphical SID under a uniform scheduler must not build");
    assert!(matches!(
        err,
        EngineError::ProgramTopologyMismatch {
            law: InteractionLaw::Uniform,
            ..
        }
    ));
    // A *different* restricted topology is rejected too.
    let err = OneWayRunner::builder(OneWayModel::Io, Sid::graphical(Pairing, ring.clone()))
        .config(Sid::<Pairing>::initial(&sims))
        .topology(Topology::star(8).unwrap())
        .build()
        .err()
        .expect("graphical SID on a foreign topology must not build");
    assert!(matches!(
        err,
        EngineError::ProgramTopologyMismatch {
            law: InteractionLaw::Topological,
            ..
        }
    ));
    // A population that does not span the program's graph is a size
    // mismatch even before the scheduler is consulted.
    let small: Vec<_> = Pairing::initial(3, 3).as_slice().to_vec();
    let err = OneWayRunner::builder(OneWayModel::Io, Sid::graphical(Pairing, ring.clone()))
        .config(Sid::<Pairing>::initial(&small))
        .build()
        .err()
        .expect("six agents cannot span an eight-vertex graph");
    assert!(matches!(
        err,
        EngineError::TopologySizeMismatch {
            topology: 8,
            population: 6
        }
    ));
    // The matching topology builds; a *complete* program topology is
    // satisfied by the plain uniform scheduler as well.
    assert!(
        OneWayRunner::builder(OneWayModel::Io, Sid::graphical(Pairing, ring.clone()))
            .config(Sid::<Pairing>::initial(&sims))
            .topology(ring)
            .build()
            .is_ok()
    );
    assert!(OneWayRunner::builder(
        OneWayModel::Io,
        Sid::graphical(Pairing, Topology::complete(8).unwrap())
    )
    .config(Sid::<Pairing>::initial(&sims))
    .build()
    .is_ok());
}

#[test]
fn conductance_instrumentation_matches_the_e13_families() {
    // The instrumentation the E13 experiment charts simulators against:
    // conductance orders the families, and Cheeger's inequality brackets
    // it by the spectral gap on both the exact and estimated paths.
    let ring = Topology::ring(64).unwrap();
    let rr4 = Topology::random_regular(64, 4, 12).unwrap();
    let complete = Topology::complete(64).unwrap();
    let (phi_ring, phi_rr4, phi_complete) = (
        ring.conductance(),
        rr4.conductance(),
        complete.conductance(),
    );
    assert!(phi_ring < phi_rr4 && phi_rr4 < phi_complete);
    for t in [&ring, &rr4, &complete] {
        let gap = t.spectral_profile(20_000).spectral_gap;
        let phi = t.conductance();
        assert!(
            gap / 2.0 <= phi + 1e-9 && phi <= (2.0 * gap).sqrt() + 1e-9,
            "{t}: Cheeger violated — gap {gap}, Φ {phi}"
        );
    }
    // Small graphs are exact; the exact value agrees with the general
    // entry point.
    let small = Topology::ring(12).unwrap();
    assert_eq!(small.conductance_exact().unwrap(), small.conductance());
}

#[test]
fn count_backend_rejects_restricted_topologies_at_build_time() {
    let err = TwoWayRunner::builder(TwoWayModel::Tw, Epidemic)
        .population(CountConfiguration::from_groups([(true, 1), (false, 7)]))
        .topology(Topology::ring(8).unwrap())
        .trace_sink(StatsOnly)
        .build()
        .err()
        .expect("ring on counts must not build");
    assert!(matches!(
        err,
        EngineError::CompleteInteractionLawRequired {
            law: InteractionLaw::Topological
        }
    ));
    // The misconfiguration never reaches a run: the same assembly on the
    // dense backend works.
    assert!(TwoWayRunner::builder(TwoWayModel::Tw, Epidemic)
        .config(Configuration::from_groups([(true, 1), (false, 7)]))
        .topology(Topology::ring(8).unwrap())
        .trace_sink(StatsOnly)
        .build()
        .is_ok());
}

#[test]
fn builders_reject_topology_size_mismatches() {
    let err = OneWayRunner::builder(OneWayModel::Io, Or)
        .config(Configuration::new(vec![false; 6]))
        .topology(Topology::ring(5).unwrap())
        .build()
        .err()
        .expect("size mismatch must not build");
    assert!(matches!(
        err,
        EngineError::TopologySizeMismatch {
            topology: 5,
            population: 6
        }
    ));
}

#[test]
fn scheduler_laws_are_exposed_through_the_facade() {
    assert_eq!(UniformScheduler::new().law(), InteractionLaw::Uniform);
    let ring = TopologyScheduler::new(Topology::ring(4).unwrap());
    assert_eq!(ring.law(), InteractionLaw::Topological);
    assert!(!ring.law().count_realizable());
    let complete = TopologyScheduler::new(Topology::complete(4).unwrap());
    assert!(complete.law().count_realizable());
}

#[test]
fn epidemic_scenarios_converge_on_every_family_through_the_facade() {
    use ppfts::protocols::scenario;
    for t in [
        Topology::ring(20).unwrap(),
        Topology::star(20).unwrap(),
        Topology::grid2d(4, 5).unwrap(),
        Topology::random_regular(20, 4, 1).unwrap(),
    ] {
        let label = t.to_string();
        let mut runner = scenario::epidemic_on(t, 3).unwrap();
        let out = runner.run_batched_until(
            5_000_000,
            128,
            scenario::all_infected::<Configuration<bool>>,
        );
        assert!(out.is_satisfied(), "stalled on {label}");
        assert!(runner.config().count_state(&true) == 20);
    }
}

//! Soundness contract between the `ppfts-analyze` model checker and the
//! engine: every configuration a *simulated* execution visits must be in
//! the checker's reachable set.
//!
//! The checker's proofs quantify over its reachable set, so this is the
//! load-bearing direction: if a simulation under the same `(model, o)`
//! adversary ever reaches a multiset the checker did not enumerate, the
//! "convergence from every reachable configuration" verdicts are
//! unsound.

use proptest::prelude::*;

use ppfts::analyze::check_two_way_counts;
use ppfts::engine::{BoundedStrategy, TwoWayModel, TwoWayRunner};
use ppfts::population::{Configuration, Multiset, Semantics};
use ppfts::protocols::{Epidemic, ExactMajority, MajorityOpinion};

proptest! {
    /// Epidemic under T1 with a bounded omission adversary: the observed
    /// multiset after every step is checker-reachable.
    #[test]
    fn epidemic_simulation_stays_in_reachable_set(
        infected in 1usize..4,
        clean in 1usize..6,
        budget in 0u32..3,
        seed in 0u64..300,
        steps in 1u64..200,
    ) {
        let mut initial = Multiset::new();
        initial.insert_many(true, infected);
        initial.insert_many(false, clean);
        let check = check_two_way_counts(
            TwoWayModel::T1,
            &Epidemic,
            &initial,
            budget,
            1_000_000,
            |_| true,
        )
        .expect("tiny state space");

        let mut dense = vec![true; infected];
        dense.extend(std::iter::repeat_n(false, clean));
        let mut runner = TwoWayRunner::builder(TwoWayModel::T1, Epidemic)
            .config(Configuration::new(dense))
            .adversary(BoundedStrategy::new(0.5, u64::from(budget)))
            .seed(seed)
            .build()
            .unwrap();
        for _ in 0..steps {
            runner.step().unwrap();
            let observed = runner.config().counts();
            prop_assert!(
                check.is_reachable(&observed),
                "simulation reached {observed:?}, unknown to the checker"
            );
        }
    }

    /// Same contract over the four-state `ExactMajority` protocol, whose
    /// omission edges genuinely grow the reachable set (lost
    /// cancellations shift the strong margin).
    #[test]
    fn exact_majority_simulation_stays_in_reachable_set(
        x in 1usize..5,
        y in 1usize..5,
        budget in 0u32..2,
        seed in 0u64..300,
        steps in 1u64..150,
    ) {
        let inputs: Vec<MajorityOpinion> = std::iter::repeat_n(MajorityOpinion::X, x)
            .chain(std::iter::repeat_n(MajorityOpinion::Y, y))
            .collect();
        let initial = ExactMajority.initial_counts(&inputs).counts();
        let check = check_two_way_counts(
            TwoWayModel::T1,
            &ExactMajority,
            &initial,
            budget,
            1_000_000,
            |_| true,
        )
        .expect("tiny state space");

        let mut runner = TwoWayRunner::builder(TwoWayModel::T1, ExactMajority)
            .config(ExactMajority.initial_configuration(&inputs))
            .adversary(BoundedStrategy::new(0.5, u64::from(budget)))
            .seed(seed)
            .build()
            .unwrap();
        for _ in 0..steps {
            runner.step().unwrap();
            let observed = runner.config().counts();
            prop_assert!(
                check.is_reachable(&observed),
                "simulation reached {observed:?}, unknown to the checker"
            );
        }
    }
}

//! Running one-way simulators inside two-way models via `EmbedOneWay` —
//! the executable form of Figure 1's `IT → TW` inclusion.

use ppfts::core::{project, Sid, Skno};
use ppfts::engine::{
    BoundedStrategy, EmbedOneWay, SidePolicy, TwoWayFault, TwoWayModel, TwoWayRunner,
};
use ppfts::protocols::{Pairing, PairingState};

fn sims(c: usize, p: usize) -> Vec<PairingState> {
    Pairing::initial(c, p).as_slice().to_vec()
}

#[test]
fn skno_embedded_in_t3_survives_reactor_side_omissions() {
    // Reactor-side T3 omissions are exactly I3 omissions for an embedded
    // one-way program, so SKnO's guarantee carries over verbatim.
    let o = 2;
    let mut runner =
        TwoWayRunner::builder(TwoWayModel::T3, EmbedOneWay::new(Skno::new(Pairing, o)))
            .config(Skno::<Pairing>::initial(&sims(2, 2)))
            .adversary(BoundedStrategy::new(0.03, o as u64))
            .side_policy(SidePolicy::Always(TwoWayFault::Reactor))
            .seed(3)
            .build()
            .unwrap();
    let out = runner.run_until(2_000_000, |c| {
        project(c).count_state(&PairingState::Paired) == 2
    });
    assert!(out.is_satisfied());
    assert!(project(runner.config()).count_state(&PairingState::Paired) <= 2);
}

#[test]
fn skno_embedded_budget_must_cover_double_minting_for_both_sides() {
    // A both-sides T3 omission fires *both* detection hooks, minting two
    // jokers; with the budget doubled accordingly the embedded simulator
    // still converges.
    let o = 2u32;
    let adversary_budget = 1u64; // 1 both-sides omission = 2 jokers ≤ o
    let mut runner =
        TwoWayRunner::builder(TwoWayModel::T3, EmbedOneWay::new(Skno::new(Pairing, o)))
            .config(Skno::<Pairing>::initial(&sims(2, 2)))
            .adversary(BoundedStrategy::new(0.03, adversary_budget))
            .side_policy(SidePolicy::Always(TwoWayFault::Both))
            .seed(4)
            .build()
            .unwrap();
    let out = runner.run_until(2_000_000, |c| {
        project(c).count_state(&PairingState::Paired) == 2
    });
    assert!(out.is_satisfied());
}

#[test]
fn sid_embedded_in_fault_free_tw_works() {
    let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, EmbedOneWay::new(Sid::new(Pairing)))
        .config(Sid::<Pairing>::initial(&sims(3, 2)))
        .seed(5)
        .build()
        .unwrap();
    let out = runner.run_until(2_000_000, |c| {
        project(c).count_state(&PairingState::Paired) == 2
    });
    assert!(out.is_satisfied());
}

#[test]
fn embedded_and_native_runs_coincide_without_faults() {
    use ppfts::engine::{OneWayModel, OneWayRunner};
    let c0 = Skno::<Pairing>::initial(&sims(2, 2));
    let mut two = TwoWayRunner::builder(TwoWayModel::Tw, EmbedOneWay::new(Skno::new(Pairing, 1)))
        .config(c0.clone())
        .seed(77)
        .build()
        .unwrap();
    let mut one = OneWayRunner::builder(OneWayModel::It, Skno::new(Pairing, 1))
        .config(c0)
        .seed(77)
        .build()
        .unwrap();
    two.run(500).unwrap();
    one.run(500).unwrap();
    assert_eq!(
        project(two.config()).as_slice(),
        project(one.config()).as_slice(),
        "same seed, same trajectory: the embedding is exact when fault-free"
    );
}

#[test]
fn stability_detection_works_on_two_way_runners() {
    // Note: SID itself never goes quiet (it keeps handshaking identity
    // transitions forever), so observed stability needs a program whose
    // *simulator states* stabilize — a plain one-way gossip embedded in
    // TW does.
    use ppfts::engine::OneWayProgram;
    struct Gossip;
    impl OneWayProgram for Gossip {
        type State = u32;
        fn on_receive(&self, s: &u32, r: &u32) -> u32 {
            (*s).max(*r)
        }
    }
    let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, EmbedOneWay::new(Gossip))
        .config(ppfts::population::Configuration::new(vec![7u32, 3, 5]))
        .seed(6)
        .build()
        .unwrap();
    let out = runner.run_until_stable(500_000, 500);
    assert!(out.is_satisfied());
    assert!(runner.config().as_slice().iter().all(|&v| v == 7));
}

#[test]
fn sid_simulators_are_never_silent_by_design() {
    // The flip side, documented as a test: SID keeps cycling its
    // handshake even after the simulated protocol stabilized, so observed
    // stability must be judged on the *projection*, not the raw states.
    let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, EmbedOneWay::new(Sid::new(Pairing)))
        .config(Sid::<Pairing>::initial(&sims(1, 1)))
        .seed(6)
        .build()
        .unwrap();
    let out = runner.run_until_stable(20_000, 500);
    assert!(!out.is_satisfied(), "SID handshakes forever");
    // Yet the simulated protocol has long stabilized.
    assert_eq!(
        project(runner.config()).count_state(&PairingState::Paired),
        1
    );
}

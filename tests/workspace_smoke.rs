//! Tier-1 workspace smoke test.
//!
//! Exercises the facade end-to-end — every layer re-exported by `ppfts`
//! participates: a protocol from `protocols`, wrapped in a simulator from
//! `core`, driven by a runner from `engine` over `population`
//! configurations, certified by `verify`. If a workspace manifest or a
//! facade re-export regresses, this fails by name instead of as an opaque
//! compile error.

use ppfts::core::{project, Sid};
use ppfts::engine::{EngineError, OneWayModel, OneWayRunner};
use ppfts::population::Semantics;
use ppfts::protocols::{Pairing, PairingState};
use ppfts::verify::audit_pairing;

#[test]
fn facade_runs_sid_pairing_to_convergence() -> Result<(), EngineError> {
    let consumers = 3;
    let producers = 3;
    let sims: Vec<PairingState> = Pairing::initial(consumers, producers).as_slice().to_vec();

    let mut runner = OneWayRunner::builder(OneWayModel::Io, Sid::new(Pairing))
        .config(Sid::<Pairing>::initial(&sims))
        .seed(2017)
        .build()?;

    // Require both sides of every pairing to land: at the instant the
    // last consumer turns Paired its producer can still be mid-handshake,
    // so waiting on Paired alone would stop one transition early.
    let out = runner.run_until(2_000_000, |c| {
        let proj = project(c);
        proj.count_state(&PairingState::Paired) == producers
            && proj.count_state(&PairingState::Spent) == producers
    });
    assert!(
        out.is_satisfied(),
        "SID-simulated Pairing did not converge within budget: {out:?}"
    );

    let config = project(runner.config());
    assert_eq!(config.count_state(&PairingState::Paired), producers);
    assert_eq!(config.count_state(&PairingState::Spent), producers);
    Ok(())
}

#[test]
fn facade_audit_certifies_sid_pairing() {
    // Cross-layer: the verify layer's step-by-step auditor certifies a
    // simulated run (irrevocability + safety throughout, liveness at end).
    let sims: Vec<PairingState> = Pairing::initial(2, 2).as_slice().to_vec();
    let mut runner = OneWayRunner::builder(OneWayModel::Io, Sid::new(Pairing))
        .config(Sid::<Pairing>::initial(&sims))
        .seed(7)
        .build()
        .expect("builder accepts a fault-free IO setup");

    let report = audit_pairing(&mut runner, 2_000_000);
    assert!(
        report.solved(),
        "SID-simulated Pairing must pass the audit: {report:?}"
    );
}

#[test]
fn facade_exposes_semantics_oracles() {
    // The population layer's semantics vocabulary is reachable and sane.
    let inputs = vec![false, true, false];
    assert!(ppfts::protocols::Epidemic.expected(&inputs));
}

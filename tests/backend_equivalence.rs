//! Dense ↔ count backend agreement, and interleaved ↔ epoch-path
//! agreement.
//!
//! Three contracts tie the execution paths together:
//!
//! 1. **Exact replay** — a configuration of anonymous agents is fully
//!    captured by its state multiset, so folding a dense run's step
//!    records `(old_starter, old_reactor) → (new_starter, new_reactor)`
//!    through `CountConfiguration::apply_outcome` must land on *exactly*
//!    the dense run's final multiset, for any interaction sequence
//!    (scheduled or scripted), any model and any fault pattern.
//! 2. **Distributional agreement (backends)** — both backends realize
//!    the same uniform-pairing law, so convergence-step distributions of
//!    the ported protocols must agree across backends within sampling
//!    tolerance.
//! 3. **Distributional agreement (epoch path)** — the batch-epoch path
//!    (`run_epochs_until`) draws whole collision-free epochs in bulk but
//!    realizes the same uniform-pair, i.i.d.-fault process as the
//!    interleaved reference, so convergence-step distributions must agree
//!    across *execution paths* too — fault-free and under binomially
//!    thinned omissions — and schedules the bulk thinning cannot honor
//!    (no fixed i.i.d. rate) must be rejected with the typed
//!    [`EngineError::EpochIncompatible`] before any state is mutated.
//!
//! CI runs this suite with a bounded `PROPTEST_CASES` on every push.

use proptest::prelude::*;

use ppfts::engine::convergence::stably;
use ppfts::engine::{
    EngineError, ExecBackend, FullTrace, HorizonStrategy, OneWayModel, OneWayProgram, OneWayRunner,
    RateStrategy, StatsOnly, TwoWayModel, TwoWayRunner,
};
use ppfts::population::{
    Configuration, CountConfiguration, Multiset, Population, Semantics, State, TableProtocol,
    TwoWayProtocol,
};
use ppfts::protocols::{
    majority_states, ApproximateMajority, Epidemic, ExactMajority, ExactMajorityState,
    LeaderElection, LeaderState, MajorityState, Pairing, PairingState, Remainder, RemainderState,
};

/// One-way epidemic used by the one-way replay case.
struct Or;
impl OneWayProgram for Or {
    type State = bool;
    fn on_receive(&self, s: &bool, r: &bool) -> bool {
        *s || *r
    }
}

fn pairing_state_strategy() -> impl Strategy<Value = PairingState> {
    prop_oneof![
        Just(PairingState::Paired),
        Just(PairingState::Consumer),
        Just(PairingState::Producer),
        Just(PairingState::Spent),
    ]
}

/// Replays a full trace onto the count view of `initial` and asserts the
/// final multisets agree exactly.
fn assert_replay_matches<Q: State>(
    initial: &Configuration<Q>,
    trace_records: impl Iterator<Item = (Q, Q, Q, Q)>,
    dense_final: &Configuration<Q>,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let mut counts = CountConfiguration::from_dense(initial);
    for (old_s, old_r, new_s, new_r) in trace_records {
        counts
            .apply_outcome(&old_s, &old_r, (new_s, new_r))
            .expect("dense run only interacts present agents");
    }
    prop_assert_eq!(
        counts.counts(),
        Population::counts(dense_final),
        "replayed multiset diverged from the dense run"
    );
    prop_assert_eq!(counts.len(), Population::len(dense_final));
    Ok(())
}

/// Steps-to-convergence of one seeded run on any backend, or `None` if
/// the budget ran out.
fn steps_to<P, C>(
    protocol: P,
    population: C,
    seed: u64,
    budget: u64,
    batch: u64,
    pred: impl Fn(&Multiset<P::State>) -> bool,
) -> Option<u64>
where
    P: TwoWayProtocol,
    C: ExecBackend<State = P::State>,
{
    let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, protocol)
        .population(population)
        .seed(seed)
        .trace_sink(StatsOnly)
        .build()
        .expect("valid population");
    let out = runner.run_batched_until(budget, batch, stably(|c: &C| pred(&c.counts()), 2));
    out.is_satisfied().then(|| out.steps())
}

/// Mean convergence steps over a fixed seed set; every seed must converge.
fn mean_steps<P, C>(
    make_protocol: impl Fn() -> P,
    make_population: impl Fn() -> C,
    seeds: std::ops::Range<u64>,
    budget: u64,
    pred: impl Fn(&Multiset<P::State>) -> bool + Copy,
) -> f64
where
    P: TwoWayProtocol,
    C: ExecBackend<State = P::State>,
{
    let mut total = 0f64;
    let mut count = 0usize;
    for seed in seeds {
        let steps = steps_to(make_protocol(), make_population(), seed, budget, 64, pred)
            .expect("seed must converge within budget");
        total += steps as f64;
        count += 1;
    }
    total / count as f64
}

/// Steps-to-convergence of one seeded *epoch-path* run on the count
/// backend, or `None` if the budget ran out. Fault-free (`Tw`), so the
/// epoch path can never reject.
fn epoch_steps_to<P>(
    protocol: P,
    population: CountConfiguration<P::State>,
    seed: u64,
    budget: u64,
    pred: impl Fn(&Multiset<P::State>) -> bool,
) -> Option<u64>
where
    P: TwoWayProtocol,
{
    let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, protocol)
        .population(population)
        .seed(seed)
        .trace_sink(StatsOnly)
        .build()
        .expect("valid population");
    let out = runner
        .run_epochs_until(
            budget,
            stably(|c: &CountConfiguration<P::State>| pred(&c.counts()), 2),
        )
        .expect("fault-free count-backed runs are epoch compatible");
    out.is_satisfied().then(|| out.steps())
}

/// Mean epoch-path convergence steps over a fixed seed set; every seed
/// must converge.
fn epoch_mean_steps<P>(
    make_protocol: impl Fn() -> P,
    make_population: impl Fn() -> CountConfiguration<P::State>,
    seeds: std::ops::Range<u64>,
    budget: u64,
    pred: impl Fn(&Multiset<P::State>) -> bool + Copy,
) -> f64
where
    P: TwoWayProtocol,
{
    let mut total = 0f64;
    let mut count = 0usize;
    for seed in seeds {
        let steps = epoch_steps_to(make_protocol(), make_population(), seed, budget, pred)
            .expect("seed must converge within budget");
        total += steps as f64;
        count += 1;
    }
    total / count as f64
}

/// Mean convergence steps of the omissive epidemic (`T1`, i.i.d. rate
/// adversary) on the count backend, through either execution path.
fn omissive_epidemic_mean_steps(
    n: usize,
    rate: f64,
    seeds: std::ops::Range<u64>,
    budget: u64,
    epoch_path: bool,
) -> f64 {
    let mut total = 0f64;
    let mut count = 0usize;
    for seed in seeds {
        let pred = stably(
            |c: &CountConfiguration<bool>| c.counts().count(&true) == c.counts().len(),
            2,
        );
        let mut runner = TwoWayRunner::builder(TwoWayModel::T1, Epidemic)
            .population(CountConfiguration::from_groups([(true, 1), (false, n - 1)]))
            .adversary(RateStrategy::new(rate))
            .seed(seed)
            .trace_sink(StatsOnly)
            .build()
            .expect("valid population");
        let out = if epoch_path {
            runner
                .run_epochs_until(budget, pred)
                .expect("a rate adversary has a fixed i.i.d. rate")
        } else {
            runner.run_batched_until(budget, 64, pred)
        };
        assert!(out.is_satisfied(), "seed must converge within budget");
        total += out.steps() as f64;
        count += 1;
    }
    total / count as f64
}

proptest! {
    /// Exact replay, two-way: a seeded Pairing run under any two-way
    /// model with a rate adversary, replayed record-by-record onto
    /// counts.
    #[test]
    fn two_way_replay_yields_identical_multisets(
        states in prop::collection::vec(pairing_state_strategy(), 2..14),
        rate in 0u32..=100,
        seed in 0u64..10_000,
        steps in 0u64..300,
    ) {
        let initial = Configuration::new(states);
        let mut runner = TwoWayRunner::builder(TwoWayModel::T1, Pairing)
            .config(initial.clone())
            .adversary(RateStrategy::new(rate as f64 / 100.0))
            .seed(seed)
            .trace_sink(FullTrace::new())
            .build()
            .unwrap();
        runner.run(steps).unwrap();
        let trace = runner.take_trace().unwrap();
        assert_replay_matches(
            &initial,
            trace.records().iter().map(|r| (
                r.old_starter,
                r.old_reactor,
                r.new_starter,
                r.new_reactor,
            )),
            runner.config(),
        )?;
    }

    /// Exact replay, one-way: the epidemic under an omissive one-way
    /// model — omissive steps are recorded too and must replay exactly.
    #[test]
    fn one_way_replay_yields_identical_multisets(
        infected in prop::collection::vec(any::<bool>(), 2..14),
        rate in 0u32..=100,
        seed in 0u64..10_000,
        steps in 0u64..300,
    ) {
        let initial = Configuration::new(infected);
        let mut runner = OneWayRunner::builder(OneWayModel::I3, Or)
            .config(initial.clone())
            .adversary(RateStrategy::new(rate as f64 / 100.0))
            .seed(seed)
            .trace_sink(FullTrace::new())
            .build()
            .unwrap();
        runner.run(steps).unwrap();
        let trace = runner.take_trace().unwrap();
        assert_replay_matches(
            &initial,
            trace.records().iter().map(|r| (
                r.old_starter,
                r.old_reactor,
                r.new_starter,
                r.new_reactor,
            )),
            runner.config(),
        )?;
    }

    /// Distributional agreement on the epidemic: the mean convergence
    /// step count over a window of seeds must agree across backends
    /// within sampling tolerance. (Both backends realize the same
    /// uniform-pair law but consume the RNG differently, so only the
    /// distribution — not individual runs — can match.)
    #[test]
    fn epidemic_convergence_distributions_agree(
        n in 30usize..80,
        seed_base in 0u64..1_000,
    ) {
        let table = TableProtocol::from_protocol(&Epidemic);
        let pred = |m: &Multiset<bool>| m.count(&true) == m.len();
        let budget = 500_000;
        let seeds = 16;
        let dense = mean_steps(
            || table.clone(),
            || {
                Configuration::from_groups([(true, 1), (false, n - 1)])
            },
            seed_base..seed_base + seeds,
            budget,
            pred,
        );
        let count = mean_steps(
            || table.clone(),
            || CountConfiguration::from_groups([(true, 1), (false, n - 1)]),
            seed_base..seed_base + seeds,
            budget,
            pred,
        );
        let ratio = dense / count;
        prop_assert!(
            (0.5..=2.0).contains(&ratio),
            "epidemic mean steps diverged: dense {dense:.0} vs count {count:.0} (n = {n})"
        );
    }

    /// Distributional agreement on approximate majority (a protocol with
    /// a non-monotone trajectory) and leader election (quadratic
    /// meeting times) at a fixed size, seed-windowed.
    #[test]
    fn ported_protocol_distributions_agree(
        seed_base in 0u64..1_000,
    ) {
        // Approximate majority, 2:1 margin at n = 48. The comparison is
        // steps-to-consensus (either opinion): the X-majority wins w.h.p.
        // but an unlucky seed may flip, and that seed must still count.
        let budget = 2_000_000;
        let seeds = 12;
        let pred = |m: &Multiset<MajorityState>| {
            m.count(&MajorityState::X) == m.len() || m.count(&MajorityState::Y) == m.len()
        };
        let groups = [(MajorityState::X, 32), (MajorityState::Y, 16)];
        let dense = mean_steps(
            || ApproximateMajority,
            || Configuration::from_groups(groups),
            seed_base..seed_base + seeds,
            budget,
            pred,
        );
        let count = mean_steps(
            || ApproximateMajority,
            || CountConfiguration::from_groups(groups),
            seed_base..seed_base + seeds,
            budget,
            pred,
        );
        let ratio = dense / count;
        prop_assert!(
            (0.4..=2.5).contains(&ratio),
            "approximate-majority mean steps diverged: dense {dense:.0} vs count {count:.0}"
        );

        // Leader election at n = 32.
        let pred = |m: &Multiset<LeaderState>| m.count(&LeaderState::Leader) == 1;
        let dense = mean_steps(
            || LeaderElection,
            || LeaderElection::initial(32),
            seed_base..seed_base + seeds,
            budget,
            pred,
        );
        let count = mean_steps(
            || LeaderElection,
            || LeaderElection::initial_counts(32),
            seed_base..seed_base + seeds,
            budget,
            pred,
        );
        let ratio = dense / count;
        prop_assert!(
            (0.4..=2.5).contains(&ratio),
            "leader-election mean steps diverged: dense {dense:.0} vs count {count:.0}"
        );
    }

    /// Distributional agreement across *execution paths*: the batch-epoch
    /// sampler draws whole collision-free epochs in bulk, but the epidemic
    /// convergence-step distribution must match the interleaved reference
    /// within sampling tolerance. Seed-windowed, fault-free.
    #[test]
    fn epoch_epidemic_convergence_distributions_agree(
        n in 100usize..240,
        seed_base in 0u64..1_000,
    ) {
        let pred = |m: &Multiset<bool>| m.count(&true) == m.len();
        let budget = 500_000;
        let seeds = 12;
        let interleaved = mean_steps(
            || Epidemic,
            || CountConfiguration::from_groups([(true, 1), (false, n - 1)]),
            seed_base..seed_base + seeds,
            budget,
            pred,
        );
        let epoch = epoch_mean_steps(
            || Epidemic,
            || CountConfiguration::from_groups([(true, 1), (false, n - 1)]),
            seed_base..seed_base + seeds,
            budget,
            pred,
        );
        let ratio = interleaved / epoch;
        prop_assert!(
            (0.5..=2.0).contains(&ratio),
            "epidemic mean steps diverged: interleaved {interleaved:.0} vs epoch {epoch:.0} (n = {n})"
        );
    }

    /// Epoch-path distributional agreement on the remaining ported
    /// protocols of the contract: exact majority (cancellation +
    /// conversion, margin-carrying strongs) and remainder mod 3 (active
    /// absorption + opinion flooding), both seed-windowed and fault-free.
    #[test]
    fn epoch_ported_protocol_distributions_agree(
        seed_base in 0u64..1_000,
    ) {
        // Exact majority, 2:1 margin at n = 48: X wins deterministically,
        // so the comparison is steps until no Y-opinion agent remains.
        let budget = 2_000_000;
        let seeds = 10;
        let pred = |m: &Multiset<ExactMajorityState>| {
            m.count(&majority_states::SY) == 0 && m.count(&majority_states::WY) == 0
        };
        let groups = [(majority_states::SX, 32), (majority_states::SY, 16)];
        let interleaved = mean_steps(
            || ExactMajority,
            || CountConfiguration::from_groups(groups),
            seed_base..seed_base + seeds,
            budget,
            pred,
        );
        let epoch = epoch_mean_steps(
            || ExactMajority,
            || CountConfiguration::from_groups(groups),
            seed_base..seed_base + seeds,
            budget,
            pred,
        );
        let ratio = interleaved / epoch;
        prop_assert!(
            (0.4..=2.5).contains(&ratio),
            "exact-majority mean steps diverged: interleaved {interleaved:.0} vs epoch {epoch:.0}"
        );

        // Remainder mod 3 on 16 unit inputs (16 ≡ 1, so the true output
        // is `true`): converged once one active survives and every agent
        // votes `true`.
        let remainder = Remainder::new(3, 1);
        let inputs = [1u32; 16];
        assert!(remainder.expected(&inputs));
        let pred = |m: &Multiset<RemainderState>| {
            let actives: usize = m
                .iter()
                .filter(|(q, _)| q.value.is_some())
                .map(|(_, c)| c)
                .sum();
            actives == 1 && m.iter().all(|(q, _)| q.opinion)
        };
        let interleaved = mean_steps(
            || remainder,
            || remainder.initial_counts(&inputs),
            seed_base..seed_base + seeds,
            budget,
            pred,
        );
        let epoch = epoch_mean_steps(
            || remainder,
            || remainder.initial_counts(&inputs),
            seed_base..seed_base + seeds,
            budget,
            pred,
        );
        let ratio = interleaved / epoch;
        prop_assert!(
            (0.4..=2.5).contains(&ratio),
            "remainder mean steps diverged: interleaved {interleaved:.0} vs epoch {epoch:.0}"
        );
    }

    /// Epoch-path distributional agreement under faults: `T1` omissions
    /// at a fixed i.i.d. rate are thinned binomially per bulk group on
    /// the epoch path and drawn per-interaction on the interleaved path —
    /// the same law, so the slowed convergence distributions must still
    /// agree.
    #[test]
    fn epoch_omissive_epidemic_distributions_agree(
        rate_pct in 5u32..35,
        seed_base in 0u64..1_000,
    ) {
        let n = 150;
        let rate = f64::from(rate_pct) / 100.0;
        let budget = 500_000;
        let seeds = 12;
        let interleaved =
            omissive_epidemic_mean_steps(n, rate, seed_base..seed_base + seeds, budget, false);
        let epoch =
            omissive_epidemic_mean_steps(n, rate, seed_base..seed_base + seeds, budget, true);
        let ratio = interleaved / epoch;
        prop_assert!(
            (0.5..=2.0).contains(&ratio),
            "omissive epidemic mean steps diverged at rate {rate}: \
             interleaved {interleaved:.0} vs epoch {epoch:.0}"
        );
    }
}

/// Typed rejection: the epoch path thins omissions binomially from a
/// fixed i.i.d. rate, so a schedule-shaped adversary (here a horizon
/// strategy) must be refused with `EpochIncompatible` — and the refusal
/// must leave the runner untouched, so the interleaved path can still
/// honor the exact schedule afterwards.
#[test]
fn epoch_path_rejects_non_iid_omission_schedules() {
    let mut runner = TwoWayRunner::builder(TwoWayModel::T1, Epidemic)
        .population(CountConfiguration::from_groups([(true, 1), (false, 63)]))
        .adversary(HorizonStrategy::new(0.5, 1_000))
        .seed(1)
        .trace_sink(StatsOnly)
        .build()
        .expect("valid population");
    let err = runner.run_epochs(10_000).unwrap_err();
    assert!(matches!(err, EngineError::EpochIncompatible { .. }));
    assert_eq!(runner.steps(), 0, "rejection must precede any mutation");
    runner
        .run(10_000)
        .expect("interleaved path honors the schedule");
    assert_eq!(runner.steps(), 10_000);
}

/// The acceptance fixture in miniature (the full n = 10⁶ run lives in
/// `benches/e11_giant.rs`): epidemic on counts through
/// `run_batched_until` + `stably`, with the dense backend agreeing at a
/// size it can still comfortably sweep in a debug test.
#[test]
fn epidemic_converges_on_both_backends_at_ten_thousand() {
    let n = 10_000usize;
    let pred = |m: &Multiset<bool>| m.count(&true) == m.len();
    let count_steps = steps_to(
        Epidemic,
        CountConfiguration::from_groups([(true, 1), (false, n - 1)]),
        7,
        200_000_000,
        4096,
        pred,
    )
    .expect("count backend converges");
    let dense_steps = steps_to(
        Epidemic,
        Configuration::from_groups([(true, 1), (false, n - 1)]),
        7,
        200_000_000,
        4096,
        pred,
    )
    .expect("dense backend converges");
    // Θ(n log n) ≈ 9.2 n; both backends must land in the same decade.
    let expected = n as f64 * (n as f64).ln();
    for (label, steps) in [("count", count_steps), ("dense", dense_steps)] {
        let ratio = steps as f64 / expected;
        assert!(
            (0.2..=5.0).contains(&ratio),
            "{label} backend took {steps} steps, expected ≈ {expected:.0}"
        );
    }
}

//! Dense ↔ count backend agreement.
//!
//! Two contracts tie the [`CountConfiguration`] backend to the dense
//! per-agent semantics:
//!
//! 1. **Exact replay** — a configuration of anonymous agents is fully
//!    captured by its state multiset, so folding a dense run's step
//!    records `(old_starter, old_reactor) → (new_starter, new_reactor)`
//!    through `CountConfiguration::apply_outcome` must land on *exactly*
//!    the dense run's final multiset, for any interaction sequence
//!    (scheduled or scripted), any model and any fault pattern.
//! 2. **Distributional agreement** — both backends realize the same
//!    uniform-pairing law, so convergence-step distributions of the
//!    ported protocols must agree across backends within sampling
//!    tolerance.
//!
//! CI runs this suite with a bounded `PROPTEST_CASES` on every push.

use proptest::prelude::*;

use ppfts::engine::convergence::stably;
use ppfts::engine::{
    ExecBackend, FullTrace, OneWayModel, OneWayProgram, OneWayRunner, RateStrategy, StatsOnly,
    TwoWayModel, TwoWayRunner,
};
use ppfts::population::{
    Configuration, CountConfiguration, Multiset, Population, State, TableProtocol, TwoWayProtocol,
};
use ppfts::protocols::{
    ApproximateMajority, Epidemic, LeaderElection, LeaderState, MajorityState, Pairing,
    PairingState,
};

/// One-way epidemic used by the one-way replay case.
struct Or;
impl OneWayProgram for Or {
    type State = bool;
    fn on_receive(&self, s: &bool, r: &bool) -> bool {
        *s || *r
    }
}

fn pairing_state_strategy() -> impl Strategy<Value = PairingState> {
    prop_oneof![
        Just(PairingState::Paired),
        Just(PairingState::Consumer),
        Just(PairingState::Producer),
        Just(PairingState::Spent),
    ]
}

/// Replays a full trace onto the count view of `initial` and asserts the
/// final multisets agree exactly.
fn assert_replay_matches<Q: State>(
    initial: &Configuration<Q>,
    trace_records: impl Iterator<Item = (Q, Q, Q, Q)>,
    dense_final: &Configuration<Q>,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let mut counts = CountConfiguration::from_dense(initial);
    for (old_s, old_r, new_s, new_r) in trace_records {
        counts
            .apply_outcome(&old_s, &old_r, (new_s, new_r))
            .expect("dense run only interacts present agents");
    }
    prop_assert_eq!(
        counts.counts(),
        Population::counts(dense_final),
        "replayed multiset diverged from the dense run"
    );
    prop_assert_eq!(counts.len(), Population::len(dense_final));
    Ok(())
}

/// Steps-to-convergence of one seeded run on any backend, or `None` if
/// the budget ran out.
fn steps_to<P, C>(
    protocol: P,
    population: C,
    seed: u64,
    budget: u64,
    batch: u64,
    pred: impl Fn(&Multiset<P::State>) -> bool,
) -> Option<u64>
where
    P: TwoWayProtocol,
    C: ExecBackend<State = P::State>,
{
    let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, protocol)
        .population(population)
        .seed(seed)
        .trace_sink(StatsOnly)
        .build()
        .expect("valid population");
    let out = runner.run_batched_until(budget, batch, stably(|c: &C| pred(&c.counts()), 2));
    out.is_satisfied().then(|| out.steps())
}

/// Mean convergence steps over a fixed seed set; every seed must converge.
fn mean_steps<P, C>(
    make_protocol: impl Fn() -> P,
    make_population: impl Fn() -> C,
    seeds: std::ops::Range<u64>,
    budget: u64,
    pred: impl Fn(&Multiset<P::State>) -> bool + Copy,
) -> f64
where
    P: TwoWayProtocol,
    C: ExecBackend<State = P::State>,
{
    let mut total = 0f64;
    let mut count = 0usize;
    for seed in seeds {
        let steps = steps_to(make_protocol(), make_population(), seed, budget, 64, pred)
            .expect("seed must converge within budget");
        total += steps as f64;
        count += 1;
    }
    total / count as f64
}

proptest! {
    /// Exact replay, two-way: a seeded Pairing run under any two-way
    /// model with a rate adversary, replayed record-by-record onto
    /// counts.
    #[test]
    fn two_way_replay_yields_identical_multisets(
        states in prop::collection::vec(pairing_state_strategy(), 2..14),
        rate in 0u32..=100,
        seed in 0u64..10_000,
        steps in 0u64..300,
    ) {
        let initial = Configuration::new(states);
        let mut runner = TwoWayRunner::builder(TwoWayModel::T1, Pairing)
            .config(initial.clone())
            .adversary(RateStrategy::new(rate as f64 / 100.0))
            .seed(seed)
            .trace_sink(FullTrace::new())
            .build()
            .unwrap();
        runner.run(steps).unwrap();
        let trace = runner.take_trace().unwrap();
        assert_replay_matches(
            &initial,
            trace.records().iter().map(|r| (
                r.old_starter,
                r.old_reactor,
                r.new_starter,
                r.new_reactor,
            )),
            runner.config(),
        )?;
    }

    /// Exact replay, one-way: the epidemic under an omissive one-way
    /// model — omissive steps are recorded too and must replay exactly.
    #[test]
    fn one_way_replay_yields_identical_multisets(
        infected in prop::collection::vec(any::<bool>(), 2..14),
        rate in 0u32..=100,
        seed in 0u64..10_000,
        steps in 0u64..300,
    ) {
        let initial = Configuration::new(infected);
        let mut runner = OneWayRunner::builder(OneWayModel::I3, Or)
            .config(initial.clone())
            .adversary(RateStrategy::new(rate as f64 / 100.0))
            .seed(seed)
            .trace_sink(FullTrace::new())
            .build()
            .unwrap();
        runner.run(steps).unwrap();
        let trace = runner.take_trace().unwrap();
        assert_replay_matches(
            &initial,
            trace.records().iter().map(|r| (
                r.old_starter,
                r.old_reactor,
                r.new_starter,
                r.new_reactor,
            )),
            runner.config(),
        )?;
    }

    /// Distributional agreement on the epidemic: the mean convergence
    /// step count over a window of seeds must agree across backends
    /// within sampling tolerance. (Both backends realize the same
    /// uniform-pair law but consume the RNG differently, so only the
    /// distribution — not individual runs — can match.)
    #[test]
    fn epidemic_convergence_distributions_agree(
        n in 30usize..80,
        seed_base in 0u64..1_000,
    ) {
        let table = TableProtocol::from_protocol(&Epidemic);
        let pred = |m: &Multiset<bool>| m.count(&true) == m.len();
        let budget = 500_000;
        let seeds = 16;
        let dense = mean_steps(
            || table.clone(),
            || {
                Configuration::from_groups([(true, 1), (false, n - 1)])
            },
            seed_base..seed_base + seeds,
            budget,
            pred,
        );
        let count = mean_steps(
            || table.clone(),
            || CountConfiguration::from_groups([(true, 1), (false, n - 1)]),
            seed_base..seed_base + seeds,
            budget,
            pred,
        );
        let ratio = dense / count;
        prop_assert!(
            (0.5..=2.0).contains(&ratio),
            "epidemic mean steps diverged: dense {dense:.0} vs count {count:.0} (n = {n})"
        );
    }

    /// Distributional agreement on approximate majority (a protocol with
    /// a non-monotone trajectory) and leader election (quadratic
    /// meeting times) at a fixed size, seed-windowed.
    #[test]
    fn ported_protocol_distributions_agree(
        seed_base in 0u64..1_000,
    ) {
        // Approximate majority, 2:1 margin at n = 48. The comparison is
        // steps-to-consensus (either opinion): the X-majority wins w.h.p.
        // but an unlucky seed may flip, and that seed must still count.
        let budget = 2_000_000;
        let seeds = 12;
        let pred = |m: &Multiset<MajorityState>| {
            m.count(&MajorityState::X) == m.len() || m.count(&MajorityState::Y) == m.len()
        };
        let groups = [(MajorityState::X, 32), (MajorityState::Y, 16)];
        let dense = mean_steps(
            || ApproximateMajority,
            || Configuration::from_groups(groups),
            seed_base..seed_base + seeds,
            budget,
            pred,
        );
        let count = mean_steps(
            || ApproximateMajority,
            || CountConfiguration::from_groups(groups),
            seed_base..seed_base + seeds,
            budget,
            pred,
        );
        let ratio = dense / count;
        prop_assert!(
            (0.4..=2.5).contains(&ratio),
            "approximate-majority mean steps diverged: dense {dense:.0} vs count {count:.0}"
        );

        // Leader election at n = 32.
        let pred = |m: &Multiset<LeaderState>| m.count(&LeaderState::Leader) == 1;
        let dense = mean_steps(
            || LeaderElection,
            || LeaderElection::initial(32),
            seed_base..seed_base + seeds,
            budget,
            pred,
        );
        let count = mean_steps(
            || LeaderElection,
            || LeaderElection::initial_counts(32),
            seed_base..seed_base + seeds,
            budget,
            pred,
        );
        let ratio = dense / count;
        prop_assert!(
            (0.4..=2.5).contains(&ratio),
            "leader-election mean steps diverged: dense {dense:.0} vs count {count:.0}"
        );
    }
}

/// The acceptance fixture in miniature (the full n = 10⁶ run lives in
/// `benches/e11_giant.rs`): epidemic on counts through
/// `run_batched_until` + `stably`, with the dense backend agreeing at a
/// size it can still comfortably sweep in a debug test.
#[test]
fn epidemic_converges_on_both_backends_at_ten_thousand() {
    let n = 10_000usize;
    let pred = |m: &Multiset<bool>| m.count(&true) == m.len();
    let count_steps = steps_to(
        Epidemic,
        CountConfiguration::from_groups([(true, 1), (false, n - 1)]),
        7,
        200_000_000,
        4096,
        pred,
    )
    .expect("count backend converges");
    let dense_steps = steps_to(
        Epidemic,
        Configuration::from_groups([(true, 1), (false, n - 1)]),
        7,
        200_000_000,
        4096,
        pred,
    )
    .expect("dense backend converges");
    // Θ(n log n) ≈ 9.2 n; both backends must land in the same decade.
    let expected = n as f64 * (n as f64).ln();
    for (label, steps) in [("count", count_steps), ("dense", dense_steps)] {
        let ratio = steps as f64 / expected;
        assert!(
            (0.2..=5.0).contains(&ratio),
            "{label} backend took {steps} steps, expected ≈ {expected:.0}"
        );
    }
}

//! Scalar ↔ batched equivalence: for any seed, protocol, model, omission
//! strategy and batch size, `run_batched(n, b)` must be *bit-identical*
//! to `run(n)` — same final `Configuration`, same `RunStats`, same total
//! step count — because both draw (interaction, fault) pairs from the
//! shared RNG stream in the same order and apply the same outcomes.
//!
//! This is the contract that lets the experiment harnesses move to the
//! batched `StatsOnly` path without changing any measured dynamics.
//! CI runs this suite with `PROPTEST_CASES=64` on every push.

use proptest::prelude::*;

use ppfts::core::{NamedSid, Sid, Skno};
use ppfts::engine::{
    BoundedStrategy, FullTrace, OneWayModel, OneWayProgram, OneWayRunner, RateStrategy, RunStats,
    SampledTrace, StatsOnly, TwoWayModel, TwoWayRunner,
};
use ppfts::population::Configuration;
use ppfts::protocols::{MaxGossip, Pairing, PairingState};

/// One-way epidemic: the reactor catches whatever the starter carries.
struct Or;
impl OneWayProgram for Or {
    type State = bool;
    fn on_receive(&self, s: &bool, r: &bool) -> bool {
        *s || *r
    }
}

fn one_way_model_strategy() -> impl Strategy<Value = OneWayModel> {
    prop_oneof![
        Just(OneWayModel::It),
        Just(OneWayModel::Io),
        Just(OneWayModel::I1),
        Just(OneWayModel::I2),
        Just(OneWayModel::I3),
        Just(OneWayModel::I4),
    ]
}

fn two_way_model_strategy() -> impl Strategy<Value = TwoWayModel> {
    prop_oneof![
        Just(TwoWayModel::Tw),
        Just(TwoWayModel::T1),
        Just(TwoWayModel::T2),
        Just(TwoWayModel::T3),
    ]
}

fn pairing_state_strategy() -> impl Strategy<Value = PairingState> {
    prop_oneof![
        Just(PairingState::Paired),
        Just(PairingState::Consumer),
        Just(PairingState::Producer),
        Just(PairingState::Spent),
    ]
}

/// Drives `runner` scalar or batched and snapshots the observable state.
macro_rules! outcome_of {
    ($runner:expr, $steps:expr, $batch:expr) => {{
        let mut r = $runner;
        match $batch {
            Some(b) => r.run_batched($steps, b).unwrap(),
            None => r.run($steps).unwrap(),
        }
        (r.config().clone(), r.stats(), r.steps())
    }};
}

fn assert_equiv<Q: ppfts::population::State + std::fmt::Debug>(
    scalar: &(Configuration<Q>, RunStats, u64),
    batched: &(Configuration<Q>, RunStats, u64),
    label: &str,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(
        scalar.0.as_slice(),
        batched.0.as_slice(),
        "configuration diverged: {}",
        label
    );
    prop_assert_eq!(scalar.1, batched.1, "stats diverged: {}", label);
    prop_assert_eq!(scalar.2, batched.2, "step count diverged: {}", label);
    Ok(())
}

proptest! {
    /// One-way epidemic under every one-way model with a rate adversary.
    #[test]
    fn one_way_epidemic_scalar_equals_batched(
        model in one_way_model_strategy(),
        infected in prop::collection::vec(any::<bool>(), 2..16),
        rate in 0u32..=100,
        seed in 0u64..10_000,
        steps in 0u64..400,
        batch in 1u64..260,
    ) {
        let build = || OneWayRunner::builder(model, Or)
            .config(Configuration::new(infected.clone()))
            .adversary(RateStrategy::new(rate as f64 / 100.0))
            .seed(seed)
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
        let scalar = outcome_of!(build(), steps, None);
        let batched = outcome_of!(build(), steps, Some(batch));
        assert_equiv(&scalar, &batched, "one-way epidemic")?;
    }

    /// The SKnO simulator (heavy token-carrying states) under I3 with a
    /// bounded adversary: the workload E5 measures.
    #[test]
    fn skno_scalar_equals_batched(
        consumers in 1usize..5,
        producers in 1usize..5,
        o in 0u32..3,
        seed in 0u64..10_000,
        steps in 0u64..300,
        batch in 1u64..300,
    ) {
        let sims: Vec<PairingState> = Pairing::initial(consumers, producers)
            .as_slice()
            .to_vec();
        let build = || OneWayRunner::builder(OneWayModel::I3, Skno::new(Pairing, o))
            .config(Skno::<Pairing>::initial(&sims))
            .adversary(BoundedStrategy::new(0.05, o as u64))
            .seed(seed)
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
        let scalar = outcome_of!(build(), steps, None);
        let batched = outcome_of!(build(), steps, Some(batch));
        assert_equiv(&scalar, &batched, "SKnO under I3")?;
    }

    /// The SID simulator under IO (fault-free one-way).
    #[test]
    fn sid_scalar_equals_batched(
        consumers in 1usize..5,
        producers in 1usize..5,
        seed in 0u64..10_000,
        steps in 0u64..300,
        batch in 1u64..300,
    ) {
        let sims: Vec<PairingState> = Pairing::initial(consumers, producers)
            .as_slice()
            .to_vec();
        let build = || OneWayRunner::builder(OneWayModel::Io, Sid::new(Pairing))
            .config(Sid::<Pairing>::initial(&sims))
            .seed(seed)
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
        let scalar = outcome_of!(build(), steps, None);
        let batched = outcome_of!(build(), steps, Some(batch));
        assert_equiv(&scalar, &batched, "SID under IO")?;
    }

    /// Two-way protocols under every two-way model with a rate adversary
    /// (the uniform side policy samples among the model's permitted
    /// faults, so every model/fault combination stays legal).
    #[test]
    fn two_way_pairing_scalar_equals_batched(
        model in two_way_model_strategy(),
        states in prop::collection::vec(pairing_state_strategy(), 2..12),
        rate in 0u32..=100,
        seed in 0u64..10_000,
        steps in 0u64..400,
        batch in 1u64..260,
    ) {
        let build = || TwoWayRunner::builder(model, Pairing)
            .config(Configuration::new(states.clone()))
            .adversary(RateStrategy::new(rate as f64 / 100.0))
            .seed(seed)
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
        let scalar = outcome_of!(build(), steps, None);
        let batched = outcome_of!(build(), steps, Some(batch));
        assert_equiv(&scalar, &batched, "two-way Pairing")?;
    }

    /// Max-gossip (two-way, totals change every effective meeting) under
    /// TW: exercises the write-if-changed fast path on a protocol where
    /// most early steps change state.
    #[test]
    fn two_way_gossip_scalar_equals_batched(
        values in prop::collection::vec(0u64..50, 2..10),
        seed in 0u64..10_000,
        steps in 0u64..300,
        batch in 1u64..64,
    ) {
        let build = || TwoWayRunner::builder(TwoWayModel::Tw, MaxGossip)
            .config(Configuration::new(values.clone()))
            .seed(seed)
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
        let scalar = outcome_of!(build(), steps, None);
        let batched = outcome_of!(build(), steps, Some(batch));
        assert_equiv(&scalar, &batched, "two-way max-gossip")?;
    }

    /// Cross-path equivalence: a passive sink routes execution through
    /// the programs' in-place hooks, a recording sink through the pure
    /// outcome functions. Both must produce the same configuration and
    /// stats — this is what certifies `Skno`'s hand-written in-place
    /// overrides against the pure transition semantics, under both I3
    /// (reactor-side detection) and I4 (starter-side detection).
    #[test]
    fn in_place_path_matches_pure_path_for_skno(
        consumers in 1usize..5,
        producers in 1usize..5,
        o in 0u32..3,
        i4 in any::<bool>(),
        rate in 0u32..=30,
        seed in 0u64..10_000,
        steps in 0u64..300,
        batch in 1u64..128,
    ) {
        let model = if i4 { OneWayModel::I4 } else { OneWayModel::I3 };
        let sims: Vec<PairingState> = Pairing::initial(consumers, producers)
            .as_slice()
            .to_vec();
        let pure = {
            let mut r = OneWayRunner::builder(model, Skno::new(Pairing, o))
                .config(Skno::<Pairing>::initial(&sims))
                .adversary(RateStrategy::new(rate as f64 / 100.0))
                .seed(seed)
                .trace_sink(FullTrace::new())
                .build()
                .unwrap();
            r.run(steps).unwrap();
            (r.config().clone(), r.stats(), r.steps())
        };
        let in_place = {
            let mut r = OneWayRunner::builder(model, Skno::new(Pairing, o))
                .config(Skno::<Pairing>::initial(&sims))
                .adversary(RateStrategy::new(rate as f64 / 100.0))
                .seed(seed)
                .trace_sink(StatsOnly)
                .build()
                .unwrap();
            r.run_batched(steps, batch).unwrap();
            (r.config().clone(), r.stats(), r.steps())
        };
        assert_equiv(&pure, &in_place, "Skno pure vs in-place")?;
    }

    /// `Sid`'s hand-written in-place handshake against the pure
    /// observation semantics: a passive sink routes through
    /// `observe_in_place`, a recording sink through `observe` plus
    /// compare-and-store. Both must agree bit-for-bit.
    #[test]
    fn in_place_path_matches_pure_path_for_sid(
        consumers in 1usize..5,
        producers in 1usize..5,
        seed in 0u64..10_000,
        steps in 0u64..400,
        batch in 1u64..128,
    ) {
        let sims: Vec<PairingState> = Pairing::initial(consumers, producers)
            .as_slice()
            .to_vec();
        let pure = {
            let mut r = OneWayRunner::builder(OneWayModel::Io, Sid::new(Pairing))
                .config(Sid::<Pairing>::initial(&sims))
                .seed(seed)
                .trace_sink(FullTrace::new())
                .build()
                .unwrap();
            r.run(steps).unwrap();
            (r.config().clone(), r.stats(), r.steps())
        };
        let in_place = {
            let mut r = OneWayRunner::builder(OneWayModel::Io, Sid::new(Pairing))
                .config(Sid::<Pairing>::initial(&sims))
                .seed(seed)
                .trace_sink(StatsOnly)
                .build()
                .unwrap();
            r.run_batched(steps, batch).unwrap();
            (r.config().clone(), r.stats(), r.steps())
        };
        assert_equiv(&pure, &in_place, "Sid pure vs in-place")?;
    }

    /// `NamedSid`'s in-place naming-plus-handshake against the pure
    /// semantics, through both the naming phase and the composed SID
    /// phase.
    #[test]
    fn in_place_path_matches_pure_path_for_named_sid(
        consumers in 1usize..5,
        producers in 1usize..5,
        seed in 0u64..10_000,
        steps in 0u64..500,
        batch in 1u64..128,
    ) {
        let sims: Vec<PairingState> = Pairing::initial(consumers, producers)
            .as_slice()
            .to_vec();
        let n = sims.len();
        let pure = {
            let mut r = OneWayRunner::builder(OneWayModel::Io, NamedSid::new(Pairing, n))
                .config(NamedSid::<Pairing>::initial(&sims))
                .seed(seed)
                .trace_sink(FullTrace::new())
                .build()
                .unwrap();
            r.run(steps).unwrap();
            (r.config().clone(), r.stats(), r.steps())
        };
        let in_place = {
            let mut r = OneWayRunner::builder(OneWayModel::Io, NamedSid::new(Pairing, n))
                .config(NamedSid::<Pairing>::initial(&sims))
                .seed(seed)
                .trace_sink(StatsOnly)
                .build()
                .unwrap();
            r.run_batched(steps, batch).unwrap();
            (r.config().clone(), r.stats(), r.steps())
        };
        assert_equiv(&pure, &in_place, "NamedSid pure vs in-place")?;
    }

    /// Equivalence also holds for *recording* sinks: a batched run feeds
    /// the sink the same records as a scalar run, for both the full and
    /// the sampled sink.
    #[test]
    fn recording_sinks_see_identical_records(
        infected in prop::collection::vec(any::<bool>(), 2..10),
        seed in 0u64..10_000,
        steps in 0u64..200,
        batch in 1u64..64,
        stride in 1u64..20,
    ) {
        let scalar = {
            let mut r = OneWayRunner::builder(OneWayModel::Io, Or)
                .config(Configuration::new(infected.clone()))
                .seed(seed)
                .trace_sink(FullTrace::new())
                .build()
                .unwrap();
            r.run(steps).unwrap();
            (r.take_trace().unwrap(), r.config().clone())
        };
        let batched = {
            let mut r = OneWayRunner::builder(OneWayModel::Io, Or)
                .config(Configuration::new(infected.clone()))
                .seed(seed)
                .trace_sink(FullTrace::new())
                .build()
                .unwrap();
            r.run_batched(steps, batch).unwrap();
            (r.take_trace().unwrap(), r.config().clone())
        };
        prop_assert_eq!(&scalar.0, &batched.0, "full traces diverged");
        prop_assert_eq!(scalar.1.as_slice(), batched.1.as_slice());

        let sampled = {
            let mut r = OneWayRunner::builder(OneWayModel::Io, Or)
                .config(Configuration::new(infected.clone()))
                .seed(seed)
                .trace_sink(SampledTrace::every(stride))
                .build()
                .unwrap();
            r.run_batched(steps, batch).unwrap();
            r.take_trace().unwrap()
        };
        // The sampled sink's records are a subsequence of the full trace.
        let mut full = scalar.0.iter();
        for rec in &sampled {
            prop_assert!(
                full.any(|r| r == rec),
                "sampled record {:?} not in the full trace in order",
                rec.index
            );
        }
    }
}

//! Exact (exhaustive) verification of stabilization claims on small
//! populations, via the terminal-SCC characterization of global fairness.
//!
//! Unlike the statistical tests, nothing here depends on seeds: the model
//! checker enumerates every reachable configuration and every GF
//! execution's eventual behaviour.

use ppfts::core::{Sid, SimulatorState};
use ppfts::engine::{OneWayModel, TwoWayModel};
use ppfts::population::Semantics;
use ppfts::protocols::semilinear::{Atom, PredicateExpr, SemilinearProtocol};
use ppfts::protocols::{
    ApproximateMajority, Epidemic, FlockOfBirds, LeaderElection, LeaderState, MajorityState,
    Pairing, PairingState, Remainder,
};
use ppfts::verify::{explore_one_way, explore_two_way};

#[test]
fn epidemic_stably_computes_or_proved() {
    for n_true in 0..3usize {
        for n_false in 0..3usize {
            let n = n_true + n_false;
            if n < 2 {
                continue;
            }
            let inputs: Vec<bool> = std::iter::repeat_n(true, n_true)
                .chain(std::iter::repeat_n(false, n_false))
                .collect();
            let expected = Epidemic.expected(&inputs);
            let graph = explore_two_way(
                TwoWayModel::Tw,
                &Epidemic,
                &Epidemic.initial_configuration(&inputs),
                10_000,
            )
            .unwrap();
            assert!(
                graph.always_stabilizes(|m| {
                    m.iter().all(|(q, _)| Epidemic.output(q) == expected)
                }),
                "inputs {inputs:?}"
            );
        }
    }
}

#[test]
fn pairing_solves_pair_proved() {
    for (c, p) in [(1usize, 1usize), (2, 1), (1, 2), (2, 2), (3, 2)] {
        let expected = c.min(p);
        let graph =
            explore_two_way(TwoWayModel::Tw, &Pairing, &Pairing::initial(c, p), 100_000).unwrap();
        // Liveness: every GF execution ends with exactly min(c, p) paired.
        assert!(graph.always_stabilizes(|m| m.count(&PairingState::Paired) == expected));
        // Safety + irrevocability corollary: never more paired than
        // producers anywhere in the reachable graph.
        assert!(graph.invariant(|m| m.count(&PairingState::Paired) <= p));
    }
}

#[test]
fn leader_election_proved() {
    for n in [2usize, 3, 4, 5] {
        let graph = explore_two_way(
            TwoWayModel::Tw,
            &LeaderElection,
            &LeaderElection::initial(n),
            10_000,
        )
        .unwrap();
        assert!(graph.always_stabilizes(|m| m.count(&LeaderState::Leader) == 1));
    }
}

#[test]
fn approximate_majority_with_unanimous_input_proved() {
    // With a unanimous starting opinion the 3-state protocol is exact:
    // every GF execution converts all blanks.
    let inputs = vec![MajorityState::X, MajorityState::X, MajorityState::Blank];
    let graph = explore_two_way(
        TwoWayModel::Tw,
        &ApproximateMajority,
        &ppfts::population::Configuration::new(inputs),
        10_000,
    )
    .unwrap();
    assert!(graph.always_stabilizes(|m| m.count(&MajorityState::X) == 3));
}

#[test]
fn flock_threshold_proved_both_sides() {
    let flock = FlockOfBirds::new(2);
    // 2 marked: must detect.
    let hot = flock.initial_configuration(&[true, true, false]);
    let graph = explore_two_way(TwoWayModel::Tw, &flock, &hot, 100_000).unwrap();
    assert!(graph.always_stabilizes(|m| m.iter().all(|(q, _)| q.detected)));
    // 1 marked: must never detect — an invariant, not just eventual.
    let cold = flock.initial_configuration(&[true, false, false]);
    let graph = explore_two_way(TwoWayModel::Tw, &flock, &cold, 100_000).unwrap();
    assert!(graph.invariant(|m| m.iter().all(|(q, _)| !q.detected)));
}

#[test]
fn remainder_proved() {
    let p = Remainder::new(2, 1);
    let inputs = vec![1u32, 1, 1]; // sum 3, odd
    let graph = explore_two_way(
        TwoWayModel::Tw,
        &p,
        &p.initial_configuration(&inputs),
        100_000,
    )
    .unwrap();
    assert!(graph.always_stabilizes(|m| m.iter().all(|(q, _)| p.output(q))));
}

#[test]
fn semilinear_compilation_proved() {
    // "at least 2 of symbol 1" over two symbols, n = 3.
    let p = SemilinearProtocol::new(
        vec![Atom::Threshold {
            coeffs: vec![0, 1],
            threshold: 2,
        }],
        PredicateExpr::atom(0),
    )
    .unwrap();
    for inputs in [vec![1usize, 1, 0], vec![1, 0, 0]] {
        let expected = p.expected(&inputs);
        let graph = explore_two_way(
            TwoWayModel::Tw,
            &p,
            &p.initial_configuration(&inputs),
            100_000,
        )
        .unwrap();
        assert!(
            graph.always_stabilizes(|m| m.iter().all(|(q, _)| p.output(q) == expected)),
            "inputs {inputs:?}"
        );
    }
}

#[test]
fn sid_simulation_proved_for_three_agents() {
    // Exact GF verification of the full SID machinery on 3 agents
    // simulating Pairing(2 consumers, 1 producer): every GF execution
    // ends with exactly one simulated pairing.
    let sims = [
        PairingState::Consumer,
        PairingState::Consumer,
        PairingState::Producer,
    ];
    let sid = Sid::new(Pairing);
    let c0 = Sid::<Pairing>::initial(&sims);
    let graph = explore_one_way(OneWayModel::Io, &sid, &c0, 3_000_000).unwrap();
    assert!(graph.always_stabilizes(|m| {
        let paired: usize = m
            .iter()
            .filter(|(q, _)| *q.simulated() == PairingState::Paired)
            .map(|(_, c)| c)
            .sum();
        paired == 1
    }));
    // Simulated safety is a reachability invariant, not only eventual.
    assert!(graph.invariant(|m| {
        let paired: usize = m
            .iter()
            .filter(|(q, _)| *q.simulated() == PairingState::Paired)
            .map(|(_, c)| c)
            .sum();
        paired <= 1
    }));
}

//! The negative side of the paper, end to end (Theorems 3.1–3.3).
//!
//! Each test executes one of the paper's adversarial constructions against
//! a concrete simulator and checks that the predicted failure — a Pairing
//! safety violation, or a liveness collapse — actually materializes.

use ppfts::core::project;
use ppfts::core::{Skno, SknoState};
use ppfts::engine::{AtMostOneStrategy, OneWayModel, OneWayRunner};
use ppfts::protocols::{Pairing, PairingState};
use ppfts::verify::{
    lemma1_attack, no1_resilience, thm32_attack, AttackOutcome, Optimist, OptimistState,
};

#[test]
fn thm31_lemma1_breaks_skno_in_i3_for_every_small_bound() {
    for o in 1..=3u32 {
        let report = lemma1_attack(
            OneWayModel::I3,
            Skno::new(Pairing, o),
            SknoState::new,
            128,
            512,
        )
        .unwrap();
        // FTT = 2(o+1) — the threshold at which the paper predicts doom.
        assert_eq!(report.ftt, 2 * (o + 1), "o = {o}");
        assert_eq!(report.omissions_in_run, report.ftt as u64);
        match report.outcome {
            AttackOutcome::SafetyViolated { paired, producers } => {
                assert!(paired > producers, "Lemma 1 guarantees t+1 paired");
                assert_eq!(producers, report.ftt as usize);
            }
            other => panic!("expected safety violation for o = {o}, got {other:?}"),
        }
    }
}

#[test]
fn thm31_symmetric_variant_in_i4() {
    for o in 1..=2u32 {
        let report = lemma1_attack(
            OneWayModel::I4,
            Skno::new(Pairing, o),
            SknoState::new,
            128,
            512,
        )
        .unwrap();
        assert!(
            report.violated_safety(),
            "I4, o = {o}: expected violation, got {:?}",
            report.outcome
        );
    }
}

#[test]
fn thm32_dichotomy_first_horn_skno_stalls_in_weak_models() {
    // In I1/I2 nothing detects omissions, so SKnO cannot mint jokers and
    // one lost token stalls it forever: not NO1-resilient.
    for model in [OneWayModel::I1, OneWayModel::I2] {
        let failures = no1_resilience(model, &Skno::new(Pairing, 1), SknoState::new, 6, 4_000);
        assert!(
            !failures.is_empty(),
            "{model}: SKnO should stall under some single omission"
        );
    }
}

#[test]
fn thm32_dichotomy_second_horn_resilient_optimist_is_unsafe() {
    for model in [OneWayModel::I1, OneWayModel::I2] {
        // Resilient…
        let failures = no1_resilience(model, &Optimist::new(Pairing), OptimistState::new, 8, 4_000);
        assert!(
            failures.is_empty(),
            "{model}: Optimist must be NO1-resilient"
        );
        // …therefore breakable with zero omissions.
        let report =
            thm32_attack(model, Optimist::new(Pairing), OptimistState::new, 64, 256).unwrap();
        assert_eq!(
            report.omissions_in_run, 0,
            "{model}: Theorem 3.2 runs are omission-free"
        );
        assert!(
            report.violated_safety(),
            "{model}: expected violation, got {:?}",
            report.outcome
        );
    }
}

#[test]
fn thm33_graceful_degradation_threshold_is_at_most_one() {
    // A gracefully-degrading simulator with threshold t_O > 1 would have
    // to fully simulate under any single omission AND never leave a
    // consistent state under more. SKnO(o = 1) delivers the first half…
    let o = 1u32;
    for omitted_step in [0u64, 1, 2, 3] {
        let mut runner = OneWayRunner::builder(OneWayModel::I3, Skno::new(Pairing, o))
            .config(Skno::<Pairing>::initial(&[
                PairingState::Consumer,
                PairingState::Producer,
            ]))
            .adversary(AtMostOneStrategy::at_step(omitted_step))
            .seed(omitted_step)
            .build()
            .unwrap();
        let out = runner.run_until(100_000, |c| {
            project(c).count_state(&PairingState::Paired) == 1
        });
        assert!(
            out.is_satisfied(),
            "SKnO(1) tolerates one omission at {omitted_step}"
        );
    }
    // …and Lemma 1 shows the second half is unattainable: with more
    // omissions it does not stop in a consistent state, it breaks safety.
    let report = lemma1_attack(
        OneWayModel::I3,
        Skno::new(Pairing, o),
        SknoState::new,
        128,
        512,
    )
    .unwrap();
    assert!(report.violated_safety());
}

#[test]
fn attacks_are_deterministic() {
    let a = lemma1_attack(
        OneWayModel::I3,
        Skno::new(Pairing, 1),
        SknoState::new,
        128,
        512,
    )
    .unwrap();
    let b = lemma1_attack(
        OneWayModel::I3,
        Skno::new(Pairing, 1),
        SknoState::new,
        128,
        512,
    )
    .unwrap();
    assert_eq!(a, b, "the construction is schedule-exact, not sampled");
}

#[test]
fn attack_report_is_forensic() {
    let report = lemma1_attack(
        OneWayModel::I3,
        Skno::new(Pairing, 1),
        SknoState::new,
        128,
        512,
    )
    .unwrap();
    // 2t+2 agents, t producers, t+2 consumers.
    assert_eq!(report.consumers, report.producers + 2);
    // The plan replays each I_k plus the two redirected interactions.
    assert!(report.plan_len > report.ftt as usize);
}

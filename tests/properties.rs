//! Property-based tests (proptest) over the workspace's core invariants.

use proptest::prelude::*;

use ppfts::core::{project, Sid, Skno};
use ppfts::engine::{
    outcome, BoundedStrategy, OneWayFault, OneWayModel, OneWayRunner, TwoWayFault, TwoWayModel,
    TwoWayRunner,
};
use ppfts::population::{Configuration, Multiset, Semantics, TwoWayProtocol};
use ppfts::protocols::{Epidemic, FlockOfBirds, MaxGossip, Pairing, PairingState, Remainder};

fn pairing_state_strategy() -> impl Strategy<Value = PairingState> {
    prop_oneof![
        Just(PairingState::Paired),
        Just(PairingState::Consumer),
        Just(PairingState::Producer),
        Just(PairingState::Spent),
    ]
}

proptest! {
    /// Multisets are permutation-invariant views of configurations.
    #[test]
    fn multiset_ignores_agent_order(mut states in prop::collection::vec(0u8..5, 2..20)) {
        let a: Multiset<u8> = states.iter().cloned().collect();
        states.reverse();
        let b: Multiset<u8> = states.iter().cloned().collect();
        prop_assert_eq!(a, b);
    }

    /// Population size is invariant under any interaction in any model.
    #[test]
    fn interactions_preserve_population(
        states in prop::collection::vec(pairing_state_strategy(), 2..12),
        seed in 0u64..1000,
        steps in 1u64..300,
    ) {
        let n = states.len();
        let mut runner = TwoWayRunner::builder(TwoWayModel::T3, Pairing)
            .config(Configuration::new(states))
            .adversary(BoundedStrategy::new(0.3, 10))
            .seed(seed)
            .build()
            .unwrap();
        runner.run(steps).unwrap();
        prop_assert_eq!(runner.config().len(), n);
    }

    /// Pairing safety is a universal invariant of the native protocol in
    /// the *fault-free* two-way model: no schedule can mint extra `cs`.
    #[test]
    fn pairing_safety_under_any_tw_schedule(
        consumers in 0usize..6,
        producers in 0usize..6,
        seed in 0u64..500,
    ) {
        prop_assume!(consumers + producers >= 2);
        let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, Pairing)
            .config(Pairing::initial(consumers, producers))
            .seed(seed)
            .build()
            .unwrap();
        for _ in 0..400 {
            runner.step().unwrap();
            prop_assert!(Pairing::paired_count(runner.config()) <= producers);
        }
    }

    /// The flock protocol conserves the total count under every meeting.
    #[test]
    fn flock_conserves_total_count(
        k in 1u32..8,
        u in 0u32..8,
        v in 0u32..8,
        du in any::<bool>(),
        dv in any::<bool>(),
    ) {
        let flock = FlockOfBirds::new(k);
        let a = ppfts::protocols::FlockState { count: u.min(k), detected: du };
        let b = ppfts::protocols::FlockState { count: v.min(k), detected: dv };
        let (a2, b2) = flock.delta(&a, &b);
        prop_assert_eq!(a2.count + b2.count, a.count + b.count);
        prop_assert!(a2.count <= k);
    }

    /// Epidemic computes OR on every input vector (native, sampled
    /// schedules).
    #[test]
    fn epidemic_matches_oracle(
        inputs in prop::collection::vec(any::<bool>(), 2..10),
        seed in 0u64..200,
    ) {
        let expected = Epidemic.expected(&inputs);
        let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, Epidemic)
            .config(Epidemic.initial_configuration(&inputs))
            .seed(seed)
            .build()
            .unwrap();
        let out = runner.run_until(200_000, |c| {
            ppfts::population::unanimous_output(c, |q| *q) == Some(expected)
        });
        prop_assert!(out.is_satisfied());
    }

    /// Remainder's merge dynamics conserve the sum modulo m.
    #[test]
    fn remainder_conserves_sum_mod_m(
        m in 2u32..9,
        inputs in prop::collection::vec(0u32..40, 2..10),
        seed in 0u64..200,
        steps in 1u64..500,
    ) {
        let p = Remainder::new(m, 0);
        let total: u64 = inputs.iter().map(|&v| v as u64).sum();
        let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, p)
            .config(p.initial_configuration(&inputs))
            .seed(seed)
            .build()
            .unwrap();
        runner.run(steps).unwrap();
        let sum_now: u64 = runner
            .config()
            .as_slice()
            .iter()
            .map(|q| q.value.unwrap_or(0) as u64)
            .sum();
        prop_assert_eq!(sum_now % m as u64, total % m as u64);
    }

    /// One-way outcomes: omissive or not, the *starter* state in IO is
    /// never modified (the starter is unaware by definition).
    #[test]
    fn io_starter_is_never_touched(s in any::<u64>(), r in any::<u64>()) {
        struct Gossip;
        impl ppfts::engine::OneWayProgram for Gossip {
            type State = u64;
            fn on_proximity(&self, q: &u64) -> u64 { q + 1 } // deliberately non-identity
            fn on_receive(&self, s: &u64, r: &u64) -> u64 { (*s).max(*r) }
        }
        let (s2, _r2) = outcome::one_way(OneWayModel::Io, &Gossip, &s, &r, OneWayFault::None).unwrap();
        prop_assert_eq!(s2, s);
    }

    /// T1 omissions never *invent* information: each side's new state is
    /// either its old state or the fault-free update.
    #[test]
    fn t1_omissions_only_suppress(
        s in pairing_state_strategy(),
        r in pairing_state_strategy(),
    ) {
        let (fs, fr) = Pairing.delta(&s, &r);
        for fault in [TwoWayFault::Starter, TwoWayFault::Reactor] {
            let (s2, r2) = outcome::two_way(TwoWayModel::T1, &Pairing, &s, &r, fault).unwrap();
            prop_assert!(s2 == s || s2 == fs);
            prop_assert!(r2 == r || r2 == fr);
        }
    }

    /// SKnO within its budget preserves the simulated-population multiset
    /// semantics: the number of Paired agents never exceeds producers.
    #[test]
    fn skno_safety_sampled(
        consumers in 1usize..4,
        producers in 1usize..4,
        seed in 0u64..60,
    ) {
        let o = 1;
        let sims: Vec<PairingState> = Pairing::initial(consumers, producers)
            .as_slice()
            .to_vec();
        let mut runner = OneWayRunner::builder(OneWayModel::I3, Skno::new(Pairing, o))
            .config(Skno::<Pairing>::initial(&sims))
            .adversary(BoundedStrategy::new(0.05, o as u64))
            .seed(seed)
            .build()
            .unwrap();
        for _ in 0..2_000 {
            runner.step().unwrap();
            let paired = project(runner.config()).count_state(&PairingState::Paired);
            prop_assert!(paired <= producers);
        }
    }

    /// SID simulated max-gossip never exceeds the true maximum.
    #[test]
    fn sid_gossip_never_overshoots(
        inputs in prop::collection::vec(0u64..1000, 2..8),
        seed in 0u64..60,
    ) {
        let true_max = MaxGossip.expected(&inputs);
        let mut runner = OneWayRunner::builder(OneWayModel::Io, Sid::new(MaxGossip))
            .config(Sid::<MaxGossip>::initial(&inputs))
            .seed(seed)
            .build()
            .unwrap();
        runner.run(3_000).unwrap();
        let seen_max = project(runner.config())
            .as_slice()
            .iter()
            .copied()
            .max()
            .unwrap();
        prop_assert!(seen_max <= true_max);
    }
}

/// The paper's premise, demonstrated: running the Pairing protocol
/// *natively* on the omissive two-way model T3 violates safety — a
/// reactor-side omission turns a consumer into `cs` without spending the
/// producer. This is why simulators (and their impossibility results)
/// matter at all. Deterministic companion to the proptest suite above.
#[test]
fn native_pairing_on_t3_is_unsafe() {
    use ppfts::engine::{Planned, SidePolicy};
    use ppfts::population::Interaction;

    // One consumer meets one producer; the reactor side omits.
    let mut runner = TwoWayRunner::builder(TwoWayModel::T3, Pairing)
        .config(Pairing::initial(1, 1))
        .side_policy(SidePolicy::Always(TwoWayFault::Reactor))
        .build()
        .unwrap();
    runner
        .apply_planned([Planned::new(
            Interaction::new(0, 1).unwrap(),
            TwoWayFault::Reactor,
        )])
        .unwrap();
    // The consumer is irrevocably paired…
    assert_eq!(Pairing::paired_count(runner.config()), 1);
    // …but the producer was never spent: it can pair a *second* consumer.
    assert_eq!(
        runner.config().as_slice()[1],
        PairingState::Producer,
        "producer survived the omissive pairing"
    );
}

proptest! {
    /// Theorem 4.5 quantifies over *every* two-way protocol. Generate a
    /// random transition table, run SID on it in IO, and verify the
    /// simulation machinery end-to-end: events extract, the matching is
    /// exact, and the derived execution replays.
    #[test]
    fn sid_simulates_random_protocols(
        rules in prop::collection::vec((0u8..4, 0u8..4, 0u8..4, 0u8..4), 0..12),
        initials in prop::collection::vec(0u8..4, 2..6),
        seed in 0u64..50,
    ) {
        use ppfts::core::{build_matching, extract_events, verify_derived_execution, Sid};
        use ppfts::population::TableProtocol;

        let mut builder = TableProtocol::builder(vec![0u8, 1, 2, 3]);
        for (a, b, x, y) in rules {
            builder = builder.rule((a, b), (x, y));
        }
        let protocol = builder.build();

        let mut runner = OneWayRunner::builder(OneWayModel::Io, Sid::new(protocol.clone()))
            .config(Sid::<TableProtocol<u8>>::initial(&initials))
            .record_trace(true)
            .seed(seed)
            .build()
            .unwrap();
        let initial = project(runner.config());
        runner.run(4_000).unwrap();
        let events = extract_events(&runner.take_trace().unwrap());
        let matching = build_matching(&protocol, &events).unwrap();
        let derived = verify_derived_execution(&protocol, &initial, &events, &matching).unwrap();
        prop_assert_eq!(derived.len(), matching.len());
        // In-flight handshake halves are bounded by the population size.
        prop_assert!(matching.unmatched.len() <= initials.len());
    }

    /// Same property for SKnO under IT (Corollary 1): anonymous matching
    /// and multiset replay must hold for arbitrary protocols too.
    #[test]
    fn skno_simulates_random_protocols(
        rules in prop::collection::vec((0u8..3, 0u8..3, 0u8..3, 0u8..3), 0..8),
        initials in prop::collection::vec(0u8..3, 2..5),
        seed in 0u64..30,
    ) {
        use ppfts::core::{build_matching, extract_events, verify_derived_execution, Skno};
        use ppfts::population::TableProtocol;

        let mut builder = TableProtocol::builder(vec![0u8, 1, 2]);
        for (a, b, x, y) in rules {
            builder = builder.rule((a, b), (x, y));
        }
        let protocol = builder.build();

        let mut runner = OneWayRunner::builder(OneWayModel::It, Skno::new(protocol.clone(), 0))
            .config(Skno::<TableProtocol<u8>>::initial(&initials))
            .record_trace(true)
            .seed(seed)
            .build()
            .unwrap();
        let initial = project(runner.config());
        runner.run(4_000).unwrap();
        let events = extract_events(&runner.take_trace().unwrap());
        let matching = build_matching(&protocol, &events).unwrap();
        let derived = verify_derived_execution(&protocol, &initial, &events, &matching).unwrap();
        prop_assert_eq!(derived.len(), matching.len());
    }
}

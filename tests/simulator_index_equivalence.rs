//! Indexed-simulator equivalence suite.
//!
//! PR 9 put an incremental `RunIndex` in front of `SKnO`'s per-step
//! queue census and cached the adjacency-filtering flag of `SID` /
//! `SKnO`; the scan path is kept as the reference semantics
//! (`Skno::scan_reference`). This suite certifies the contract that
//! makes the index an *optimization* rather than a semantic change:
//!
//! 1. **Bit-identity** — for any model, omission bound `o ∈ {0, 1, 2}`,
//!    adversary, complete or restricted graph, and scalar / batched /
//!    sharded execution, the indexed simulator produces the same final
//!    configuration, `RunStats`, step count, and recorded trace as the
//!    scan-path simulator from the same seed.
//! 2. **RNG position** — after the comparison point both runners are
//!    driven further on their own RNGs and must still agree, which can
//!    only hold if the first phase consumed the shared stream
//!    identically (the index makes no draws of its own).
//! 3. **`SID` / `NamedSid` fast path** — the cached filtering flag keeps
//!    the complete-graph graphical simulators bit-identical to their
//!    anonymous forms, and restricted-graph batched runs bit-identical
//!    to scalar runs.
//!
//! CI runs this suite with `PROPTEST_CASES=32` on every push; debug
//! builds additionally cross-check the index against a fresh census on
//! every reactor check (`RunIndex::assert_matches`).

use proptest::prelude::*;

use ppfts::core::{NamedSid, Sid, Skno};
use ppfts::engine::{
    AtMostOneStrategy, BoundedStrategy, FullTrace, OneWayModel, OneWayRunner, RateStrategy,
    ScriptedOmissions, StatsOnly,
};
use ppfts::population::Topology;
use ppfts::protocols::Epidemic;

fn one_way_model_strategy() -> impl Strategy<Value = OneWayModel> {
    prop_oneof![
        Just(OneWayModel::It),
        Just(OneWayModel::Io),
        Just(OneWayModel::I1),
        Just(OneWayModel::I2),
        Just(OneWayModel::I3),
        Just(OneWayModel::I4),
    ]
}

/// A restricted (non-complete) topology for the graphical sweep.
fn restricted_topology(n: usize, pick: u8, seed: u64) -> Topology {
    match pick % 3 {
        0 => Topology::ring(n).unwrap(),
        1 => Topology::star(n).unwrap(),
        _ => {
            let d = if n.is_multiple_of(2) { 3 } else { 2 };
            Topology::random_regular(n, d, seed).unwrap()
        }
    }
}

/// Finishes a built `SKnO` runner: executes `steps` per the `exec`
/// pick, snapshots the phase-1 observables, then runs a scalar coda so
/// the returned phase-2 configuration certifies the phase-1 RNG
/// position.
macro_rules! drive_skno {
    ($builder:expr, $steps:expr, $exec:expr, $batch:expr) => {{
        let mut r = $builder.build().unwrap();
        match $exec {
            0 => r.run($steps).unwrap(),
            1 => r.run_batched($steps, $batch).unwrap(),
            _ => r.run_sharded($steps, $batch).unwrap(),
        }
        let phase1 = (r.config().clone(), r.stats(), r.steps(), r.take_trace());
        r.run(67).unwrap();
        (phase1.0, phase1.1, phase1.2, phase1.3, r.config().clone())
    }};
}

/// Adds the sweep's adversary pick to a builder, then drives it.
macro_rules! drive_skno_with_adversary {
    ($builder:expr, $adv:expr, $rate:expr, $o:expr, $at:expr, $steps:expr, $exec:expr, $batch:expr) => {
        match $adv {
            0 => drive_skno!(
                $builder.adversary(BoundedStrategy::new($rate as f64 / 100.0, $o as u64)),
                $steps,
                $exec,
                $batch
            ),
            1 => drive_skno!(
                $builder.adversary(RateStrategy::new($rate as f64 / 100.0)),
                $steps,
                $exec,
                $batch
            ),
            2 => drive_skno!(
                $builder.adversary(AtMostOneStrategy::at_step($at)),
                $steps,
                $exec,
                $batch
            ),
            _ => drive_skno!(
                $builder.adversary(ScriptedOmissions::new([2, 3, 40, 151])),
                $steps,
                $exec,
                $batch
            ),
        }
    };
}

proptest! {
    /// The tentpole contract: indexed `SKnO` ≡ scan-path `SKnO`
    /// bit-for-bit — configurations, stats, steps, traces, and RNG
    /// position — across models, omission bounds, adversaries,
    /// anonymous/graphical instances, and scalar/batched/sharded
    /// execution. The adversary sweep covers both RNG-drawing and
    /// deterministic deciders, so batched runs exercise the interleaved
    /// *and* the bulk pair-drawing paths.
    #[test]
    fn indexed_skno_equals_scan_reference_bitwise(
        model in one_way_model_strategy(),
        o in 0u32..=2,
        n in 4usize..12,
        graphical in 0u8..5,
        gseed in 0u64..50,
        adv in 0u8..4,
        rate in 1u32..=20,
        at in 0u64..400,
        seed in 0u64..10_000,
        steps in 0u64..400,
        exec in 0u8..3,
        batch in 1u64..200,
    ) {
        // graphical: 0-1 anonymous, 2 complete graph, 3-4 restricted.
        let topology = match graphical {
            0 | 1 => None,
            2 => Some(Topology::complete(n).unwrap()),
            g => Some(restricted_topology(n, g, gseed)),
        };
        let n = topology.as_ref().map_or(n, Topology::len);
        let sims: Vec<bool> = (0..n).map(|i| i == 0).collect();
        // Sharded runs need a passive sink and worker threads; the
        // others record full traces so divergence points at the draw.
        let shards = if exec == 2 { 3 } else { 1 };
        let record = exec != 2;
        macro_rules! make {
            ($indexed:expr) => {{
                let skno = match &topology {
                    Some(t) => Skno::graphical(Epidemic, o, t.clone()),
                    None => Skno::new(Epidemic, o),
                };
                let skno = if $indexed { skno } else { skno.scan_reference() };
                let sink = if record { FullTrace::new() } else { FullTrace::disabled() };
                let builder = OneWayRunner::builder(model, skno)
                    .config(Skno::<Epidemic>::initial(&sims))
                    .shards(shards)
                    .seed(seed)
                    .trace_sink(sink);
                match &topology {
                    Some(t) => drive_skno_with_adversary!(
                        builder.topology(t.clone()), adv, rate, o, at, steps, exec, batch
                    ),
                    None => drive_skno_with_adversary!(
                        builder, adv, rate, o, at, steps, exec, batch
                    ),
                }
            }};
        }
        let indexed = make!(true);
        let scan = make!(false);
        prop_assert_eq!(indexed.0.as_slice(), scan.0.as_slice(), "final configuration");
        prop_assert_eq!(indexed.1, scan.1, "RunStats");
        prop_assert_eq!(indexed.2, scan.2, "step count");
        prop_assert_eq!(indexed.3, scan.3, "traces");
        prop_assert_eq!(indexed.4.as_slice(), scan.4.as_slice(),
            "post-phase configurations diverged: phase 1 left different RNG positions");
    }

    /// `SID` complete-graph graphical ≡ anonymous, bit-for-bit with
    /// traces and RNG continuation — the cached filtering flag takes
    /// the short-circuit on both sides of this comparison, and the
    /// result must still match the pre-cache contract.
    #[test]
    fn sid_complete_graphical_equals_anonymous_bitwise(
        model in one_way_model_strategy(),
        n in 2usize..10,
        rate in 0u32..=30,
        seed in 0u64..10_000,
        steps in 0u64..300,
    ) {
        let sims: Vec<bool> = (0..n).map(|i| i == 0).collect();
        macro_rules! drive_sid {
            ($builder:expr) => {{
                let mut r = $builder
                    .adversary(RateStrategy::new(rate as f64 / 100.0))
                    .seed(seed)
                    .trace_sink(FullTrace::new())
                    .build()
                    .unwrap();
                r.run(steps).unwrap();
                let trace = r.take_trace();
                let phase1 = r.config().clone();
                r.run(53).unwrap();
                (phase1, r.stats(), trace, r.config().clone())
            }};
        }
        let anon = drive_sid!(
            OneWayRunner::builder(model, Sid::new(Epidemic)).config(Sid::<Epidemic>::initial(&sims))
        );
        let graph = drive_sid!(
            OneWayRunner::builder(model, Sid::graphical(Epidemic, Topology::complete(n).unwrap()))
                .config(Sid::<Epidemic>::initial(&sims))
                .topology(Topology::complete(n).unwrap())
        );
        prop_assert_eq!(anon.0.as_slice(), graph.0.as_slice());
        prop_assert_eq!(anon.1, graph.1);
        prop_assert_eq!(anon.2, graph.2, "traces diverged");
        prop_assert_eq!(anon.3.as_slice(), graph.3.as_slice(), "RNG positions diverged");
    }

    /// Restricted-graph `SID` (the filtering == true path) stays
    /// bit-identical between scalar and batched execution.
    #[test]
    fn sid_restricted_batched_equals_scalar(
        pick in 0u8..3,
        n in 4usize..12,
        gseed in 0u64..50,
        rate in 0u32..=30,
        seed in 0u64..10_000,
        steps in 0u64..300,
        batch in 1u64..96,
    ) {
        let topology = restricted_topology(n, pick, gseed);
        let n = topology.len();
        let sims: Vec<bool> = (0..n).map(|i| i == 0).collect();
        let build = || OneWayRunner::builder(OneWayModel::Io, Sid::graphical(Epidemic, topology.clone()))
            .config(Sid::<Epidemic>::initial(&sims))
            .topology(topology.clone())
            .adversary(RateStrategy::new(rate as f64 / 100.0))
            .seed(seed)
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
        let scalar = {
            let mut r = build();
            r.run(steps).unwrap();
            (r.config().clone(), r.stats(), r.steps())
        };
        let mut batched = build();
        batched.run_batched(steps, batch).unwrap();
        prop_assert_eq!((batched.config().clone(), batched.stats(), batched.steps()), scalar);
    }

    /// `NamedSid` keeps its contract too: the graphical complete-graph
    /// instance matches the anonymous one (its inner `SID` is always
    /// topology-free, so both take the cached fast path).
    #[test]
    fn named_sid_complete_graphical_equals_anonymous(
        n in 2usize..8,
        rate in 0u32..=20,
        seed in 0u64..10_000,
        steps in 0u64..300,
    ) {
        let sims: Vec<bool> = (0..n).map(|i| i == 0).collect();
        macro_rules! drive_named {
            ($builder:expr) => {{
                let mut r = $builder
                    .adversary(RateStrategy::new(rate as f64 / 100.0))
                    .seed(seed)
                    .trace_sink(StatsOnly)
                    .build()
                    .unwrap();
                r.run(steps).unwrap();
                (r.config().clone(), r.stats())
            }};
        }
        let anon = drive_named!(
            OneWayRunner::builder(OneWayModel::Io, NamedSid::new(Epidemic, n))
                .config(NamedSid::<Epidemic>::initial(&sims))
        );
        let graph = drive_named!(
            OneWayRunner::builder(
                OneWayModel::Io,
                NamedSid::graphical(Epidemic, Topology::complete(n).unwrap()),
            )
            .config(NamedSid::<Epidemic>::initial(&sims))
            .topology(Topology::complete(n).unwrap())
        );
        prop_assert_eq!(anon.0.as_slice(), graph.0.as_slice());
        prop_assert_eq!(anon.1, graph.1);
    }
}

#[test]
fn skno_is_indexed_by_default_and_scan_reference_opts_out() {
    let skno = Skno::new(Epidemic, 1);
    assert!(skno.is_indexed());
    assert!(!skno.scan_reference().is_indexed());
}

//! Sharded ↔ batched equivalence: for any seed, protocol, model,
//! omission strategy, topology, batch size and shard count,
//! `run_sharded(n, b)` must be *bit-identical* to `run_batched(n, b)` —
//! same final `Configuration`, same `RunStats`, same step count, same
//! RNG position — because the sharded path draws the identical
//! (interaction, fault) batch sequentially and only parallelizes the
//! *application*, over agent-disjoint levels with a deterministic merge.
//!
//! This is the contract that lets experiment harnesses turn on
//! `builder.shards(k)` without changing any measured dynamics: the
//! sequential batched path (itself certified against scalar `run` in
//! `tests/batched_equivalence.rs`) stays the reference semantics.
//!
//! The suite also pins the *rejection* contract: assemblies that can
//! never shard — count-backed populations, programs that declare
//! `shard_safe() == false` — fail at build time with the typed
//! [`EngineError::ShardIncompatible`], not at run time.
//!
//! RNG-position equality is certified by *continuation*: after the
//! compared runs, both runners take the same number of additional
//! scalar steps and must still agree bit-for-bit. Equal continuations
//! from equal states imply equal RNG streams.
//!
//! CI runs this suite with `PROPTEST_CASES=32` on every push, plus a
//! release-mode 1-vs-8-shard determinism leg.

use proptest::prelude::*;

use ppfts::core::Skno;
use ppfts::engine::{
    BoundedStrategy, EngineError, OneWayModel, OneWayProgram, OneWayRunner, RateStrategy, RunStats,
    StatsOnly, TopologyScheduler, TwoWayModel, TwoWayRunner,
};
use ppfts::population::{Configuration, CountConfiguration, Topology};
use ppfts::protocols::{MaxGossip, Pairing, PairingState};

/// One-way epidemic: the reactor catches whatever the starter carries.
struct Or;
impl OneWayProgram for Or {
    type State = bool;
    fn on_receive(&self, s: &bool, r: &bool) -> bool {
        *s || *r
    }
}

fn one_way_model_strategy() -> impl Strategy<Value = OneWayModel> {
    prop_oneof![
        Just(OneWayModel::It),
        Just(OneWayModel::Io),
        Just(OneWayModel::I1),
        Just(OneWayModel::I2),
        Just(OneWayModel::I3),
        Just(OneWayModel::I4),
    ]
}

fn two_way_model_strategy() -> impl Strategy<Value = TwoWayModel> {
    prop_oneof![
        Just(TwoWayModel::Tw),
        Just(TwoWayModel::T1),
        Just(TwoWayModel::T2),
        Just(TwoWayModel::T3),
    ]
}

/// The ISSUE-mandated shard counts: degenerate, minimal, and oversubscribed
/// (8 workers on this suite's small populations exceeds the widest level,
/// exercising the worker-count clamp).
fn shard_count_strategy() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(2usize), Just(8usize)]
}

/// A topology of `n` vertices across every generator family, complete
/// and restricted. `n` must make each family constructible (`n >= 4`,
/// even, for the 3-regular graph).
fn topology_of(n: usize, pick: u8, seed: u64) -> Topology {
    match pick % 4 {
        0 => Topology::complete(n).unwrap(),
        1 => Topology::ring(n).unwrap(),
        2 => Topology::star(n).unwrap(),
        _ => Topology::random_regular(n, 3, seed).unwrap(),
    }
}

type Snapshot<Q> = (Configuration<Q>, RunStats, u64);

fn assert_equiv<Q: ppfts::population::State + std::fmt::Debug>(
    batched: &Snapshot<Q>,
    sharded: &Snapshot<Q>,
    label: &str,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(
        batched.0.as_slice(),
        sharded.0.as_slice(),
        "configuration diverged: {}",
        label
    );
    prop_assert_eq!(batched.1, sharded.1, "stats diverged: {}", label);
    prop_assert_eq!(batched.2, sharded.2, "step count diverged: {}", label);
    Ok(())
}

proptest! {
    /// One-way epidemic under every one-way model with a rate adversary,
    /// at every mandated shard count — then both runners continue with
    /// scalar steps, certifying the RNG stream position too.
    #[test]
    fn one_way_epidemic_sharded_equals_batched(
        model in one_way_model_strategy(),
        infected in prop::collection::vec(any::<bool>(), 2..24),
        rate in 0u32..=100,
        seed in 0u64..10_000,
        steps in 0u64..600,
        batch in 1u64..300,
        shards in shard_count_strategy(),
    ) {
        let build = |shards: usize| OneWayRunner::builder(model, Or)
            .config(Configuration::new(infected.clone()))
            .adversary(RateStrategy::new(rate as f64 / 100.0))
            .seed(seed)
            .trace_sink(StatsOnly)
            .shards(shards)
            .build()
            .unwrap();
        let mut reference = build(1);
        reference.run_batched(steps, batch).unwrap();
        let mut subject = build(shards);
        subject.run_sharded(steps, batch).unwrap();
        assert_equiv(
            &(reference.config().clone(), reference.stats(), reference.steps()),
            &(subject.config().clone(), subject.stats(), subject.steps()),
            "one-way epidemic",
        )?;
        // Continuation: equal states AND equal RNG positions keep the
        // two runs in lockstep through further *scalar* stepping.
        reference.run(64).unwrap();
        subject.run(64).unwrap();
        assert_equiv(
            &(reference.config().clone(), reference.stats(), reference.steps()),
            &(subject.config().clone(), subject.stats(), subject.steps()),
            "epidemic continuation",
        )?;
    }

    /// The SKnO simulator (heavy token-carrying states, hand-written
    /// in-place hooks) under the omission-detecting models I3/I4 with a
    /// bounded adversary: the workload the sharded path exists for.
    #[test]
    fn skno_sharded_equals_batched(
        consumers in 1usize..6,
        producers in 1usize..6,
        o in 0u32..3,
        i4 in any::<bool>(),
        seed in 0u64..10_000,
        steps in 0u64..400,
        batch in 1u64..400,
        shards in shard_count_strategy(),
    ) {
        let model = if i4 { OneWayModel::I4 } else { OneWayModel::I3 };
        let sims: Vec<PairingState> = Pairing::initial(consumers, producers)
            .as_slice()
            .to_vec();
        let build = |shards: usize| OneWayRunner::builder(model, Skno::new(Pairing, o))
            .config(Skno::<Pairing>::initial(&sims))
            .adversary(BoundedStrategy::new(0.05, o as u64))
            .seed(seed)
            .trace_sink(StatsOnly)
            .shards(shards)
            .build()
            .unwrap();
        let mut reference = build(1);
        reference.run_batched(steps, batch).unwrap();
        let mut subject = build(shards);
        subject.run_sharded(steps, batch).unwrap();
        prop_assert_eq!(reference.config().as_slice(), subject.config().as_slice());
        prop_assert_eq!(reference.stats(), subject.stats());
        prop_assert_eq!(reference.steps(), subject.steps());
    }

    /// Graphical SKnO on restricted and complete topologies: the
    /// scheduler deals only graph arcs, the simulator carries
    /// vertex-addressed states, and sharding must still be invisible.
    #[test]
    fn graphical_skno_on_topologies_sharded_equals_batched(
        half in 2usize..7,
        pick in any::<u8>(),
        topo_seed in 0u64..1_000,
        o in 0u32..3,
        seed in 0u64..10_000,
        steps in 0u64..300,
        batch in 1u64..300,
        shards in shard_count_strategy(),
    ) {
        let n = half * 2;
        let topology = topology_of(n, pick, topo_seed);
        let sims: Vec<PairingState> = Pairing::initial(n / 2, n - n / 2)
            .as_slice()
            .to_vec();
        let build = |shards: usize| OneWayRunner::builder(
                OneWayModel::I3,
                Skno::graphical(Pairing, o, topology.clone()),
            )
            .config(Skno::<Pairing>::initial(&sims))
            .scheduler(TopologyScheduler::new(topology.clone()))
            .adversary(BoundedStrategy::new(0.05, o as u64))
            .seed(seed)
            .trace_sink(StatsOnly)
            .shards(shards)
            .build()
            .unwrap();
        let mut reference = build(1);
        reference.run_batched(steps, batch).unwrap();
        let mut subject = build(shards);
        subject.run_sharded(steps, batch).unwrap();
        prop_assert_eq!(reference.config().as_slice(), subject.config().as_slice());
        prop_assert_eq!(reference.stats(), subject.stats());
        prop_assert_eq!(reference.steps(), subject.steps());
    }

    /// Two-way protocols under every two-way model with a rate
    /// adversary: the sharded path also covers the two-way runner.
    #[test]
    fn two_way_gossip_sharded_equals_batched(
        model in two_way_model_strategy(),
        values in prop::collection::vec(0u64..50, 2..16),
        rate in 0u32..=100,
        seed in 0u64..10_000,
        steps in 0u64..400,
        batch in 1u64..200,
        shards in shard_count_strategy(),
    ) {
        let build = |shards: usize| TwoWayRunner::builder(model, MaxGossip)
            .config(Configuration::new(values.clone()))
            .adversary(RateStrategy::new(rate as f64 / 100.0))
            .seed(seed)
            .trace_sink(StatsOnly)
            .shards(shards)
            .build()
            .unwrap();
        let mut reference = build(1);
        reference.run_batched(steps, batch).unwrap();
        let mut subject = build(shards);
        subject.run_sharded(steps, batch).unwrap();
        prop_assert_eq!(reference.config().as_slice(), subject.config().as_slice());
        prop_assert_eq!(reference.stats(), subject.stats());
        prop_assert_eq!(reference.steps(), subject.steps());
        // Continuation through the *sharded* path this time: a second
        // sharded leg from the reached state must also agree.
        reference.run_batched(steps, batch).unwrap();
        subject.run_sharded(steps, batch).unwrap();
        prop_assert_eq!(reference.config().as_slice(), subject.config().as_slice());
        prop_assert_eq!(reference.stats(), subject.stats());
    }

    /// The predicate-driven driver: `run_sharded_until` stops at the
    /// same step, with the same outcome and state, as
    /// `run_batched_until` — predicates fire at identical batch
    /// boundaries because the underlying streams are identical.
    #[test]
    fn run_sharded_until_matches_run_batched_until(
        n in 3usize..24,
        rate in 0u32..=50,
        seed in 0u64..10_000,
        max_steps in 0u64..4_000,
        batch in 1u64..300,
        shards in shard_count_strategy(),
    ) {
        let mut infected = vec![false; n];
        infected[0] = true;
        let build = |shards: usize| OneWayRunner::builder(OneWayModel::I3, Or)
            .config(Configuration::new(infected.clone()))
            .adversary(RateStrategy::new(rate as f64 / 100.0))
            .seed(seed)
            .trace_sink(StatsOnly)
            .shards(shards)
            .build()
            .unwrap();
        let all = |c: &Configuration<bool>| c.as_slice().iter().all(|b| *b);
        let mut reference = build(1);
        let ref_outcome = reference.run_batched_until(max_steps, batch, all);
        let mut subject = build(shards);
        let sub_outcome = subject.run_sharded_until(max_steps, batch, all);
        prop_assert_eq!(ref_outcome, sub_outcome);
        prop_assert_eq!(reference.config().as_slice(), subject.config().as_slice());
        prop_assert_eq!(reference.stats(), subject.stats());
        prop_assert_eq!(reference.steps(), subject.steps());
    }
}

/// Count-backed populations have no per-agent state slab to partition:
/// `shards > 1` is a *build-time* type error, not a run-time surprise.
#[test]
fn sharding_rejects_count_backend_at_build() {
    let built = OneWayRunner::builder(OneWayModel::Io, Or)
        .population(CountConfiguration::from_groups([(true, 2), (false, 14)]))
        .shards(2)
        .build();
    assert!(matches!(
        built.err(),
        Some(EngineError::ShardIncompatible { .. })
    ));
    // The same assembly with shards(1) builds fine — nothing to race.
    assert!(OneWayRunner::builder(OneWayModel::Io, Or)
        .population(CountConfiguration::from_groups([(true, 2), (false, 14)]))
        .shards(1)
        .build()
        .is_ok());
}

/// Programs that opt out of sharding (interior mutability in their
/// in-place hooks) are rejected at build time with the typed error.
#[test]
fn sharding_rejects_shard_unsafe_programs_at_build() {
    struct Counting(std::cell::Cell<u64>);
    impl OneWayProgram for Counting {
        type State = bool;
        fn on_receive(&self, s: &bool, r: &bool) -> bool {
            self.0.set(self.0.get() + 1);
            *s || *r
        }
        fn shard_safe(&self) -> bool {
            false
        }
    }
    let built = OneWayRunner::builder(OneWayModel::Io, Counting(std::cell::Cell::new(0)))
        .config(Configuration::new(vec![true, false, false]))
        .shards(8)
        .build();
    let err = built.err().unwrap();
    assert!(matches!(err, EngineError::ShardIncompatible { .. }));
    // The error message tells the user what to do instead.
    assert!(err.to_string().contains("shards(1)"), "unhelpful: {err}");
}

/// `shards(0)` is a caller bug, caught eagerly at the builder.
#[test]
#[should_panic(expected = "shard")]
fn zero_shards_panics_at_builder() {
    let _ = OneWayRunner::builder(OneWayModel::Io, Or)
        .config(Configuration::new(vec![true, false]))
        .shards(0);
}

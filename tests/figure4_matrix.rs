//! Programmatic reproduction of the paper's Figure 4: the map of results.
//!
//! Figure 4 colours, for each interaction model and each assumption
//! column, whether two-way simulation is possible (green) or impossible
//! (red). This test reconstructs the matrix from *executions*: green
//! cells are witnessed by a simulator run passing the Pairing audit, red
//! cells by an attack construction producing the predicted violation (or
//! the candidate's provable stall). The resulting matrix is compared
//! against the paper's.

use ppfts::core::{project, NamedSid, Sid, Skno, SknoState};
use ppfts::engine::{BoundedStrategy, Model, OneWayModel, OneWayRunner};
use ppfts::protocols::{Pairing, PairingState};
use ppfts::verify::{
    audit_pairing, lemma1_attack, no1_resilience, thm32_attack, Optimist, OptimistState,
};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Cell {
    Possible,
    Impossible,
    OpenOrUntested,
}

fn pairing_sims(c: usize, p: usize) -> Vec<PairingState> {
    Pairing::initial(c, p).as_slice().to_vec()
}

/// Column "infinite memory, no further assumptions": impossibility in
/// every omissive model (Thm 3.1 / 3.2); possibility is out of scope for
/// the fault-free bases here (they need IDs or n — see other columns;
/// TW trivially simulates itself).
fn no_assumptions(model: Model) -> Cell {
    match model {
        Model::TwoWay(m) if !m.allows_omissions() => Cell::Possible, // TW runs TW
        Model::OneWay(OneWayModel::I3) | Model::OneWay(OneWayModel::I4) => {
            // Witness: Lemma 1 breaks SKnO once omissions exceed any
            // fixed budget — without knowledge assumptions nothing works.
            let Model::OneWay(m) = model else {
                unreachable!()
            };
            let report = lemma1_attack(m, Skno::new(Pairing, 1), SknoState::new, 128, 512).unwrap();
            assert!(report.violated_safety());
            Cell::Impossible
        }
        Model::OneWay(OneWayModel::I1) | Model::OneWay(OneWayModel::I2) => {
            let Model::OneWay(m) = model else {
                unreachable!()
            };
            // Dichotomy of Thm 3.2, both horns executable.
            let skno_stalls =
                !no1_resilience(m, &Skno::new(Pairing, 1), SknoState::new, 4, 3_000).is_empty();
            let optimist_unsafe =
                thm32_attack(m, Optimist::new(Pairing), OptimistState::new, 64, 256)
                    .unwrap()
                    .violated_safety();
            assert!(skno_stalls && optimist_unsafe);
            Cell::Impossible
        }
        // T1–T3: impossibility (Thm 3.1). Our executable witness lives in
        // the one-way fragment; the two-way claim follows a fortiori via
        // the hierarchy (T-models embed the same construction).
        Model::TwoWay(_) => Cell::Impossible,
        // IT/IO without assumptions: strictly weaker than TW with constant
        // memory by [4]; simulation needs the resources of the other
        // columns. Marked untested here (the paper's Figure 4 colours
        // these via Corollary 1 / Thm 4.5 columns instead).
        Model::OneWay(_) => Cell::OpenOrUntested,
    }
}

/// Column "knowledge of (a bound on) omissions": SKnO works in I3/I4
/// (Thm 4.1), IT via o = 0 (Cor 1); still impossible in I1/I2 (Thm 3.2
/// holds under NO1 regardless of knowledge: the run I* is omission-free).
fn knowledge_of_omissions(model: Model) -> Cell {
    match model {
        Model::OneWay(m @ (OneWayModel::I3 | OneWayModel::I4)) => {
            let o = 2;
            let mut runner = OneWayRunner::builder(m, Skno::new(Pairing, o))
                .config(Skno::<Pairing>::initial(&pairing_sims(2, 2)))
                .adversary(BoundedStrategy::new(0.02, o as u64))
                .seed(5)
                .build()
                .unwrap();
            let report = audit_pairing(&mut runner, 1_500_000);
            assert!(report.solved(), "{m}: {:?}", report.violations);
            Cell::Possible
        }
        Model::OneWay(OneWayModel::It) => {
            // Corollary 1: o = 0.
            let mut runner = OneWayRunner::builder(OneWayModel::It, Skno::new(Pairing, 0))
                .config(Skno::<Pairing>::initial(&pairing_sims(2, 2)))
                .seed(6)
                .build()
                .unwrap();
            let report = audit_pairing(&mut runner, 1_500_000);
            assert!(report.solved());
            Cell::Possible
        }
        Model::OneWay(m @ (OneWayModel::I1 | OneWayModel::I2)) => {
            let report =
                thm32_attack(m, Optimist::new(Pairing), OptimistState::new, 64, 256).unwrap();
            assert!(report.violated_safety());
            Cell::Impossible
        }
        Model::TwoWay(m) if !m.allows_omissions() => Cell::Possible,
        // T2 with knowledge of omissions is the paper's explicitly open
        // gap ("The only gap left concerns the possibility of simulation
        // in model T2 when an upper bound ... is known").
        Model::TwoWay(_) => Cell::OpenOrUntested,
        Model::OneWay(OneWayModel::Io) => Cell::OpenOrUntested,
    }
}

/// Column "unique IDs": SID works in IO (Thm 4.5) and, IO being included
/// in IT (hierarchy), in IT too.
fn unique_ids(model: Model) -> Cell {
    match model {
        Model::OneWay(OneWayModel::Io) | Model::OneWay(OneWayModel::It) => {
            let Model::OneWay(m) = model else {
                unreachable!()
            };
            // SID is an IO program; running it under IT only adds the
            // (identity) proximity hook.
            let mut runner = OneWayRunner::builder(m, Sid::new(Pairing))
                .config(Sid::<Pairing>::initial(&pairing_sims(3, 2)))
                .seed(7)
                .build()
                .unwrap();
            let report = audit_pairing(&mut runner, 1_500_000);
            assert!(report.solved(), "{m}: {:?}", report.violations);
            Cell::Possible
        }
        Model::TwoWay(m) if !m.allows_omissions() => Cell::Possible,
        // Omissive models stay impossible: Lemma 1's construction never
        // used anonymity on the *attacked* side (the paper's Figure 4
        // keeps them red in this column).
        _ => Cell::Impossible,
    }
}

/// Column "knowledge of n": Nn + SID in IO (Thm 4.6).
fn knowledge_of_n(model: Model) -> Cell {
    match model {
        Model::OneWay(OneWayModel::Io) | Model::OneWay(OneWayModel::It) => {
            let Model::OneWay(m) = model else {
                unreachable!()
            };
            let sims = pairing_sims(2, 2);
            let mut runner = OneWayRunner::builder(m, NamedSid::new(Pairing, sims.len()))
                .config(NamedSid::<Pairing>::initial(&sims))
                .seed(8)
                .build()
                .unwrap();
            let report = audit_pairing(&mut runner, 4_000_000);
            assert!(report.solved(), "{m}: {:?}", report.violations);
            Cell::Possible
        }
        Model::TwoWay(m) if !m.allows_omissions() => Cell::Possible,
        _ => Cell::Impossible,
    }
}

#[test]
fn figure4_matrix_matches_the_paper() {
    use Cell::*;
    // Expected verdicts per (model, column), derived from Figure 4 and
    // the theorem statements; OpenOrUntested marks the paper's explicit
    // gap (T2 + omission knowledge) and cells the paper colours through
    // other columns.
    let expected: &[(Model, [Cell; 4])] = &[
        (
            Model::TwoWay(ppfts::engine::TwoWayModel::Tw),
            [Possible, Possible, Possible, Possible],
        ),
        (
            Model::TwoWay(ppfts::engine::TwoWayModel::T1),
            [Impossible, OpenOrUntested, Impossible, Impossible],
        ),
        (
            Model::TwoWay(ppfts::engine::TwoWayModel::T2),
            [Impossible, OpenOrUntested, Impossible, Impossible],
        ),
        (
            Model::TwoWay(ppfts::engine::TwoWayModel::T3),
            [Impossible, OpenOrUntested, Impossible, Impossible],
        ),
        (
            Model::OneWay(OneWayModel::It),
            [OpenOrUntested, Possible, Possible, Possible],
        ),
        (
            Model::OneWay(OneWayModel::Io),
            [OpenOrUntested, OpenOrUntested, Possible, Possible],
        ),
        (
            Model::OneWay(OneWayModel::I1),
            [Impossible, Impossible, Impossible, Impossible],
        ),
        (
            Model::OneWay(OneWayModel::I2),
            [Impossible, Impossible, Impossible, Impossible],
        ),
        (
            Model::OneWay(OneWayModel::I3),
            [Impossible, Possible, Impossible, Impossible],
        ),
        (
            Model::OneWay(OneWayModel::I4),
            [Impossible, Possible, Impossible, Impossible],
        ),
    ];

    for (model, row) in expected {
        assert_eq!(no_assumptions(*model), row[0], "{model} / no assumptions");
        assert_eq!(
            knowledge_of_omissions(*model),
            row[1],
            "{model} / knowledge of omissions"
        );
        assert_eq!(unique_ids(*model), row[2], "{model} / unique IDs");
        assert_eq!(knowledge_of_n(*model), row[3], "{model} / knowledge of n");
    }
}

#[test]
fn open_gap_t2_documented() {
    // The paper's conclusion names exactly one open cell: T2 with a known
    // omission bound. Keep it pinned so a future closing of the gap is a
    // deliberate change.
    assert_eq!(
        knowledge_of_omissions(Model::TwoWay(ppfts::engine::TwoWayModel::T2)),
        Cell::OpenOrUntested
    );
}

#[test]
fn possibility_witnesses_leave_correct_final_states() {
    // Sanity: a green cell's witness ends with the exact stable counts.
    let sims = pairing_sims(3, 2);
    let mut runner = OneWayRunner::builder(OneWayModel::Io, Sid::new(Pairing))
        .config(Sid::<Pairing>::initial(&sims))
        .seed(9)
        .build()
        .unwrap();
    let _ = audit_pairing(&mut runner, 1_500_000);
    let proj = project(runner.config());
    assert_eq!(proj.count_state(&PairingState::Paired), 2);
    assert_eq!(proj.count_state(&PairingState::Spent), 2);
    assert_eq!(proj.count_state(&PairingState::Consumer), 1);
}

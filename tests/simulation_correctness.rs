//! End-to-end correctness: every simulator × every payload protocol.
//!
//! The paper's positive results (Theorems 4.1, 4.5, 4.6, Corollary 1)
//! promise that the wrapped protocol stabilizes to the same value it
//! would compute natively. These tests drive each simulator on each
//! computing payload and compare against the `Semantics::expected`
//! oracle.

use ppfts::core::{project, NamedSid, Sid, Skno};
use ppfts::engine::{BoundedStrategy, OneWayModel, OneWayRunner};
use ppfts::population::{unanimous_output, Semantics};
use ppfts::protocols::{
    Epidemic, ExactMajority, FlockOfBirds, MajorityOpinion, MaxGossip, Pairing, PairingState,
    Remainder,
};
use ppfts::verify::audit_pairing;

macro_rules! assert_simulates {
    ($payload:expr, $inputs:expr, $runner:expr, $budget:expr) => {{
        let payload = $payload;
        let expected = payload.expected($inputs);
        let out = $runner.run_until($budget, |c| {
            unanimous_output(&project(c), |q| payload.output(q)) == Some(expected.clone())
        });
        assert!(
            out.is_satisfied(),
            "simulation did not stabilize to {:?} within {} steps",
            expected,
            $budget
        );
    }};
}

#[test]
fn sid_simulates_epidemic() {
    let inputs = vec![false, true, false, false, false];
    let mut runner = OneWayRunner::builder(OneWayModel::Io, Sid::new(Epidemic))
        .config(Sid::<Epidemic>::initial(&inputs))
        .seed(11)
        .build()
        .unwrap();
    assert_simulates!(Epidemic, &inputs, runner, 2_000_000);
}

#[test]
fn sid_simulates_exact_majority() {
    let inputs: Vec<MajorityOpinion> = [
        MajorityOpinion::X,
        MajorityOpinion::X,
        MajorityOpinion::X,
        MajorityOpinion::Y,
        MajorityOpinion::Y,
    ]
    .to_vec();
    let sims: Vec<_> = inputs.iter().map(|i| ExactMajority.encode(i)).collect();
    let mut runner = OneWayRunner::builder(OneWayModel::Io, Sid::new(ExactMajority))
        .config(Sid::<ExactMajority>::initial(&sims))
        .seed(13)
        .build()
        .unwrap();
    assert_simulates!(ExactMajority, &inputs, runner, 3_000_000);
}

#[test]
fn sid_simulates_max_gossip() {
    let inputs = vec![3u64, 14, 1, 5, 9, 2];
    let mut runner = OneWayRunner::builder(OneWayModel::Io, Sid::new(MaxGossip))
        .config(Sid::<MaxGossip>::initial(&inputs))
        .seed(17)
        .build()
        .unwrap();
    assert_simulates!(MaxGossip, &inputs, runner, 2_000_000);
}

#[test]
fn skno_simulates_epidemic_under_i3_omissions() {
    let inputs = vec![true, false, false, false];
    let o = 2;
    let mut runner = OneWayRunner::builder(OneWayModel::I3, Skno::new(Epidemic, o))
        .config(Skno::<Epidemic>::initial(&inputs))
        .adversary(BoundedStrategy::new(0.05, o as u64))
        .seed(19)
        .build()
        .unwrap();
    assert_simulates!(Epidemic, &inputs, runner, 2_000_000);
}

#[test]
fn skno_simulates_remainder_under_i4_omissions() {
    let payload = Remainder::new(3, 1);
    let inputs = vec![2u32, 1, 2, 2]; // 7 mod 3 == 1 → true
    let sims: Vec<_> = inputs.iter().map(|i| payload.encode(i)).collect();
    let o = 1;
    let mut runner = OneWayRunner::builder(OneWayModel::I4, Skno::new(payload, o))
        .config(Skno::<Remainder>::initial(&sims))
        .adversary(BoundedStrategy::new(0.05, o as u64))
        .seed(23)
        .build()
        .unwrap();
    assert_simulates!(payload, &inputs, runner, 3_000_000);
}

#[test]
fn skno_simulates_flock_threshold_in_it_corollary_1() {
    // o = 0 in the fault-free IT model is exactly Corollary 1.
    let payload = FlockOfBirds::new(3);
    let inputs = vec![true, true, false, true, false];
    let sims: Vec<_> = inputs.iter().map(|i| payload.encode(i)).collect();
    let mut runner = OneWayRunner::builder(OneWayModel::It, Skno::new(payload, 0))
        .config(Skno::<FlockOfBirds>::initial(&sims))
        .seed(29)
        .build()
        .unwrap();
    assert_simulates!(payload, &inputs, runner, 3_000_000);
}

#[test]
fn named_sid_simulates_epidemic_with_knowledge_of_n() {
    let inputs = vec![false, false, true, false, false, false];
    let mut runner = OneWayRunner::builder(OneWayModel::Io, NamedSid::new(Epidemic, inputs.len()))
        .config(NamedSid::<Epidemic>::initial(&inputs))
        .seed(31)
        .build()
        .unwrap();
    assert_simulates!(Epidemic, &inputs, runner, 5_000_000);
}

#[test]
fn pairing_audits_pass_for_all_simulators() {
    let sims: Vec<PairingState> = Pairing::initial(3, 3).as_slice().to_vec();

    let mut sid = OneWayRunner::builder(OneWayModel::Io, Sid::new(Pairing))
        .config(Sid::<Pairing>::initial(&sims))
        .seed(37)
        .build()
        .unwrap();
    let report = audit_pairing(&mut sid, 2_000_000);
    assert!(report.solved(), "SID: {:?}", report.violations);

    let o = 2;
    let mut skno = OneWayRunner::builder(OneWayModel::I3, Skno::new(Pairing, o))
        .config(Skno::<Pairing>::initial(&sims))
        .adversary(BoundedStrategy::new(0.02, o as u64))
        .seed(41)
        .build()
        .unwrap();
    let report = audit_pairing(&mut skno, 2_000_000);
    assert!(report.solved(), "SKnO: {:?}", report.violations);

    let mut named = OneWayRunner::builder(OneWayModel::Io, NamedSid::new(Pairing, sims.len()))
        .config(NamedSid::<Pairing>::initial(&sims))
        .seed(43)
        .build()
        .unwrap();
    let report = audit_pairing(&mut named, 5_000_000);
    assert!(report.solved(), "NamedSid: {:?}", report.violations);
}

#[test]
fn simulated_executions_match_native_outputs_across_seeds() {
    // The same inputs, many seeds: native TW and simulated IO must agree
    // on the stabilized output every single time.
    use ppfts::engine::{TwoWayModel, TwoWayRunner};
    let inputs = vec![false, true, false, false];
    let expected = Epidemic.expected(&inputs);
    for seed in 0..10u64 {
        let mut native = TwoWayRunner::builder(TwoWayModel::Tw, Epidemic)
            .config(Epidemic.initial_configuration(&inputs))
            .seed(seed)
            .build()
            .unwrap();
        let n_out = native.run_until(1_000_000, |c| {
            unanimous_output(c, |q| Epidemic.output(q)) == Some(expected)
        });
        assert!(n_out.is_satisfied());

        let mut sim = OneWayRunner::builder(OneWayModel::Io, Sid::new(Epidemic))
            .config(Sid::<Epidemic>::initial(&inputs))
            .seed(seed)
            .build()
            .unwrap();
        let s_out = sim.run_until(2_000_000, |c| {
            unanimous_output(&project(c), |q| Epidemic.output(q)) == Some(expected)
        });
        assert!(s_out.is_satisfied(), "seed {seed}");
    }
}

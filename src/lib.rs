//! # ppfts — fault-tolerant simulation of population protocols
//!
//! Facade crate for the `ppfts` workspace, a complete Rust reproduction
//! of *"On the Power of Weaker Pairwise Interaction: Fault-Tolerant
//! Simulation of Population Protocols"* (Di Luna, Flocchini, Izumi,
//! Izumi, Santoro, Viglietta; ICDCS 2017).
//!
//! The workspace is layered; this crate re-exports each layer under a
//! short path:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`population`] | `ppfts-population` | agents, population backends (dense + count-based), multisets, two-way protocols, semantics |
//! | [`engine`] | `ppfts-engine` | the ten interaction models, omission adversaries, schedulers, runners (scalar + batched), trace sinks, model hierarchy |
//! | [`protocols`] | `ppfts-protocols` | Pairing, epidemic, majorities, flock-of-birds, remainder, max-gossip, leader election, semilinear compiler |
//! | [`core`] | `ppfts-core` | the paper's simulators (`SKnO`, `SID`, `Nn`) and the simulation theory (events, matchings, derived executions, FTT) |
//! | [`verify`] | `ppfts-verify` | Pairing audits, exact model checking, the impossibility attacks, ablations |
//! | [`analyze`] | `ppfts-analyze` | static table lints, the exhaustive budgeted model checker, the `ppfts_analyze` gate suite |
//!
//! # Example
//!
//! ```
//! use ppfts::core::{project, Sid};
//! use ppfts::engine::{OneWayModel, OneWayRunner};
//! use ppfts::protocols::{Pairing, PairingState};
//!
//! let sims: Vec<PairingState> = Pairing::initial(2, 2).as_slice().to_vec();
//! let mut runner = OneWayRunner::builder(OneWayModel::Io, Sid::new(Pairing))
//!     .config(Sid::<Pairing>::initial(&sims))
//!     .seed(42)
//!     .build()?;
//! let out = runner.run_until(500_000, |c| {
//!     project(c).count_state(&PairingState::Paired) == 2
//! });
//! assert!(out.is_satisfied());
//! # Ok::<(), ppfts::engine::EngineError>(())
//! ```
//!
//! See `README.md` for the tour, `DESIGN.md` for the system inventory and
//! the documented paper errata, and `EXPERIMENTS.md` for paper-claim vs
//! measured results.

#![forbid(unsafe_code)]

pub use ppfts_analyze as analyze;
pub use ppfts_core as core;
pub use ppfts_engine as engine;
pub use ppfts_population as population;
pub use ppfts_protocols as protocols;
pub use ppfts_verify as verify;

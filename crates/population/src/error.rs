//! Error type for population-level operations.

use std::error::Error;
use std::fmt;

/// Errors raised while constructing or manipulating populations.
///
/// # Example
///
/// ```
/// use ppfts_population::{Interaction, PopulationError};
///
/// let err = Interaction::new(2, 2).unwrap_err();
/// assert!(matches!(err, PopulationError::SelfInteraction { agent: 2 }));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PopulationError {
    /// A population must contain at least two agents to interact.
    PopulationTooSmall {
        /// Number of agents supplied.
        len: usize,
    },
    /// An agent index referred outside the configuration.
    AgentOutOfBounds {
        /// The offending index.
        agent: usize,
        /// Size of the population.
        len: usize,
    },
    /// An interaction requires two *distinct* agents.
    SelfInteraction {
        /// The index that appeared as both starter and reactor.
        agent: usize,
    },
    /// A count-level operation needed more copies of a state than the
    /// population holds (e.g. replaying a self-pair of a state with a
    /// single copy onto a [`CountConfiguration`](crate::CountConfiguration)).
    StateUnderflow {
        /// Debug rendering of the state whose count fell short.
        state: String,
        /// Copies the operation required.
        needed: usize,
        /// Copies actually present.
        available: usize,
    },
}

impl fmt::Display for PopulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PopulationError::PopulationTooSmall { len } => {
                write!(
                    f,
                    "population of {len} agent(s) cannot interact; need at least 2"
                )
            }
            PopulationError::AgentOutOfBounds { agent, len } => {
                write!(
                    f,
                    "agent index {agent} out of bounds for population of {len}"
                )
            }
            PopulationError::SelfInteraction { agent } => {
                write!(f, "agent {agent} cannot interact with itself")
            }
            PopulationError::StateUnderflow {
                state,
                needed,
                available,
            } => {
                write!(
                    f,
                    "state {state} has {available} cop(ies) but the operation needs {needed}"
                )
            }
        }
    }
}

impl Error for PopulationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_concise() {
        let msgs = [
            PopulationError::PopulationTooSmall { len: 1 }.to_string(),
            PopulationError::AgentOutOfBounds { agent: 9, len: 4 }.to_string(),
            PopulationError::SelfInteraction { agent: 3 }.to_string(),
        ];
        for m in msgs {
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<PopulationError>();
    }
}

//! Dense (per-agent) configurations: the global state of a population.

use std::fmt;

use crate::{AgentId, Interaction, Multiset, Population, PopulationError, State, TwoWayProtocol};

/// The `n`-tuple of local states of a population — `C ∈ Q_P^n`.
///
/// A configuration is indexed by [`AgentId`]; because agents are anonymous,
/// two configurations that are permutations of each other are
/// *behaviourally* equivalent, which is what [`DenseConfiguration::counts`]
/// (the [`Multiset`] view) captures.
///
/// This is the *dense* backend of the [`Population`] abstraction: one
/// state per agent, O(n) memory. It is the only backend that can address
/// individual agents, which per-agent simulator states (IDs, partner
/// tracking) and full-trace certification require. For anonymous
/// protocols at large `n`, prefer
/// [`CountConfiguration`](crate::CountConfiguration).
///
/// # Example
///
/// ```
/// use ppfts_population::{DenseConfiguration, Interaction, TwoWayProtocol};
///
/// struct Swap;
/// impl TwoWayProtocol for Swap {
///     type State = u8;
///     fn delta(&self, s: &u8, r: &u8) -> (u8, u8) { (*r, *s) }
/// }
///
/// let mut c = DenseConfiguration::new(vec![1, 2, 3]);
/// c.apply(&Swap, Interaction::new(0, 2)?)?;
/// assert_eq!(c.as_slice(), &[3, 2, 1]);
/// assert_eq!(c.counts().count(&2), 1);
/// # Ok::<(), ppfts_population::PopulationError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct DenseConfiguration<Q: State> {
    states: Vec<Q>,
}

impl<Q: State> DenseConfiguration<Q> {
    /// Creates a configuration from the per-agent states.
    pub fn new(states: Vec<Q>) -> Self {
        DenseConfiguration { states }
    }

    /// Creates a configuration of `n` agents all in state `q`.
    pub fn uniform(q: Q, n: usize) -> Self {
        DenseConfiguration { states: vec![q; n] }
    }

    /// Creates a configuration with `counts` groups: `(state, how many)`.
    ///
    /// Agents of the first group occupy the lowest indices, and so on.
    ///
    /// # Example
    ///
    /// ```
    /// use ppfts_population::DenseConfiguration;
    ///
    /// let c = DenseConfiguration::from_groups([('c', 2), ('p', 1)]);
    /// assert_eq!(c.as_slice(), &['c', 'c', 'p']);
    /// ```
    pub fn from_groups(counts: impl IntoIterator<Item = (Q, usize)>) -> Self {
        let mut states = Vec::new();
        for (q, k) in counts {
            for _ in 0..k {
                states.push(q.clone());
            }
        }
        DenseConfiguration { states }
    }

    /// Number of agents `n`.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The state of `agent`, if in bounds.
    pub fn get(&self, agent: AgentId) -> Option<&Q> {
        self.states.get(agent.index())
    }

    /// The state of `agent`.
    ///
    /// # Panics
    ///
    /// Panics if `agent` is out of bounds; use [`DenseConfiguration::get`] for a
    /// checked variant.
    pub fn state(&self, agent: AgentId) -> &Q {
        &self.states[agent.index()]
    }

    /// Overwrites the state of `agent`.
    ///
    /// # Errors
    ///
    /// Returns [`PopulationError::AgentOutOfBounds`] if `agent` does not
    /// exist.
    pub fn set(&mut self, agent: AgentId, q: Q) -> Result<(), PopulationError> {
        let len = self.states.len();
        match self.states.get_mut(agent.index()) {
            Some(slot) => {
                *slot = q;
                Ok(())
            }
            None => Err(PopulationError::AgentOutOfBounds {
                agent: agent.index(),
                len,
            }),
        }
    }

    /// Read-only view of the underlying state vector.
    pub fn as_slice(&self) -> &[Q] {
        &self.states
    }

    /// Mutable view of the underlying state vector.
    ///
    /// This is the state slab the sharded execution path partitions
    /// across worker threads (each level of a [`crate::LevelPlan`]
    /// touches pairwise-disjoint indices). Writing through it bypasses
    /// no invariants — a dense configuration is exactly its state
    /// vector — but note that the length (the population size) is fixed.
    pub fn as_mut_slice(&mut self) -> &mut [Q] {
        &mut self.states
    }

    /// Iterates over `(AgentId, &state)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (AgentId, &Q)> {
        self.states
            .iter()
            .enumerate()
            .map(|(i, q)| (AgentId::new(i), q))
    }

    /// The multiset of states (the anonymous view of the configuration).
    pub fn counts(&self) -> Multiset<Q> {
        self.states.iter().cloned().collect()
    }

    /// Number of agents currently in state `q`.
    pub fn count_state(&self, q: &Q) -> usize {
        self.states.iter().filter(|s| *s == q).count()
    }

    /// Agents currently in state `q`, in index order.
    pub fn agents_in(&self, q: &Q) -> Vec<AgentId> {
        self.iter()
            .filter(|(_, s)| *s == q)
            .map(|(a, _)| a)
            .collect()
    }

    /// Applies one fault-free two-way interaction under protocol `p`,
    /// returning the pair of states that was replaced.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint is out of bounds. (Interactions
    /// are self-loop-free by construction.)
    pub fn apply<P>(&mut self, p: &P, i: Interaction) -> Result<(Q, Q), PopulationError>
    where
        P: TwoWayProtocol<State = Q>,
    {
        i.check_bounds(self.len())?;
        let s = self.states[i.starter().index()].clone();
        let r = self.states[i.reactor().index()].clone();
        let (s2, r2) = p.delta(&s, &r);
        self.states[i.starter().index()] = s2;
        self.states[i.reactor().index()] = r2;
        Ok((s, r))
    }

    /// Borrows the states of both endpoints of `i` without cloning — the
    /// read half of the engine's batched fast path.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint is out of bounds.
    ///
    /// # Example
    ///
    /// ```
    /// use ppfts_population::{DenseConfiguration, Interaction};
    ///
    /// let c = DenseConfiguration::new(vec!['a', 'b', 'c']);
    /// assert_eq!(c.pair_states(Interaction::new(2, 0)?)?, (&'c', &'a'));
    /// # Ok::<(), ppfts_population::PopulationError>(())
    /// ```
    pub fn pair_states(&self, i: Interaction) -> Result<(&Q, &Q), PopulationError> {
        i.check_bounds(self.len())?;
        Ok((
            &self.states[i.starter().index()],
            &self.states[i.reactor().index()],
        ))
    }

    /// Mutably borrows the states of both endpoints of `i` — the engine's
    /// in-place fast path. The endpoints are distinct by construction
    /// ([`Interaction`] forbids self-loops), so the split borrow is safe.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint is out of bounds.
    ///
    /// # Example
    ///
    /// ```
    /// use ppfts_population::{DenseConfiguration, Interaction};
    ///
    /// let mut c = DenseConfiguration::new(vec![1, 2, 3]);
    /// let (s, r) = c.pair_states_mut(Interaction::new(2, 0)?)?;
    /// *s += 10;
    /// *r += 20;
    /// assert_eq!(c.as_slice(), &[21, 2, 13]);
    /// # Ok::<(), ppfts_population::PopulationError>(())
    /// ```
    pub fn pair_states_mut(&mut self, i: Interaction) -> Result<(&mut Q, &mut Q), PopulationError> {
        i.check_bounds(self.len())?;
        let si = i.starter().index();
        let ri = i.reactor().index();
        debug_assert_ne!(si, ri, "interactions are self-loop-free");
        if si < ri {
            let (lo, hi) = self.states.split_at_mut(ri);
            Ok((&mut lo[si], &mut hi[0]))
        } else {
            let (lo, hi) = self.states.split_at_mut(si);
            Ok((&mut hi[0], &mut lo[ri]))
        }
    }

    /// Writes `(s', r')` to the endpoints of `i`, returning the replaced
    /// states. This is the raw update used by the interaction-model engine,
    /// which computes the outcome pair itself (possibly from a *faulty*
    /// transition).
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint is out of bounds.
    pub fn write_pair(
        &mut self,
        i: Interaction,
        outcome: (Q, Q),
    ) -> Result<(Q, Q), PopulationError> {
        i.check_bounds(self.len())?;
        let old_s = std::mem::replace(&mut self.states[i.starter().index()], outcome.0);
        let old_r = std::mem::replace(&mut self.states[i.reactor().index()], outcome.1);
        Ok((old_s, old_r))
    }

    /// The configuration obtained by mapping every agent's state through
    /// `f` — e.g. the projection `π_P` from simulator states to simulated
    /// states.
    pub fn map<R: State>(&self, f: impl FnMut(&Q) -> R) -> DenseConfiguration<R> {
        DenseConfiguration {
            states: self.states.iter().map(f).collect(),
        }
    }

    /// Whether `other` is a permutation of `self` (same multiset of states).
    pub fn is_permutation_of(&self, other: &DenseConfiguration<Q>) -> bool {
        self.len() == other.len() && self.counts() == other.counts()
    }
}

/// Historical name of [`DenseConfiguration`], kept as an alias: the type
/// predates the [`Population`] backend split, and "the configuration" is
/// still the right reading everywhere a dense population is meant.
pub type Configuration<Q> = DenseConfiguration<Q>;

impl<Q: State> Population for DenseConfiguration<Q> {
    type State = Q;

    fn len(&self) -> usize {
        self.states.len()
    }

    fn counts(&self) -> Multiset<Q> {
        DenseConfiguration::counts(self)
    }

    fn count_state(&self, q: &Q) -> usize {
        DenseConfiguration::count_state(self, q)
    }
}

impl<Q: State> From<Vec<Q>> for DenseConfiguration<Q> {
    fn from(states: Vec<Q>) -> Self {
        DenseConfiguration::new(states)
    }
}

impl<Q: State> FromIterator<Q> for DenseConfiguration<Q> {
    fn from_iter<I: IntoIterator<Item = Q>>(iter: I) -> Self {
        DenseConfiguration {
            states: iter.into_iter().collect(),
        }
    }
}

impl<Q: State> std::ops::Index<AgentId> for DenseConfiguration<Q> {
    type Output = Q;
    fn index(&self, agent: AgentId) -> &Q {
        &self.states[agent.index()]
    }
}

impl<Q: State> fmt::Debug for DenseConfiguration<Q> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.states.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FunctionProtocol;

    fn epidemic() -> impl TwoWayProtocol<State = bool> {
        FunctionProtocol::new(|s: &bool, _r: &bool| *s, |s: &bool, r: &bool| *s || *r)
    }

    #[test]
    fn uniform_and_groups_layout() {
        let u = DenseConfiguration::uniform(0u8, 4);
        assert_eq!(u.as_slice(), &[0, 0, 0, 0]);
        let g = DenseConfiguration::from_groups([(1u8, 2), (2u8, 1), (3u8, 0)]);
        assert_eq!(g.as_slice(), &[1, 1, 2]);
        assert_eq!(g.count_state(&3), 0);
    }

    #[test]
    fn apply_updates_both_roles() {
        let mut c = DenseConfiguration::new(vec![true, false]);
        let old = c
            .apply(&epidemic(), Interaction::new(0, 1).unwrap())
            .unwrap();
        assert_eq!(old, (true, false));
        assert_eq!(c.as_slice(), &[true, true]);
    }

    #[test]
    fn apply_checks_bounds() {
        let mut c = DenseConfiguration::new(vec![true, false]);
        let err = c.apply(&epidemic(), Interaction::new(0, 9).unwrap());
        assert_eq!(
            err.unwrap_err(),
            PopulationError::AgentOutOfBounds { agent: 9, len: 2 }
        );
    }

    #[test]
    fn pair_states_borrows_both_roles() {
        let c = DenseConfiguration::new(vec!['a', 'b', 'c']);
        let i = Interaction::new(1, 2).unwrap();
        assert_eq!(c.pair_states(i).unwrap(), (&'b', &'c'));
        let oob = Interaction::new(0, 7).unwrap();
        assert_eq!(
            c.pair_states(oob).unwrap_err(),
            PopulationError::AgentOutOfBounds { agent: 7, len: 3 }
        );
    }

    #[test]
    fn pair_states_mut_splits_both_orders() {
        let mut c = DenseConfiguration::new(vec![10u8, 20, 30]);
        {
            let (s, r) = c.pair_states_mut(Interaction::new(0, 2).unwrap()).unwrap();
            assert_eq!((*s, *r), (10, 30));
            *s = 11;
            *r = 31;
        }
        {
            let (s, r) = c.pair_states_mut(Interaction::new(2, 1).unwrap()).unwrap();
            assert_eq!((*s, *r), (31, 20));
            *r = 21;
        }
        assert_eq!(c.as_slice(), &[11, 21, 31]);
        assert!(c.pair_states_mut(Interaction::new(0, 5).unwrap()).is_err());
    }

    #[test]
    fn write_pair_returns_replaced_states() {
        let mut c = DenseConfiguration::new(vec!['a', 'b', 'c']);
        let old = c
            .write_pair(Interaction::new(2, 0).unwrap(), ('X', 'Y'))
            .unwrap();
        assert_eq!(old, ('c', 'a')); // (old starter = index 2, old reactor = index 0)
        assert_eq!(c.as_slice(), &['Y', 'b', 'X']);
    }

    #[test]
    fn map_projects_states() {
        let c = DenseConfiguration::new(vec![(1u8, 'x'), (2u8, 'y')]);
        let proj = c.map(|(n, _)| *n);
        assert_eq!(proj.as_slice(), &[1, 2]);
    }

    #[test]
    fn permutation_equivalence() {
        let a = DenseConfiguration::new(vec![1, 2, 2, 3]);
        let b = DenseConfiguration::new(vec![3, 2, 1, 2]);
        let c = DenseConfiguration::new(vec![3, 3, 1, 2]);
        assert!(a.is_permutation_of(&b));
        assert!(!a.is_permutation_of(&c));
    }

    #[test]
    fn agents_in_lists_indices() {
        let c = DenseConfiguration::new(vec!['p', 'c', 'p']);
        assert_eq!(c.agents_in(&'p'), vec![AgentId::new(0), AgentId::new(2)]);
    }

    #[test]
    fn set_and_get_round_trip() {
        let mut c = DenseConfiguration::uniform(0u8, 3);
        c.set(AgentId::new(1), 7).unwrap();
        assert_eq!(c.get(AgentId::new(1)), Some(&7));
        assert_eq!(c[AgentId::new(1)], 7);
        assert!(c.set(AgentId::new(5), 1).is_err());
        assert_eq!(c.get(AgentId::new(5)), None);
    }
}

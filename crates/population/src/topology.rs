//! Interaction topologies: which pairs of agents may meet.
//!
//! Classic population protocols assume *any* pair can interact — the
//! complete interaction graph — and that assumption used to be hard-wired
//! into the scheduling layer. A [`Topology`] makes the interaction graph a
//! first-class value instead: an undirected, connected graph over the
//! agent indices whose edges are the meetings the scheduler may deal.
//! Restricted topologies are the setting of the *graphical* population
//! protocol literature (Angluin et al.'s original model already allowed
//! them; Alistarh–Gelashvili–Rybicki, *Fast Graphical Population
//! Protocols*, studies their convergence), and simulating on rings, grids
//! and expanders is what the workspace's E12 experiment measures.
//!
//! The graph is stored CSR-style — a flat neighbor array plus per-vertex
//! offsets — with one extra parallel array of arc tails so that drawing a
//! uniformly random *arc* (directed edge; both orientations of every
//! undirected edge) costs a single range draw and two array reads. The
//! complete graph is represented implicitly (no O(n²) materialization),
//! with arc draws consuming the RNG exactly like the classic uniform
//! ordered-pair scheduler, which is what makes complete-topology runs
//! bit-identical to historical uniform runs.
//!
//! Every constructor checks *connectivity*: on a disconnected graph no
//! scheduler is globally fair (opinions can never cross between
//! components), so such topologies are rejected with
//! [`TopologyError::Disconnected`] at construction rather than silently
//! failing to converge at run time.
//!
//! # Example
//!
//! ```
//! use ppfts_population::Topology;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let ring = Topology::ring(6)?;
//! assert_eq!(ring.len(), 6);
//! assert_eq!(ring.edge_count(), 6);
//! assert_eq!(ring.degree(0), 2);
//! assert!(ring.contains_arc(0, 5) && ring.contains_arc(5, 0));
//! assert!(!ring.contains_arc(0, 3));
//!
//! let mut rng = SmallRng::seed_from_u64(1);
//! let i = ring.sample_arc(&mut rng);
//! assert!(ring.contains_arc(i.starter().index(), i.reactor().index()));
//! # Ok::<(), ppfts_population::TopologyError>(())
//! ```

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::Interaction;

/// Maximum re-draws of the stub pairing before
/// [`Topology::random_regular`] gives up with
/// [`TopologyError::PairingFailed`]. The loop is hard-bounded so that
/// infeasible `(n, d)` parameterizations (a 1-regular graph on more than
/// two vertices can never be connected) terminate with a typed error.
pub const RANDOM_REGULAR_ATTEMPTS: usize = 400;

/// Largest vertex count for which [`Topology::conductance`] enumerates
/// every cut exactly; larger graphs get the spectral sweep-cut estimate.
pub const EXACT_CONDUCTANCE_LIMIT: usize = 16;

/// Power-iteration budget of the sweep-cut conductance estimate.
const SWEEP_POWER_ITERS: usize = 600;

/// Mixing-rate figures of a topology's lazy random walk, produced by
/// [`Topology::spectral_profile`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpectralProfile {
    /// Estimated second-largest eigenvalue of `½(I + D⁻¹A)`.
    pub lambda2: f64,
    /// `1 − λ₂`: the spectral gap governing the walk's mixing time.
    pub spectral_gap: f64,
    /// Power iterations actually performed before convergence (or the
    /// budget, whichever came first).
    pub iterations: usize,
}

/// Errors raised while constructing an interaction topology.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum TopologyError {
    /// The requested family needs more vertices than were supplied.
    TooSmall {
        /// Number of vertices supplied.
        len: usize,
        /// Minimum the family requires.
        min: usize,
    },
    /// The generated or supplied graph is not connected, so no scheduler
    /// over it can be globally fair.
    Disconnected {
        /// Vertices reachable from vertex 0.
        reachable: usize,
        /// Total vertices.
        len: usize,
    },
    /// An edge named a vertex outside `0..len`.
    VertexOutOfBounds {
        /// The offending vertex.
        vertex: usize,
        /// Number of vertices.
        len: usize,
    },
    /// An edge connected a vertex to itself.
    SelfLoop {
        /// The looping vertex.
        vertex: usize,
    },
    /// The same undirected edge was supplied twice.
    DuplicateEdge {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
    /// A `d`-regular graph on `n` vertices needs `0 < d < n` and `n·d`
    /// even.
    InvalidDegree {
        /// Number of vertices.
        len: usize,
        /// Requested degree.
        degree: usize,
    },
    /// The Erdős–Rényi probability must lie in `(0, 1]`.
    InvalidProbability {
        /// The rejected value.
        p: f64,
    },
    /// The configuration-model stub pairing of
    /// [`Topology::random_regular`] exhausted its bounded retry budget
    /// without producing a simple *connected* draw. Raised for
    /// parameterizations where such draws are rare (very dense `d`) or
    /// impossible (`d = 1` on `n > 2` vertices is a perfect matching,
    /// never connected) — the retry loop is hard-bounded, so infeasible
    /// inputs terminate with this error instead of spinning.
    PairingFailed {
        /// Attempts made before giving up.
        attempts: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::TooSmall { len, min } => {
                write!(f, "topology needs at least {min} vertices, got {len}")
            }
            TopologyError::Disconnected { reachable, len } => {
                write!(
                    f,
                    "topology is disconnected: only {reachable} of {len} vertices reachable from vertex 0"
                )
            }
            TopologyError::VertexOutOfBounds { vertex, len } => {
                write!(f, "edge endpoint {vertex} out of bounds for {len} vertices")
            }
            TopologyError::SelfLoop { vertex } => {
                write!(f, "vertex {vertex} cannot neighbor itself")
            }
            TopologyError::DuplicateEdge { a, b } => {
                write!(f, "undirected edge ({a}, {b}) supplied more than once")
            }
            TopologyError::InvalidDegree { len, degree } => {
                write!(
                    f,
                    "no simple {degree}-regular graph on {len} vertices (need 0 < d < n and n·d even)"
                )
            }
            TopologyError::InvalidProbability { p } => {
                write!(f, "edge probability {p} outside (0, 1]")
            }
            TopologyError::PairingFailed { attempts } => {
                write!(
                    f,
                    "stub pairing produced no simple connected draw in {attempts} attempts \
                     (the requested (n, d) may admit none)"
                )
            }
        }
    }
}

impl Error for TopologyError {}

/// The family a [`Topology`] was constructed from, with its parameters —
/// used for labeling experiments and reports; the structure itself lives
/// in the adjacency.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum TopologyClass {
    /// Every pair of agents may meet (the classic PP assumption).
    Complete,
    /// A single cycle through all agents.
    Ring,
    /// One hub adjacent to every leaf.
    Star,
    /// A rows × cols 4-neighbor grid.
    Grid2d {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// A uniformly random simple `d`-regular graph.
    RandomRegular {
        /// Vertex degree.
        degree: usize,
        /// Generation seed.
        seed: u64,
    },
    /// An Erdős–Rényi `G(n, p)` draw, conditioned on connectivity.
    ErdosRenyi {
        /// Edge probability.
        p: f64,
        /// Generation seed.
        seed: u64,
    },
    /// Built from an explicit edge list.
    Custom,
}

impl fmt::Display for TopologyClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyClass::Complete => write!(f, "complete"),
            TopologyClass::Ring => write!(f, "ring"),
            TopologyClass::Star => write!(f, "star"),
            TopologyClass::Grid2d { rows, cols } => write!(f, "grid{rows}x{cols}"),
            TopologyClass::RandomRegular { degree, .. } => write!(f, "rr{degree}"),
            TopologyClass::ErdosRenyi { p, .. } => write!(f, "er{p}"),
            TopologyClass::Custom => write!(f, "custom"),
        }
    }
}

/// Adjacency storage: the complete graph stays implicit (O(1) memory, and
/// arc draws that are bit-compatible with the classic uniform scheduler);
/// everything else is CSR.
#[derive(Clone, Debug, PartialEq)]
enum Repr {
    Complete {
        n: usize,
    },
    Csr {
        /// `offsets[v]..offsets[v + 1]` indexes `heads`/`tails` for `v`.
        offsets: Vec<usize>,
        /// Arc heads, sorted within each vertex's range.
        heads: Vec<u32>,
        /// Arc tails: `tails[a]` is the vertex whose range contains `a`.
        tails: Vec<u32>,
    },
}

/// An undirected, connected interaction graph over agent indices
/// `0..len`, stored so that uniform random *arc* (ordered-edge) draws are
/// O(1).
///
/// See the module docs for the role topologies play in the
/// scheduling layer and the example below for the query surface.
///
/// # Example
///
/// ```
/// use ppfts_population::Topology;
///
/// let grid = Topology::grid2d(2, 3)?;
/// assert_eq!(grid.len(), 6);
/// assert_eq!(grid.edge_count(), 7);
/// assert_eq!(grid.arc_count(), 14);
/// // Vertex 4 (row 1, col 1) touches its 3 grid neighbors.
/// let mut nbrs: Vec<usize> = grid.neighbors(4).collect();
/// nbrs.sort_unstable();
/// assert_eq!(nbrs, vec![1, 3, 5]);
/// # Ok::<(), ppfts_population::TopologyError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Topology {
    class: TopologyClass,
    repr: Repr,
}

impl Topology {
    /// The complete graph on `n` agents — the interaction law every model
    /// of the reproduced paper assumes. Stored implicitly; never
    /// materializes O(n²) adjacency.
    ///
    /// # Errors
    ///
    /// [`TopologyError::TooSmall`] for `n < 2`.
    pub fn complete(n: usize) -> Result<Self, TopologyError> {
        if n < 2 {
            return Err(TopologyError::TooSmall { len: n, min: 2 });
        }
        Ok(Topology {
            class: TopologyClass::Complete,
            repr: Repr::Complete { n },
        })
    }

    /// The cycle `0 — 1 — … — n−1 — 0`.
    ///
    /// # Errors
    ///
    /// [`TopologyError::TooSmall`] for `n < 3` (a 2-cycle would be a
    /// duplicate edge).
    pub fn ring(n: usize) -> Result<Self, TopologyError> {
        if n < 3 {
            return Err(TopologyError::TooSmall { len: n, min: 3 });
        }
        let edges = (0..n).map(|v| (v, (v + 1) % n));
        Self::from_edges_classified(n, edges, TopologyClass::Ring)
    }

    /// The star with hub `0` and leaves `1..n`.
    ///
    /// # Errors
    ///
    /// [`TopologyError::TooSmall`] for `n < 2`.
    pub fn star(n: usize) -> Result<Self, TopologyError> {
        if n < 2 {
            return Err(TopologyError::TooSmall { len: n, min: 2 });
        }
        let edges = (1..n).map(|v| (0, v));
        Self::from_edges_classified(n, edges, TopologyClass::Star)
    }

    /// The `rows × cols` 4-neighbor grid, vertices numbered row-major.
    ///
    /// # Errors
    ///
    /// [`TopologyError::TooSmall`] when the grid has fewer than 2 cells.
    pub fn grid2d(rows: usize, cols: usize) -> Result<Self, TopologyError> {
        let n = rows.checked_mul(cols).unwrap_or(0);
        if n < 2 {
            return Err(TopologyError::TooSmall { len: n, min: 2 });
        }
        let mut edges = Vec::with_capacity(2 * n);
        for r in 0..rows {
            for c in 0..cols {
                let v = r * cols + c;
                if c + 1 < cols {
                    edges.push((v, v + 1));
                }
                if r + 1 < rows {
                    edges.push((v, v + cols));
                }
            }
        }
        Self::from_edges_classified(n, edges, TopologyClass::Grid2d { rows, cols })
    }

    /// A uniformly random simple connected `d`-regular graph on `n`
    /// vertices, generated by the configuration (stub-pairing) model with
    /// rejection of self-loops, duplicate edges and disconnected draws.
    /// Deterministic in `seed`.
    ///
    /// # Errors
    ///
    /// [`TopologyError::InvalidDegree`] unless `0 < d < n` and `n·d` is
    /// even; [`TopologyError::PairingFailed`] when the hard-bounded retry
    /// loop ([`RANDOM_REGULAR_ATTEMPTS`] draws) finds no simple connected
    /// graph — which covers both unlucky dense parameterizations and
    /// genuinely infeasible ones like `d = 1` on `n > 2` vertices (every
    /// 1-regular graph is a perfect matching, hence disconnected), so the
    /// constructor always terminates with a typed error instead of
    /// looping.
    pub fn random_regular(n: usize, d: usize, seed: u64) -> Result<Self, TopologyError> {
        if n < 2 {
            return Err(TopologyError::TooSmall { len: n, min: 2 });
        }
        if d == 0 || d >= n || !(n * d).is_multiple_of(2) {
            return Err(TopologyError::InvalidDegree { len: n, degree: d });
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let class = TopologyClass::RandomRegular { degree: d, seed };
        for _ in 0..RANDOM_REGULAR_ATTEMPTS {
            let mut stubs: Vec<u32> = (0..n as u32)
                .flat_map(|v| std::iter::repeat_n(v, d))
                .collect();
            // Fisher–Yates over the stub multiset.
            for i in (1..stubs.len()).rev() {
                let j = rng.gen_range(0..=i);
                stubs.swap(i, j);
            }
            let mut seen = HashSet::with_capacity(n * d / 2);
            let mut edges = Vec::with_capacity(n * d / 2);
            let simple = stubs.chunks_exact(2).all(|pair| {
                let (a, b) = (pair[0] as usize, pair[1] as usize);
                a != b && seen.insert((a.min(b), a.max(b))) && {
                    edges.push((a, b));
                    true
                }
            });
            if !simple {
                continue;
            }
            match Self::from_edges_classified(n, edges, class.clone()) {
                Ok(t) => return Ok(t),
                Err(TopologyError::Disconnected { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
        Err(TopologyError::PairingFailed {
            attempts: RANDOM_REGULAR_ATTEMPTS,
        })
    }

    /// An Erdős–Rényi `G(n, p)` draw, rejected (not resampled) if
    /// disconnected. Deterministic in `seed`; edge enumeration uses
    /// geometric skip-sampling (Batagelj–Brandes), so generation costs
    /// O(n + m), not O(n²) Bernoulli trials.
    ///
    /// # Errors
    ///
    /// [`TopologyError::InvalidProbability`] unless `0 < p ≤ 1`;
    /// [`TopologyError::Disconnected`] when the draw is disconnected
    /// (retry with another seed or a larger `p`; connectivity needs
    /// roughly `p > ln n / n`).
    pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Result<Self, TopologyError> {
        if n < 2 {
            return Err(TopologyError::TooSmall { len: n, min: 2 });
        }
        if !(p > 0.0 && p <= 1.0) {
            return Err(TopologyError::InvalidProbability { p });
        }
        let class = TopologyClass::ErdosRenyi { p, seed };
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        if p >= 1.0 {
            for a in 0..n {
                for b in (a + 1)..n {
                    edges.push((a, b));
                }
            }
        } else {
            // Walk the lexicographic edge list in geometric jumps: the
            // gap to the next present edge is Geometric(p).
            let total = n * (n - 1) / 2;
            let log1p = (1.0 - p).ln();
            let mut pos: usize = 0;
            while pos < total {
                let u = unit_f64(&mut rng);
                let skip = if u <= 0.0 {
                    total // ln(0) guard: jump past the end
                } else {
                    (u.ln() / log1p) as usize
                };
                pos = pos.saturating_add(skip);
                if pos >= total {
                    break;
                }
                edges.push(edge_at(n, pos));
                pos += 1;
            }
        }
        Self::from_edges_classified(n, edges, class)
    }

    /// Builds a topology from an explicit undirected edge list over
    /// vertices `0..n`.
    ///
    /// # Errors
    ///
    /// Rejects out-of-bounds endpoints, self-loops, duplicate edges
    /// (either orientation), and disconnected graphs; see
    /// [`TopologyError`].
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (usize, usize)>,
    ) -> Result<Self, TopologyError> {
        Self::from_edges_classified(n, edges, TopologyClass::Custom)
    }

    fn from_edges_classified(
        n: usize,
        edges: impl IntoIterator<Item = (usize, usize)>,
        class: TopologyClass,
    ) -> Result<Self, TopologyError> {
        if n < 2 {
            return Err(TopologyError::TooSmall { len: n, min: 2 });
        }
        let mut degree = vec![0usize; n];
        let mut undirected = Vec::new();
        let mut seen = HashSet::new();
        for (a, b) in edges {
            for v in [a, b] {
                if v >= n {
                    return Err(TopologyError::VertexOutOfBounds { vertex: v, len: n });
                }
            }
            if a == b {
                return Err(TopologyError::SelfLoop { vertex: a });
            }
            if !seen.insert((a.min(b), a.max(b))) {
                return Err(TopologyError::DuplicateEdge { a, b });
            }
            degree[a] += 1;
            degree[b] += 1;
            undirected.push((a, b));
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let arcs = acc;
        let mut heads = vec![0u32; arcs];
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        for &(a, b) in &undirected {
            heads[cursor[a]] = b as u32;
            cursor[a] += 1;
            heads[cursor[b]] = a as u32;
            cursor[b] += 1;
        }
        let mut tails = vec![0u32; arcs];
        for v in 0..n {
            heads[offsets[v]..offsets[v + 1]].sort_unstable();
            tails[offsets[v]..offsets[v + 1]].fill(v as u32);
        }
        let topology = Topology {
            class,
            repr: Repr::Csr {
                offsets,
                heads,
                tails,
            },
        };
        let reachable = topology.reachable_from_zero();
        if reachable != n {
            return Err(TopologyError::Disconnected { reachable, len: n });
        }
        Ok(topology)
    }

    /// Number of agents (vertices).
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Complete { n } => *n,
            Repr::Csr { offsets, .. } => offsets.len() - 1,
        }
    }

    /// Always `false`: every constructor requires at least two vertices.
    /// Present for `len`/`is_empty` API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The family this topology was constructed from.
    pub fn class(&self) -> &TopologyClass {
        &self.class
    }

    /// Whether this is the (implicit) complete graph — the only topology
    /// whose interaction law a count-based population backend can realize
    /// from state multiplicities alone.
    pub fn is_complete(&self) -> bool {
        matches!(self.repr, Repr::Complete { .. })
    }

    /// Number of undirected edges `m`.
    pub fn edge_count(&self) -> usize {
        self.arc_count() / 2
    }

    /// Number of arcs (ordered edges): `2m`.
    pub fn arc_count(&self) -> usize {
        match &self.repr {
            Repr::Complete { n } => n * (n - 1),
            Repr::Csr { heads, .. } => heads.len(),
        }
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn degree(&self, v: usize) -> usize {
        match &self.repr {
            Repr::Complete { n } => {
                assert!(v < *n, "vertex {v} out of bounds for {n}");
                n - 1
            }
            Repr::Csr { offsets, .. } => offsets[v + 1] - offsets[v],
        }
    }

    /// Iterates over the neighbors of `v` in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        match &self.repr {
            Repr::Complete { n } => {
                assert!(v < *n, "vertex {v} out of bounds for {n}");
                Neighbors::Complete { v, next: 0, n: *n }
            }
            Repr::Csr { offsets, heads, .. } => Neighbors::Csr {
                heads: &heads[offsets[v]..offsets[v + 1]],
            },
        }
    }

    /// Whether the arc `(u, v)` exists, i.e. agents `u` and `v` are
    /// adjacent (arcs come in both orientations, so this is symmetric).
    pub fn contains_arc(&self, u: usize, v: usize) -> bool {
        let n = self.len();
        if u >= n || v >= n || u == v {
            return false;
        }
        match &self.repr {
            Repr::Complete { .. } => true,
            Repr::Csr { offsets, heads, .. } => heads[offsets[u]..offsets[u + 1]]
                .binary_search(&(v as u32))
                .is_ok(),
        }
    }

    /// The canonical index of arc `(u, v)` in `0..arc_count()`, or `None`
    /// if the arc does not exist. Inverse of [`arc`](Topology::arc); used
    /// by the coverage audits to tally per-arc hit counts.
    pub fn arc_index(&self, u: usize, v: usize) -> Option<usize> {
        let n = self.len();
        if u >= n || v >= n || u == v {
            return None;
        }
        match &self.repr {
            Repr::Complete { .. } => Some(u * (n - 1) + v - usize::from(v > u)),
            Repr::Csr { offsets, heads, .. } => heads[offsets[u]..offsets[u + 1]]
                .binary_search(&(v as u32))
                .ok()
                .map(|k| offsets[u] + k),
        }
    }

    /// The arc with canonical index `a`, as an [`Interaction`] (tail =
    /// starter, head = reactor).
    ///
    /// # Panics
    ///
    /// Panics if `a >= arc_count()`.
    pub fn arc(&self, a: usize) -> Interaction {
        match &self.repr {
            Repr::Complete { n } => {
                assert!(a < n * (n - 1), "arc index {a} out of bounds");
                let s = a / (n - 1);
                let mut r = a % (n - 1);
                if r >= s {
                    r += 1;
                }
                Interaction::new(s, r).expect("distinct by construction")
            }
            Repr::Csr { heads, tails, .. } => {
                Interaction::new(tails[a] as usize, heads[a] as usize)
                    .expect("no self-loops by construction")
            }
        }
    }

    /// Draws a uniformly random arc — the graph-aware generalization of
    /// the uniform ordered-pair law (to which it specializes, RNG-stream
    /// compatibly, on the complete topology).
    ///
    /// On the complete graph this consumes two range draws (`0..n`, then
    /// `0..n−1`) exactly like the classic uniform scheduler, so complete-
    /// topology runs are bit-identical to uniform-scheduler runs; on CSR
    /// topologies it consumes one range draw over the arc array.
    pub fn sample_arc(&self, rng: &mut dyn RngCore) -> Interaction {
        self.sample_arc_with(rng)
    }

    /// [`sample_arc`](Topology::sample_arc), monomorphized over the RNG.
    ///
    /// Identical draw law and RNG-stream consumption; the generic
    /// signature lets a concrete RNG (the engine's `SmallRng`, sweep
    /// jobs, fuzzers) inline the range draws instead of paying a virtual
    /// call per draw. The `dyn` entry point above delegates here.
    pub fn sample_arc_with<R: RngCore + ?Sized>(&self, rng: &mut R) -> Interaction {
        match &self.repr {
            Repr::Complete { n } => {
                let s = rng.gen_range(0..*n);
                let mut r = rng.gen_range(0..*n - 1);
                if r >= s {
                    r += 1;
                }
                Interaction::new(s, r).expect("distinct by construction")
            }
            Repr::Csr { heads, tails, .. } => {
                let a = rng.gen_range(0..heads.len());
                Interaction::new(tails[a] as usize, heads[a] as usize)
                    .expect("no self-loops by construction")
            }
        }
    }

    /// Draws `k` arcs into `out` (appending), consuming the RNG stream
    /// exactly as `k` successive [`sample_arc`](Topology::sample_arc)
    /// calls would — bit-identical by construction, certified by the
    /// scheduler equivalence suites.
    ///
    /// The repr match is hoisted out of the loop and the draws are
    /// monomorphized, which is where the batching win comes from. An
    /// alias-table draw over arc tails would be asymptotically no better
    /// here (the draw is already O(1)) and would *change the RNG
    /// stream*, breaking the bit-identity contract — so this stays a
    /// straight replication of the per-draw sequence.
    pub fn sample_arcs_into<R: RngCore + ?Sized>(
        &self,
        out: &mut Vec<Interaction>,
        k: usize,
        rng: &mut R,
    ) {
        out.reserve(k);
        match &self.repr {
            Repr::Complete { n } => {
                let n = *n;
                for _ in 0..k {
                    let s = rng.gen_range(0..n);
                    let mut r = rng.gen_range(0..n - 1);
                    if r >= s {
                        r += 1;
                    }
                    out.push(Interaction::new(s, r).expect("distinct by construction"));
                }
            }
            Repr::Csr { heads, tails, .. } => {
                let m = heads.len();
                for _ in 0..k {
                    let a = rng.gen_range(0..m);
                    out.push(
                        Interaction::new(tails[a] as usize, heads[a] as usize)
                            .expect("no self-loops by construction"),
                    );
                }
            }
        }
    }

    /// Iterates over the undirected edges `(a, b)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let n = self.len();
        (0..n).flat_map(move |v| {
            self.neighbors(v)
                .filter(move |&w| v < w)
                .map(move |w| (v, w))
        })
    }

    /// Conductance `Φ(G) = min_S cut(S, S̄) / min(vol S, vol S̄)` by
    /// exhaustive cut enumeration — exact, but O(2ⁿ·(n + m)), so only
    /// offered up to [`EXACT_CONDUCTANCE_LIMIT`] vertices. Returns `None`
    /// above the limit; [`conductance`](Topology::conductance) falls back
    /// to the spectral sweep-cut estimate there.
    pub fn conductance_exact(&self) -> Option<f64> {
        let n = self.len();
        if n > EXACT_CONDUCTANCE_LIMIT {
            return None;
        }
        let edges: Vec<(usize, usize)> = self.edges().collect();
        let deg: Vec<usize> = (0..n).map(|v| self.degree(v)).collect();
        let total_vol = self.arc_count();
        let mut best = f64::INFINITY;
        // Every unordered bipartition exactly once: vertex 0 is pinned to
        // the complement, the mask enumerates subsets of 1..n.
        for bits in 1u32..(1u32 << (n - 1)) {
            let mask = bits << 1;
            let mut vol = 0usize;
            for (v, d) in deg.iter().enumerate().skip(1) {
                if mask >> v & 1 == 1 {
                    vol += d;
                }
            }
            let mut cut = 0usize;
            for &(a, b) in &edges {
                if (mask >> a ^ mask >> b) & 1 == 1 {
                    cut += 1;
                }
            }
            // Connected graph: every vertex has degree ≥ 1, so both sides
            // of a nontrivial bipartition have positive volume.
            let phi = cut as f64 / vol.min(total_vol - vol) as f64;
            best = best.min(phi);
        }
        Some(best)
    }

    /// Spectral profile of the **lazy random walk** `M = ½(I + D⁻¹A)`:
    /// its second-largest eigenvalue `λ₂` and the spectral gap `1 − λ₂`,
    /// estimated by power iteration on the symmetrized form
    /// `½(I + D^{-½} A D^{-½})` with the known top eigenvector
    /// (`φ₁ ∝ √deg`, eigenvalue 1) deflated each step. Deterministic:
    /// the start vector is a fixed hash of the vertex indices.
    ///
    /// The gap is the mixing-rate figure that Cheeger's inequality ties
    /// to conductance — `gap/2 ≤ Φ ≤ √(2·gap)` — and the quantity the
    /// E13 experiment charts omission tolerance against.
    ///
    /// `max_iters` bounds the work; iteration stops early once the
    /// eigenvalue estimate moves less than 1e-12 between steps. A few
    /// hundred iterations suffice for well-separated spectra; low-gap
    /// graphs (large rings) may report a slight overestimate of the gap
    /// if stopped early, which only makes the Cheeger bracket looser.
    pub fn spectral_profile(&self, max_iters: usize) -> SpectralProfile {
        self.spectral_inner(max_iters).0
    }

    /// Power iteration with deflation; returns the profile and the final
    /// iterate (an estimate of the second eigenvector of the symmetrized
    /// lazy walk), which the sweep cut orders vertices by.
    fn spectral_inner(&self, max_iters: usize) -> (SpectralProfile, Vec<f64>) {
        let n = self.len();
        let sqrt_deg: Vec<f64> = (0..n).map(|v| (self.degree(v) as f64).sqrt()).collect();
        let vol = self.arc_count() as f64; // ‖√deg‖² = Σ deg
                                           // Deterministic quasi-random start vector (splitmix-style hash).
        let mut v: Vec<f64> = (0..n as u64)
            .map(|i| {
                let mut h = i.wrapping_add(0x9e37_79b9_7f4a_7c15);
                h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
            .collect();
        let deflate = |v: &mut [f64]| {
            let coeff: f64 = v.iter().zip(&sqrt_deg).map(|(a, b)| a * b).sum::<f64>() / vol;
            for (x, s) in v.iter_mut().zip(&sqrt_deg) {
                *x -= coeff * s;
            }
        };
        let norm = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>().sqrt();
        let mut w = vec![0.0; n];
        let mut lambda = 0.0f64;
        let mut iterations = 0usize;
        for it in 0..max_iters {
            deflate(&mut v);
            let len = norm(&v);
            if len < 1e-300 {
                // Start vector was (numerically) parallel to φ₁: reseed
                // with an alternating pattern and deflate again.
                for (i, x) in v.iter_mut().enumerate() {
                    *x = if i % 2 == 0 { 1.0 } else { -1.0 };
                }
                deflate(&mut v);
            } else {
                for x in &mut v {
                    *x /= len;
                }
            }
            self.lazy_step(&v, &mut w, &sqrt_deg);
            let rayleigh: f64 = v.iter().zip(&w).map(|(a, b)| a * b).sum();
            iterations = it + 1;
            let delta = (rayleigh - lambda).abs();
            lambda = rayleigh;
            std::mem::swap(&mut v, &mut w);
            if it > 0 && delta < 1e-12 {
                break;
            }
        }
        let lambda2 = lambda.clamp(0.0, 1.0);
        (
            SpectralProfile {
                lambda2,
                spectral_gap: 1.0 - lambda2,
                iterations,
            },
            v,
        )
    }

    /// One multiply by `½(I + D^{-½} A D^{-½})`, writing into `w`.
    fn lazy_step(&self, v: &[f64], w: &mut [f64], sqrt_deg: &[f64]) {
        match &self.repr {
            Repr::Complete { n } => {
                // All degrees are n−1: (Av)_i = Σ_{j≠i} v_j = S − v_i.
                let s: f64 = v.iter().sum();
                let d = (*n - 1) as f64;
                for (i, out) in w.iter_mut().enumerate() {
                    *out = 0.5 * (v[i] + (s - v[i]) / d);
                }
            }
            Repr::Csr { heads, tails, .. } => {
                for (i, out) in w.iter_mut().enumerate() {
                    *out = 0.5 * v[i];
                }
                for (a, &head) in heads.iter().enumerate() {
                    let (t, h) = (tails[a] as usize, head as usize);
                    w[t] += 0.5 * v[h] / (sqrt_deg[t] * sqrt_deg[h]);
                }
            }
        }
    }

    /// Conductance `Φ(G)`: **exact** (exhaustive cuts) up to
    /// [`EXACT_CONDUCTANCE_LIMIT`] vertices, the closed form for the
    /// implicit complete graph, and otherwise a **sweep-cut estimate**
    /// from the power-iteration eigenvector — an upper bound on the true
    /// conductance that Cheeger's inequality guarantees is within
    /// `√(2·gap)` of it. On graphs whose sparsest cut is an eigenvector
    /// level set (rings, grids) the sweep recovers the exact value.
    ///
    /// # Example
    ///
    /// ```
    /// use ppfts_population::Topology;
    ///
    /// let ring = Topology::ring(12)?;
    /// // Halving the ring cuts 2 of its 24 half-edges per side: Φ = 2/12.
    /// assert!((ring.conductance() - 2.0 / 12.0).abs() < 1e-9);
    /// let profile = ring.spectral_profile(400);
    /// // Cheeger: gap/2 ≤ Φ ≤ √(2·gap).
    /// assert!(profile.spectral_gap / 2.0 <= ring.conductance() + 1e-9);
    /// # Ok::<(), ppfts_population::TopologyError>(())
    /// ```
    pub fn conductance(&self) -> f64 {
        if let Some(exact) = self.conductance_exact() {
            return exact;
        }
        if let Repr::Complete { n } = &self.repr {
            // Φ(K_n, |S| = k ≤ n/2) = k(n−k)/(k(n−1)) = (n−k)/(n−1),
            // minimized at the balanced cut.
            return (*n - *n / 2) as f64 / (*n - 1) as f64;
        }
        self.sweep_conductance()
    }

    /// Sweep cut over the spectral embedding `x_v = φ₂(v)/√deg(v)`:
    /// orders vertices by `x`, evaluates every prefix cut incrementally,
    /// and returns the best conductance found.
    fn sweep_conductance(&self) -> f64 {
        self.sweep_cut().0
    }

    /// The smaller-volume side of the best sweep cut, as a sorted vertex
    /// list.
    ///
    /// These are the vertices a conductance-seeking adversary should
    /// isolate: the sweep cut is the (approximate) sparsest cut behind
    /// [`Topology::conductance`]'s estimate, so omitting interactions
    /// that cross it starves the bottleneck the E13 experiments showed
    /// limits SKnO's fault tolerance. Returns an empty vector for the
    /// implicit complete graph (every balanced cut is equally good, so
    /// no vertex is special) and for graphs with fewer than two
    /// vertices.
    ///
    /// # Example
    ///
    /// ```
    /// use ppfts_population::Topology;
    ///
    /// let ring = Topology::ring(32)?;
    /// let side = ring.sweep_cut_vertices();
    /// // The sparsest ring cut is (close to) a half-ring arc.
    /// assert!(!side.is_empty() && side.len() <= 16);
    /// assert!(Topology::complete(32)?.sweep_cut_vertices().is_empty());
    /// # Ok::<(), ppfts_population::TopologyError>(())
    /// ```
    pub fn sweep_cut_vertices(&self) -> Vec<usize> {
        if matches!(self.repr, Repr::Complete { .. }) || self.len() < 2 {
            return Vec::new();
        }
        self.sweep_cut().1
    }

    /// Shared sweep-cut engine: best prefix conductance plus the
    /// smaller-volume side of the argmin prefix (sorted).
    fn sweep_cut(&self) -> (f64, Vec<usize>) {
        let n = self.len();
        let (_, eigvec) = self.spectral_inner(SWEEP_POWER_ITERS);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by(|&a, &b| {
            let xa = eigvec[a] / (self.degree(a) as f64).sqrt();
            let xb = eigvec[b] / (self.degree(b) as f64).sqrt();
            xa.partial_cmp(&xb).unwrap_or(std::cmp::Ordering::Equal)
        });
        let total_vol = self.arc_count();
        let mut in_s = vec![false; n];
        let mut cut = 0isize;
        let mut vol = 0usize;
        let mut best = f64::INFINITY;
        let mut best_len = 0usize;
        let mut best_prefix_is_smaller = true;
        for (i, &u) in order.iter().take(n - 1).enumerate() {
            let d = self.degree(u);
            let into_s = self.neighbors(u).filter(|&w| in_s[w]).count();
            cut += d as isize - 2 * into_s as isize;
            vol += d;
            in_s[u] = true;
            let denom = vol.min(total_vol - vol);
            if denom > 0 {
                let phi = cut as f64 / denom as f64;
                if phi < best {
                    best = phi;
                    best_len = i + 1;
                    best_prefix_is_smaller = vol <= total_vol - vol;
                }
            }
        }
        let mut side: Vec<usize> = if best_prefix_is_smaller {
            order[..best_len].to_vec()
        } else {
            order[best_len..].to_vec()
        };
        side.sort_unstable();
        (best, side)
    }

    /// Vertices reachable from vertex 0 (BFS over the CSR arrays; the
    /// complete graph is trivially connected).
    fn reachable_from_zero(&self) -> usize {
        match &self.repr {
            Repr::Complete { n } => *n,
            Repr::Csr { offsets, heads, .. } => {
                let n = offsets.len() - 1;
                let mut seen = vec![false; n];
                let mut queue = vec![0usize];
                seen[0] = true;
                let mut count = 1;
                while let Some(v) = queue.pop() {
                    for &w in &heads[offsets[v]..offsets[v + 1]] {
                        let w = w as usize;
                        if !seen[w] {
                            seen[w] = true;
                            count += 1;
                            queue.push(w);
                        }
                    }
                }
                count
            }
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(n={})", self.class, self.len())
    }
}

/// Iterator behind [`Topology::neighbors`].
enum Neighbors<'a> {
    Complete { v: usize, next: usize, n: usize },
    Csr { heads: &'a [u32] },
}

impl Iterator for Neighbors<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            Neighbors::Complete { v, next, n } => {
                if *next == *v {
                    *next += 1;
                }
                if *next >= *n {
                    return None;
                }
                let out = *next;
                *next += 1;
                Some(out)
            }
            Neighbors::Csr { heads } => {
                let (&first, rest) = heads.split_first()?;
                *heads = rest;
                Some(first as usize)
            }
        }
    }
}

/// The `pos`-th edge of the lexicographic enumeration `(0,1), (0,2), …,
/// (n−2, n−1)`.
fn edge_at(n: usize, pos: usize) -> (usize, usize) {
    // Row a holds (n - 1 - a) edges; walk rows until pos falls inside.
    let mut a = 0usize;
    let mut remaining = pos;
    loop {
        let row = n - 1 - a;
        if remaining < row {
            return (a, a + 1 + remaining);
        }
        remaining -= row;
        a += 1;
    }
}

/// Uniform `f64` in `[0, 1)` from 53 random bits.
fn unit_f64(rng: &mut dyn RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_is_implicit_and_fully_adjacent() {
        let t = Topology::complete(5).unwrap();
        assert!(t.is_complete());
        assert_eq!(t.len(), 5);
        assert_eq!(t.edge_count(), 10);
        assert_eq!(t.arc_count(), 20);
        for v in 0..5 {
            assert_eq!(t.degree(v), 4);
            let nbrs: Vec<usize> = t.neighbors(v).collect();
            assert_eq!(nbrs.len(), 4);
            assert!(!nbrs.contains(&v));
        }
        assert!(t.contains_arc(0, 4));
        assert!(!t.contains_arc(2, 2));
        assert_eq!(
            Topology::complete(1),
            Err(TopologyError::TooSmall { len: 1, min: 2 })
        );
    }

    #[test]
    fn complete_arc_indexing_round_trips() {
        let t = Topology::complete(6).unwrap();
        for a in 0..t.arc_count() {
            let i = t.arc(a);
            assert_eq!(
                t.arc_index(i.starter().index(), i.reactor().index()),
                Some(a)
            );
        }
    }

    #[test]
    fn csr_arc_indexing_round_trips() {
        let t = Topology::grid2d(3, 3).unwrap();
        for a in 0..t.arc_count() {
            let i = t.arc(a);
            assert_eq!(
                t.arc_index(i.starter().index(), i.reactor().index()),
                Some(a)
            );
        }
        assert_eq!(t.arc_index(0, 8), None);
    }

    #[test]
    fn ring_structure() {
        let t = Topology::ring(5).unwrap();
        assert_eq!(t.edge_count(), 5);
        for v in 0..5 {
            assert_eq!(t.degree(v), 2);
            assert!(t.contains_arc(v, (v + 1) % 5));
            assert!(t.contains_arc((v + 1) % 5, v));
        }
        assert!(!t.contains_arc(0, 2));
        assert!(Topology::ring(2).is_err());
    }

    #[test]
    fn star_structure() {
        let t = Topology::star(6).unwrap();
        assert_eq!(t.degree(0), 5);
        for leaf in 1..6 {
            assert_eq!(t.degree(leaf), 1);
            assert!(t.contains_arc(0, leaf));
        }
        assert!(!t.contains_arc(1, 2));
    }

    #[test]
    fn grid_structure() {
        let t = Topology::grid2d(2, 3).unwrap();
        // Corner, edge and middle degrees of a 2×3 grid.
        assert_eq!(t.degree(0), 2);
        assert_eq!(t.degree(1), 3);
        assert_eq!(t.edge_count(), 7);
        assert!(t.contains_arc(0, 3));
        assert!(!t.contains_arc(0, 4));
        assert!(Topology::grid2d(1, 1).is_err());
        assert!(Topology::grid2d(1, 2).is_ok(), "1×2 grid is a single edge");
    }

    #[test]
    fn random_regular_is_simple_regular_connected() {
        for seed in 0..5 {
            let t = Topology::random_regular(20, 3, seed).unwrap();
            assert_eq!(t.len(), 20);
            assert_eq!(t.edge_count(), 30);
            for v in 0..20 {
                assert_eq!(t.degree(v), 3);
                assert!(!t.contains_arc(v, v));
            }
        }
    }

    #[test]
    fn random_regular_rejects_impossible_degrees() {
        assert!(matches!(
            Topology::random_regular(5, 3, 0), // n·d odd
            Err(TopologyError::InvalidDegree { .. })
        ));
        assert!(matches!(
            Topology::random_regular(4, 4, 0), // d ≥ n
            Err(TopologyError::InvalidDegree { .. })
        ));
        assert!(matches!(
            Topology::random_regular(4, 0, 0),
            Err(TopologyError::InvalidDegree { .. })
        ));
    }

    #[test]
    fn random_regular_pairing_failure_is_bounded_and_typed() {
        // 1-regular graphs on n > 2 vertices are perfect matchings —
        // never connected — so every attempt is rejected and the bounded
        // loop must terminate with the typed error, for any seed.
        for seed in 0..8 {
            assert_eq!(
                Topology::random_regular(4, 1, seed),
                Err(TopologyError::PairingFailed {
                    attempts: RANDOM_REGULAR_ATTEMPTS
                }),
                "seed {seed}"
            );
        }
        // The single feasible 1-regular case (n = 2) still constructs.
        assert!(Topology::random_regular(2, 1, 0).is_ok());
    }

    #[test]
    fn random_regular_is_deterministic_per_seed() {
        let a = Topology::random_regular(16, 4, 9).unwrap();
        let b = Topology::random_regular(16, 4, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn erdos_renyi_connected_draws_are_valid() {
        let t = Topology::erdos_renyi(30, 0.3, 4).unwrap();
        assert_eq!(t.len(), 30);
        for v in 0..30 {
            for w in t.neighbors(v) {
                assert_ne!(v, w);
                assert!(t.contains_arc(w, v), "adjacency must be symmetric");
            }
        }
    }

    #[test]
    fn erdos_renyi_p_one_is_the_complete_adjacency() {
        let t = Topology::erdos_renyi(6, 1.0, 0).unwrap();
        assert_eq!(t.edge_count(), 15);
        assert!(
            !t.is_complete(),
            "CSR-stored, even if structurally complete"
        );
        for v in 0..6 {
            assert_eq!(t.degree(v), 5);
        }
    }

    #[test]
    fn erdos_renyi_sparse_draws_are_rejected_as_disconnected() {
        // p far below the ln n / n connectivity threshold: overwhelmingly
        // disconnected. Every seed must either fail Disconnected or
        // produce a genuinely connected graph — never a silent bad graph.
        let mut rejected = 0;
        for seed in 0..10 {
            match Topology::erdos_renyi(40, 0.01, seed) {
                Err(TopologyError::Disconnected { .. }) => rejected += 1,
                Ok(t) => assert_eq!(t.len(), 40),
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(rejected > 0, "0.01 ≪ ln(40)/40 should reject some seeds");
    }

    #[test]
    fn erdos_renyi_rejects_bad_probabilities() {
        assert!(matches!(
            Topology::erdos_renyi(5, 0.0, 0),
            Err(TopologyError::InvalidProbability { .. })
        ));
        assert!(matches!(
            Topology::erdos_renyi(5, 1.5, 0),
            Err(TopologyError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn from_edges_validates() {
        assert!(matches!(
            Topology::from_edges(3, [(0, 1), (1, 2), (0, 3)]),
            Err(TopologyError::VertexOutOfBounds { vertex: 3, .. })
        ));
        assert!(matches!(
            Topology::from_edges(3, [(0, 0)]),
            Err(TopologyError::SelfLoop { vertex: 0 })
        ));
        assert!(matches!(
            Topology::from_edges(3, [(0, 1), (1, 0), (1, 2)]),
            Err(TopologyError::DuplicateEdge { .. })
        ));
        assert!(matches!(
            Topology::from_edges(4, [(0, 1), (2, 3)]),
            Err(TopologyError::Disconnected {
                reachable: 2,
                len: 4
            })
        ));
        let path = Topology::from_edges(3, [(2, 1), (0, 1)]).unwrap();
        assert_eq!(path.class(), &TopologyClass::Custom);
        assert_eq!(path.degree(1), 2);
    }

    #[test]
    fn sample_arc_stays_on_the_graph() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let t = Topology::ring(7).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..2_000 {
            let i = t.sample_arc(&mut rng);
            assert!(t.contains_arc(i.starter().index(), i.reactor().index()));
        }
    }

    #[test]
    fn complete_sample_matches_uniform_pair_stream() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let t = Topology::complete(9).unwrap();
        let mut a = SmallRng::seed_from_u64(17);
        let mut b = SmallRng::seed_from_u64(17);
        for _ in 0..500 {
            let i = t.sample_arc(&mut a);
            // The classic uniform ordered-pair draw, verbatim.
            let s = b.gen_range(0..9usize);
            let mut r = b.gen_range(0..8usize);
            if r >= s {
                r += 1;
            }
            assert_eq!(i, Interaction::new(s, r).unwrap());
        }
    }

    #[test]
    fn edges_enumerate_each_undirected_edge_once() {
        for t in [
            Topology::complete(5).unwrap(),
            Topology::ring(6).unwrap(),
            Topology::grid2d(3, 3).unwrap(),
        ] {
            let edges: Vec<(usize, usize)> = t.edges().collect();
            assert_eq!(edges.len(), t.edge_count(), "{t}");
            for (a, b) in edges {
                assert!(a < b, "{t}: unnormalized edge ({a}, {b})");
                assert!(t.contains_arc(a, b));
            }
        }
    }

    #[test]
    fn exact_conductance_matches_known_values() {
        // Ring: the balanced cut severs 2 edges, each side has volume n.
        let ring = Topology::ring(12).unwrap();
        assert!((ring.conductance_exact().unwrap() - 2.0 / 12.0).abs() < 1e-12);
        // Star: every cut not containing the hub is all-boundary, Φ = 1.
        let star = Topology::star(8).unwrap();
        assert!((star.conductance_exact().unwrap() - 1.0).abs() < 1e-12);
        // Complete: Φ = ⌈n/2⌉/(n−1) at the balanced cut.
        let complete = Topology::complete(8).unwrap();
        assert!((complete.conductance_exact().unwrap() - 4.0 / 7.0).abs() < 1e-12);
        // Above the limit, exact is refused…
        assert!(Topology::ring(17).unwrap().conductance_exact().is_none());
        // …but the closed form for big complete graphs still applies.
        assert!((Topology::complete(1000).unwrap().conductance() - 500.0 / 999.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_conductance_recovers_the_ring_cut() {
        // n = 64 is beyond the exact limit: conductance() runs the
        // spectral sweep, whose level sets on a ring are contiguous arcs
        // — so it finds the true 2/n cut.
        let ring = Topology::ring(64).unwrap();
        let phi = ring.conductance();
        assert!(
            (phi - 2.0 / 64.0).abs() < 5e-3,
            "sweep found {phi}, expected ~{}",
            2.0 / 64.0
        );
    }

    #[test]
    fn conductance_orders_families_by_expansion() {
        let n = 64;
        let ring = Topology::ring(n).unwrap().conductance();
        let grid = Topology::grid2d(8, 8).unwrap().conductance();
        let rr4 = Topology::random_regular(n, 4, 5).unwrap().conductance();
        let complete = Topology::complete(n).unwrap().conductance();
        assert!(
            ring < grid && grid < rr4 && rr4 < complete,
            "ring {ring} < grid {grid} < rr4 {rr4} < complete {complete}"
        );
    }

    #[test]
    fn spectral_gap_matches_analytic_values() {
        // Lazy walk on K_n: λ₂ = ½(1 − 1/(n−1)) → gap ≈ ½.
        let complete = Topology::complete(32).unwrap().spectral_profile(500);
        assert!(
            (complete.spectral_gap - 0.5 * (1.0 + 1.0 / 31.0)).abs() < 1e-6,
            "complete gap {}",
            complete.spectral_gap
        );
        // Lazy walk on C_n: λ₂ = ½(1 + cos(2π/n)).
        let ring = Topology::ring(32).unwrap().spectral_profile(20_000);
        let expect = 0.5 * (1.0 - (2.0 * std::f64::consts::PI / 32.0).cos());
        assert!(
            (ring.spectral_gap - expect).abs() < 1e-4,
            "ring gap {} vs analytic {expect}",
            ring.spectral_gap
        );
        assert!(ring.lambda2 > 0.0 && ring.lambda2 < 1.0);
        assert!(ring.iterations > 0);
    }

    #[test]
    fn cheeger_inequality_brackets_exact_conductance() {
        for t in [
            Topology::ring(12).unwrap(),
            Topology::star(10).unwrap(),
            Topology::grid2d(3, 4).unwrap(),
            Topology::random_regular(14, 3, 2).unwrap(),
            Topology::complete(10).unwrap(),
        ] {
            let phi = t.conductance_exact().unwrap();
            let gap = t.spectral_profile(20_000).spectral_gap;
            assert!(
                gap / 2.0 <= phi + 1e-9 && phi <= (2.0 * gap).sqrt() + 1e-9,
                "{t}: Cheeger violated — gap {gap}, Φ {phi}"
            );
        }
    }

    #[test]
    fn sweep_cut_vertices_recovers_ring_arc() {
        let n = 64;
        let ring = Topology::ring(n).unwrap();
        let side = ring.sweep_cut_vertices();
        // A sparsest ring cut is a contiguous arc of about half the ring.
        assert!(!side.is_empty() && side.len() <= n / 2, "{side:?}");
        // Contiguity modulo n: crossing edges out of the arc number 2.
        let in_side: Vec<bool> = {
            let mut v = vec![false; n];
            for &u in &side {
                v[u] = true;
            }
            v
        };
        let crossing = (0..n)
            .filter(|&u| in_side[u])
            .map(|u| ring.neighbors(u).filter(|&w| !in_side[w]).count())
            .sum::<usize>();
        assert_eq!(crossing, 2, "sweep side is not a contiguous arc: {side:?}");
    }

    #[test]
    fn sweep_cut_vertices_empty_for_complete_and_matches_conductance() {
        assert!(Topology::complete(20)
            .unwrap()
            .sweep_cut_vertices()
            .is_empty());
        // The public conductance estimate and the exposed cut agree: the
        // returned side realizes the reported sweep conductance.
        let t = Topology::random_regular(48, 4, 3).unwrap();
        let side = t.sweep_cut_vertices();
        assert!(!side.is_empty());
        let in_side: Vec<bool> = {
            let mut v = vec![false; t.len()];
            for &u in &side {
                v[u] = true;
            }
            v
        };
        let cut: usize = (0..t.len())
            .filter(|&u| in_side[u])
            .map(|u| t.neighbors(u).filter(|&w| !in_side[w]).count())
            .sum();
        let vol: usize = side.iter().map(|&u| t.degree(u)).sum();
        let denom = vol.min(t.arc_count() - vol);
        let phi_side = cut as f64 / denom as f64;
        assert!((phi_side - t.conductance()).abs() < 1e-9);
    }

    #[test]
    fn display_labels_families() {
        assert_eq!(Topology::complete(4).unwrap().to_string(), "complete(n=4)");
        assert_eq!(Topology::ring(5).unwrap().to_string(), "ring(n=5)");
        assert_eq!(Topology::grid2d(2, 3).unwrap().to_string(), "grid2x3(n=6)");
        assert_eq!(
            Topology::random_regular(8, 2, 0).unwrap().to_string(),
            "rr2(n=8)"
        );
    }

    #[test]
    fn errors_display_lowercase() {
        let msgs = [
            TopologyError::TooSmall { len: 1, min: 2 }.to_string(),
            TopologyError::Disconnected {
                reachable: 2,
                len: 5,
            }
            .to_string(),
            TopologyError::InvalidDegree { len: 5, degree: 3 }.to_string(),
            TopologyError::PairingFailed { attempts: 7 }.to_string(),
        ];
        for m in msgs {
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }
}

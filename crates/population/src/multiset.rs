//! Order-insensitive views of configurations.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

use crate::State;

/// A multiset of states.
///
/// Configurations of anonymous agents are naturally multisets: permuting the
/// agents yields an equivalent configuration. [`Multiset`] is the canonical
/// order-insensitive view used by convergence detection, the model checker
/// and the experiment harnesses.
///
/// # Example
///
/// ```
/// use ppfts_population::Multiset;
///
/// let m: Multiset<&str> = ["c", "p", "c"].into_iter().collect();
/// assert_eq!(m.count(&"c"), 2);
/// assert_eq!(m.count(&"p"), 1);
/// assert_eq!(m.count(&"cs"), 0);
/// assert_eq!(m.len(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Multiset<Q: State> {
    counts: HashMap<Q, usize>,
    len: usize,
}

impl<Q: State> Multiset<Q> {
    /// Creates an empty multiset.
    pub fn new() -> Self {
        Multiset {
            counts: HashMap::new(),
            len: 0,
        }
    }

    /// Number of elements, counted with multiplicity.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the multiset contains no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of *distinct* elements.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Multiplicity of `q`.
    pub fn count(&self, q: &Q) -> usize {
        self.counts.get(q).copied().unwrap_or(0)
    }

    /// Whether `q` occurs at least once.
    pub fn contains(&self, q: &Q) -> bool {
        self.count(q) > 0
    }

    /// Adds one occurrence of `q`, returning its new multiplicity.
    pub fn insert(&mut self, q: Q) -> usize {
        self.len += 1;
        let c = self.counts.entry(q).or_insert(0);
        *c += 1;
        *c
    }

    /// Adds `k` occurrences of `q`.
    pub fn insert_many(&mut self, q: Q, k: usize) {
        if k == 0 {
            return;
        }
        self.len += k;
        *self.counts.entry(q).or_insert(0) += k;
    }

    /// Removes one occurrence of `q` if present; returns whether anything
    /// was removed.
    pub fn remove(&mut self, q: &Q) -> bool {
        match self.counts.get_mut(q) {
            Some(c) if *c > 1 => {
                *c -= 1;
                self.len -= 1;
                true
            }
            Some(_) => {
                self.counts.remove(q);
                self.len -= 1;
                true
            }
            None => false,
        }
    }

    /// Iterates over `(state, multiplicity)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Q, usize)> {
        self.counts.iter().map(|(q, &c)| (q, c))
    }

    /// Iterates over the distinct states in arbitrary order.
    pub fn states(&self) -> impl Iterator<Item = &Q> {
        self.counts.keys()
    }

    /// The multiset obtained by mapping every element through `f`
    /// (multiplicities of equal images add up).
    pub fn map<R: State>(&self, mut f: impl FnMut(&Q) -> R) -> Multiset<R> {
        let mut out = Multiset::new();
        for (q, c) in self.iter() {
            out.insert_many(f(q), c);
        }
        out
    }

    /// Whether the two multisets contain the same elements with the same
    /// multiplicities.
    pub fn same_as(&self, other: &Multiset<Q>) -> bool {
        self.len == other.len && self.counts.iter().all(|(q, &c)| other.count(q) == c)
    }
}

impl<Q: State> PartialEq for Multiset<Q> {
    fn eq(&self, other: &Self) -> bool {
        self.same_as(other)
    }
}

impl<Q: State> Eq for Multiset<Q> {}

impl<Q: State> FromIterator<Q> for Multiset<Q> {
    fn from_iter<I: IntoIterator<Item = Q>>(iter: I) -> Self {
        let mut m = Multiset::new();
        m.extend(iter);
        m
    }
}

impl<Q: State> Extend<Q> for Multiset<Q> {
    fn extend<I: IntoIterator<Item = Q>>(&mut self, iter: I) {
        for q in iter {
            self.insert(q);
        }
    }
}

impl<Q: State + fmt::Display> fmt::Display for Multiset<Q> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (q, c)) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{q}×{c}")?;
        }
        write!(f, "}}")
    }
}

impl<Q: State + Ord> Multiset<Q> {
    /// The `(state, multiplicity)` pairs sorted by state.
    ///
    /// Useful as a canonical form: two multisets are equal iff their sorted
    /// pair lists are equal.
    pub fn sorted_pairs(&self) -> Vec<(Q, usize)> {
        let mut v: Vec<(Q, usize)> = self.iter().map(|(q, c)| (q.clone(), c)).collect();
        v.sort();
        v
    }
}

// `Hash` must agree with the order-insensitive `Eq`, so hash an
// order-insensitive digest: XOR of per-entry hashes.
impl<Q: State> Hash for Multiset<Q> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        use std::hash::Hasher;
        let mut acc: u64 = 0;
        for (q, c) in &self.counts {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            q.hash(&mut h);
            c.hash(&mut h);
            acc ^= h.finish();
        }
        state.write_u64(acc);
        state.write_usize(self.len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_remove_track_multiplicity() {
        let mut m = Multiset::new();
        assert_eq!(m.insert('x'), 1);
        assert_eq!(m.insert('x'), 2);
        assert_eq!(m.insert('y'), 1);
        assert_eq!(m.len(), 3);
        assert_eq!(m.distinct(), 2);
        assert!(m.remove(&'x'));
        assert_eq!(m.count(&'x'), 1);
        assert!(m.remove(&'x'));
        assert!(!m.remove(&'x'));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let a: Multiset<u8> = [1, 2, 2, 3].into_iter().collect();
        let b: Multiset<u8> = [2, 3, 1, 2].into_iter().collect();
        let c: Multiset<u8> = [1, 2, 3, 3].into_iter().collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn hash_agrees_with_eq() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a: Multiset<u8> = [5, 6, 6].into_iter().collect();
        let b: Multiset<u8> = [6, 5, 6].into_iter().collect();
        let hash = |m: &Multiset<u8>| {
            let mut h = DefaultHasher::new();
            m.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn map_merges_images() {
        let m: Multiset<i32> = [-2, 2, 3].into_iter().collect();
        let abs = m.map(|q| q.abs());
        assert_eq!(abs.count(&2), 2);
        assert_eq!(abs.count(&3), 1);
        assert_eq!(abs.len(), 3);
    }

    #[test]
    fn sorted_pairs_is_canonical() {
        let a: Multiset<u8> = [9, 1, 9].into_iter().collect();
        assert_eq!(a.sorted_pairs(), vec![(1, 1), (9, 2)]);
    }

    #[test]
    fn insert_many_zero_is_noop() {
        let mut m: Multiset<u8> = Multiset::new();
        m.insert_many(7, 0);
        assert!(m.is_empty());
        assert!(!m.contains(&7));
    }
}

//! Collision-free partitioning of interaction batches for sharded stepping.
//!
//! The batched execution path in `ppfts-engine` draws a whole batch of
//! (interaction, fault) steps up front and then applies them in batch
//! order. To apply a batch across worker threads *without changing the
//! result*, the steps must be grouped so that
//!
//! 1. steps inside a group touch pairwise-disjoint agent pairs (they
//!    commute, so the group may be applied in any order — or in
//!    parallel), and
//! 2. the groups, applied in order, replay every agent's interactions in
//!    batch order (so the composition equals the sequential result).
//!
//! [`LevelPlan`] computes such a grouping by *level scheduling*: step `k`
//! with endpoints `(s, r)` is assigned
//!
//! ```text
//! level[k] = max(next_level[s], next_level[r])
//! ```
//!
//! where `next_level[a]` is one past the level of agent `a`'s most recent
//! step (0 if untouched). Two steps sharing an agent therefore get
//! strictly increasing levels — so each level is agent-disjoint — and
//! each agent's steps appear in batch order across levels. Within a
//! level, steps are kept in batch order (a stable counting sort), which
//! makes the whole plan a deterministic function of the batch alone.
//!
//! When the batch is much longer than the population (the regime the
//! batched runner targets), levels hold ≈ `n/2` interactions each — a
//! full matching's worth of independent work per synchronization point.
//!
//! This module is pure safe bookkeeping; the thread orchestration that
//! consumes a plan lives in `ppfts-engine`.

use crate::interaction::Interaction;

/// A partition of an interaction batch into ordered, agent-disjoint
/// levels. See the module docs for the construction and the
/// determinism argument.
///
/// The plan holds *indices into the batch*, not the interactions
/// themselves; callers keep the batch and use [`LevelPlan::level`] /
/// [`LevelPlan::levels`] to walk it level by level. Internal scratch
/// buffers are retained across [`LevelPlan::compute`] calls so a plan
/// can be reused batch after batch without reallocating.
///
/// # Example
///
/// ```
/// use ppfts_population::{Interaction, LevelPlan};
///
/// let batch = [
///     Interaction::new(0, 1).unwrap(), // level 0
///     Interaction::new(2, 3).unwrap(), // level 0 (disjoint from the first)
///     Interaction::new(1, 2).unwrap(), // level 1 (waits for both)
/// ];
/// let mut plan = LevelPlan::new();
/// plan.compute(batch.iter().copied(), 4);
/// assert_eq!(plan.level_count(), 2);
/// assert_eq!(plan.level(0), &[0, 1]);
/// assert_eq!(plan.level(1), &[2]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct LevelPlan {
    /// Batch indices grouped by level; batch order within each level.
    order: Vec<u32>,
    /// Level `l` occupies `order[bounds[l] .. bounds[l + 1]]`.
    bounds: Vec<u32>,
    /// Scratch: level assigned to each batch index.
    level_of: Vec<u32>,
    /// Scratch: per agent, one past the level of its most recent step.
    /// Valid only where `stamp` matches `epoch` (avoids an O(n) clear
    /// per batch).
    next_level: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
    /// Scratch: write cursor per level for the counting sort.
    cursor: Vec<u32>,
    /// Streaming state between [`LevelPlan::begin`] and
    /// [`LevelPlan::finish`]: population size and highest level so far.
    n_agents: usize,
    max_level: u32,
}

impl LevelPlan {
    /// Creates an empty plan. Scratch buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        LevelPlan::default()
    }

    /// Computes the level partition of `pairs` over a population of
    /// `n_agents` agents, replacing any previous plan. Equivalent to
    /// [`begin`](LevelPlan::begin) / [`push`](LevelPlan::push) per pair /
    /// [`finish`](LevelPlan::finish).
    ///
    /// # Panics
    ///
    /// Panics if an interaction references an agent `>= n_agents`, or if
    /// the batch holds `u32::MAX` or more steps (batches are drawn in
    /// bounded chunks well below that).
    pub fn compute(&mut self, pairs: impl ExactSizeIterator<Item = Interaction>, n_agents: usize) {
        self.begin(n_agents);
        for pair in pairs {
            self.push(pair);
        }
        self.finish();
    }

    /// Starts a streaming plan over a population of `n_agents` agents,
    /// discarding any previous plan.
    ///
    /// The streaming triple `begin` / [`push`](LevelPlan::push) /
    /// [`finish`](LevelPlan::finish) lets a caller assign levels *while
    /// it walks the batch for other reasons* (the sharded runner fuses
    /// level assignment into its batch-flattening loop) instead of
    /// feeding the planner a second pass over materialized interactions.
    pub fn begin(&mut self, n_agents: usize) {
        self.order.clear();
        self.bounds.clear();
        self.level_of.clear();
        if self.next_level.len() < n_agents {
            self.next_level.resize(n_agents, 0);
            self.stamp.resize(n_agents, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: old stamps could alias the new epoch, so reset.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.n_agents = n_agents;
        self.max_level = 0;
    }

    /// Appends the next batch step to the streaming plan: assigns its
    /// level from the per-agent watermarks, one O(1) update.
    ///
    /// # Panics
    ///
    /// Panics if `pair` references an agent `>= n_agents`, or if the
    /// batch reaches `u32::MAX` steps.
    pub fn push(&mut self, pair: Interaction) {
        let n_agents = self.n_agents;
        let s = pair.starter().index();
        let r = pair.reactor().index();
        assert!(
            s < n_agents && r < n_agents,
            "interaction {pair} out of bounds for population of {n_agents}"
        );
        assert!(
            self.level_of.len() < (u32::MAX - 1) as usize,
            "batch overflows the level planner's u32 indices"
        );
        let ls = if self.stamp[s] == self.epoch {
            self.next_level[s]
        } else {
            0
        };
        let lr = if self.stamp[r] == self.epoch {
            self.next_level[r]
        } else {
            0
        };
        let level = ls.max(lr);
        self.level_of.push(level);
        self.next_level[s] = level + 1;
        self.next_level[r] = level + 1;
        self.stamp[s] = self.epoch;
        self.stamp[r] = self.epoch;
        self.max_level = self.max_level.max(level);
    }

    /// Seals the streaming plan: groups the pushed steps into levels (a
    /// stable counting sort of batch indices by assigned level). The
    /// plan is only valid for reading after this call.
    pub fn finish(&mut self) {
        let len = self.level_of.len();
        let level_count = if len == 0 {
            0
        } else {
            self.max_level as usize + 1
        };
        self.bounds.clear();
        self.bounds.resize(level_count + 1, 0);
        for &l in &self.level_of {
            self.bounds[l as usize + 1] += 1;
        }
        for l in 1..self.bounds.len() {
            self.bounds[l] += self.bounds[l - 1];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.bounds[..level_count]);
        self.order.resize(len, 0);
        for (k, &l) in self.level_of.iter().enumerate() {
            let slot = self.cursor[l as usize];
            self.order[slot as usize] = k as u32;
            self.cursor[l as usize] += 1;
        }
    }

    /// Number of steps in the planned batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when the planned batch is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Number of levels (synchronization points) in the plan.
    #[must_use]
    pub fn level_count(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// Batch indices of level `l`, in batch order.
    ///
    /// # Panics
    ///
    /// Panics if `l >= level_count()`.
    #[must_use]
    pub fn level(&self, l: usize) -> &[u32] {
        &self.order[self.bounds[l] as usize..self.bounds[l + 1] as usize]
    }

    /// Iterates over the levels in order; each item is the level's batch
    /// indices in batch order.
    pub fn levels(&self) -> impl Iterator<Item = &[u32]> {
        (0..self.level_count()).map(move |l| self.level(l))
    }

    /// Size of the largest level — an upper bound on useful parallelism
    /// for this batch.
    #[must_use]
    pub fn widest_level(&self) -> usize {
        self.levels().map(<[u32]>::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;

    fn random_batch(rng: &mut SmallRng, n: usize, len: usize) -> Vec<Interaction> {
        (0..len)
            .map(|_| loop {
                let s = rng.gen_range(0..n);
                let r = rng.gen_range(0..n);
                if s != r {
                    return Interaction::new(s, r).unwrap();
                }
            })
            .collect()
    }

    /// The three invariants that make a plan a valid parallel schedule.
    fn assert_valid_plan(plan: &LevelPlan, batch: &[Interaction]) {
        // (a) Every batch index appears exactly once.
        let mut seen = vec![false; batch.len()];
        for level in plan.levels() {
            for &k in level {
                assert!(!seen[k as usize], "index {k} scheduled twice");
                seen[k as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some index never scheduled");

        // (b) No agent appears twice within a level.
        for level in plan.levels() {
            let mut agents = HashSet::new();
            for &k in level {
                let i = batch[k as usize];
                assert!(agents.insert(i.starter()), "starter repeated in level");
                assert!(agents.insert(i.reactor()), "reactor repeated in level");
            }
        }

        // (c) Each agent's steps appear in batch order across the
        // level sequence, and in batch order within each level.
        let mut last_index: std::collections::HashMap<AgentIdKey, u32> = Default::default();
        for level in plan.levels() {
            let mut prev = None;
            for &k in level {
                if let Some(p) = prev {
                    assert!(k > p, "level not in batch order");
                }
                prev = Some(k);
            }
            for &k in level {
                let i = batch[k as usize];
                for a in [i.starter().index(), i.reactor().index()] {
                    if let Some(&p) = last_index.get(&a) {
                        assert!(k > p, "agent {a} replayed out of batch order");
                    }
                    last_index.insert(a, k);
                }
            }
        }
    }

    type AgentIdKey = usize;

    #[test]
    fn empty_batch_has_no_levels() {
        let mut plan = LevelPlan::new();
        plan.compute([].into_iter(), 8);
        assert_eq!(plan.len(), 0);
        assert_eq!(plan.level_count(), 0);
        assert!(plan.is_empty());
        assert_eq!(plan.widest_level(), 0);
    }

    #[test]
    fn disjoint_pairs_share_a_level() {
        let batch = [
            Interaction::new(0, 1).unwrap(),
            Interaction::new(2, 3).unwrap(),
            Interaction::new(4, 5).unwrap(),
        ];
        let mut plan = LevelPlan::new();
        plan.compute(batch.iter().copied(), 6);
        assert_eq!(plan.level_count(), 1);
        assert_eq!(plan.level(0), &[0, 1, 2]);
    }

    #[test]
    fn chained_pairs_serialize() {
        // Every step shares agent 0 — the plan must be fully sequential.
        let batch: Vec<Interaction> = (1..6).map(|r| Interaction::new(0, r).unwrap()).collect();
        let mut plan = LevelPlan::new();
        plan.compute(batch.iter().copied(), 6);
        assert_eq!(plan.level_count(), 5);
        for (l, level) in plan.levels().enumerate() {
            assert_eq!(level, &[l as u32]);
        }
    }

    #[test]
    fn reuse_across_batches_resets_state() {
        let mut plan = LevelPlan::new();
        let a = [
            Interaction::new(0, 1).unwrap(),
            Interaction::new(0, 2).unwrap(),
        ];
        plan.compute(a.iter().copied(), 4);
        assert_eq!(plan.level_count(), 2);
        // A fresh batch on the same agents must start from level 0 again.
        let b = [Interaction::new(0, 1).unwrap()];
        plan.compute(b.iter().copied(), 4);
        assert_eq!(plan.level_count(), 1);
        assert_valid_plan(&plan, &b);
    }

    #[test]
    fn random_batches_yield_valid_plans() {
        let mut rng = SmallRng::seed_from_u64(0xE16);
        let mut plan = LevelPlan::new();
        for &(n, len) in &[(2usize, 64usize), (5, 200), (16, 1000), (64, 4096)] {
            for _ in 0..8 {
                let batch = random_batch(&mut rng, n, len);
                plan.compute(batch.iter().copied(), n);
                assert_valid_plan(&plan, &batch);
                // Long batches over few agents must still expose
                // parallelism bounded by a perfect matching.
                assert!(plan.widest_level() <= n / 2);
            }
        }
    }

    #[test]
    fn streaming_plan_matches_compute() {
        let mut rng = SmallRng::seed_from_u64(0xBEE);
        let mut whole = LevelPlan::new();
        let mut streamed = LevelPlan::new();
        for &(n, len) in &[(2usize, 64usize), (16, 1000), (64, 4096)] {
            let batch = random_batch(&mut rng, n, len);
            whole.compute(batch.iter().copied(), n);
            streamed.begin(n);
            for &pair in &batch {
                streamed.push(pair);
            }
            streamed.finish();
            assert_eq!(whole.level_count(), streamed.level_count());
            for l in 0..whole.level_count() {
                assert_eq!(whole.level(l), streamed.level(l));
            }
            assert_valid_plan(&streamed, &batch);
        }
        // And an empty streaming session seals to an empty plan.
        streamed.begin(4);
        streamed.finish();
        assert!(streamed.is_empty());
        assert_eq!(streamed.level_count(), 0);
    }

    #[test]
    fn long_batch_levels_approach_matching_width() {
        // batch >> n: average level occupancy should be a decent
        // fraction of n/2, or the sharded path has no work to spread.
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 256;
        let batch = random_batch(&mut rng, n, 8192);
        let mut plan = LevelPlan::new();
        plan.compute(batch.iter().copied(), n);
        let avg = plan.len() as f64 / plan.level_count() as f64;
        assert!(
            avg > n as f64 / 8.0,
            "average level occupancy {avg:.1} too small for n = {n}"
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_interaction_panics() {
        let mut plan = LevelPlan::new();
        let batch = [Interaction::new(0, 9).unwrap()];
        plan.compute(batch.iter().copied(), 4);
    }
}

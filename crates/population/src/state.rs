//! State bounds and enumerable state spaces.

use std::fmt::Debug;
use std::hash::Hash;

/// Bound satisfied by every local-state type.
///
/// This is a blanket trait: any `Clone + Eq + Hash + Debug + Send + Sync +
/// 'static` type is a valid state, so protocol authors never implement it by
/// hand. Simulator states wrap protocol states, so the bound must compose
/// (e.g. a `SknoState<Q>` is itself a `State` whenever `Q` is).
///
/// # Example
///
/// ```
/// use ppfts_population::State;
///
/// fn takes_state<Q: State>(_q: Q) {}
/// takes_state(42u8);
/// takes_state(("leader", 3usize));
/// ```
pub trait State: Clone + Eq + Hash + Debug + Send + Sync + 'static {}

impl<T: Clone + Eq + Hash + Debug + Send + Sync + 'static> State for T {}

/// Protocols whose full state space can be enumerated.
///
/// Exhaustive verification (the bounded model checker in `ppfts-verify`)
/// and sampling-based model validation need the list of states a protocol
/// can ever be in. For finite-state protocols this is the whole of `Q_P`;
/// simulators with unbounded memory do not implement this trait.
///
/// Implementations must return every reachable state at least once;
/// returning duplicates is allowed but wasteful.
///
/// # Example
///
/// ```
/// use ppfts_population::EnumerableStates;
///
/// struct Bit;
/// impl EnumerableStates for Bit {
///     type State = bool;
///     fn states(&self) -> Vec<bool> {
///         vec![false, true]
///     }
/// }
/// assert_eq!(Bit.states().len(), 2);
/// ```
pub trait EnumerableStates {
    /// The state type being enumerated.
    type State: State;

    /// Every state the protocol can assume.
    fn states(&self) -> Vec<Self::State>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, PartialEq, Eq, Hash, Debug)]
    enum Tri {
        A,
        B,
        C,
    }

    struct TriSpace;
    impl EnumerableStates for TriSpace {
        type State = Tri;
        fn states(&self) -> Vec<Tri> {
            vec![Tri::A, Tri::B, Tri::C]
        }
    }

    #[test]
    fn custom_enums_are_states() {
        fn assert_state<Q: State>() {}
        assert_state::<Tri>();
        assert_state::<(u32, Option<bool>)>();
    }

    #[test]
    fn enumerates_all_states() {
        let all = TriSpace.states();
        assert!(all.contains(&Tri::A) && all.contains(&Tri::B) && all.contains(&Tri::C));
        assert_eq!(all.len(), 3);
    }
}

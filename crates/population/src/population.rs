//! The storage-backend abstraction over agent populations.

use crate::{Multiset, State};

/// An agent-storage backend: how the global state of a population is held
/// in memory.
///
/// Two backends implement this trait:
///
/// * [`DenseConfiguration`](crate::DenseConfiguration) — one state per
///   agent, indexed by [`AgentId`](crate::AgentId), O(n) memory. The only
///   backend that can attribute interactions to individual agents, which
///   per-agent simulator states (unique IDs, partner tracking) and
///   full-trace certification require.
/// * [`CountConfiguration`](crate::CountConfiguration) — the multiset of
///   states with multiplicities, O(distinct states) memory regardless of
///   `n`. Agents of a population protocol are anonymous, so for protocols
///   whose per-agent state carries no identity the counts capture the
///   configuration exactly (Berenbrink et al., *Simulating Population
///   Protocols in Sub-Constant Time per Interaction*), unlocking runs at
///   n = 10⁶ and beyond.
///
/// This trait is the *storage* half of the abstraction: size and the
/// anonymous multiset view, the common currency of convergence
/// predicates. The *execution* half — drawing interacting pairs and
/// applying outcomes — lives in `ppfts-engine` (`ExecBackend`), which
/// builds on this one.
///
/// # Example
///
/// ```
/// use ppfts_population::{CountConfiguration, DenseConfiguration, Population};
///
/// let dense = DenseConfiguration::new(vec!['c', 'p', 'c']);
/// let counts = CountConfiguration::from_groups([('c', 2), ('p', 1)]);
/// assert_eq!(Population::len(&dense), 3);
/// assert_eq!(counts.len(), 3);
/// assert!(dense.same_counts(&counts));
/// ```
pub trait Population: Clone {
    /// Local state type of the stored agents.
    type State: State;

    /// Number of agents `n`, counted with multiplicity.
    fn len(&self) -> usize;

    /// Whether the population holds no agents.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The multiset of states — the anonymous view both backends share.
    fn counts(&self) -> Multiset<Self::State>;

    /// Number of agents currently in state `q`.
    fn count_state(&self, q: &Self::State) -> usize;

    /// Whether `other` holds exactly the same multiset of states,
    /// regardless of its backend.
    fn same_counts<P: Population<State = Self::State>>(&self, other: &P) -> bool {
        self.len() == other.len() && self.counts() == other.counts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CountConfiguration, DenseConfiguration};

    #[test]
    fn backends_agree_through_the_trait() {
        let dense = DenseConfiguration::new(vec![1u8, 2, 2, 3]);
        let counts = CountConfiguration::from_groups([(1u8, 1), (2, 2), (3, 1)]);
        assert_eq!(Population::len(&dense), Population::len(&counts));
        assert_eq!(Population::counts(&dense), Population::counts(&counts));
        assert_eq!(Population::count_state(&dense, &2), 2);
        assert_eq!(Population::count_state(&counts, &2), 2);
        assert!(dense.same_counts(&counts));
        assert!(counts.same_counts(&dense));
    }

    #[test]
    fn same_counts_detects_differences() {
        let dense = DenseConfiguration::new(vec![1u8, 1]);
        let counts = CountConfiguration::from_groups([(1u8, 1), (2, 1)]);
        assert!(!dense.same_counts(&counts));
        let short = CountConfiguration::from_groups([(1u8, 1)]);
        assert!(!dense.same_counts(&short));
        assert!(!Population::is_empty(&dense));
    }
}

//! Core data model for population protocols.
//!
//! A *population protocol* (Angluin et al., "Computation in networks of
//! passively mobile finite-state sensors") is a collection of `n` anonymous
//! agents, each holding a local state from a set `Q`. An external scheduler
//! repeatedly picks an ordered pair of agents — the *starter* and the
//! *reactor* — and the pair atomically updates its states according to a
//! joint transition function `δ: Q × Q → Q × Q`.
//!
//! This crate provides the protocol-level vocabulary shared by the whole
//! `ppfts` workspace:
//!
//! * [`AgentId`] — index of an agent within a population,
//! * [`Interaction`] — an ordered (starter, reactor) pair,
//! * [`Population`] — the storage-backend abstraction over agent
//!   populations, with two implementations:
//!   [`DenseConfiguration`] (alias [`Configuration`]) — the vector of
//!   local states of all agents — and [`CountConfiguration`] — state
//!   multiplicities only, O(distinct states) memory for giant anonymous
//!   runs,
//! * [`Multiset`] — order-insensitive view of a configuration,
//! * [`dist`] — exact discrete samplers (binomial, hypergeometric,
//!   multinomial, [`AliasTable`]) powering the batch-epoch execution path,
//! * [`Topology`] — first-class interaction graphs (complete, ring, star,
//!   grid, random-regular, Erdős–Rényi) with CSR adjacency and O(1)
//!   uniform arc sampling, the data behind graph-aware scheduling,
//! * [`TwoWayProtocol`] — the transition function `δ_P` of a protocol in the
//!   standard two-way model,
//! * [`Semantics`] — input/output conventions used to state correctness
//!   ("the population stably computes ..."),
//! * [`DeltaRule`]/[`TableProtocol`] — table-driven protocol construction.
//!
//! The *interaction models* (two-way, immediate transmission/observation,
//! and their omissive weakenings) live in `ppfts-engine`; the fault-tolerant
//! simulators that are the subject of the reproduced paper live in
//! `ppfts-core`.
//!
//! # Example
//!
//! ```
//! use ppfts_population::{Configuration, Interaction, TwoWayProtocol};
//!
//! /// One-bit epidemic: an infected starter infects the reactor.
//! struct Epidemic;
//!
//! impl TwoWayProtocol for Epidemic {
//!     type State = bool;
//!     fn delta(&self, s: &bool, r: &bool) -> (bool, bool) {
//!         (*s, *s || *r)
//!     }
//! }
//!
//! let mut config = Configuration::new(vec![true, false, false]);
//! let i = Interaction::new(0, 2).unwrap();
//! config.apply(&Epidemic, i).unwrap();
//! assert_eq!(config.as_slice(), &[true, false, true]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agent;
mod config;
mod count;
pub mod dist;
mod error;
mod interaction;
mod multiset;
mod population;
mod protocol;
mod semantics;
mod shard;
mod state;
mod topology;

pub use agent::AgentId;
pub use config::{Configuration, DenseConfiguration};
pub use count::CountConfiguration;
pub use dist::AliasTable;
pub use error::PopulationError;
pub use interaction::Interaction;
pub use multiset::Multiset;
pub use population::Population;
pub use protocol::{
    delta_closure, DeltaRule, FunctionProtocol, SymmetryReport, TableProtocol, TwoWayProtocol,
};
pub use semantics::{unanimous_output, unanimous_output_counts, ConsensusOutput, Semantics};
pub use shard::LevelPlan;
pub use state::{EnumerableStates, State};
pub use topology::{
    SpectralProfile, Topology, TopologyClass, TopologyError, EXACT_CONDUCTANCE_LIMIT,
    RANDOM_REGULAR_ATTEMPTS,
};

//! Two-way protocols: the objects being simulated.

use std::collections::HashMap;
use std::fmt;

use crate::{EnumerableStates, State};

/// A population protocol in the standard **two-way** interaction model.
///
/// The transition function `δ_P(a_s, a_r) = (fs(a_s, a_r), fr(a_s, a_r))`
/// jointly updates the starter and the reactor. `δ_P` must be
/// deterministic; non-determinism in executions comes only from the
/// scheduler.
///
/// This is the protocol *being simulated* in the reproduced paper: the
/// simulators in `ppfts-core` take any `TwoWayProtocol` and produce a
/// program for a weaker interaction model that simulates it.
///
/// # Example
///
/// ```
/// use ppfts_population::TwoWayProtocol;
///
/// /// Max-gossip: both agents learn the maximum of their values.
/// struct MaxGossip;
/// impl TwoWayProtocol for MaxGossip {
///     type State = u32;
///     fn delta(&self, s: &u32, r: &u32) -> (u32, u32) {
///         let m = (*s).max(*r);
///         (m, m)
///     }
/// }
///
/// assert_eq!(MaxGossip.delta(&3, &8), (8, 8));
/// assert_eq!(MaxGossip.starter_out(&3, &8), 8);
/// ```
pub trait TwoWayProtocol {
    /// Local state space `Q_P`.
    type State: State;

    /// The joint transition `δ_P(s, r)`.
    fn delta(&self, s: &Self::State, r: &Self::State) -> (Self::State, Self::State);

    /// The starter's component `fs(s, r)` of the transition.
    fn starter_out(&self, s: &Self::State, r: &Self::State) -> Self::State {
        self.delta(s, r).0
    }

    /// The reactor's component `fr(s, r)` of the transition.
    fn reactor_out(&self, s: &Self::State, r: &Self::State) -> Self::State {
        self.delta(s, r).1
    }

    /// Whether `δ` leaves the pair `(s, r)` unchanged.
    fn is_noop(&self, s: &Self::State, r: &Self::State) -> bool {
        self.delta(s, r) == (s.clone(), r.clone())
    }

    /// Whether `δ` treats the *unordered* pair `{q0, q1}` symmetrically,
    /// i.e. `δ(q0, q1) = (x, y)` and `δ(q1, q0) = (y, x)`.
    ///
    /// Lemma 1 of the paper requires this of the initial pair of the
    /// attacked protocol; the Pairing protocol satisfies it on `(c, p)`.
    fn is_symmetric_on(&self, q0: &Self::State, q1: &Self::State) -> bool {
        let (x, y) = self.delta(q0, q1);
        let (y2, x2) = self.delta(q1, q0);
        x == x2 && y == y2
    }
}

impl<P: TwoWayProtocol + ?Sized> TwoWayProtocol for &P {
    type State = P::State;
    fn delta(&self, s: &Self::State, r: &Self::State) -> (Self::State, Self::State) {
        (**self).delta(s, r)
    }
}

/// A single rewrite rule `(s, r) ↦ (s', r')` of a [`TableProtocol`].
///
/// # Example
///
/// ```
/// use ppfts_population::DeltaRule;
///
/// let rule = DeltaRule::new(('c', 'p'), ('C', '_'));
/// assert_eq!(rule.from(), &('c', 'p'));
/// assert_eq!(rule.to(), &('C', '_'));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaRule<Q: State> {
    from: (Q, Q),
    to: (Q, Q),
}

impl<Q: State> DeltaRule<Q> {
    /// Creates the rule `from ↦ to`.
    pub fn new(from: (Q, Q), to: (Q, Q)) -> Self {
        DeltaRule { from, to }
    }

    /// Left-hand side `(s, r)`.
    pub fn from(&self) -> &(Q, Q) {
        &self.from
    }

    /// Right-hand side `(s', r')`.
    pub fn to(&self) -> &(Q, Q) {
        &self.to
    }
}

/// A finite-state protocol defined by an explicit rule table.
///
/// Pairs not covered by any rule are left unchanged (the identity
/// transition), matching the "only non-trivial transition rules are ..."
/// convention used in the paper and throughout the PP literature.
///
/// # Example
///
/// The paper's Pairing protocol `P_IP` (Definition 5):
///
/// ```
/// use ppfts_population::{TableProtocol, TwoWayProtocol};
///
/// let pairing = TableProtocol::builder(vec!['s', 'c', 'p', '_'])
///     .rule(('c', 'p'), ('s', '_'))
///     .rule(('p', 'c'), ('_', 's'))
///     .build();
///
/// assert_eq!(pairing.delta(&'c', &'p'), ('s', '_'));
/// assert_eq!(pairing.delta(&'c', &'c'), ('c', 'c')); // identity
/// assert!(pairing.is_symmetric_on(&'c', &'p'));
/// ```
#[derive(Clone, Debug)]
pub struct TableProtocol<Q: State> {
    states: Vec<Q>,
    rules: HashMap<(Q, Q), (Q, Q)>,
}

impl<Q: State> TableProtocol<Q> {
    /// Starts building a table protocol over the given state space.
    pub fn builder(states: Vec<Q>) -> TableProtocolBuilder<Q> {
        TableProtocolBuilder {
            states,
            rules: HashMap::new(),
        }
    }

    /// Compiles any enumerable protocol into an explicit rule table by
    /// evaluating `δ` on every ordered state pair — the *port* that runs
    /// the classic protocol library on either population backend with
    /// table-lookup transitions.
    ///
    /// # Example
    ///
    /// ```
    /// use ppfts_population::{EnumerableStates, TableProtocol, TwoWayProtocol};
    ///
    /// /// Max of two bits, as a hand-written protocol.
    /// struct OrBit;
    /// impl TwoWayProtocol for OrBit {
    ///     type State = bool;
    ///     fn delta(&self, s: &bool, r: &bool) -> (bool, bool) {
    ///         (*s || *r, *s || *r)
    ///     }
    /// }
    /// impl EnumerableStates for OrBit {
    ///     type State = bool;
    ///     fn states(&self) -> Vec<bool> { vec![false, true] }
    /// }
    ///
    /// let table = TableProtocol::from_protocol(&OrBit);
    /// assert_eq!(table.delta(&false, &true), OrBit.delta(&false, &true));
    /// assert_eq!(table.rule_count(), 2); // (t,f) and (f,t); identities elided
    /// ```
    pub fn from_protocol<P>(protocol: &P) -> TableProtocol<Q>
    where
        P: TwoWayProtocol<State = Q> + EnumerableStates<State = Q>,
    {
        let states = protocol.states();
        let mut rules = HashMap::new();
        for s in &states {
            for r in &states {
                let (s2, r2) = protocol.delta(s, r);
                if s2 != *s || r2 != *r {
                    rules.insert((s.clone(), r.clone()), (s2, r2));
                }
            }
        }
        TableProtocol { states, rules }
    }

    /// The explicit (non-identity) rules of the table.
    pub fn rules(&self) -> impl Iterator<Item = DeltaRule<Q>> + '_ {
        self.rules
            .iter()
            .map(|(from, to)| DeltaRule::new(from.clone(), to.clone()))
    }

    /// Number of explicit rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Analyzes which unordered pairs the table treats symmetrically.
    pub fn symmetry_report(&self) -> SymmetryReport {
        let mut symmetric = 0usize;
        let mut asymmetric = Vec::new();
        for (i, q0) in self.states.iter().enumerate() {
            for q1 in self.states.iter().skip(i) {
                if self.is_symmetric_on(q0, q1) {
                    symmetric += 1;
                } else {
                    asymmetric.push((format!("{q0:?}"), format!("{q1:?}")));
                }
            }
        }
        SymmetryReport {
            symmetric_pairs: symmetric,
            asymmetric_pairs: asymmetric,
        }
    }
}

impl<Q: State> TwoWayProtocol for TableProtocol<Q> {
    type State = Q;

    fn delta(&self, s: &Q, r: &Q) -> (Q, Q) {
        match self.rules.get(&(s.clone(), r.clone())) {
            Some((s2, r2)) => (s2.clone(), r2.clone()),
            None => (s.clone(), r.clone()),
        }
    }
}

impl<Q: State> EnumerableStates for TableProtocol<Q> {
    type State = Q;
    fn states(&self) -> Vec<Q> {
        self.states.clone()
    }
}

/// Builder for [`TableProtocol`]; see [`TableProtocol::builder`].
#[derive(Clone, Debug)]
pub struct TableProtocolBuilder<Q: State> {
    states: Vec<Q>,
    rules: HashMap<(Q, Q), (Q, Q)>,
}

impl<Q: State> TableProtocolBuilder<Q> {
    /// Adds the rule `from ↦ to`, replacing any previous rule for `from`.
    ///
    /// # Panics
    ///
    /// Panics if any state mentioned by the rule is not part of the state
    /// space passed to [`TableProtocol::builder`]; a mistyped rule would
    /// otherwise silently corrupt experiments.
    pub fn rule(mut self, from: (Q, Q), to: (Q, Q)) -> Self {
        for q in [&from.0, &from.1, &to.0, &to.1] {
            assert!(
                self.states.contains(q),
                "rule references state {q:?} outside the declared state space"
            );
        }
        self.rules.insert(from, to);
        self
    }

    /// Adds `rule` and its mirror image, making the unordered pair
    /// symmetric: `(s, r) ↦ (x, y)` and `(r, s) ↦ (y, x)`.
    pub fn symmetric_rule(self, from: (Q, Q), to: (Q, Q)) -> Self {
        let mirrored_from = (from.1.clone(), from.0.clone());
        let mirrored_to = (to.1.clone(), to.0.clone());
        self.rule(from, to).rule(mirrored_from, mirrored_to)
    }

    /// Finalizes the table.
    pub fn build(self) -> TableProtocol<Q> {
        TableProtocol {
            states: self.states,
            rules: self.rules,
        }
    }
}

/// Outcome of [`TableProtocol::symmetry_report`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SymmetryReport {
    /// Number of unordered pairs on which `δ` is symmetric.
    pub symmetric_pairs: usize,
    /// Debug renderings of the asymmetric pairs.
    pub asymmetric_pairs: Vec<(String, String)>,
}

impl SymmetryReport {
    /// Whether `δ` is symmetric on every unordered pair.
    pub fn is_fully_symmetric(&self) -> bool {
        self.asymmetric_pairs.is_empty()
    }
}

/// The δ-closure of a seed set: every state reachable by repeatedly
/// applying `δ` to ordered pairs of already-reachable states.
///
/// This is the *population-level* reachable state space — a configuration
/// whose agents all start in `seeds` can only ever contain states from the
/// closure, whatever the scheduler does. The static analyzer uses it to
/// flag declared-but-unreachable states and rules that can never fire.
///
/// The returned vector is deterministic: seeds first (in iteration order,
/// duplicates elided), then newly discovered states in discovery order.
///
/// # Example
///
/// ```
/// use ppfts_population::{delta_closure, TableProtocol};
///
/// let table = TableProtocol::builder(vec!['a', 'b', 'x', 'z'])
///     .rule(('a', 'b'), ('x', 'x'))
///     .build();
/// // 'z' is declared but no rule from {a, b} ever produces it.
/// assert_eq!(delta_closure(&table, ['a', 'b']), vec!['a', 'b', 'x']);
/// ```
pub fn delta_closure<P: TwoWayProtocol>(
    protocol: &P,
    seeds: impl IntoIterator<Item = P::State>,
) -> Vec<P::State> {
    let mut reached: Vec<P::State> = Vec::new();
    for q in seeds {
        if !reached.contains(&q) {
            reached.push(q);
        }
    }
    // Fixpoint over ordered pairs of the current closure. The state space
    // is finite for every protocol we analyze, so this terminates.
    let mut scanned = 0usize;
    while scanned < reached.len() {
        let frontier_start = scanned;
        scanned = reached.len();
        let mut fresh: Vec<P::State> = Vec::new();
        for i in 0..reached.len() {
            for j in 0..reached.len() {
                // Only pairs touching the new frontier can produce news.
                if i < frontier_start && j < frontier_start {
                    continue;
                }
                let (s2, r2) = protocol.delta(&reached[i], &reached[j]);
                for q in [s2, r2] {
                    if !reached.contains(&q) && !fresh.contains(&q) {
                        fresh.push(q);
                    }
                }
            }
        }
        reached.extend(fresh);
    }
    reached
}

/// A protocol defined by a pair of closures `(fs, fr)`.
///
/// Convenient for one-off protocols in tests and examples without declaring
/// a new type.
///
/// # Example
///
/// ```
/// use ppfts_population::{FunctionProtocol, TwoWayProtocol};
///
/// let avg_ish = FunctionProtocol::new(
///     |s: &i64, r: &i64| (s + r) / 2,
///     |s: &i64, r: &i64| (s + r) - (s + r) / 2,
/// );
/// assert_eq!(avg_ish.delta(&3, &5), (4, 4));
/// ```
pub struct FunctionProtocol<Q, Fs, Fr> {
    fs: Fs,
    fr: Fr,
    _marker: std::marker::PhantomData<fn() -> Q>,
}

impl<Q, Fs, Fr> FunctionProtocol<Q, Fs, Fr>
where
    Q: State,
    Fs: Fn(&Q, &Q) -> Q,
    Fr: Fn(&Q, &Q) -> Q,
{
    /// Creates the protocol with starter update `fs` and reactor update
    /// `fr`.
    pub fn new(fs: Fs, fr: Fr) -> Self {
        FunctionProtocol {
            fs,
            fr,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<Q, Fs, Fr> TwoWayProtocol for FunctionProtocol<Q, Fs, Fr>
where
    Q: State,
    Fs: Fn(&Q, &Q) -> Q,
    Fr: Fn(&Q, &Q) -> Q,
{
    type State = Q;

    fn delta(&self, s: &Q, r: &Q) -> (Q, Q) {
        ((self.fs)(s, r), (self.fr)(s, r))
    }
}

impl<Q, Fs, Fr> fmt::Debug for FunctionProtocol<Q, Fs, Fr> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FunctionProtocol").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairing() -> TableProtocol<char> {
        // `s` plays the paper's `cs`, `_` plays `⊥`.
        TableProtocol::builder(vec!['s', 'c', 'p', '_'])
            .rule(('c', 'p'), ('s', '_'))
            .rule(('p', 'c'), ('_', 's'))
            .build()
    }

    #[test]
    fn unlisted_pairs_are_identity() {
        let p = pairing();
        assert!(p.is_noop(&'s', &'s'));
        assert!(p.is_noop(&'c', &'c'));
        assert_eq!(p.delta(&'_', &'p'), ('_', 'p'));
    }

    #[test]
    fn listed_pairs_follow_table() {
        let p = pairing();
        assert_eq!(p.delta(&'c', &'p'), ('s', '_'));
        assert_eq!(p.delta(&'p', &'c'), ('_', 's'));
        assert!(!p.is_noop(&'c', &'p'));
    }

    #[test]
    fn pairing_is_symmetric_on_c_p() {
        let p = pairing();
        assert!(p.is_symmetric_on(&'c', &'p'));
        assert!(p.is_symmetric_on(&'c', &'c'));
    }

    #[test]
    fn symmetry_report_flags_one_way_rules() {
        let p = TableProtocol::builder(vec![0u8, 1u8])
            .rule((1, 0), (1, 1))
            .build();
        let report = p.symmetry_report();
        // (1,0) infects but (0,1) does not: asymmetric on {0,1}.
        assert!(!report.is_fully_symmetric());
        assert_eq!(report.asymmetric_pairs.len(), 1);
        assert_eq!(report.symmetric_pairs, 2); // {0,0} and {1,1}
    }

    #[test]
    fn symmetric_rule_adds_mirror() {
        let p = TableProtocol::builder(vec!['a', 'b', 'x'])
            .symmetric_rule(('a', 'b'), ('x', 'x'))
            .build();
        assert_eq!(p.delta(&'a', &'b'), ('x', 'x'));
        assert_eq!(p.delta(&'b', &'a'), ('x', 'x'));
        assert!(p.is_symmetric_on(&'a', &'b'));
        assert_eq!(p.rule_count(), 2);
    }

    #[test]
    #[should_panic(expected = "outside the declared state space")]
    fn rule_outside_state_space_panics() {
        let _ = TableProtocol::builder(vec!['a']).rule(('a', 'z'), ('a', 'a'));
    }

    #[test]
    fn starter_and_reactor_components_match_delta() {
        let p = pairing();
        assert_eq!(p.starter_out(&'c', &'p'), 's');
        assert_eq!(p.reactor_out(&'c', &'p'), '_');
    }

    #[test]
    fn enumerates_declared_states() {
        assert_eq!(pairing().states(), vec!['s', 'c', 'p', '_']);
    }

    #[test]
    fn blanket_impl_for_references() {
        let p = pairing();
        fn takes_protocol<P: TwoWayProtocol<State = char>>(p: P) -> (char, char) {
            p.delta(&'c', &'p')
        }
        assert_eq!(takes_protocol(&p), ('s', '_'));
    }
}

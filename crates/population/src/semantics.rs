//! Input/output conventions: what it means for a protocol to *compute*.
//!
//! Population protocols compute by *stabilization*: every agent maps its
//! local state to an output, and the population has computed `y` once every
//! agent outputs `y` and no reachable configuration changes that. This
//! module fixes the vocabulary used by the correctness harnesses in
//! `ppfts-verify` and by the simulators' end-to-end tests: a simulated
//! protocol must stabilize to the *same* output it would produce natively.

use crate::{Configuration, CountConfiguration, Multiset, State, TwoWayProtocol};

/// Input/output semantics of a computing protocol.
///
/// Extends [`TwoWayProtocol`] with the two mappings of the classic PP
/// computation model plus a ground-truth oracle used in tests:
///
/// * [`Semantics::encode`] — input mapping: an agent's external input to its
///   initial state,
/// * [`Semantics::output`] — output mapping: a local state to the
///   individual output,
/// * [`Semantics::expected`] — the value the population must stabilize to
///   on a given input vector (the specification being computed).
///
/// # Example
///
/// ```
/// use ppfts_population::{Configuration, Semantics, TwoWayProtocol};
///
/// /// Logical OR of the input bits.
/// struct Or;
/// impl TwoWayProtocol for Or {
///     type State = bool;
///     fn delta(&self, s: &bool, r: &bool) -> (bool, bool) { (*s, *s || *r) }
/// }
/// impl Semantics for Or {
///     type Input = bool;
///     type Output = bool;
///     fn encode(&self, i: &bool) -> bool { *i }
///     fn output(&self, q: &bool) -> bool { *q }
///     fn expected(&self, inputs: &[bool]) -> bool { inputs.iter().any(|b| *b) }
/// }
///
/// let or = Or;
/// let c0 = or.initial_configuration(&[false, true, false]);
/// assert_eq!(c0.as_slice(), &[false, true, false]);
/// assert_eq!(or.expected(&[false, true, false]), true);
/// ```
pub trait Semantics: TwoWayProtocol {
    /// External input alphabet.
    type Input: Clone + std::fmt::Debug;
    /// Output alphabet.
    type Output: Clone + PartialEq + std::fmt::Debug;

    /// Input mapping: the initial state of an agent with input `i`.
    fn encode(&self, input: &Self::Input) -> Self::State;

    /// Output mapping: the individual output of an agent in state `q`.
    fn output(&self, q: &Self::State) -> Self::Output;

    /// Ground truth: the output the population must stabilize to when
    /// started on `inputs`.
    fn expected(&self, inputs: &[Self::Input]) -> Self::Output;

    /// The initial configuration for the given input vector.
    fn initial_configuration(&self, inputs: &[Self::Input]) -> Configuration<Self::State> {
        inputs.iter().map(|i| self.encode(i)).collect()
    }

    /// The initial *count-backed* population for the given input vector —
    /// the same encoding as
    /// [`initial_configuration`](Semantics::initial_configuration), stored
    /// as state multiplicities for giant-n anonymous runs.
    fn initial_counts(&self, inputs: &[Self::Input]) -> CountConfiguration<Self::State> {
        inputs.iter().map(|i| self.encode(i)).collect()
    }
}

/// The consensus output of a configuration, if the agents agree.
///
/// Returns `Some(y)` iff every agent's individual output equals `y`. The
/// stabilization checkers treat `None` as "not yet converged".
///
/// # Example
///
/// ```
/// use ppfts_population::{unanimous_output, Configuration};
///
/// let c = Configuration::new(vec![2u8, 2, 2]);
/// assert_eq!(unanimous_output(&c, |q| *q % 2), Some(0));
///
/// let d = Configuration::new(vec![2u8, 3]);
/// assert_eq!(unanimous_output(&d, |q| *q % 2), None);
/// ```
pub fn unanimous_output<Q: State, Y: PartialEq>(
    config: &Configuration<Q>,
    mut output: impl FnMut(&Q) -> Y,
) -> Option<Y> {
    let mut agents = config.as_slice().iter();
    let first = output(agents.next()?);
    for q in agents {
        if output(q) != first {
            return None;
        }
    }
    Some(first)
}

/// The consensus output of a state *multiset*, if the agents agree —
/// the count-backend sibling of [`unanimous_output`], O(distinct states)
/// instead of O(n).
///
/// # Example
///
/// ```
/// use ppfts_population::{unanimous_output_counts, CountConfiguration, Population};
///
/// let c = CountConfiguration::from_groups([(2u8, 500_000), (4u8, 500_000)]);
/// assert_eq!(unanimous_output_counts(&c.counts(), |q| *q % 2), Some(0));
/// assert_eq!(unanimous_output_counts(&c.counts(), |q| *q), None);
/// ```
pub fn unanimous_output_counts<Q: State, Y: PartialEq>(
    counts: &Multiset<Q>,
    mut output: impl FnMut(&Q) -> Y,
) -> Option<Y> {
    let mut states = counts.states();
    let first = output(states.next()?);
    for q in states {
        if output(q) != first {
            return None;
        }
    }
    Some(first)
}

/// Helper describing the output status of a configuration under a
/// [`Semantics`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConsensusOutput<Y> {
    /// All agents output the same value.
    Agreed(Y),
    /// At least two agents disagree.
    Split,
}

impl<Y: Clone + PartialEq> ConsensusOutput<Y> {
    /// Evaluates the consensus status of `config` under `sem`.
    pub fn of<P>(sem: &P, config: &Configuration<P::State>) -> Self
    where
        P: Semantics<Output = Y>,
    {
        match unanimous_output(config, |q| sem.output(q)) {
            Some(y) => ConsensusOutput::Agreed(y),
            None => ConsensusOutput::Split,
        }
    }

    /// The agreed value, if any.
    pub fn agreed(&self) -> Option<&Y> {
        match self {
            ConsensusOutput::Agreed(y) => Some(y),
            ConsensusOutput::Split => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FunctionProtocol;

    struct Or;
    impl TwoWayProtocol for Or {
        type State = bool;
        fn delta(&self, s: &bool, r: &bool) -> (bool, bool) {
            (*s, *s || *r)
        }
    }
    impl Semantics for Or {
        type Input = bool;
        type Output = bool;
        fn encode(&self, i: &bool) -> bool {
            *i
        }
        fn output(&self, q: &bool) -> bool {
            *q
        }
        fn expected(&self, inputs: &[bool]) -> bool {
            inputs.iter().any(|b| *b)
        }
    }

    #[test]
    fn initial_configuration_encodes_inputs() {
        let c = Or.initial_configuration(&[true, false]);
        assert_eq!(c.as_slice(), &[true, false]);
    }

    #[test]
    fn unanimous_requires_full_agreement() {
        let all_true = Configuration::uniform(true, 3);
        assert_eq!(unanimous_output(&all_true, |q| *q), Some(true));
        let mixed = Configuration::new(vec![true, false]);
        assert_eq!(unanimous_output(&mixed, |q| *q), None);
    }

    #[test]
    fn unanimous_on_empty_population_is_none() {
        let empty: Configuration<bool> = Configuration::new(vec![]);
        assert_eq!(unanimous_output(&empty, |q| *q), None);
    }

    #[test]
    fn consensus_output_wraps_unanimity() {
        let agreed = Configuration::uniform(true, 2);
        assert_eq!(
            ConsensusOutput::of(&Or, &agreed),
            ConsensusOutput::Agreed(true)
        );
        assert_eq!(ConsensusOutput::of(&Or, &agreed).agreed(), Some(&true));

        let split = Configuration::new(vec![true, false]);
        assert_eq!(ConsensusOutput::of(&Or, &split), ConsensusOutput::Split);
        assert_eq!(ConsensusOutput::of(&Or, &split).agreed(), None);
    }

    #[test]
    fn expected_is_ground_truth_not_simulation() {
        assert!(Or.expected(&[false, false, true]));
        assert!(!Or.expected(&[false, false]));
        // `expected` never runs the protocol; it is an oracle.
        let _unused_protocol: FunctionProtocol<bool, _, _> =
            FunctionProtocol::new(|s: &bool, _: &bool| *s, |_: &bool, r: &bool| *r);
    }
}

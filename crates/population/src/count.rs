//! Count-based configurations: populations stored as state multiplicities.

use std::collections::HashMap;
use std::fmt;

use rand::{Rng, RngCore};

use crate::{DenseConfiguration, Multiset, Population, PopulationError, State};

/// A population stored as *counts*: how many agents hold each state.
///
/// Agents of a population protocol are anonymous, so a configuration of an
/// anonymous protocol is fully captured by the multiset of states — the
/// observation behind the batched count-based simulators of Berenbrink et
/// al. (*Simulating Population Protocols in Sub-Constant Time per
/// Interaction*). Memory is O(distinct states) regardless of `n`, which is
/// what makes n = 10⁶-agent runs practical.
///
/// The counterpart of per-agent indexing is [`sample_pair`]: a uniformly
/// random ordered (starter, reactor) pair of *distinct agents* is drawn
/// directly from the counts, with exactly the law the dense uniform
/// scheduler realizes — starter state with probability `count(q)/n`,
/// reactor state with the starter's copy removed.
///
/// Entries are kept in first-insertion order and a *live index* tracks
/// the slots with non-zero multiplicity, so [`sample_pair`] scans only
/// the states actually present (states that die out stop costing scan
/// time) and the total ordered-pair weight `n·(n−1)` is maintained
/// incrementally instead of being recomputed per draw. Runs stay
/// deterministic given a seed (no hash-map iteration order in the
/// sampling path).
///
/// [`sample_pair`]: CountConfiguration::sample_pair
///
/// # Example
///
/// ```
/// use ppfts_population::CountConfiguration;
///
/// let mut c = CountConfiguration::from_groups([('i', 1), ('s', 3)]);
/// assert_eq!(c.len(), 4);
/// assert_eq!(c.count_state(&'s'), 3);
/// // One ('i', 's') infection: both endpoints end up 'i'.
/// c.apply_outcome(&'i', &'s', ('i', 'i'))?;
/// assert_eq!(c.count_state(&'i'), 2);
/// assert_eq!(c.count_state(&'s'), 2);
/// # Ok::<(), ppfts_population::PopulationError>(())
/// ```
#[derive(Clone)]
pub struct CountConfiguration<Q: State> {
    /// `(state, multiplicity)` in first-insertion order; multiplicities
    /// may be zero (states that died out keep their slot so `index`
    /// stays valid and revivals reuse it).
    entries: Vec<(Q, usize)>,
    /// State → position in `entries`.
    index: HashMap<Q, usize>,
    /// Positions into `entries` of the slots with non-zero multiplicity —
    /// the only slots the sampling scan visits. Maintained by swap-remove
    /// on death and push on revival, so membership is O(1) to update.
    live: Vec<usize>,
    /// `entries` position → position in `live`, or `usize::MAX` for dead
    /// slots.
    live_pos: Vec<usize>,
    /// Total number of agents (sum of multiplicities).
    n: usize,
    /// Cached total ordered-pair weight `n·(n−1)` as a float, updated
    /// whenever `n` changes so samplers never recompute (or re-cast) it
    /// per draw.
    pair_weight: f64,
}

impl<Q: State> CountConfiguration<Q> {
    /// Creates an empty population.
    pub fn new() -> Self {
        CountConfiguration {
            entries: Vec::new(),
            index: HashMap::new(),
            live: Vec::new(),
            live_pos: Vec::new(),
            n: 0,
            pair_weight: 0.0,
        }
    }

    /// Creates a population with `counts` groups: `(state, how many)`.
    pub fn from_groups(counts: impl IntoIterator<Item = (Q, usize)>) -> Self {
        let mut c = CountConfiguration::new();
        for (q, k) in counts {
            c.insert_many(q, k);
        }
        c
    }

    /// Creates a population of `n` agents all in state `q`.
    pub fn uniform(q: Q, n: usize) -> Self {
        CountConfiguration::from_groups([(q, n)])
    }

    /// Creates the count view of a dense configuration.
    pub fn from_dense(dense: &DenseConfiguration<Q>) -> Self {
        let mut c = CountConfiguration::new();
        for q in dense.as_slice() {
            c.insert_many(q.clone(), 1);
        }
        c
    }

    /// Creates a population from a multiset of states.
    ///
    /// Entry order (and therefore the RNG-to-state mapping of
    /// [`sample_pair`](CountConfiguration::sample_pair)) follows the
    /// multiset's canonical sorted order, so the construction is
    /// deterministic.
    pub fn from_counts(counts: &Multiset<Q>) -> Self
    where
        Q: Ord,
    {
        CountConfiguration::from_groups(counts.sorted_pairs())
    }

    /// Number of agents `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of *distinct* states currently present.
    pub fn distinct(&self) -> usize {
        self.live.len()
    }

    /// The total ordered-pair weight `n·(n−1)` — how many ordered
    /// (starter, reactor) pairs of distinct agents exist. Maintained
    /// incrementally by every mutation that changes `n` (in particular
    /// kept exact across [`apply_outcome`](Self::apply_outcome), which
    /// preserves `n`), so samplers read it instead of recomputing.
    pub fn ordered_pair_weight(&self) -> f64 {
        self.pair_weight
    }

    /// Number of agents currently in state `q`.
    pub fn count_state(&self, q: &Q) -> usize {
        self.index.get(q).map_or(0, |&i| self.entries[i].1)
    }

    /// Iterates over `(state, multiplicity)` pairs of the states present,
    /// in first-insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&Q, usize)> {
        self.entries
            .iter()
            .filter(|(_, c)| *c > 0)
            .map(|(q, c)| (q, *c))
    }

    /// The multiset of states.
    pub fn counts(&self) -> Multiset<Q> {
        let mut m = Multiset::new();
        for (q, c) in self.iter() {
            m.insert_many(q.clone(), c);
        }
        m
    }

    /// Adds `k` agents in state `q`.
    pub fn insert_many(&mut self, q: Q, k: usize) {
        self.n += k;
        let i = match self.index.get(&q) {
            Some(&i) => {
                self.entries[i].1 += k;
                i
            }
            None => {
                let i = self.entries.len();
                self.index.insert(q.clone(), i);
                self.entries.push((q, k));
                self.live_pos.push(usize::MAX);
                i
            }
        };
        if self.entries[i].1 > 0 && self.live_pos[i] == usize::MAX {
            self.live_pos[i] = self.live.len();
            self.live.push(i);
        }
        self.refresh_pair_weight();
    }

    /// Removes `k` agents in state `q` at once — the bulk counterpart of
    /// the interaction-level removal, used by the epoch sampler to pull a
    /// whole epoch's agents out of the population in O(1) per state.
    ///
    /// # Errors
    ///
    /// Returns [`PopulationError::StateUnderflow`] if fewer than `k`
    /// agents hold state `q`; the counts are left untouched.
    pub fn remove_many(&mut self, q: &Q, k: usize) -> Result<(), PopulationError> {
        if k == 0 {
            return Ok(());
        }
        let available = self.count_state(q);
        if available < k {
            return Err(PopulationError::StateUnderflow {
                state: format!("{q:?}"),
                needed: k,
                available,
            });
        }
        let i = self.index[q];
        self.entries[i].1 -= k;
        self.n -= k;
        self.retire_if_dead(i);
        self.refresh_pair_weight();
        Ok(())
    }

    /// Bulk writeback for epoch-style samplers: overwrites the
    /// multiplicity of every state currently present — `new_counts`
    /// yields one count per live state, in [`iter`](Self::iter) order —
    /// then inserts the `extras` groups (states that may not be present
    /// yet). The aligned pass touches no hash lookups, which is what
    /// keeps an epoch commit O(distinct states) with a small constant;
    /// only `extras` (new states, rare) pay the indexed insertion.
    ///
    /// # Panics
    ///
    /// Panics if `new_counts` does not yield exactly one count per live
    /// state.
    pub fn set_live_counts<I, E>(&mut self, new_counts: I, extras: E)
    where
        I: IntoIterator<Item = usize>,
        E: IntoIterator<Item = (Q, usize)>,
    {
        let mut it = new_counts.into_iter();
        let mut n = 0usize;
        for pos in 0..self.entries.len() {
            if self.entries[pos].1 == 0 {
                continue;
            }
            let c = it.next().expect("one count per live state");
            self.entries[pos].1 = c;
            n += c;
            self.retire_if_dead(pos);
        }
        assert!(it.next().is_none(), "one count per live state");
        self.n = n;
        self.refresh_pair_weight();
        for (q, k) in extras {
            if k > 0 {
                self.insert_many(q, k);
            }
        }
    }

    /// Removes one agent in state `q`.
    fn remove_one(&mut self, q: &Q) -> Result<(), PopulationError> {
        match self.index.get(q) {
            Some(&i) if self.entries[i].1 > 0 => {
                self.entries[i].1 -= 1;
                self.n -= 1;
                self.retire_if_dead(i);
                self.refresh_pair_weight();
                Ok(())
            }
            _ => Err(PopulationError::StateUnderflow {
                state: format!("{q:?}"),
                needed: 1,
                available: 0,
            }),
        }
    }

    /// Drops entry `i` from the live index if its count reached zero
    /// (swap-remove, so death is O(1)).
    fn retire_if_dead(&mut self, i: usize) {
        if self.entries[i].1 == 0 {
            let pos = self.live_pos[i];
            let last = self.live.pop().expect("live index missing a live entry");
            if last != i {
                self.live[pos] = last;
                self.live_pos[last] = pos;
            }
            self.live_pos[i] = usize::MAX;
        }
    }

    /// Re-derives the cached ordered-pair weight after `n` changed.
    fn refresh_pair_weight(&mut self) {
        self.pair_weight = self.n as f64 * self.n.saturating_sub(1) as f64;
    }

    /// Applies one interaction outcome at the count level: one agent in
    /// state `s` and one in state `r` (two copies of the same state when
    /// `s == r`) are replaced by the `outcome` pair.
    ///
    /// This is the replay primitive: folding a dense run's step records
    /// `(old_starter, old_reactor) → (new_starter, new_reactor)` through
    /// it reproduces the dense run's multiset exactly.
    ///
    /// # Errors
    ///
    /// Returns [`PopulationError::StateUnderflow`] if the population does
    /// not hold the required copies of `s` and `r`; the counts are left
    /// untouched.
    pub fn apply_outcome(&mut self, s: &Q, r: &Q, outcome: (Q, Q)) -> Result<(), PopulationError> {
        let needed = 1 + usize::from(s == r);
        if self.count_state(s) < needed {
            return Err(PopulationError::StateUnderflow {
                state: format!("{s:?}"),
                needed,
                available: self.count_state(s),
            });
        }
        if s != r && self.count_state(r) < 1 {
            return Err(PopulationError::StateUnderflow {
                state: format!("{r:?}"),
                needed: 1,
                available: 0,
            });
        }
        self.remove_one(s).expect("checked above");
        self.remove_one(r).expect("checked above");
        self.insert_many(outcome.0, 1);
        self.insert_many(outcome.1, 1);
        Ok(())
    }

    /// Draws the states of a uniformly random ordered pair of *distinct*
    /// agents — exactly the law of the dense uniform scheduler: the
    /// starter is a uniform agent, the reactor a uniform agent among the
    /// remaining `n − 1`.
    ///
    /// Consumes exactly two range draws from `rng`, mirroring the dense
    /// path's `gen_range(0..n)` + `gen_range(0..n-1)`.
    ///
    /// # Panics
    ///
    /// Panics if the population has fewer than two agents.
    pub fn sample_pair(&self, rng: &mut dyn RngCore) -> (Q, Q) {
        assert!(self.n >= 2, "population must have at least 2 agents");
        let s = self.state_at(rng.gen_range(0..self.n), None);
        let r = self.state_at(rng.gen_range(0..self.n - 1), Some(s));
        (s.clone(), r.clone())
    }

    /// The state of the `k`-th agent in the canonical (live-index-order)
    /// enumeration, with one copy of `excluded` removed if given. Only
    /// live slots are scanned, so the cost is O(distinct states present),
    /// not O(states ever seen).
    fn state_at(&self, mut k: usize, excluded: Option<&Q>) -> &Q {
        for &i in &self.live {
            let (q, c) = &self.entries[i];
            let c = *c - usize::from(excluded == Some(q));
            if k < c {
                return q;
            }
            k -= c;
        }
        unreachable!("sample index exceeds population size")
    }
}

impl<Q: State> Default for CountConfiguration<Q> {
    fn default() -> Self {
        CountConfiguration::new()
    }
}

impl<Q: State> Population for CountConfiguration<Q> {
    type State = Q;

    fn len(&self) -> usize {
        self.n
    }

    fn counts(&self) -> Multiset<Q> {
        CountConfiguration::counts(self)
    }

    fn count_state(&self, q: &Q) -> usize {
        CountConfiguration::count_state(self, q)
    }
}

impl<Q: State> FromIterator<Q> for CountConfiguration<Q> {
    fn from_iter<I: IntoIterator<Item = Q>>(iter: I) -> Self {
        let mut c = CountConfiguration::new();
        for q in iter {
            c.insert_many(q, 1);
        }
        c
    }
}

// Order-insensitive equality: two count configurations are equal iff they
// hold the same multiset of states, regardless of entry order or dead
// (zero-count) slots.
impl<Q: State> PartialEq for CountConfiguration<Q> {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.iter().all(|(q, c)| other.count_state(q) == c)
    }
}

impl<Q: State> Eq for CountConfiguration<Q> {}

impl<Q: State> fmt::Debug for CountConfiguration<Q> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn construction_round_trips_through_dense() {
        let dense = DenseConfiguration::new(vec!['a', 'b', 'a', 'c']);
        let count = CountConfiguration::from_dense(&dense);
        assert_eq!(count.len(), 4);
        assert_eq!(count.distinct(), 3);
        assert_eq!(count.counts(), dense.counts());
        assert!(count.same_counts(&dense));
        let by_multiset = CountConfiguration::from_counts(&dense.counts());
        assert_eq!(by_multiset, count);
    }

    #[test]
    fn equality_ignores_entry_order_and_dead_slots() {
        let a = CountConfiguration::from_groups([('x', 2), ('y', 1)]);
        let b = CountConfiguration::from_groups([('y', 1), ('x', 2)]);
        assert_eq!(a, b);
        let mut c = CountConfiguration::from_groups([('z', 1), ('x', 2), ('y', 1)]);
        c.apply_outcome(&'z', &'x', ('x', 'y')).unwrap();
        // 'z' died out; c is now {x×2, y×2}.
        let d = CountConfiguration::from_groups([('x', 2), ('y', 2)]);
        assert_eq!(c, d);
        assert_eq!(c.distinct(), 2);
    }

    #[test]
    fn set_live_counts_overwrites_in_iter_order() {
        let mut c = CountConfiguration::from_groups([('a', 3), ('b', 2), ('d', 1)]);
        // Kill 'b', grow 'a', shrink 'd', and introduce 'e' as an extra.
        c.set_live_counts([5, 0, 1], [('e', 4)]);
        assert_eq!(c.count_state(&'a'), 5);
        assert_eq!(c.count_state(&'b'), 0);
        assert_eq!(c.count_state(&'d'), 1);
        assert_eq!(c.count_state(&'e'), 4);
        assert_eq!(c.len(), 10);
        assert_eq!(c.distinct(), 3);
        assert_eq!(c.ordered_pair_weight(), 90.0);
        // The dead slot revives through the extras path.
        c.set_live_counts([1, 1, 1], [('b', 7)]);
        assert_eq!(c.count_state(&'b'), 7);
        assert_eq!(c.len(), 10);
        assert_eq!(c.distinct(), 4);
        // Round-trip: the revived configuration equals a fresh build.
        let want = CountConfiguration::from_groups([('a', 1), ('d', 1), ('e', 1), ('b', 7)]);
        assert_eq!(c, want);
    }

    #[test]
    #[should_panic(expected = "one count per live state")]
    fn set_live_counts_rejects_misaligned_lengths() {
        let mut c = CountConfiguration::from_groups([('a', 1), ('b', 1)]);
        c.set_live_counts([2], std::iter::empty());
    }

    #[test]
    fn apply_outcome_moves_counts() {
        let mut c = CountConfiguration::from_groups([('c', 2), ('p', 2)]);
        c.apply_outcome(&'c', &'p', ('s', '_')).unwrap();
        assert_eq!(c.count_state(&'c'), 1);
        assert_eq!(c.count_state(&'p'), 1);
        assert_eq!(c.count_state(&'s'), 1);
        assert_eq!(c.count_state(&'_'), 1);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn apply_outcome_checks_availability_atomically() {
        let mut c = CountConfiguration::from_groups([('a', 1), ('b', 1)]);
        // A self-pair of 'a' needs two copies.
        let err = c.apply_outcome(&'a', &'a', ('b', 'b')).unwrap_err();
        assert!(matches!(
            err,
            PopulationError::StateUnderflow {
                needed: 2,
                available: 1,
                ..
            }
        ));
        // Nothing was mutated by the failed application.
        assert_eq!(c.count_state(&'a'), 1);
        assert_eq!(c.count_state(&'b'), 1);
        let err = c.apply_outcome(&'a', &'z', ('a', 'z')).unwrap_err();
        assert!(matches!(err, PopulationError::StateUnderflow { .. }));
    }

    #[test]
    fn self_pair_needs_two_copies_and_works_with_them() {
        let mut c = CountConfiguration::from_groups([('l', 2)]);
        c.apply_outcome(&'l', &'l', ('l', 'f')).unwrap();
        assert_eq!(c.count_state(&'l'), 1);
        assert_eq!(c.count_state(&'f'), 1);
    }

    #[test]
    fn sample_pair_matches_the_uniform_law() {
        // 2 infected + 2 susceptible: P(s=i) = 1/2; P(r=i | s=i) = 1/3.
        let c = CountConfiguration::from_groups([('i', 2), ('s', 2)]);
        let mut rng = SmallRng::seed_from_u64(7);
        let trials = 60_000;
        let mut starter_i = 0u32;
        let mut both_i = 0u32;
        for _ in 0..trials {
            let (s, r) = c.sample_pair(&mut rng);
            if s == 'i' {
                starter_i += 1;
                if r == 'i' {
                    both_i += 1;
                }
            }
        }
        let p_s = starter_i as f64 / trials as f64;
        assert!((p_s - 0.5).abs() < 0.02, "P(starter infected) = {p_s}");
        let p_r = both_i as f64 / starter_i as f64;
        assert!(
            (p_r - 1.0 / 3.0).abs() < 0.02,
            "P(reactor infected | starter infected) = {p_r}"
        );
    }

    #[test]
    fn sample_pair_never_splits_a_lone_agent() {
        // One 'x' among many 'y': (x, x) is impossible.
        let c = CountConfiguration::from_groups([('x', 1), ('y', 5)]);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..2_000 {
            let (s, r) = c.sample_pair(&mut rng);
            assert!(!(s == 'x' && r == 'x'));
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 agents")]
    fn sampling_a_singleton_panics() {
        let c = CountConfiguration::uniform('q', 1);
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = c.sample_pair(&mut rng);
    }

    #[test]
    fn remove_many_is_atomic_and_updates_counts() {
        let mut c = CountConfiguration::from_groups([('a', 5), ('b', 2)]);
        c.remove_many(&'a', 3).unwrap();
        assert_eq!(c.count_state(&'a'), 2);
        assert_eq!(c.len(), 4);
        let err = c.remove_many(&'b', 3).unwrap_err();
        assert!(matches!(
            err,
            PopulationError::StateUnderflow {
                needed: 3,
                available: 2,
                ..
            }
        ));
        assert_eq!(c.count_state(&'b'), 2);
        assert!(c.remove_many(&'z', 0).is_ok());
        assert!(c.remove_many(&'z', 1).is_err());
    }

    #[test]
    fn live_index_tracks_deaths_and_revivals() {
        let mut c = CountConfiguration::from_groups([('a', 2), ('b', 1), ('c', 3)]);
        assert_eq!(c.distinct(), 3);
        c.remove_many(&'b', 1).unwrap();
        assert_eq!(c.distinct(), 2);
        assert_eq!(c.count_state(&'b'), 0);
        // Sampling still covers exactly the live states.
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..500 {
            let (s, r) = c.sample_pair(&mut rng);
            assert_ne!(s, 'b');
            assert_ne!(r, 'b');
        }
        // Revival re-enters the live index.
        c.insert_many('b', 2);
        assert_eq!(c.distinct(), 3);
        assert_eq!(c.count_state(&'b'), 2);
        let seen_b = (0..2_000).any(|_| {
            let (s, r) = c.sample_pair(&mut rng);
            s == 'b' || r == 'b'
        });
        assert!(seen_b);
    }

    #[test]
    fn ordered_pair_weight_tracks_n() {
        let mut c = CountConfiguration::from_groups([('x', 3)]);
        assert_eq!(c.ordered_pair_weight(), 6.0);
        c.insert_many('y', 2);
        assert_eq!(c.ordered_pair_weight(), 20.0);
        c.apply_outcome(&'x', &'y', ('y', 'y')).unwrap();
        // apply_outcome preserves n, and with it the pair weight.
        assert_eq!(c.ordered_pair_weight(), 20.0);
        c.remove_many(&'y', 3).unwrap();
        assert_eq!(c.ordered_pair_weight(), 2.0);
        assert_eq!(CountConfiguration::<u8>::new().ordered_pair_weight(), 0.0);
    }

    #[test]
    fn from_iter_counts_duplicates() {
        let c: CountConfiguration<u8> = [1u8, 2, 1, 1].into_iter().collect();
        assert_eq!(c.count_state(&1), 3);
        assert_eq!(c.count_state(&2), 1);
        assert!(CountConfiguration::<u8>::default().is_empty());
    }
}

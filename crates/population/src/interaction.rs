//! Ordered pairwise interactions.

use std::fmt;

use crate::{AgentId, PopulationError};

/// An ordered pairwise interaction `(starter, reactor)`.
///
/// Every meeting of two agents is *asymmetric*: the first agent is the
/// **starter** (`a_s`) and the second the **reactor** (`a_r`). In the
/// two-way model both parties read each other's state; in the one-way models
/// information flows only from starter to reactor. What each party gets to
/// compute is decided by the interaction model in `ppfts-engine`, not by
/// this type.
///
/// # Example
///
/// ```
/// use ppfts_population::Interaction;
///
/// let i = Interaction::new(0, 1)?;
/// assert_eq!(i.starter().index(), 0);
/// assert_eq!(i.reactor().index(), 1);
/// assert_eq!(i.reversed(), Interaction::new(1, 0)?);
/// # Ok::<(), ppfts_population::PopulationError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interaction {
    starter: AgentId,
    reactor: AgentId,
}

impl Interaction {
    /// Creates the interaction in which agent `starter` meets agent
    /// `reactor`.
    ///
    /// # Errors
    ///
    /// Returns [`PopulationError::SelfInteraction`] if both indices are
    /// equal: an agent never interacts with itself.
    pub fn new(starter: usize, reactor: usize) -> Result<Self, PopulationError> {
        if starter == reactor {
            return Err(PopulationError::SelfInteraction { agent: starter });
        }
        Ok(Interaction {
            starter: AgentId::new(starter),
            reactor: AgentId::new(reactor),
        })
    }

    /// The agent initiating the interaction (`a_s`).
    pub const fn starter(self) -> AgentId {
        self.starter
    }

    /// The agent reacting to the interaction (`a_r`).
    pub const fn reactor(self) -> AgentId {
        self.reactor
    }

    /// The same meeting with the roles exchanged.
    pub fn reversed(self) -> Self {
        Interaction {
            starter: self.reactor,
            reactor: self.starter,
        }
    }

    /// Whether `agent` takes part in this interaction in either role.
    pub fn involves(self, agent: AgentId) -> bool {
        self.starter == agent || self.reactor == agent
    }

    /// Checks that both endpoints fall inside a population of `len` agents.
    ///
    /// # Errors
    ///
    /// Returns [`PopulationError::AgentOutOfBounds`] naming the first
    /// offending endpoint.
    pub fn check_bounds(self, len: usize) -> Result<(), PopulationError> {
        for id in [self.starter, self.reactor] {
            if id.index() >= len {
                return Err(PopulationError::AgentOutOfBounds {
                    agent: id.index(),
                    len,
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Interaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.starter, self.reactor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_interaction() {
        assert_eq!(
            Interaction::new(4, 4),
            Err(PopulationError::SelfInteraction { agent: 4 })
        );
    }

    #[test]
    fn reversal_swaps_roles() {
        let i = Interaction::new(1, 2).unwrap();
        let r = i.reversed();
        assert_eq!(r.starter(), AgentId::new(2));
        assert_eq!(r.reactor(), AgentId::new(1));
        assert_eq!(r.reversed(), i);
    }

    #[test]
    fn involvement_covers_both_roles() {
        let i = Interaction::new(0, 3).unwrap();
        assert!(i.involves(AgentId::new(0)));
        assert!(i.involves(AgentId::new(3)));
        assert!(!i.involves(AgentId::new(1)));
    }

    #[test]
    fn bounds_check_names_offender() {
        let i = Interaction::new(1, 5).unwrap();
        assert!(i.check_bounds(6).is_ok());
        assert_eq!(
            i.check_bounds(5),
            Err(PopulationError::AgentOutOfBounds { agent: 5, len: 5 })
        );
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Interaction::new(0, 1).unwrap().to_string(), "(a0, a1)");
    }
}

//! Exact discrete samplers for the batch-epoch execution path.
//!
//! The offline `rand` shim ships no distributions, so the batch-epoch
//! sampler (Berenbrink et al., *Simulating Population Protocols in
//! Sub-Constant Time per Interaction*) gets its randomness from here:
//! binomial draws for omission-fault thinning, (multivariate)
//! hypergeometric draws for splitting an epoch's agents across states,
//! multinomial draws for splitting faults across fault kinds, and a Vose
//! alias table for O(1) repeated categorical draws.
//!
//! All samplers are **exact** (inversion of the true pmf, not normal
//! approximations). The heavy-parameter regimes use mode-centered
//! bidirectional inversion: compute the pmf at the distribution's mode
//! with [`ln_gamma`] once, then walk outward with the pmf's two-term
//! recurrences. That costs O(σ) expected cheap steps per draw — σ is at
//! most √(epoch length) ≈ n¼ in the epoch sampler's use, so draws stay
//! sub-microsecond even at n = 10⁹. Small-mean regimes fall back to plain
//! chop-down inversion from the support's edge.

use rand::{Rng, RngCore};

/// A uniform `f64` in `[0, 1)` built from the top 53 bits of one
/// `next_u64` draw (the shim's `gen_bool` uses the same construction).
#[inline]
pub fn uniform_f64(rng: &mut (impl RngCore + ?Sized)) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// A uniform `f64` in the *open* interval `(0, 1)` — rejects the exact
/// zero so callers may take logarithms.
#[inline]
pub fn uniform_open01(rng: &mut (impl RngCore + ?Sized)) -> f64 {
    loop {
        let u = uniform_f64(rng);
        if u > 0.0 {
            return u;
        }
    }
}

/// Natural log of the Gamma function, Lanczos approximation (g = 7,
/// 9 terms; ~1e-14 relative accuracy for the positive reals).
///
/// The epoch-length survival function and every pmf-at-mode computation
/// funnel through this, so it avoids `powf` in favour of two `ln` calls.
///
/// # Panics
///
/// Panics on non-positive integers (poles of Γ).
pub fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    const HALF_LN_2PI: f64 = 0.918_938_533_204_672_7;
    if x < 0.5 {
        // Reflection: ln Γ(x) = ln(π / sin(πx)) − ln Γ(1 − x).
        let s = (std::f64::consts::PI * x).sin();
        assert!(s != 0.0, "ln_gamma pole at {x}");
        return std::f64::consts::PI.ln() - s.abs().ln() - ln_gamma(1.0 - x);
    }
    let z = x - 1.0;
    let t = z + 7.5;
    let mut ser = 0.999_999_999_999_809_9;
    for (i, c) in COEF.iter().enumerate() {
        ser += c / (z + (i + 1) as f64);
    }
    HALF_LN_2PI + (z + 0.5) * t.ln() - t + ser.ln()
}

/// Factorials with an exact table below this bound and Stirling's series
/// above it. 1024 comfortably covers every "small" argument of the epoch
/// sampler's pmf computations (sample sizes are ≈ √n ≤ 2¹⁵ only for
/// n ≥ 10⁹; modes and remainders of typical draws sit well below the
/// bound), and the series is ~1e-24 accurate from the bound upward.
const LN_FACT_TABLE_LEN: usize = 1024;

/// ln n! for `n < LN_FACT_TABLE_LEN`, built once from [`ln_gamma`].
fn ln_fact_table() -> &'static [f64] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Vec<f64>> = OnceLock::new();
    TABLE.get_or_init(|| {
        (0..LN_FACT_TABLE_LEN)
            .map(|n| ln_gamma(n as f64 + 1.0))
            .collect()
    })
}

/// ln n! = ln Γ(n + 1).
///
/// This is the hot inner call of every pmf-at-mode computation: the epoch
/// sampler takes a few hypergeometric draws per epoch and each costs nine
/// of these, so the generic Lanczos path is replaced by a table lookup
/// for small `n` and Stirling's series (three correction terms, error
/// < 1e-20 relative at the crossover) for large `n`.
#[inline]
fn ln_fact(n: u64) -> f64 {
    if (n as usize) < LN_FACT_TABLE_LEN {
        ln_fact_table()[n as usize]
    } else {
        const HALF_LN_2PI: f64 = 0.918_938_533_204_672_7;
        let x = n as f64;
        let inv = 1.0 / x;
        let inv2 = inv * inv;
        (x + 0.5) * x.ln() - x
            + HALF_LN_2PI
            + inv * (1.0 / 12.0 - inv2 * (1.0 / 360.0 - inv2 / 1260.0))
    }
}

/// ln C(n, k); caller guarantees `k <= n`.
#[inline]
fn ln_choose(n: u64, k: u64) -> f64 {
    debug_assert!(k <= n);
    ln_fact(n) - ln_fact(k) - ln_fact(n - k)
}

/// Inversion walk outward from the pmf's mode.
///
/// `u` is the (residual) uniform variate; `up(k)` is `pmf(k+1)/pmf(k)`
/// and `down(k)` is `pmf(k-1)/pmf(k)`, valid on `[lo_min, hi_max]`. Each
/// step extends whichever side currently carries more mass, so the terms
/// are consumed in near-decreasing order. Exactness does not depend on
/// the order — any deterministic enumeration of the full support inverts
/// the cdf exactly; the order only buys the O(σ) expected walk length.
fn invert_from_mode(
    mode: u64,
    pmf_mode: f64,
    lo_min: u64,
    hi_max: u64,
    mut up: impl FnMut(u64) -> f64,
    mut down: impl FnMut(u64) -> f64,
    mut u: f64,
) -> u64 {
    if u <= pmf_mode {
        return mode;
    }
    u -= pmf_mode;
    let (mut lo, mut hi) = (mode, mode);
    let (mut p_lo, mut p_hi) = (pmf_mode, pmf_mode);
    loop {
        let can_up = hi < hi_max;
        let can_down = lo > lo_min;
        if !can_up && !can_down {
            // Floating-point residue past the total mass: return the
            // boundary on the heavier side.
            return if p_hi >= p_lo { hi } else { lo };
        }
        if can_up && (!can_down || p_hi >= p_lo) {
            p_hi *= up(hi);
            hi += 1;
            if u <= p_hi {
                return hi;
            }
            u -= p_hi;
        } else {
            p_lo *= down(lo);
            lo -= 1;
            if u <= p_lo {
                return lo;
            }
            u -= p_lo;
        }
    }
}

/// A Binomial(n, p) draw: the number of successes among `n` independent
/// trials of probability `p`.
///
/// The epoch path uses this to thin an epoch's interaction counts into
/// omissive and fault-free portions. Small `n·min(p,1−p)` uses chop-down
/// inversion (BINV); large means use mode-centered inversion with one
/// [`ln_gamma`]-computed pmf.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn binomial(n: u64, p: f64, rng: &mut (impl RngCore + ?Sized)) -> u64 {
    assert!((0.0..=1.0).contains(&p), "binomial p out of range: {p}");
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    // Work in the p ≤ 1/2 half; mirror the draw back at the end.
    let flipped = p > 0.5;
    let q = if flipped { 1.0 - p } else { p };
    let k = if n as f64 * q < 30.0 {
        binomial_chop_down(n, q, rng)
    } else {
        binomial_from_mode(n, q, rng)
    };
    if flipped {
        n - k
    } else {
        k
    }
}

/// BINV: cdf chop-down from k = 0; O(n·p) expected steps.
fn binomial_chop_down(n: u64, p: f64, rng: &mut (impl RngCore + ?Sized)) -> u64 {
    let odds = p / (1.0 - p);
    let mut f = ((1.0 - p).ln() * n as f64).exp(); // pmf(0) = (1-p)^n
    let mut u = uniform_f64(rng);
    let mut k = 0u64;
    loop {
        if u <= f {
            return k;
        }
        u -= f;
        k += 1;
        if k > n {
            // fp residue past the total mass.
            return n;
        }
        f *= odds * (n - k + 1) as f64 / k as f64;
    }
}

/// Mode-centered inversion; O(√(n·p·(1−p))) expected steps.
fn binomial_from_mode(n: u64, p: f64, rng: &mut (impl RngCore + ?Sized)) -> u64 {
    let q = 1.0 - p;
    let odds = p / q;
    let mode = ((((n + 1) as f64) * p).floor() as u64).min(n);
    let ln_pmf = ln_choose(n, mode) + mode as f64 * p.ln() + (n - mode) as f64 * q.ln();
    let pmf_mode = ln_pmf.exp();
    let u = uniform_f64(rng);
    invert_from_mode(
        mode,
        pmf_mode,
        0,
        n,
        |k| odds * (n - k) as f64 / (k + 1) as f64,
        |k| k as f64 / (odds * (n - k + 1) as f64),
        u,
    )
}

/// A Hypergeometric(ngood, nbad, nsample) draw: how many of `nsample`
/// agents drawn without replacement from an urn of `ngood + nbad` come
/// from the `ngood` side.
///
/// This is the epoch sampler's workhorse: every split of an epoch's
/// agents across states is a chain of these. Mode-centered inversion,
/// with a direct chop-down from the support edge when the support is
/// tiny.
///
/// # Panics
///
/// Panics if `nsample > ngood + nbad`.
pub fn hypergeometric(
    ngood: u64,
    nbad: u64,
    nsample: u64,
    rng: &mut (impl RngCore + ?Sized),
) -> u64 {
    let total = ngood + nbad;
    assert!(
        nsample <= total,
        "hypergeometric sample {nsample} exceeds urn {total}"
    );
    // Support: k ∈ [max(0, nsample − nbad), min(ngood, nsample)].
    let k_min = nsample.saturating_sub(nbad);
    let k_max = ngood.min(nsample);
    if k_min == k_max {
        return k_min;
    }
    // Cheap exact path when one side of the urn is tiny — the dominant
    // regime of epoch-driven runs, where most epochs fire while some
    // state holds only a handful of agents. With the small side as the
    // "good" half (mirroring k ↦ nsample − k if needed) and the sample
    // fitting in the big half, the support starts at 0, pmf(0) is a
    // product of `small` ratios, and a chop-down walk of expected length
    // `nsample·small/total` finishes the draw — no logs, no exp.
    const SMALL_SIDE: u64 = 16;
    let small = ngood.min(nbad);
    if small <= SMALL_SIDE && nsample <= total - small {
        let (g, b, mirrored) = if ngood <= nbad {
            (ngood, nbad, false)
        } else {
            (nbad, ngood, true)
        };
        let mut f = 1.0f64;
        for i in 1..=g {
            f *= (b - nsample + i) as f64 / (b + i) as f64;
        }
        let mut u = uniform_f64(rng);
        let mut k = 0u64;
        let top = g.min(nsample);
        while u > f && k < top {
            u -= f;
            f *= ((g - k) as f64 * (nsample - k) as f64)
                / ((k + 1) as f64 * (b - nsample + k + 1) as f64);
            k += 1;
        }
        return if mirrored { nsample - k } else { k };
    }
    // Mode of the pmf, clamped into the support.
    let mode =
        (((nsample + 1) as f64) * ((ngood + 1) as f64) / ((total + 2) as f64)).floor() as u64;
    let mode = mode.clamp(k_min, k_max);
    let ln_pmf =
        ln_choose(ngood, mode) + ln_choose(nbad, nsample - mode) - ln_choose(total, nsample);
    let pmf_mode = ln_pmf.exp();
    let u = uniform_f64(rng);
    // pmf(k+1)/pmf(k) = (ngood−k)(nsample−k) / ((k+1)(nbad−nsample+k+1))
    invert_from_mode(
        mode,
        pmf_mode,
        k_min,
        k_max,
        |k| {
            ((ngood - k) as f64 * (nsample - k) as f64)
                / ((k + 1) as f64 * (nbad + k + 1 - nsample) as f64)
        },
        |k| {
            (k as f64 * (nbad + k - nsample) as f64)
                / ((ngood - k + 1) as f64 * (nsample - k + 1) as f64)
        },
        u,
    )
}

/// A multivariate hypergeometric draw: splits `nsample` agents drawn
/// without replacement across the state groups of `counts`.
///
/// Returns a vector aligned with `counts` summing to `nsample`, via the
/// standard chain of conditional (univariate) hypergeometric draws.
///
/// # Panics
///
/// Panics if `nsample` exceeds the sum of `counts`.
pub fn multivariate_hypergeometric(
    counts: &[u64],
    nsample: u64,
    rng: &mut (impl RngCore + ?Sized),
) -> Vec<u64> {
    let mut remaining_total: u64 = counts.iter().sum();
    assert!(
        nsample <= remaining_total,
        "multivariate hypergeometric sample {nsample} exceeds population {remaining_total}"
    );
    let mut remaining_sample = nsample;
    let mut out = vec![0u64; counts.len()];
    for (i, &c) in counts.iter().enumerate() {
        if remaining_sample == 0 {
            break;
        }
        remaining_total -= c;
        if remaining_total == 0 {
            // Last non-exhausted group takes the rest.
            out[i] = remaining_sample;
            remaining_sample = 0;
            break;
        }
        let k = hypergeometric(c, remaining_total, remaining_sample, rng);
        out[i] = k;
        remaining_sample -= k;
    }
    debug_assert_eq!(remaining_sample, 0);
    out
}

/// A Multinomial(n, weights) draw: splits `n` trials across categories
/// proportionally to `weights` (not necessarily normalized), via the
/// chain of conditional binomials.
///
/// The epoch path uses this to split an interaction group's omissive
/// portion across the permitted fault kinds.
///
/// # Panics
///
/// Panics if `weights` is empty, contains a negative or non-finite
/// weight, or sums to zero while `n > 0`.
pub fn multinomial(n: u64, weights: &[f64], rng: &mut (impl RngCore + ?Sized)) -> Vec<u64> {
    assert!(
        !weights.is_empty(),
        "multinomial needs at least one category"
    );
    let mut total: f64 = 0.0;
    for &w in weights {
        assert!(w.is_finite() && w >= 0.0, "multinomial weight {w} invalid");
        total += w;
    }
    let mut out = vec![0u64; weights.len()];
    if n == 0 {
        return out;
    }
    assert!(total > 0.0, "multinomial weights sum to zero");
    let mut remaining = n;
    for (i, &w) in weights.iter().enumerate() {
        if remaining == 0 {
            break;
        }
        if w >= total {
            // Last category with mass takes the rest (also dodges fp
            // drift pushing p above 1).
            out[i] = remaining;
            remaining = 0;
            break;
        }
        let k = binomial(remaining, w / total, rng);
        out[i] = k;
        remaining -= k;
        total -= w;
    }
    // fp drift can strand trials if trailing weights round to zero mass;
    // pile them on the last category, which is where the drift lives.
    if remaining > 0 {
        *out.last_mut().expect("non-empty") += remaining;
    }
    out
}

/// A Vose alias table: O(len) construction over arbitrary non-negative
/// weights, then O(1) categorical draws.
///
/// The epoch sampler rebuilds one per epoch over the updated-agent pool
/// (O(distinct states), amortized by the ~√n draws the epoch covers);
/// any workload drawing many times from a fixed weighting can reuse one.
///
/// # Example
///
/// ```
/// use ppfts_population::dist::AliasTable;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let table = AliasTable::new(&[1.0, 0.0, 3.0]).unwrap();
/// let mut rng = SmallRng::seed_from_u64(1);
/// let i = table.sample(&mut rng);
/// assert!(i == 0 || i == 2); // zero-weight categories never drawn
/// ```
#[derive(Clone, Debug)]
pub struct AliasTable {
    /// Acceptance threshold per cell, in `[0, 1]`.
    prob: Vec<f64>,
    /// Donor category used when a cell's threshold rejects.
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds the table; returns `None` if `weights` is empty, contains a
    /// negative or non-finite entry, or sums to zero.
    pub fn new(weights: &[f64]) -> Option<Self> {
        let n = weights.len();
        if n == 0 {
            return None;
        }
        let mut total = 0.0;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return None;
            }
            total += w;
        }
        if total <= 0.0 {
            return None;
        }
        // Vose's partition into small (< 1) and large (≥ 1) scaled cells.
        let scale = n as f64 / total;
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut prob = vec![1.0f64; n];
        let mut alias: Vec<usize> = (0..n).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(&l)) = (small.pop(), large.last()) {
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] -= 1.0 - scaled[s];
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers on either list are 1.0 cells up to fp drift.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        Some(AliasTable { prob, alias })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table has no categories (never true for a built table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one category index, consuming one range draw and one
    /// uniform.
    pub fn sample(&self, rng: &mut (impl RngCore + ?Sized)) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if uniform_f64(rng) < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// SplitMix64 finalizer: a fast, high-quality bijective mixer on `u64`.
///
/// Used by [`hash_bernoulli`] to derive per-step pseudo-random decisions
/// without consuming state from a stream RNG, so callers stay replayable
/// and compatible with bulk pair drawing (`uses_rng() == false` paths).
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic Bernoulli trial keyed by `(key, salt)`.
///
/// Returns `true` with probability `rate` (clamped to `[0, 1]`) as a pure
/// function of its arguments: the same `(key, salt, rate)` triple always
/// yields the same answer. The decision compares `splitmix64(key ^
/// splitmix64(salt))`, interpreted as a uniform draw on `[0, 2⁶⁴)`,
/// against `rate` scaled to the same range.
///
/// This is the primitive behind rate segments in omission-fault
/// schedules: an adversary built from it needs no RNG stream, so runs
/// replay bit-identically and the engine's batched pair-draw fast path
/// stays enabled.
///
/// # Example
///
/// ```
/// use ppfts_population::dist::hash_bernoulli;
///
/// // Pure in its arguments.
/// assert_eq!(hash_bernoulli(42, 7, 0.3), hash_bernoulli(42, 7, 0.3));
/// // Degenerate rates are exact.
/// assert!(!hash_bernoulli(1, 2, 0.0));
/// assert!(hash_bernoulli(1, 2, 1.0));
/// ```
#[must_use]
pub fn hash_bernoulli(key: u64, salt: u64, rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    if rate >= 1.0 {
        return true;
    }
    let draw = splitmix64(key ^ splitmix64(salt));
    // Threshold in [0, 2^64): use 2^64 · rate via the 2^63 ladder to stay
    // inside f64→u64 range.
    let threshold = (rate * 2.0 * 9_223_372_036_854_775_808.0) as u64;
    draw < threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// χ² statistic of `observed` against `expected` counts, merging
    /// trailing low-expectation bins so every cell has expectation ≥ 5.
    fn chi_square(observed: &[f64], expected: &[f64]) -> (f64, usize) {
        assert_eq!(observed.len(), expected.len());
        let mut chi2 = 0.0;
        let mut bins = 0usize;
        let (mut obs_acc, mut exp_acc) = (0.0, 0.0);
        for (&o, &e) in observed.iter().zip(expected) {
            obs_acc += o;
            exp_acc += e;
            if exp_acc >= 5.0 {
                chi2 += (obs_acc - exp_acc).powi(2) / exp_acc;
                bins += 1;
                obs_acc = 0.0;
                exp_acc = 0.0;
            }
        }
        if exp_acc > 0.0 {
            chi2 += (obs_acc - exp_acc).powi(2) / exp_acc;
            bins += 1;
        }
        (chi2, bins)
    }

    /// Exact Binomial(n, p) pmf via the multiplicative recurrence.
    fn binomial_pmf(n: u64, p: f64) -> Vec<f64> {
        let mut pmf = vec![0.0; n as usize + 1];
        pmf[0] = (1.0 - p).powi(n as i32);
        for k in 1..=n as usize {
            pmf[k] = pmf[k - 1] * (p / (1.0 - p)) * (n as f64 - k as f64 + 1.0) / k as f64;
        }
        pmf
    }

    /// Exact Hypergeometric pmf over the full `0..=nsample` range.
    fn hypergeometric_pmf(ngood: u64, nbad: u64, nsample: u64) -> Vec<f64> {
        (0..=nsample)
            .map(|k| {
                if k > ngood || nsample - k > nbad {
                    0.0
                } else {
                    (ln_choose(ngood, k) + ln_choose(nbad, nsample - k)
                        - ln_choose(ngood + nbad, nsample))
                    .exp()
                }
            })
            .collect()
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        let cases = [
            (1.0, 0.0),
            (2.0, 0.0),
            (5.0, 24.0f64.ln()),
            (11.0, 3_628_800.0f64.ln()),
            (0.5, std::f64::consts::PI.ln() / 2.0),
        ];
        for (x, want) in cases {
            assert!(
                (ln_gamma(x) - want).abs() < 1e-10,
                "ln_gamma({x}) = {} want {want}",
                ln_gamma(x)
            );
        }
        // Large-argument spot check against Stirling's series.
        let x = 1e8f64;
        let stirling = (x - 0.5) * x.ln() - x + 0.918_938_533_204_672_7 + 1.0 / (12.0 * x);
        assert!((ln_gamma(x) - stirling).abs() / stirling < 1e-12);
    }

    #[test]
    fn ln_fact_agrees_with_ln_gamma_across_the_crossover() {
        for n in [
            0u64,
            1,
            2,
            5,
            100,
            1_022,
            1_023,
            1_024,
            1_025,
            10_000,
            1_000_000_000,
        ] {
            let want = ln_gamma(n as f64 + 1.0);
            let got = ln_fact(n);
            let tol = 1e-12 * want.abs().max(1.0);
            assert!((got - want).abs() < tol, "ln_fact({n}) = {got} want {want}");
        }
    }

    #[test]
    fn uniform_f64_stays_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = uniform_f64(&mut rng);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
        assert!(uniform_open01(&mut rng) > 0.0);
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(binomial(0, 0.5, &mut rng), 0);
        assert_eq!(binomial(100, 0.0, &mut rng), 0);
        assert_eq!(binomial(100, 1.0, &mut rng), 100);
        for _ in 0..100 {
            assert!(binomial(10, 0.5, &mut rng) <= 10);
        }
    }

    #[test]
    fn binomial_mean_and_variance_both_regimes() {
        // (n, p) pairs hitting the chop-down (mean < 30) and the
        // mode-centered (mean ≥ 30) regimes, including a mirrored p.
        for (n, p) in [(200u64, 0.05), (1_000u64, 0.3), (500u64, 0.9)] {
            let mut rng = SmallRng::seed_from_u64(42);
            let trials = 20_000u64;
            let (mut sum, mut sum_sq) = (0.0f64, 0.0f64);
            for _ in 0..trials {
                let k = binomial(n, p, &mut rng) as f64;
                sum += k;
                sum_sq += k * k;
            }
            let mean = sum / trials as f64;
            let var = sum_sq / trials as f64 - mean * mean;
            let want_mean = n as f64 * p;
            let want_var = n as f64 * p * (1.0 - p);
            // 5σ tolerance on the sample mean; 10% on the variance.
            let tol = 5.0 * (want_var / trials as f64).sqrt();
            assert!(
                (mean - want_mean).abs() < tol,
                "Binomial({n},{p}) mean {mean} want {want_mean} ± {tol}"
            );
            assert!(
                (var - want_var).abs() < 0.1 * want_var,
                "Binomial({n},{p}) var {var} want {want_var}"
            );
        }
    }

    #[test]
    fn binomial_goodness_of_fit_chop_down_regime() {
        let (n, p) = (20u64, 0.35);
        let mut rng = SmallRng::seed_from_u64(7);
        let trials = 40_000u64;
        let mut observed = vec![0.0f64; n as usize + 1];
        for _ in 0..trials {
            observed[binomial(n, p, &mut rng) as usize] += 1.0;
        }
        let expected: Vec<f64> = binomial_pmf(n, p)
            .iter()
            .map(|q| q * trials as f64)
            .collect();
        let (chi2, bins) = chi_square(&observed, &expected);
        // df ≈ bins − 1 ≤ 20; χ²₀.₉₉₉(20) ≈ 45.3.
        assert!(chi2 < 46.0, "χ² = {chi2} over {bins} bins");
    }

    #[test]
    fn binomial_goodness_of_fit_mode_regime() {
        let (n, p) = (400u64, 0.5);
        let mut rng = SmallRng::seed_from_u64(13);
        let trials = 40_000u64;
        let mut observed = vec![0.0f64; n as usize + 1];
        for _ in 0..trials {
            observed[binomial(n, p, &mut rng) as usize] += 1.0;
        }
        let expected: Vec<f64> = binomial_pmf(n, p)
            .iter()
            .map(|q| q * trials as f64)
            .collect();
        let (chi2, bins) = chi_square(&observed, &expected);
        // The ±5σ window around the mode spans ~50 populated bins;
        // χ²₀.₉₉₉(60) ≈ 99.6.
        assert!(bins > 20, "degenerate binning: {bins}");
        assert!(chi2 < 100.0, "χ² = {chi2} over {bins} bins");
    }

    #[test]
    fn hypergeometric_edge_cases() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(hypergeometric(5, 5, 0, &mut rng), 0);
        assert_eq!(hypergeometric(0, 9, 4, &mut rng), 0);
        assert_eq!(hypergeometric(9, 0, 4, &mut rng), 4);
        assert_eq!(hypergeometric(3, 4, 7, &mut rng), 3); // whole urn
        for _ in 0..200 {
            let k = hypergeometric(6, 3, 5, &mut rng);
            assert!((2..=5).contains(&k), "k = {k} outside support");
        }
    }

    #[test]
    fn hypergeometric_mean_and_variance() {
        // Epoch-scale parameters: a √n-sized sample from a large urn.
        let (ngood, nbad, nsample) = (600_000u64, 400_000u64, 1_000u64);
        let mut rng = SmallRng::seed_from_u64(23);
        let trials = 20_000u64;
        let (mut sum, mut sum_sq) = (0.0f64, 0.0f64);
        for _ in 0..trials {
            let k = hypergeometric(ngood, nbad, nsample, &mut rng) as f64;
            sum += k;
            sum_sq += k * k;
        }
        let total = (ngood + nbad) as f64;
        let frac = ngood as f64 / total;
        let want_mean = nsample as f64 * frac;
        let want_var =
            nsample as f64 * frac * (1.0 - frac) * (total - nsample as f64) / (total - 1.0);
        let mean = sum / trials as f64;
        let var = sum_sq / trials as f64 - mean * mean;
        let tol = 5.0 * (want_var / trials as f64).sqrt();
        assert!(
            (mean - want_mean).abs() < tol,
            "mean {mean} want {want_mean}"
        );
        assert!(
            (var - want_var).abs() < 0.1 * want_var,
            "var {var} want {want_var}"
        );
    }

    #[test]
    fn hypergeometric_goodness_of_fit() {
        let (ngood, nbad, nsample) = (30u64, 50u64, 20u64);
        let mut rng = SmallRng::seed_from_u64(31);
        let trials = 40_000u64;
        let mut observed = vec![0.0f64; nsample as usize + 1];
        for _ in 0..trials {
            observed[hypergeometric(ngood, nbad, nsample, &mut rng) as usize] += 1.0;
        }
        let expected: Vec<f64> = hypergeometric_pmf(ngood, nbad, nsample)
            .iter()
            .map(|q| q * trials as f64)
            .collect();
        let (chi2, bins) = chi_square(&observed, &expected);
        // df ≤ 20; χ²₀.₉₉₉(20) ≈ 45.3.
        assert!(chi2 < 46.0, "χ² = {chi2} over {bins} bins");
    }

    #[test]
    fn hypergeometric_small_side_goodness_of_fit() {
        // Exercises the tiny-urn-side chop-down path directly (ngood
        // small) and through the mirror (nbad small).
        for (ngood, nbad, nsample) in [(9u64, 2_000u64, 700u64), (2_000, 9, 700)] {
            let mut rng = SmallRng::seed_from_u64(41);
            let trials = 40_000u64;
            let mut observed = vec![0.0f64; nsample as usize + 1];
            for _ in 0..trials {
                observed[hypergeometric(ngood, nbad, nsample, &mut rng) as usize] += 1.0;
            }
            let expected: Vec<f64> = hypergeometric_pmf(ngood, nbad, nsample)
                .iter()
                .map(|q| q * trials as f64)
                .collect();
            let (chi2, bins) = chi_square(&observed, &expected);
            // df ≤ 10; χ²₀.₉₉₉(10) ≈ 29.6.
            assert!(
                chi2 < 30.0,
                "({ngood},{nbad},{nsample}): χ² = {chi2} over {bins} bins"
            );
        }
    }

    #[test]
    fn multivariate_hypergeometric_sums_and_marginals() {
        let counts = [40u64, 25, 0, 35];
        let nsample = 30u64;
        let mut rng = SmallRng::seed_from_u64(17);
        let trials = 20_000u64;
        let mut mean = [0.0f64; 4];
        for _ in 0..trials {
            let split = multivariate_hypergeometric(&counts, nsample, &mut rng);
            assert_eq!(split.iter().sum::<u64>(), nsample);
            for (m, (&k, &c)) in mean.iter_mut().zip(split.iter().zip(&counts)) {
                assert!(k <= c, "group overdrawn");
                *m += k as f64 / trials as f64;
            }
        }
        let total: u64 = counts.iter().sum();
        for (i, &c) in counts.iter().enumerate() {
            let want = nsample as f64 * c as f64 / total as f64;
            // Marginals are Hypergeometric(c, total−c, nsample).
            let var = want * (1.0 - c as f64 / total as f64) * (total - nsample) as f64
                / (total - 1) as f64;
            let tol = 5.0 * (var / trials as f64).sqrt() + 1e-9;
            assert!(
                (mean[i] - want).abs() < tol,
                "marginal {i}: mean {} want {want}",
                mean[i]
            );
        }
    }

    #[test]
    fn multinomial_sums_and_marginals() {
        let weights = [1.0, 0.0, 2.0, 5.0];
        let n = 64u64;
        let mut rng = SmallRng::seed_from_u64(29);
        let trials = 20_000u64;
        let mut mean = [0.0f64; 4];
        for _ in 0..trials {
            let split = multinomial(n, &weights, &mut rng);
            assert_eq!(split.iter().sum::<u64>(), n);
            assert_eq!(split[1], 0, "zero-weight category drawn");
            for (m, &k) in mean.iter_mut().zip(&split) {
                *m += k as f64 / trials as f64;
            }
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let p = w / total;
            let want = n as f64 * p;
            let tol = 5.0 * (n as f64 * p * (1.0 - p) / trials as f64).sqrt() + 1e-9;
            assert!(
                (mean[i] - want).abs() < tol,
                "marginal {i}: mean {} want {want}",
                mean[i]
            );
        }
    }

    #[test]
    fn alias_table_construction_invariants() {
        let weights = [0.5, 3.0, 0.0, 1.25, 8.0];
        let table = AliasTable::new(&weights).unwrap();
        assert_eq!(table.len(), weights.len());
        assert!(!table.is_empty());
        for (i, &p) in table.prob.iter().enumerate() {
            assert!((0.0..=1.0).contains(&p), "prob[{i}] = {p}");
            assert!(table.alias[i] < weights.len());
            // A cell that can reject must alias to a positive-weight donor.
            if p < 1.0 {
                assert!(weights[table.alias[i]] > 0.0);
            }
        }
        // Per-category total mass reconstructed from the table matches
        // the normalized weights: mass(i) = prob[i] + Σ_j (1 − prob[j])
        // over cells aliasing to i, all divided by len.
        let mut mass = vec![0.0f64; weights.len()];
        for i in 0..weights.len() {
            mass[i] += table.prob[i];
            mass[table.alias[i]] += 1.0 - table.prob[i];
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let want = w / total * weights.len() as f64;
            assert!(
                (mass[i] - want).abs() < 1e-9,
                "category {i}: mass {} want {want}",
                mass[i]
            );
        }
    }

    #[test]
    fn alias_table_rejects_invalid_weights() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[1.0, -0.5]).is_none());
        assert!(AliasTable::new(&[f64::NAN]).is_none());
        assert!(AliasTable::new(&[f64::INFINITY, 1.0]).is_none());
    }

    #[test]
    fn hash_bernoulli_is_deterministic_and_calibrated() {
        // Pure function of (key, salt, rate).
        for key in 0..64u64 {
            assert_eq!(hash_bernoulli(key, 99, 0.25), hash_bernoulli(key, 99, 0.25));
        }
        // Distinct salts decorrelate the key stream.
        let same = (0..512u64)
            .filter(|&k| hash_bernoulli(k, 1, 0.5) == hash_bernoulli(k, 2, 0.5))
            .count();
        assert!((130..380).contains(&same), "salts too correlated: {same}");
        // Empirical frequency tracks the requested rate.
        for &rate in &[0.1, 0.5, 0.9] {
            let trials = 20_000u64;
            let hits = (0..trials).filter(|&k| hash_bernoulli(k, 7, rate)).count() as f64;
            let freq = hits / trials as f64;
            assert!((freq - rate).abs() < 0.02, "rate {rate}: observed {freq}");
        }
    }

    #[test]
    fn splitmix64_matches_reference_vector() {
        // Reference values from the canonical SplitMix64 (Vigna).
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(1), 0x910a_2dec_8902_5cc1);
    }

    #[test]
    fn alias_table_goodness_of_fit() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let table = AliasTable::new(&weights).unwrap();
        let mut rng = SmallRng::seed_from_u64(37);
        let trials = 40_000u64;
        let mut observed = vec![0.0f64; weights.len()];
        for _ in 0..trials {
            observed[table.sample(&mut rng)] += 1.0;
        }
        let total: f64 = weights.iter().sum();
        let expected: Vec<f64> = weights.iter().map(|w| w / total * trials as f64).collect();
        let (chi2, _) = chi_square(&observed, &expected);
        // df = 3; χ²₀.₉₉₉(3) ≈ 16.3.
        assert!(chi2 < 17.0, "χ² = {chi2}");
    }
}

//! Agent identifiers.

use std::fmt;

/// Index of an agent within a population.
///
/// Agents in population protocols are *anonymous*: an `AgentId` is a handle
/// used by schedulers, traces and verifiers to refer to a position in a
/// [`Configuration`](crate::Configuration), not a piece of information
/// available to the protocol itself. Protocols that assume unique IDs (such
/// as the `SID` simulator of the reproduced paper) must carry those IDs in
/// their *state*, where they are subject to the usual protocol rules.
///
/// # Example
///
/// ```
/// use ppfts_population::AgentId;
///
/// let a = AgentId::new(3);
/// assert_eq!(a.index(), 3);
/// assert_eq!(a.to_string(), "a3");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AgentId(usize);

impl AgentId {
    /// Creates an identifier for the agent at position `index`.
    pub const fn new(index: usize) -> Self {
        AgentId(index)
    }

    /// Position of this agent within its configuration.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for AgentId {
    fn from(index: usize) -> Self {
        AgentId(index)
    }
}

impl From<AgentId> for usize {
    fn from(id: AgentId) -> usize {
        id.0
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_usize() {
        let id = AgentId::from(7usize);
        assert_eq!(usize::from(id), 7);
        assert_eq!(id.index(), 7);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(AgentId::new(1) < AgentId::new(2));
        assert_eq!(AgentId::new(5), AgentId::new(5));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(AgentId::new(0).to_string(), "a0");
        assert_eq!(format!("{:?}", AgentId::new(2)), "AgentId(2)");
    }
}

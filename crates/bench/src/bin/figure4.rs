//! Regenerates the paper's Figure 4: the map of possibility/impossibility
//! results, with every cell backed by an execution.
//!
//! Green cells run the corresponding simulator and audit the Pairing
//! problem; red cells run the corresponding attack construction and
//! verify the predicted violation (or stall). Cells the paper leaves open
//! or colours through other columns print as `?`.
//!
//! Run with: `cargo run --release -p ppfts-bench --bin figure4`

use ppfts_core::{NamedSid, Sid, Skno, SknoState};
use ppfts_engine::{BoundedStrategy, Model, OneWayModel, OneWayRunner, StatsOnly, TwoWayModel};
use ppfts_protocols::{Pairing, PairingState};
use ppfts_verify::{
    audit_pairing_batched, lemma1_attack, no1_resilience, thm32_attack, Optimist, OptimistState,
};

/// Batch size of the possibility witnesses' audits: Pairing violations
/// are sticky (`cs` is irrevocable), so auditing at this stride on the
/// `StatsOnly` path loses nothing the green cells depend on.
const AUDIT_BATCH: u64 = 128;

#[derive(Clone, Copy, PartialEq)]
enum Cell {
    Green,
    Red,
    Open,
}

impl Cell {
    fn paint(self) -> &'static str {
        match self {
            Cell::Green => "  ✔ ",
            Cell::Red => "  ✘ ",
            Cell::Open => "  ? ",
        }
    }
}

fn pairing_sims(n: usize) -> Vec<PairingState> {
    Pairing::initial(n / 2, n / 2).as_slice().to_vec()
}

fn witness_possible_sid(m: OneWayModel) -> Cell {
    let mut runner = OneWayRunner::builder(m, Sid::new(Pairing))
        .config(Sid::<Pairing>::initial(&pairing_sims(4)))
        .seed(1)
        .trace_sink(StatsOnly)
        .build()
        .unwrap();
    let report = audit_pairing_batched(&mut runner, 1_500_000, AUDIT_BATCH);
    assert!(
        report.solved(),
        "{m}: SID audit failed: {:?}",
        report.violations
    );
    Cell::Green
}

fn witness_possible_skno(m: OneWayModel, o: u32) -> Cell {
    let mut runner = OneWayRunner::builder(m, Skno::new(Pairing, o))
        .config(Skno::<Pairing>::initial(&pairing_sims(4)))
        .adversary(BoundedStrategy::new(0.02, o as u64))
        .seed(2)
        .trace_sink(StatsOnly)
        .build()
        .unwrap();
    let report = audit_pairing_batched(&mut runner, 1_500_000, AUDIT_BATCH);
    assert!(
        report.solved(),
        "{m}: SKnO audit failed: {:?}",
        report.violations
    );
    Cell::Green
}

fn witness_possible_named(m: OneWayModel) -> Cell {
    let n = 4;
    let mut runner = OneWayRunner::builder(m, NamedSid::new(Pairing, n))
        .config(NamedSid::<Pairing>::initial(&pairing_sims(n)))
        .seed(3)
        .trace_sink(StatsOnly)
        .build()
        .unwrap();
    let report = audit_pairing_batched(&mut runner, 4_000_000, AUDIT_BATCH);
    assert!(
        report.solved(),
        "{m}: NamedSid audit failed: {:?}",
        report.violations
    );
    Cell::Green
}

fn witness_impossible_lemma1(m: OneWayModel) -> Cell {
    let report = lemma1_attack(m, Skno::new(Pairing, 1), SknoState::new, 128, 512).unwrap();
    assert!(report.violated_safety(), "{m}: Lemma 1 attack did not land");
    Cell::Red
}

fn witness_impossible_thm32(m: OneWayModel) -> Cell {
    let stalls = !no1_resilience(m, &Skno::new(Pairing, 1), SknoState::new, 4, 3_000).is_empty();
    let unsafe_opt = thm32_attack(m, Optimist::new(Pairing), OptimistState::new, 64, 256)
        .unwrap()
        .violated_safety();
    assert!(
        stalls && unsafe_opt,
        "{m}: Theorem 3.2 dichotomy did not land"
    );
    Cell::Red
}

fn main() {
    println!("Figure 4 — map of results (✔ possible, ✘ impossible, ? open/other column)\n");
    println!(
        "{:<6}{:>14}{:>22}{:>12}{:>16}",
        "model", "no assumption", "omission knowledge", "unique IDs", "knowledge of n"
    );
    println!("{}", "-".repeat(70));

    for model in Model::ALL {
        let row: [Cell; 4] = match model {
            Model::TwoWay(TwoWayModel::Tw) => [Cell::Green; 4],
            // T1–T3: Theorem 3.1 (executable witness in the one-way
            // fragment; the two-way claim follows via the hierarchy).
            // The omission-knowledge column for T2 is the paper's open
            // gap; T1/T3 are open in that column too pending the paper's
            // future work.
            Model::TwoWay(_) => [Cell::Red, Cell::Open, Cell::Red, Cell::Red],
            Model::OneWay(m) => match m {
                OneWayModel::It => [
                    Cell::Open,
                    witness_possible_skno(OneWayModel::It, 0), // Corollary 1
                    witness_possible_sid(OneWayModel::It),
                    witness_possible_named(OneWayModel::It),
                ],
                OneWayModel::Io => [
                    Cell::Open,
                    Cell::Open,
                    witness_possible_sid(OneWayModel::Io), // Theorem 4.5
                    witness_possible_named(OneWayModel::Io), // Theorem 4.6
                ],
                OneWayModel::I1 | OneWayModel::I2 => [
                    witness_impossible_thm32(m), // Theorem 3.2
                    witness_impossible_thm32(m),
                    Cell::Red,
                    Cell::Red,
                ],
                OneWayModel::I3 | OneWayModel::I4 => [
                    witness_impossible_lemma1(m), // Theorem 3.1 / Lemma 1
                    witness_possible_skno(m, 2),  // Theorem 4.1
                    Cell::Red,
                    Cell::Red,
                ],
            },
        };
        println!(
            "{:<6}{:>14}{:>22}{:>12}{:>16}",
            model.to_string(),
            row[0].paint(),
            row[1].paint(),
            row[2].paint(),
            row[3].paint()
        );
    }

    println!("\nEvery ✔ ran its simulator and passed the Pairing audit; every one-way ✘");
    println!("ran its attack construction and produced the predicted violation/stall.");
    println!("The T2/omission-knowledge cell is the paper's explicitly open problem.");
}

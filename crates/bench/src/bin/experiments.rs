//! Runs the experiment suite (DESIGN.md E1–E18) and prints the
//! paper-claim-vs-measured tables recorded in EXPERIMENTS.md.
//!
//! Convergence measurements (E5, E7, E8) run on the engine's batched
//! `StatsOnly` path with their predicates wrapped in the `stably`
//! combinator (see `ppfts_bench`), so the tables no longer stop on
//! transient mid-handshake projections and step counts are batch aligned.
//!
//! Run with: `cargo run --release -p ppfts-bench --bin experiments`
//!
//! Positional arguments select experiments by id (`experiments e12 e13`
//! runs only those rows; no arguments runs everything), and `--smoke`
//! shrinks sizes, seeds and budgets to CI-smoke scale.

use ppfts_bench::{
    e13_families, measure_epidemic_epoch, measure_epidemic_giant, measure_epidemic_giant_dense,
    measure_epidemic_topology, measure_named, measure_naming_phase, measure_sid,
    measure_sid_epidemic_graphical, measure_skno, measure_skno_epidemic_graphical,
    skno_epidemic_graphical_run_with, skno_graphical_fixed_steps_sharded, skno_peak_tokens,
    E13_RR_DEGREE, E13_TOPOLOGY_SEED,
};
use ppfts_core::{fastest_transition_time, Sid, SidState, Skno, SknoState};
use ppfts_engine::hierarchy::{direct_inclusions, includes};
use ppfts_engine::{Model, OneWayModel};
use ppfts_fuzz::{FuzzConfig, FuzzReport, FuzzTarget};
use ppfts_population::Topology;
use ppfts_protocols::{Pairing, PairingState};
use ppfts_verify::{lemma1_attack, thm32_attack, AttackOutcome, Optimist, OptimistState};

fn header(id: &str, title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{id} — {title}");
    println!("{}", "=".repeat(72));
}

/// Prints the banner for experiment `id`, titled from
/// [`Selection::KNOWN`] — the single source `--help` also prints.
fn section(id: &str) {
    let title = Selection::KNOWN
        .iter()
        .find(|(known, _)| *known == id)
        .expect("section ids are registered in Selection::KNOWN")
        .1;
    header(&id.to_ascii_uppercase(), title);
}

/// CLI selection: which experiments to run, at which scale.
struct Selection {
    ids: Vec<String>,
    smoke: bool,
}

impl Selection {
    /// The experiment ids this binary knows, with their table titles
    /// (the same titles `header` prints, kept in one place so `--help`
    /// cannot drift from the sections).
    const KNOWN: [(&'static str, &'static str); 17] = [
        ("e1", "Figure 1: hierarchy arrows and closure"),
        (
            "e2",
            "Lemma 1 / Theorem 3.1: FTT and the omission attack on SKnO (I3)",
        ),
        (
            "e3",
            "Theorem 3.2: the weak models I1/I2 fall without omissions",
        ),
        ("e4", "Theorem 3.3: graceful degradation threshold ≤ 1"),
        (
            "e5",
            "Theorem 4.1: SKnO convergence on Pairing (I3, adversary at full budget)",
        ),
        (
            "e6",
            "Corollary 1 / Theorem 4.1: SKnO memory audit (peak tokens per agent)",
        ),
        (
            "e7",
            "Theorem 4.5: SID convergence on Pairing (IO, unique IDs)",
        ),
        (
            "e8",
            "Theorem 4.6 / Lemma 3: naming with knowledge of n, then simulation",
        ),
        (
            "e9",
            "Figure 4: run `cargo run --release -p ppfts-bench --bin figure4`",
        ),
        (
            "e10",
            "Flock-of-birds motivation: run `cargo run --example flock_of_birds`",
        ),
        (
            "e11",
            "Giant-n epidemic on the count backend (n = 10²…10⁶, Θ(n log n))",
        ),
        (
            "e12",
            "Graph-aware scheduling: epidemic broadcast by interaction topology",
        ),
        (
            "e13",
            "Graphical fault tolerance: SKnO/SID simulators on restricted graphs",
        ),
        (
            "e15",
            "Batch-epoch epidemic sweep (n = 10²…10⁹, sub-ns per interaction)",
        ),
        (
            "e16",
            "Sharded dense stepping (graphical SKnO, fixed budget, threads × n)",
        ),
        (
            "e17",
            "Indexed simulation hot path: RunIndex vs scan-reference wall-clock",
        ),
        (
            "e18",
            "Adversary schedule fuzzing: found-attack severity vs o and conductance",
        ),
    ];

    fn usage() -> String {
        let mut text = String::from(
            "usage: experiments [--smoke] [ids…]\n\n\
             Runs the experiment suite (no ids: everything) and prints the\n\
             tables recorded in EXPERIMENTS.md. `--smoke` shrinks sizes,\n\
             seeds and budgets to CI scale for every listed experiment.\n\nids\n",
        );
        for (id, title) in Self::KNOWN {
            text.push_str(&format!("  {id:<4} {title}\n"));
        }
        text
    }

    fn from_args() -> Self {
        let mut ids = Vec::new();
        let mut smoke = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--smoke" => smoke = true,
                "--help" | "-h" => {
                    println!("{}", Self::usage());
                    std::process::exit(0);
                }
                id if id.starts_with('-') => {
                    eprintln!("unknown flag {id}; usage: experiments [--smoke] [e1 e2 …]");
                    std::process::exit(2);
                }
                id => {
                    let id = id.to_ascii_lowercase();
                    if !Self::KNOWN.iter().any(|(known, _)| *known == id) {
                        let ids: Vec<&str> = Self::KNOWN.iter().map(|(id, _)| *id).collect();
                        eprintln!(
                            "unknown experiment id `{id}`; known ids: {}",
                            ids.join(", ")
                        );
                        std::process::exit(2);
                    }
                    ids.push(id);
                }
            }
        }
        Selection { ids, smoke }
    }

    fn wants(&self, id: &str) -> bool {
        self.ids.is_empty() || self.ids.iter().any(|want| want == id)
    }
}

fn main() {
    let selection = Selection::from_args();
    let seeds = if selection.smoke { 2u64 } else { 10u64 };

    if selection.wants("e1") {
        section("e1");
        println!(
            "{} direct arrows; closure checks:",
            direct_inclusions().len()
        );
        let io = Model::OneWay(OneWayModel::Io);
        let tw = Model::TwoWay(ppfts_engine::TwoWayModel::Tw);
        println!("  includes(IO, TW) = {}", includes(io, tw));
        println!("  includes(TW, IO) = {}", includes(tw, io));
        println!("  (full matrix: cargo run --example model_hierarchy)");
    }

    if selection.wants("e2") {
        section("e2");
        println!(
            "{:>3} | {:>4} | {:>9} | {:>9} | {:>9} | verdict",
            "o", "FTT", "producers", "paired", "omissions"
        );
        for o in 1..=3u32 {
            let report = lemma1_attack(
                OneWayModel::I3,
                Skno::new(Pairing, o),
                SknoState::new,
                128,
                512,
            )
            .expect("attack builds");
            let AttackOutcome::SafetyViolated { paired, .. } = report.outcome else {
                panic!("expected violation")
            };
            println!(
                "{:>3} | {:>4} | {:>9} | {:>9} | {:>9} | safety violated (paper: ≥ t+1 = {})",
                o,
                report.ftt,
                report.producers,
                paired,
                report.omissions_in_run,
                report.ftt + 1,
            );
        }
    }

    if selection.wants("e3") {
        section("e3");
        for m in [OneWayModel::I1, OneWayModel::I2] {
            let report = thm32_attack(m, Optimist::new(Pairing), OptimistState::new, 64, 256)
                .expect("attack builds");
            println!(
                "{m}: NO1-resilient Optimist broken with {} omissions in the run → {:?}",
                report.omissions_in_run, report.outcome
            );
        }
    }

    if selection.wants("e4") {
        section("e4");
        let deg = ppfts_verify::degradation_report(
            OneWayModel::I3,
            Skno::new(Pairing, 1),
            SknoState::new,
            128,
            512,
        )
        .expect("attack builds");
        println!(
            "SKnO(o=1): tolerates one omission = {}; beyond the threshold: {:?}",
            deg.tolerates_one_omission, deg.beyond_threshold
        );
        println!("Theorem 3.3 corroborated: {}", deg.corroborates_thm33());
    }

    if selection.wants("e5") {
        section("e5");
        println!(
            "    o | {:>5} | {:>11} | {:>12} | {:>10}",
            "n", "converged", "mean steps", "per-sim"
        );
        let sizes: &[usize] = if selection.smoke {
            &[4, 8]
        } else {
            &[4, 8, 16]
        };
        for o in [0u32, 1, 2] {
            for &n in sizes {
                let c = measure_skno(n, o, seeds, 30_000_000);
                println!("{:>5} | {}", o, c.row());
            }
        }
    }

    if selection.wants("e6") {
        section("e6");
        println!(
            "{:>3} | {:>5} | {:>12} | bound Θ((o+1)·|Q|·log n): tokens ∝ (o+1)",
            "o", "n", "peak tokens"
        );
        for o in [0u32, 1, 2, 3] {
            for n in [4usize, 8] {
                let peak = skno_peak_tokens(n, o, 50_000, 11);
                println!("{o:>3} | {n:>5} | {peak:>12}");
            }
        }
    }

    if selection.wants("e7") {
        section("e7");
        println!(
            "{:>5} | {:>11} | {:>12} | {:>10}",
            "n", "converged", "mean steps", "per-sim"
        );
        let sizes: &[usize] = if selection.smoke {
            &[4, 8]
        } else {
            &[4, 8, 16, 32, 64]
        };
        for &n in sizes {
            let c = measure_sid(n, seeds, 30_000_000);
            println!("{}", c.row());
        }
        let ftt = fastest_transition_time(
            OneWayModel::Io,
            &Sid::new(Pairing),
            &Pairing,
            SidState::new(0, PairingState::Consumer),
            SidState::new(1, PairingState::Producer),
            16,
        )
        .expect("SID transitions");
        println!(
            "measured FTT(SID) = {} (paper's handshake: pair, lock, complete)",
            ftt.steps
        );
    }

    if selection.wants("e8") {
        section("e8");
        println!("naming phase only:");
        println!(
            "{:>5} | {:>11} | {:>12} | {:>10}",
            "n", "converged", "mean steps", "(n/a)"
        );
        let sizes: &[usize] = if selection.smoke {
            &[4, 8]
        } else {
            &[4, 8, 16, 32]
        };
        for &n in sizes {
            let c = measure_naming_phase(n, seeds, 30_000_000);
            println!("{}", c.row());
        }
        println!("naming + simulated Pairing:");
        let sizes: &[usize] = if selection.smoke { &[4] } else { &[4, 8, 16] };
        for &n in sizes {
            let c = measure_named(n, seeds, 60_000_000);
            println!("{}", c.row());
        }
    }

    if selection.wants("e9") {
        section("e9");
        println!("(separate binary; every cell is execution-backed)");
    }

    if selection.wants("e10") {
        section("e10");
        println!("(threshold detection under omissive I3 with SKnO)");
    }

    if selection.wants("e11") {
        section("e11");
        println!("count backend (CountConfiguration — O(1) memory in n):");
        println!(
            "{:>7} | {:>11} | {:>12} | {:>10}",
            "n", "converged", "mean steps", "per-agent"
        );
        let sizes: &[usize] = if selection.smoke {
            &[100, 1_000]
        } else {
            &[100, 1_000, 10_000, 100_000, 1_000_000]
        };
        for &n in sizes {
            let c = measure_epidemic_giant(n, if n <= 10_000 { seeds } else { 3 }, 400_000_000);
            println!("{}", c.row());
        }
        println!("dense backend (same workload, O(n) memory + O(n) boundary predicate):");
        let sizes: &[usize] = if selection.smoke {
            &[100, 1_000]
        } else {
            &[100, 1_000, 10_000, 100_000]
        };
        for &n in sizes {
            let c =
                measure_epidemic_giant_dense(n, if n <= 10_000 { seeds } else { 3 }, 400_000_000);
            println!("{}", c.row());
        }
    }

    if selection.wants("e12") {
        section("e12");
        println!(
            "{:>8} | {:>7} | {:>11} | {:>12} | {:>10}",
            "family", "n", "converged", "mean steps", "per-agent"
        );
        let sizes: &[usize] = if selection.smoke {
            &[1_000]
        } else {
            &[1_000, 10_000]
        };
        for &n in sizes {
            let budget = (n as u64) * (n as u64) * 4;
            for (family, make) in [
                (
                    "ring",
                    Box::new(move || Topology::ring(n).unwrap())
                        as Box<dyn Fn() -> Topology + Sync>,
                ),
                (
                    "rr4",
                    Box::new(move || Topology::random_regular(n, 4, 12).unwrap()),
                ),
                ("complete", Box::new(move || Topology::complete(n).unwrap())),
            ] {
                let c =
                    measure_epidemic_topology(&make, if n <= 1_000 { seeds } else { 3 }, budget);
                println!("{family:>8} | {}", c.row());
            }
        }
        println!(
            "(edge-draw throughput across n = 10³…10⁵: BENCH_RESULTS.json, e12_topology/draws_*)"
        );
    }

    if selection.wants("e13") {
        section("e13");
        let sizes: &[usize] = if selection.smoke { &[64] } else { &[64, 256] };
        let budget: u64 = if selection.smoke {
            4_000_000
        } else {
            48_000_000
        };
        let e13_seeds = if selection.smoke { 1 } else { 3 };
        println!(
            "graph instrumentation (Φ = conductance, gap = lazy-walk spectral gap; \
             Cheeger: gap/2 ≤ Φ ≤ √(2·gap)):"
        );
        println!("{:>10} | {:>5} | {:>9} | {:>9}", "family", "n", "Φ", "gap");
        for &n in sizes {
            for (family, t) in e13_families(n) {
                println!(
                    "{:>10} | {:>5} | {:>9.4} | {:>9.4}",
                    family,
                    n,
                    t.conductance(),
                    t.spectral_profile(4_000).spectral_gap
                );
            }
        }
        println!(
            "\nsimulated epidemic through the graphical simulators \
             (budget {budget} steps/seed; 0-converged rows exhausted it):"
        );
        println!(
            "{:>14} | {:>10} | {:>5} | {:>11} | {:>12} | {:>10}",
            "simulator", "family", "n", "converged", "mean steps", "per-agent"
        );
        for &n in sizes {
            for (family, t) in e13_families(n) {
                let c = measure_sid_epidemic_graphical(&t, e13_seeds, budget);
                println!("{:>14} | {:>10} | {}", "sid", family, c.row());
                for o in [0u32, 1, 2] {
                    let c = measure_skno_epidemic_graphical(&t, o, 0.02, e13_seeds, budget);
                    println!(
                        "{:>14} | {:>10} | {}",
                        format!("skno o={o}"),
                        family,
                        c.row()
                    );
                }
            }
        }
        println!(
            "(the committed n = 64…1024 grid incl. wall-clock: BENCH_RESULTS.json, \
             e13_graphical_ftt/*)"
        );
    }

    if selection.wants("e15") {
        section("e15");
        println!("epoch path (run_epochs_until — O(d²) per ≈0.63·√n-step epoch):");
        println!(
            "{:>7} | {:>11} | {:>12} | {:>10}",
            "n", "converged", "mean steps", "per-agent"
        );
        let sizes: &[usize] = if selection.smoke {
            &[1_000, 100_000]
        } else {
            &[
                100,
                1_000,
                10_000,
                100_000,
                1_000_000,
                10_000_000,
                100_000_000,
                1_000_000_000,
            ]
        };
        for &n in sizes {
            let budget = (n as u64).saturating_mul(400);
            let c = measure_epidemic_epoch(n, if n <= 10_000 { seeds } else { 3 }, budget);
            println!("{}", c.row());
        }
        println!(
            "(wall-clock per seed across the sweep, plus the per-interaction \
             interleaved↔epoch ratio at n = 10⁶: BENCH_RESULTS.json, e15_epoch/* \
             and e11_giant/per_interaction_*)"
        );
    }

    if selection.wants("e16") {
        section("e16");
        let (sizes, steps): (&[usize], u64) = if selection.smoke {
            (&[256], 16_384)
        } else {
            (&[1_024, 4_096], 65_536)
        };
        println!(
            "{:>6} | {:>6} | {:>12} | {:>10} | {:>8}",
            "n", "shards", "wall-clock", "vs 1", "infected"
        );
        for &n in sizes {
            let topology = Topology::random_regular(n, E13_RR_DEGREE, E13_TOPOLOGY_SEED)
                .expect("rr4 is feasible at E16 sizes");
            let mut sequential_ms = 0.0;
            for shards in [1usize, 2, 4, 8] {
                let start = std::time::Instant::now();
                let infected =
                    skno_graphical_fixed_steps_sharded(&topology, 1, 0.02, shards, steps, 7);
                let ms = start.elapsed().as_secs_f64() * 1e3;
                if shards == 1 {
                    sequential_ms = ms;
                }
                println!(
                    "{:>6} | {:>6} | {:>9.2} ms | {:>9.2}× | {:>8}",
                    n,
                    shards,
                    ms,
                    sequential_ms / ms,
                    infected
                );
            }
        }
        println!(
            "(identical `infected` across shard counts is the bit-identity contract; \
             speedup needs real cores — see EXPERIMENTS.md E16 and BENCH_RESULTS.json, \
             e16_shard/*)"
        );
    }

    if selection.wants("e17") {
        section("e17");
        let (n, budget): (usize, u64) = if selection.smoke {
            (64, 2_000_000)
        } else {
            (1_024, 48_000_000)
        };
        let topology = Topology::complete(n).expect("n \u{2265} 2");
        println!(
            "graphical SKnO simulated epidemic, complete graph n = {n}, \
             budget {budget} steps, seed 0 (identical outcomes asserted):"
        );
        println!(
            "{:>4} | {:>12} | {:>12} | {:>8} | {:>12}",
            "o", "indexed", "scan-ref", "speedup", "steps"
        );
        for o in [0u32, 1, 2] {
            let start = std::time::Instant::now();
            let fast = skno_epidemic_graphical_run_with(&topology, o, 0.02, 0, budget, true);
            let fast_ms = start.elapsed().as_secs_f64() * 1e3;
            let start = std::time::Instant::now();
            let scan = skno_epidemic_graphical_run_with(&topology, o, 0.02, 0, budget, false);
            let scan_ms = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(
                fast, scan,
                "indexed and scan-path runs must agree bit-for-bit"
            );
            println!(
                "{:>4} | {:>9.2} ms | {:>9.2} ms | {:>7.2}\u{d7} | {:>12}",
                o,
                fast_ms,
                scan_ms,
                scan_ms / fast_ms,
                fast.0.steps()
            );
        }
        println!(
            "(live bit-identity A/B on one seed; the committed complete/rr4/ring \
             \u{d7} n = 256\u{2026}4096 wall-clock grid: BENCH_RESULTS.json, \
             e17_simulator_hotpath/*)"
        );
    }

    if selection.wants("e18") {
        section("e18");
        let (sizes, evals, fuzz_seeds): (&[usize], u64, u64) = if selection.smoke {
            (&[16], 6, 2)
        } else {
            (&[64, 256], 12, 2)
        };
        let fuzz_one = |topology: Topology, o_sim: u32, o: u64, steps: u64| {
            let target = FuzzTarget::new(topology, o_sim, o, (1..=fuzz_seeds).collect(), steps, 1);
            let baseline = target.baseline().iter().filter(|b| b.converged).count();
            let report = ppfts_fuzz::fuzz(
                &target,
                &FuzzConfig {
                    budget: evals,
                    rng_seed: 240,
                    corpus_cap: 8,
                },
            );
            (baseline, report)
        };
        let row = |label: &str, n: usize, steps: u64, baseline: usize, report: &FuzzReport| {
            let s = report.best.severity;
            println!(
                "{:>12} | {:>5} | {:>10} | {:>9} | {:>6} | {:>7} | {:>5} | {:>10} | {}",
                label,
                n,
                steps,
                format!("{baseline}/{fuzz_seeds}"),
                s.broken_seeds,
                s.max_pending,
                s.max_stall_depth,
                s.max_steps,
                report
                    .first_break_at
                    .map_or_else(|| "—".to_owned(), |at| format!("eval {at}")),
            );
        };
        println!(
            "control: the seeded mutant (o_sim = 0, schedule allowed 1 omission) \
             must break; the provisioned simulator must survive the same budget.\n"
        );
        println!(
            "{:>12} | {:>5} | {:>10} | {:>9} | {:>6} | {:>7} | {:>5} | {:>10} | first break",
            "cell", "n", "steps", "baseline", "broken", "pending", "stall", "max steps"
        );
        // Control pair on the smallest complete graph.
        let control_n = sizes[0].min(64);
        let control_steps: u64 = if selection.smoke { 600_000 } else { 4_000_000 };
        let complete = |n: usize| Topology::complete(n).expect("n ≥ 2");
        let (b, r) = fuzz_one(complete(control_n), 0, 1, control_steps);
        assert!(
            r.broke(),
            "seeded mutant must break (severity {:?})",
            r.best.severity
        );
        row("weakened o=1", control_n, control_steps, b, &r);
        let (b, r) = fuzz_one(complete(control_n), 1, 1, control_steps);
        assert!(!r.broke(), "provisioned SKnO must survive the smoke budget");
        row("skno o=1", control_n, control_steps, b, &r);

        if !selection.smoke {
            println!("\nseverity vs o (complete graph, provisioned o_sim = o):");
            println!(
                "{:>12} | {:>5} | {:>10} | {:>9} | {:>6} | {:>7} | {:>5} | {:>10} | first break",
                "cell", "n", "steps", "baseline", "broken", "pending", "stall", "max steps"
            );
            for &n in sizes {
                for o in [0u32, 1, 2] {
                    // E13 fault-free means: o=1 n=64 ≈ 1.2e6, o=1 n=256
                    // ≈ 1.6e7, o=2 n=64 ≈ 1.4e7; o=2 n=256 exhausts any
                    // practical budget (honest 0-baseline row). The
                    // attacked o=1 n=256 runs converge at ~3.2e7 — one
                    // omission costs ≈ 2× fault-free — so budgets below
                    // 48M mint spurious "broken" rows (budget artifact,
                    // not a stall).
                    let steps: u64 = match (o, n) {
                        (0, _) => 1_000_000,
                        (_, n) if n <= 64 => 24_000_000,
                        _ => 48_000_000,
                    };
                    let (b, r) = fuzz_one(complete(n), o, u64::from(o), steps);
                    row(&format!("complete o={o}"), n, steps, b, &r);
                }
            }
            println!("\nseverity vs conductance (o = 1, families in increasing Φ):");
            println!(
                "{:>12} | {:>5} | {:>10} | {:>9} | {:>6} | {:>7} | {:>5} | {:>10} | first break",
                "cell", "n", "steps", "baseline", "broken", "pending", "stall", "max steps"
            );
            for &n in sizes {
                let families = [
                    ("ring", Topology::ring(n).expect("n ≥ 4")),
                    (
                        "rr4",
                        Topology::random_regular(n, E13_RR_DEGREE, E13_TOPOLOGY_SEED)
                            .expect("rr4 is feasible"),
                    ),
                    ("complete", complete(n)),
                ];
                for (family, t) in families {
                    // Sparse families exhaust any budget fault-free
                    // (conductance limit), so 8M bounds their cost; the
                    // complete graph gets the true-tolerance budget.
                    let steps: u64 = match family {
                        "complete" if n > 64 => 48_000_000,
                        _ => 8_000_000,
                    };
                    let (b, r) = fuzz_one(t, 1, 1, steps);
                    row(family, n, steps, b, &r);
                }
            }
            println!(
                "\n(ring/rr4 baselines exhaust the budget fault-free — E13's \
                 conductance limit — so broken stays 0 there by construction \
                 and severity is carried by the pressure columns)"
            );
        }
    }

    println!(
        "\nAll selected experiment tables printed. EXPERIMENTS.md records the expected shapes."
    );
}

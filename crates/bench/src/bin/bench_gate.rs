//! CI bench-regression gate.
//!
//! Compares a freshly measured criterion-shim JSON (`--current`, written
//! via `BENCH_JSON=… cargo bench`) against the committed baseline
//! (`--baseline BENCH_RESULTS.json`), prints the markdown delta table to
//! stdout, and exits 1 iff any bench mean regressed past the tolerance
//! (default 2.5×). See `ppfts_bench::regression` for the comparison
//! semantics; only benches present in *both* files are compared, so CI
//! can measure a stable subset.
//!
//! The exit-code contract — **0** clean, **1** gating findings, **2**
//! usage error — is shared with the `ppfts_analyze` static-analysis
//! gate (`ppfts-analyze`), so CI treats both gates uniformly.
//!
//! ```text
//! cargo run -p ppfts-bench --bin bench_gate -- \
//!     --baseline BENCH_RESULTS.json --current bench_current.json [--tolerance 2.5]
//! ```

use std::process::ExitCode;

use ppfts_bench::regression::{compare, parse_report};

fn usage() -> ! {
    eprintln!(
        "usage: bench_gate --baseline <BENCH_RESULTS.json> --current <bench_current.json> \
         [--tolerance <factor>]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut baseline_path = None;
    let mut current_path = None;
    let mut tolerance = 2.5f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline_path = args.next(),
            "--current" => current_path = args.next(),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|t| t.parse().ok())
                    .filter(|t| *t >= 1.0)
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    let (Some(baseline_path), Some(current_path)) = (baseline_path, current_path) else {
        usage()
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_gate: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let parse = |path: &str, text: &str| match parse_report(text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_gate: {path} is not a criterion-shim report: {e}");
            std::process::exit(2);
        }
    };
    let baseline = parse(&baseline_path, &read(&baseline_path));
    let current = parse(&current_path, &read(&current_path));
    let comparison = compare(&baseline, &current, tolerance);
    println!("{}", comparison.markdown());
    if comparison.passes() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! Shared harness utilities for the experiment suite.
//!
//! The binaries (`figure4`, `experiments`) and the Criterion benches all
//! build their workloads through this crate so that DESIGN.md's
//! per-experiment index points at one implementation of each measurement.
//!
//! All `measure_*` convergence harnesses run on the engine's batched
//! [`StatsOnly`] path: interactions execute in batches of [`BATCH`] with
//! the convergence predicate sampled only at batch boundaries and wrapped
//! in [`stably`], so a transient
//! mid-handshake projection can no longer end a run (the `run_until`
//! sampling hazard the ROADMAP recorded). Reported step counts are batch
//! aligned: they overshoot the instant the predicate first held by at
//! most `BATCH × STABLE_WINDOW` interactions, which is noise at the step
//! scales measured here. [`measure_skno_scalar`] keeps the pre-batching
//! scalar path alive as the reference the committed `BENCH_RESULTS.json`
//! baseline is measured against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod regression;

use ppfts_core::{project, NamedSid, NamedState, Sid, SimulatorState, Skno, SknoState};
use ppfts_engine::convergence::stably;
use ppfts_engine::{
    run_seeds, BoundedStrategy, OneWayModel, OneWayRunner, RunOutcome, StatsOnly, TwoWayModel,
    TwoWayRunner, UniformScheduler,
};
use ppfts_population::{Configuration, CountConfiguration, Topology};
use ppfts_protocols::{scenario, Epidemic, Pairing, PairingState};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Batch size of the harness's batched runs: big enough to amortize the
/// per-boundary projection predicate to noise, small enough that the
/// batch-aligned step counts stay fine-grained relative to convergence
/// times.
pub const BATCH: u64 = 1024;

/// Consecutive batch boundaries a convergence predicate must hold before
/// a run counts as converged (the [`stably`] window).
pub const STABLE_WINDOW: u64 = 2;

/// Batch size of the giant-n (E11) harness: large enough to amortize the
/// per-boundary predicate to noise even when the dense backend pays O(n)
/// for it, at a step-resolution cost that is negligible against the
/// Θ(n log n) convergence times measured there.
pub const GIANT_BATCH: u64 = 8192;

/// Number of agents whose *simulated* state is `q` — the projection
/// `π_P(C)` counted without materializing it. Behaviorally identical to
/// `project(c).count_state(q)`, but allocation-free: the old phrasing
/// built a full n-state configuration at every batch boundary, which the
/// E17 hot-path analysis found to be a measurable slice of the simulator
/// harness wall-clock (hundreds of milliseconds per budget-capped cell).
fn simulated_count<S: SimulatorState + ppfts_population::State>(
    config: &Configuration<S>,
    q: &S::Simulated,
) -> usize {
    config
        .as_slice()
        .iter()
        .filter(|s| s.simulated() == q)
        .count()
}

/// Whether *every* agent's simulated state is `q` — equivalent to
/// `simulated_count(c, q) == n` but with the early exit the full-count
/// phrasing cannot have: far from convergence the scan stops at the first
/// counterexample, so the boundary check costs O(1) for most of a run.
fn all_simulated<S: SimulatorState + ppfts_population::State>(
    config: &Configuration<S>,
    q: &S::Simulated,
) -> bool {
    config.as_slice().iter().all(|s| s.simulated() == q)
}

/// Convergence measurement of one simulator configuration, aggregated
/// over seeds.
#[derive(Clone, Debug, PartialEq)]
pub struct Convergence {
    /// Number of agents.
    pub n: usize,
    /// Seeds that converged within the budget.
    pub converged: usize,
    /// Seeds run in total.
    pub seeds: usize,
    /// Mean interactions to stabilize (over converged seeds).
    pub mean_steps: f64,
    /// Mean engine interactions per *simulated* two-way interaction.
    pub steps_per_simulated: f64,
}

impl Convergence {
    /// Renders one table row: `n, converged/seeds, mean, per-sim`.
    pub fn row(&self) -> String {
        format!(
            "{:>5} | {:>5}/{:<5} | {:>12.1} | {:>10.2}",
            self.n, self.converged, self.seeds, self.mean_steps, self.steps_per_simulated
        )
    }
}

/// The Pairing workload used throughout: `n/2` consumers, `n/2` producers
/// (n even), expecting `n/2` pairings.
pub fn pairing_inputs(n: usize) -> Vec<PairingState> {
    assert!(n >= 2 && n.is_multiple_of(2), "workload uses even n");
    Pairing::initial(n / 2, n / 2).as_slice().to_vec()
}

/// One seeded SID run on the Pairing workload: the single-seed body
/// [`measure_sid`] fans out, exposed so job-granular drivers (the
/// `ppfts-sweep` orchestrator) dispatch the *same* workload one seed at
/// a time. Returns the run outcome and the simulated-step denominator.
pub fn sid_pairing_run(n: usize, seed: u64, budget: u64) -> (RunOutcome, u64) {
    let sims = pairing_inputs(n);
    let expected = n / 2;
    let mut runner = OneWayRunner::builder(OneWayModel::Io, Sid::new(Pairing))
        .config(Sid::<Pairing>::initial(&sims))
        .scheduler(UniformScheduler::new())
        .seed(seed)
        .trace_sink(StatsOnly)
        .build()
        .expect("valid population");
    let out = runner.run_batched_until(
        budget,
        BATCH,
        stably(
            |c| simulated_count(c, &PairingState::Paired) == expected,
            STABLE_WINDOW,
        ),
    );
    (out, expected as u64)
}

/// Measures SID's convergence on the Pairing workload.
pub fn measure_sid(n: usize, seeds: u64, budget: u64) -> Convergence {
    let results = run_seeds(0..seeds, workers(), |seed| sid_pairing_run(n, seed, budget));
    aggregate(n, results.into_iter().map(|s| s.value))
}

/// One seeded SKnO run on the Pairing workload under model I3 with
/// omission bound `o` (single-seed body of [`measure_skno`]).
pub fn skno_pairing_run(n: usize, o: u32, seed: u64, budget: u64) -> (RunOutcome, u64) {
    let sims = pairing_inputs(n);
    let expected = n / 2;
    let mut runner = OneWayRunner::builder(OneWayModel::I3, Skno::new(Pairing, o))
        .config(Skno::<Pairing>::initial(&sims))
        .adversary(BoundedStrategy::new(0.02, o as u64))
        .seed(seed)
        .trace_sink(StatsOnly)
        .build()
        .expect("valid population");
    let out = runner.run_batched_until(
        budget,
        BATCH,
        stably(
            |c| simulated_count(c, &PairingState::Paired) == expected,
            STABLE_WINDOW,
        ),
    );
    (out, expected as u64)
}

/// Measures SKnO's convergence on the Pairing workload under model I3
/// with omission bound `o` (the adversary spends the full budget).
pub fn measure_skno(n: usize, o: u32, seeds: u64, budget: u64) -> Convergence {
    let results = run_seeds(0..seeds, workers(), |seed| {
        skno_pairing_run(n, o, seed, budget)
    });
    aggregate(n, results.into_iter().map(|s| s.value))
}

/// The pre-batching SKnO measurement: scalar stepping, the convergence
/// predicate projected after *every* interaction, no stability window.
///
/// Kept as the reference implementation the batched path is benchmarked
/// against (`benches/e5_scale.rs`, `BENCH_RESULTS.json`); experiments
/// should use [`measure_skno`].
pub fn measure_skno_scalar(n: usize, o: u32, seeds: u64, budget: u64) -> Convergence {
    let results = run_seeds(0..seeds, workers(), |seed| {
        let sims = pairing_inputs(n);
        let expected = n / 2;
        let mut runner = OneWayRunner::builder(OneWayModel::I3, Skno::new(Pairing, o))
            .config(Skno::<Pairing>::initial(&sims))
            .adversary(BoundedStrategy::new(0.02, o as u64))
            .seed(seed)
            .build()
            .expect("valid population");
        let out = runner.run_until(budget, |c| {
            project(c).count_state(&PairingState::Paired) == expected
        });
        (out, expected as u64)
    });
    aggregate(n, results.into_iter().map(|s| s.value))
}

/// One seeded run of the naming-composed simulator on the Pairing
/// workload (single-seed body of [`measure_named`]).
pub fn named_pairing_run(n: usize, seed: u64, budget: u64) -> (RunOutcome, u64) {
    let sims = pairing_inputs(n);
    let expected = n / 2;
    let mut runner = OneWayRunner::builder(OneWayModel::Io, NamedSid::new(Pairing, n))
        .config(NamedSid::<Pairing>::initial(&sims))
        .seed(seed)
        .trace_sink(StatsOnly)
        .build()
        .expect("valid population");
    let out = runner.run_batched_until(
        budget,
        BATCH,
        stably(
            |c| simulated_count(c, &PairingState::Paired) == expected,
            STABLE_WINDOW,
        ),
    );
    (out, expected as u64)
}

/// Measures the naming-composed simulator's convergence (naming plus the
/// simulated Pairing) with knowledge of `n`.
pub fn measure_named(n: usize, seeds: u64, budget: u64) -> Convergence {
    let results = run_seeds(0..seeds, workers(), |seed| {
        named_pairing_run(n, seed, budget)
    });
    aggregate(n, results.into_iter().map(|s| s.value))
}

/// Measures only the naming phase of `Nn`: interactions until every agent
/// has started simulating.
pub fn measure_naming_phase(n: usize, seeds: u64, budget: u64) -> Convergence {
    let results = run_seeds(0..seeds, workers(), |seed| {
        let sims = pairing_inputs(n);
        let mut runner = OneWayRunner::builder(OneWayModel::Io, NamedSid::new(Pairing, n))
            .config(NamedSid::<Pairing>::initial(&sims))
            .seed(seed)
            .trace_sink(StatsOnly)
            .build()
            .expect("valid population");
        // "Everyone simulating" is monotone — once reached it cannot
        // un-hold — so a single boundary confirmation suffices.
        let out = runner.run_batched_until(
            budget,
            BATCH,
            stably(
                |c: &ppfts_population::Configuration<NamedState<PairingState>>| {
                    c.as_slice()
                        .iter()
                        .all(ppfts_core::NamedState::is_simulating)
                },
                1,
            ),
        );
        (out, 1u64) // one "simulated step" = completing the naming
    });
    aggregate(n, results.into_iter().map(|s| s.value))
}

/// E11: epidemic convergence at giant `n` on the **count** backend —
/// one infected agent among `n`, run to stable full infection via
/// `run_batched_until` + [`stably`]. Memory is O(1) in `n`; this is the
/// harness that sweeps n = 10²…10⁶ on the same API as every other
/// experiment.
///
/// `steps_per_simulated` normalizes by `n` (interactions per agent), the
/// natural unit for the Θ(n log n) epidemic.
pub fn measure_epidemic_giant(n: usize, seeds: u64, budget: u64) -> Convergence {
    measure_epidemic_giant_on(n, seeds, budget, |n| {
        CountConfiguration::from_groups([(true, 1), (false, n - 1)])
    })
}

/// The dense-backend twin of [`measure_epidemic_giant`]: same workload,
/// same predicate, on the per-agent `Configuration`. O(n) memory and an
/// O(n) boundary predicate — the floor the count backend is measured
/// against in `BENCH_RESULTS.json` (`benches/e11_giant.rs`).
pub fn measure_epidemic_giant_dense(n: usize, seeds: u64, budget: u64) -> Convergence {
    measure_epidemic_giant_on(n, seeds, budget, |n| {
        Configuration::from_groups([(true, 1), (false, n - 1)])
    })
}

/// The E11 workload, generic in the population backend so the two public
/// entry points cannot drift apart.
fn measure_epidemic_giant_on<C>(
    n: usize,
    seeds: u64,
    budget: u64,
    make_population: impl Fn(usize) -> C + Sync,
) -> Convergence
where
    C: ppfts_engine::ExecBackend<State = bool>,
{
    assert!(n >= 2, "population needs at least 2 agents");
    let results = run_seeds(0..seeds, workers(), |seed| {
        let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, Epidemic)
            .population(make_population(n))
            .seed(seed)
            .trace_sink(StatsOnly)
            .build()
            .expect("valid population");
        let out = runner.run_batched_until(
            budget,
            GIANT_BATCH,
            stably(|c: &C| c.count_state(&true) == n, STABLE_WINDOW),
        );
        (out, n as u64)
    });
    aggregate(n, results.into_iter().map(|s| s.value))
}

/// E15: epidemic convergence at giant `n` on the **batch-epoch** path —
/// the same workload and predicate as [`measure_epidemic_giant`], driven
/// through `run_epochs_until` instead of the interleaved loop. Epochs
/// sample a collision-free prefix length ℓ ≈ 0.63√n in closed form and
/// apply all ℓ interactions as one bulk multivariate draw, so the work
/// per epoch is O(distinct state pairs), independent of ℓ — sub-constant
/// time per interaction. The convergence predicate is checked at epoch
/// boundaries under the same [`stably`] window as the interleaved
/// harnesses.
///
/// `steps_per_simulated` normalizes by `n` (interactions per agent), the
/// same unit E11 reports, so the two harnesses chart onto one curve.
pub fn measure_epidemic_epoch(n: usize, seeds: u64, budget: u64) -> Convergence {
    assert!(n >= 2, "population needs at least 2 agents");
    let results = run_seeds(0..seeds, workers(), |seed| {
        let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, Epidemic)
            .population(CountConfiguration::from_groups([(true, 1), (false, n - 1)]))
            .seed(seed)
            .trace_sink(StatsOnly)
            .build()
            .expect("valid population");
        let out = runner
            .run_epochs_until(
                budget,
                stably(
                    |c: &CountConfiguration<bool>| c.count_state(&true) == n,
                    STABLE_WINDOW,
                ),
            )
            .expect("fault-free count-backed runs are epoch compatible");
        (out, n as u64)
    });
    aggregate(n, results.into_iter().map(|s| s.value))
}

/// Executes exactly `steps` interactions of the fault-free epidemic at
/// size `n` on the count backend through the **interleaved** batched
/// loop, returning the infected count so the work cannot be elided.
/// The fixed interaction budget makes wall-clock directly divisible:
/// `elapsed / steps` is the per-interaction cost the
/// `e11_giant/per_interaction_*` bench entries record.
pub fn epidemic_fixed_steps_interleaved(n: usize, steps: u64, seed: u64) -> usize {
    let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, Epidemic)
        .population(CountConfiguration::from_groups([(true, 1), (false, n - 1)]))
        .seed(seed)
        .trace_sink(StatsOnly)
        .build()
        .expect("valid population");
    runner
        .run_batched(steps, GIANT_BATCH)
        .expect("fault-free epidemic cannot fail");
    runner.config().count_state(&true)
}

/// The batch-epoch twin of [`epidemic_fixed_steps_interleaved`]: exactly
/// `steps` interactions through `run_epochs`. The two functions run the
/// same protocol from the same initial counts for the same interaction
/// budget, so their wall-clock ratio is the epoch path's per-interaction
/// speedup.
pub fn epidemic_fixed_steps_epoch(n: usize, steps: u64, seed: u64) -> usize {
    let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, Epidemic)
        .population(CountConfiguration::from_groups([(true, 1), (false, n - 1)]))
        .seed(seed)
        .trace_sink(StatsOnly)
        .build()
        .expect("valid population");
    runner
        .run_epochs(steps)
        .expect("fault-free count-backed runs are epoch compatible");
    runner.config().count_state(&true)
}

/// E12: epidemic broadcast on an explicit interaction topology — the
/// graph-aware scenario of `ppfts_protocols::scenario`, run per seed to
/// stable full infection through `run_batched_until` + [`stably`].
///
/// The graph is generated once and cloned per seed (the generators are
/// deterministic in their own seed, so every run seed sees the same
/// graph anyway — a clone is the cheap equivalent of regenerating); the
/// interesting comparison is across families at fixed `n` — Θ(n log n)
/// on the complete graph and good expanders versus Θ(n²) on the ring.
/// `steps_per_simulated` normalizes by `n`.
pub fn measure_epidemic_topology(
    make_topology: impl Fn() -> Topology + Sync,
    seeds: u64,
    budget: u64,
) -> Convergence {
    let prototype = make_topology();
    let n = prototype.len();
    let results = run_seeds(0..seeds, workers(), |seed| {
        epidemic_topology_run(&prototype, seed, budget)
    });
    aggregate(n, results.into_iter().map(|s| s.value))
}

/// One seeded graph-epidemic run (single-seed body of
/// [`measure_epidemic_topology`]).
pub fn epidemic_topology_run(topology: &Topology, seed: u64, budget: u64) -> (RunOutcome, u64) {
    let n = topology.len();
    let mut runner =
        scenario::epidemic_on(topology.clone(), seed).expect("valid topology scenario");
    let out = runner.run_batched_until(
        budget,
        BATCH,
        stably(scenario::all_infected::<Configuration<bool>>, STABLE_WINDOW),
    );
    (out, n as u64)
}

/// Degree of the E13 random-regular family.
pub const E13_RR_DEGREE: usize = 4;

/// Generation seed of the E13 random graphs.
pub const E13_TOPOLOGY_SEED: u64 = 12;

/// The E13 graph families at size `n`, in fixed conductance order:
/// ring, √n×√n grid, random 4-regular, complete. One definition shared
/// by the `e13_graphical_ftt` bench and the `experiments` binary so the
/// committed baseline and the printed tables cannot drift onto
/// different graphs.
///
/// # Panics
///
/// Panics unless `n` is a perfect square (the grid family needs it).
pub fn e13_families(n: usize) -> Vec<(&'static str, Topology)> {
    let side = (n as f64).sqrt() as usize;
    assert_eq!(side * side, n, "E13 sizes are perfect squares, got {n}");
    vec![
        ("ring", Topology::ring(n).expect("n ≥ 4")),
        ("grid", Topology::grid2d(side, side).expect("side ≥ 2")),
        (
            "rr4",
            Topology::random_regular(n, E13_RR_DEGREE, E13_TOPOLOGY_SEED)
                .expect("rr4 is feasible at every E13 size"),
        ),
        ("complete", Topology::complete(n).expect("n ≥ 2")),
    ]
}

/// E13: epidemic broadcast *simulated through graphical `SID`* on an
/// explicit interaction topology — the fault-free half of the graphical
/// fault-tolerance experiment. The simulated protocol is the two-way
/// [`Epidemic`]; `SID`'s three-observation handshake pairs only
/// graph-adjacent agents, so convergence pays the graph's broadcast time
/// times the handshake constant. Seeded at vertex 0; run to stable full
/// *simulated* infection; `steps_per_simulated` normalizes by `n`.
pub fn measure_sid_epidemic_graphical(topology: &Topology, seeds: u64, budget: u64) -> Convergence {
    let n = topology.len();
    let results = run_seeds(0..seeds, workers(), |seed| {
        sid_epidemic_graphical_run(topology, seed, budget)
    });
    aggregate(n, results.into_iter().map(|s| s.value))
}

/// One seeded graphical-SID simulated-epidemic run (single-seed body of
/// [`measure_sid_epidemic_graphical`]).
pub fn sid_epidemic_graphical_run(
    topology: &Topology,
    seed: u64,
    budget: u64,
) -> (RunOutcome, u64) {
    let n = topology.len();
    let sims: Vec<bool> = (0..n).map(|v| v == 0).collect();
    let mut runner =
        OneWayRunner::builder(OneWayModel::Io, Sid::graphical(Epidemic, topology.clone()))
            .config(Sid::<Epidemic>::initial(&sims))
            .topology(topology.clone())
            .seed(seed)
            .trace_sink(StatsOnly)
            .build()
            .expect("graphical SID assembles on its own topology");
    // Simulated infection is monotone, so one boundary confirmation
    // suffices.
    let out = runner.run_batched_until(budget, BATCH, |c| all_simulated(c, &true));
    (out, n as u64)
}

/// E13: the same simulated-epidemic workload through **graphical
/// `SKnO`** under model I3, with omission bound `o` and an adversary
/// spending that budget at `rate`. Graphical `SKnO` keys announcement
/// runs per origin vertex (anonymous merging is unsound once adjacency
/// matters), so completing a run of length `o + 1` requires reassembling
/// tokens of one specific announcer at one of its graph neighbors — the
/// reassembly cost that makes omission tolerance interact with
/// conductance, and exactly what this harness charts. Expect `o = 0`
/// (run length 1) to track the graph's broadcast time and `o ≥ 1` to
/// degrade sharply as conductance drops; budget-capped cells report
/// partial convergence honestly via [`Convergence::converged`].
pub fn measure_skno_epidemic_graphical(
    topology: &Topology,
    o: u32,
    rate: f64,
    seeds: u64,
    budget: u64,
) -> Convergence {
    let n = topology.len();
    let results = run_seeds(0..seeds, workers(), |seed| {
        skno_epidemic_graphical_run(topology, o, rate, seed, budget)
    });
    aggregate(n, results.into_iter().map(|s| s.value))
}

/// One seeded graphical-SKnO simulated-epidemic run (single-seed body of
/// [`measure_skno_epidemic_graphical`]).
pub fn skno_epidemic_graphical_run(
    topology: &Topology,
    o: u32,
    rate: f64,
    seed: u64,
    budget: u64,
) -> (RunOutcome, u64) {
    skno_epidemic_graphical_run_with(topology, o, rate, seed, budget, true)
}

/// [`skno_epidemic_graphical_run`] with the simulator path explicit:
/// `indexed = false` runs the same workload through the scan-path
/// reference (`Skno::scan_reference`). The outcome is bit-identical
/// either way — `tests/simulator_index_equivalence.rs` certifies it, and
/// the E17 harness re-asserts it live — so the A/B difference is pure
/// wall-clock.
pub fn skno_epidemic_graphical_run_with(
    topology: &Topology,
    o: u32,
    rate: f64,
    seed: u64,
    budget: u64,
    indexed: bool,
) -> (RunOutcome, u64) {
    let n = topology.len();
    let sims: Vec<bool> = (0..n).map(|v| v == 0).collect();
    let skno = Skno::graphical(Epidemic, o, topology.clone());
    let skno = if indexed { skno } else { skno.scan_reference() };
    let mut runner = OneWayRunner::builder(OneWayModel::I3, skno)
        .config(Skno::<Epidemic>::initial(&sims))
        .topology(topology.clone())
        .adversary(BoundedStrategy::new(rate, o as u64))
        .seed(seed)
        .trace_sink(StatsOnly)
        .build()
        .expect("graphical SKnO assembles on its own topology");
    let out = runner.run_batched_until(budget, BATCH, |c| all_simulated(c, &true));
    (out, n as u64)
}

/// Batch size of the E16 sharded harness: the level planner packs
/// ≈ n/2 agent-disjoint interactions per level, so batches much longer
/// than the population keep every shard worker busy per level.
pub const SHARD_BATCH: u64 = 8192;

/// E16: executes exactly `steps` interactions of the graphical-SKnO
/// simulated epidemic on `topology` with the batch application spread
/// over `shards` worker threads (`run_sharded`), returning the
/// simulated-infected count so the work cannot be elided.
///
/// The sharded path is bit-identical to the sequential batched path
/// (certified in `tests/shard_equivalence.rs`), so for a fixed seed this
/// function returns the *same* count at every shard count — the bench
/// comparison `e16_shard/skno_rr4_n*_shards*` is pure wall-clock. The
/// fixed interaction budget makes wall-clock directly divisible, the
/// same convention as [`epidemic_fixed_steps_interleaved`].
pub fn skno_graphical_fixed_steps_sharded(
    topology: &Topology,
    o: u32,
    rate: f64,
    shards: usize,
    steps: u64,
    seed: u64,
) -> usize {
    let n = topology.len();
    let sims: Vec<bool> = (0..n).map(|v| v == 0).collect();
    let mut runner = OneWayRunner::builder(
        OneWayModel::I3,
        Skno::graphical(Epidemic, o, topology.clone()),
    )
    .config(Skno::<Epidemic>::initial(&sims))
    .topology(topology.clone())
    .adversary(BoundedStrategy::new(rate, o as u64))
    .seed(seed)
    .trace_sink(StatsOnly)
    .shards(shards)
    .build()
    .expect("graphical SKnO assembles on its own topology");
    runner
        .run_sharded(steps, SHARD_BATCH)
        .expect("fixed-step SKnO epidemic cannot fail");
    project(runner.config()).count_state(&true)
}

/// E12 (scheduling-layer cost): drains `draws` arcs from `topology` —
/// the exact sampling path [`TopologyScheduler`](ppfts_engine::TopologyScheduler)
/// runs per step — and
/// folds the endpoints into a checksum, so the optimizer cannot elide
/// the draws. Sampling borrows the topology (no clone inside the
/// measured region), isolating the per-step price of graph-aware edge
/// sampling from protocol dynamics — the number the
/// `e12_topology/draws_*` bench entries record.
pub fn topology_draw_checksum(topology: &Topology, draws: u64, seed: u64) -> u64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut acc = 0u64;
    for _ in 0..draws {
        let i = topology.sample_arc(&mut rng);
        acc = acc
            .wrapping_mul(31)
            .wrapping_add(i.starter().index() as u64)
            .wrapping_add((i.reactor().index() as u64) << 1);
    }
    acc
}

/// Peak per-agent token footprint of SKnO on the Pairing workload — the
/// measured side of Theorem 4.1's Θ(|Q_P|·(o+1)·log n) memory bound.
pub fn skno_peak_tokens(n: usize, o: u32, steps: u64, seed: u64) -> usize {
    let sims = pairing_inputs(n);
    let mut runner = OneWayRunner::builder(OneWayModel::I3, Skno::new(Pairing, o))
        .config(Skno::<Pairing>::initial(&sims))
        .adversary(BoundedStrategy::new(0.02, o as u64))
        .seed(seed)
        .trace_sink(StatsOnly)
        .build()
        .expect("valid population");
    let mut peak = 0usize;
    for _ in 0..steps {
        // Scalar on purpose: the footprint is probed after every step.
        if runner.run(1).is_err() {
            break;
        }
        let here = runner
            .config()
            .as_slice()
            .iter()
            .map(SknoState::token_footprint)
            .max()
            .unwrap_or(0);
        peak = peak.max(here);
    }
    peak
}

/// Worker threads for seed fan-out.
pub fn workers() -> usize {
    std::thread::available_parallelism().map_or(2, |p| p.get().min(8))
}

fn aggregate(n: usize, values: impl Iterator<Item = (RunOutcome, u64)>) -> Convergence {
    let mut converged = 0usize;
    let mut seeds = 0usize;
    let mut total_steps = 0f64;
    let mut total_ratio = 0f64;
    for (out, simulated) in values {
        seeds += 1;
        if out.is_satisfied() {
            converged += 1;
            total_steps += out.steps() as f64;
            total_ratio += out.steps() as f64 / simulated.max(1) as f64;
        }
    }
    let denom = converged.max(1) as f64;
    Convergence {
        n,
        converged,
        seeds,
        mean_steps: total_steps / denom,
        steps_per_simulated: total_ratio / denom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sid_measurement_converges_for_small_n() {
        let c = measure_sid(4, 3, 500_000);
        assert_eq!(c.converged, 3);
        assert!(c.mean_steps > 0.0);
        assert!(
            c.steps_per_simulated >= 3.0,
            "at least FTT per simulated step"
        );
    }

    #[test]
    fn skno_measurement_converges_for_small_n() {
        let c = measure_skno(4, 1, 3, 1_000_000);
        assert_eq!(c.converged, 3);
    }

    #[test]
    fn batched_and_scalar_skno_agree_on_convergence() {
        let batched = measure_skno(4, 1, 3, 1_000_000);
        let scalar = measure_skno_scalar(4, 1, 3, 1_000_000);
        assert_eq!(batched.converged, scalar.converged);
        // The scalar path stops at the first step its predicate holds —
        // possibly on a transient mid-handshake projection — while the
        // batched path demands STABLE_WINDOW boundary confirmations, so
        // it can only stop later. (No upper bound: on a seed where the
        // scalar stop *is* a transient, the gap legitimately exceeds the
        // batch-alignment slack.)
        assert!(batched.mean_steps >= scalar.mean_steps);
    }

    #[test]
    fn giant_harness_backends_agree_at_test_scale() {
        let count = measure_epidemic_giant(2_000, 2, 50_000_000);
        assert_eq!(count.converged, 2);
        let dense = measure_epidemic_giant_dense(2_000, 2, 50_000_000);
        assert_eq!(dense.converged, 2);
        // Θ(n log n): per-agent step counts land within the same decade.
        for c in [&count, &dense] {
            assert!(
                c.steps_per_simulated > 2.0 && c.steps_per_simulated < 60.0,
                "steps per agent = {}",
                c.steps_per_simulated
            );
        }
    }

    #[test]
    fn epoch_harness_agrees_with_interleaved_at_test_scale() {
        let epoch = measure_epidemic_epoch(2_000, 2, 50_000_000);
        assert_eq!(epoch.converged, 2);
        let interleaved = measure_epidemic_giant(2_000, 2, 50_000_000);
        // Same Θ(n log n) dynamics: per-agent step counts land within the
        // same decade on both execution paths.
        for c in [&epoch, &interleaved] {
            assert!(
                c.steps_per_simulated > 2.0 && c.steps_per_simulated < 60.0,
                "steps per agent = {}",
                c.steps_per_simulated
            );
        }
    }

    #[test]
    fn fixed_step_routines_spread_the_epidemic_on_both_paths() {
        let interleaved = epidemic_fixed_steps_interleaved(1_000, 20_000, 3);
        let epoch = epidemic_fixed_steps_epoch(1_000, 20_000, 3);
        // 20 interactions per agent more than saturates n = 1000.
        assert_eq!(interleaved, 1_000);
        assert_eq!(epoch, 1_000);
    }

    #[test]
    fn topology_harness_separates_ring_from_complete() {
        let ring = measure_epidemic_topology(|| Topology::ring(64).unwrap(), 2, 10_000_000);
        assert_eq!(ring.converged, 2);
        let complete = measure_epidemic_topology(|| Topology::complete(64).unwrap(), 2, 10_000_000);
        assert_eq!(complete.converged, 2);
        // Θ(n²) ring broadcast vs Θ(n log n) complete-graph epidemic.
        assert!(
            ring.mean_steps > complete.mean_steps,
            "ring {} vs complete {}",
            ring.mean_steps,
            complete.mean_steps
        );
    }

    #[test]
    fn sharded_fixed_step_workload_is_shard_count_invariant() {
        let topology = Topology::random_regular(64, E13_RR_DEGREE, E13_TOPOLOGY_SEED).unwrap();
        // o = 0: announcements complete in one delivery, so 20k
        // interactions visibly spread the simulated epidemic. (o ≥ 1
        // barely spreads at this scale — the E13 reassembly effect —
        // which is why the invariance check below doesn't assert
        // spread for it.)
        let reference = skno_graphical_fixed_steps_sharded(&topology, 0, 0.02, 1, 20_000, 7);
        assert!(reference > 1, "20k interactions must spread the epidemic");
        for (o, expected) in [
            (0u32, reference),
            (1, {
                skno_graphical_fixed_steps_sharded(&topology, 1, 0.02, 1, 20_000, 7)
            }),
        ] {
            for shards in [2usize, 8] {
                assert_eq!(
                    skno_graphical_fixed_steps_sharded(&topology, o, 0.02, shards, 20_000, 7),
                    expected,
                    "o = {o}, shards = {shards}"
                );
            }
        }
    }

    #[test]
    fn draw_checksum_is_deterministic_and_seed_sensitive() {
        let t = Topology::random_regular(32, 4, 3).unwrap();
        let a = topology_draw_checksum(&t, 10_000, 1);
        assert_eq!(a, topology_draw_checksum(&t, 10_000, 1));
        assert_ne!(a, topology_draw_checksum(&t, 10_000, 2));
    }

    #[test]
    fn peak_tokens_scale_with_bound() {
        let low = skno_peak_tokens(4, 0, 3_000, 7);
        let high = skno_peak_tokens(4, 3, 3_000, 7);
        assert!(high > low, "longer runs mean more tokens in flight");
    }

    #[test]
    #[should_panic(expected = "even n")]
    fn odd_population_rejected() {
        let _ = pairing_inputs(5);
    }
}

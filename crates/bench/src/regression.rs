//! Bench-regression gate: compares a freshly measured `BENCH_JSON` file
//! against the committed `BENCH_RESULTS.json` baseline.
//!
//! The criterion shim writes flat JSON — bench id → `{"mean_ns",
//! "min_ns", "iters"}` — and this module parses exactly that shape (no
//! external JSON dependency in the offline build environment), compares
//! the means of every bench present in **both** files, and renders a
//! markdown delta table. A bench *regresses* when its current mean
//! exceeds `tolerance ×` its baseline mean; the generous default
//! tolerance (2.5×) is meant to catch algorithmic regressions on noisy
//! shared CI runners, not percent-level drift.
//!
//! The `bench_gate` binary is the CI entry point:
//!
//! ```text
//! BENCH_JSON=bench_current.json cargo bench -p ppfts-bench --bench schedulers …
//! cargo run -p ppfts-bench --bin bench_gate -- \
//!     --baseline BENCH_RESULTS.json --current bench_current.json --tolerance 2.5
//! ```
//!
//! It prints the table to stdout (append it to `$GITHUB_STEP_SUMMARY`)
//! and exits nonzero iff any compared bench regressed.

use std::collections::BTreeMap;
use std::fmt;

/// One bench entry of a criterion-shim JSON report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BenchEntry {
    /// Mean wall-clock per iteration, nanoseconds.
    pub mean_ns: u128,
    /// Fastest iteration, nanoseconds.
    pub min_ns: u128,
    /// Iterations measured.
    pub iters: u64,
}

/// A parse failure, with byte offset context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What was expected.
    pub expected: &'static str,
    /// Byte offset in the input where parsing stopped.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expected {} at byte {}", self.expected, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parses the criterion shim's flat report: `{"id": {"mean_ns": N,
/// "min_ns": N, "iters": N}, …}`. Unknown numeric fields are accepted
/// and ignored; anything structurally different is rejected.
pub fn parse_report(input: &str) -> Result<BTreeMap<String, BenchEntry>, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let mut out = BTreeMap::new();
    p.skip_ws();
    p.expect(b'{', "'{'")?;
    p.skip_ws();
    if p.peek() == Some(b'}') {
        return Ok(out);
    }
    loop {
        p.skip_ws();
        let id = p.string()?;
        p.skip_ws();
        p.expect(b':', "':'")?;
        p.skip_ws();
        p.expect(b'{', "'{'")?;
        let mut entry = BenchEntry {
            mean_ns: 0,
            min_ns: 0,
            iters: 0,
        };
        loop {
            p.skip_ws();
            let field = p.string()?;
            p.skip_ws();
            p.expect(b':', "':'")?;
            p.skip_ws();
            let value = p.number()?;
            match field.as_str() {
                "mean_ns" => entry.mean_ns = value,
                "min_ns" => entry.min_ns = value,
                "iters" => entry.iters = value as u64,
                _ => {}
            }
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => {
                    return Err(ParseError {
                        expected: "',' or '}'",
                        at: p.pos,
                    })
                }
            }
        }
        out.insert(id, entry);
        p.skip_ws();
        match p.next() {
            Some(b',') => continue,
            Some(b'}') => break,
            _ => {
                return Err(ParseError {
                    expected: "',' or '}'",
                    at: p.pos,
                })
            }
        }
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\n' | b'\r' | b'\t')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, what: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseError {
                expected: what,
                at: self.pos,
            })
        }
    }

    /// A JSON string without escapes — bench ids are plain identifiers.
    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "'\"'")?;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("slicing a str at byte boundaries")
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err(ParseError {
            expected: "closing '\"'",
            at: self.pos,
        })
    }

    fn number(&mut self) -> Result<u128, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(ParseError {
                expected: "a number",
                at: self.pos,
            });
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII")
            .parse()
            .map_err(|_| ParseError {
                expected: "a u128 number",
                at: start,
            })
    }
}

/// Verdict of one compared bench.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance.
    Ok,
    /// Current mean faster than baseline / tolerance (a candidate for
    /// re-recording the baseline; never fails the gate).
    Improved,
    /// Current mean exceeds tolerance × baseline: fails the gate.
    Regressed,
}

/// One row of the delta table.
#[derive(Clone, Debug, PartialEq)]
pub struct Delta {
    /// Bench id.
    pub id: String,
    /// Baseline mean, nanoseconds.
    pub baseline_ns: u128,
    /// Current mean, nanoseconds.
    pub current_ns: u128,
    /// `current / baseline`.
    pub ratio: f64,
    /// Classification under the tolerance.
    pub verdict: Verdict,
}

/// Result of comparing a current report against the baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct Comparison {
    /// Per-bench rows, ordered by id (only ids present in both files).
    pub deltas: Vec<Delta>,
    /// Bench ids only present in the current report (new benches).
    pub only_current: Vec<String>,
    /// The tolerance applied.
    pub tolerance: f64,
}

impl Comparison {
    /// Ids that regressed.
    pub fn regressions(&self) -> impl Iterator<Item = &Delta> {
        self.deltas
            .iter()
            .filter(|d| d.verdict == Verdict::Regressed)
    }

    /// Whether the gate passes (no regressions). An empty intersection
    /// fails the gate too: comparing nothing certifies nothing.
    pub fn passes(&self) -> bool {
        !self.deltas.is_empty() && self.regressions().next().is_none()
    }

    /// Renders the markdown delta table (baseline vs current, one row
    /// per compared bench, plus a verdict line).
    pub fn markdown(&self) -> String {
        let mut out = String::from("## Bench regression gate\n\n");
        out.push_str(&format!(
            "Tolerance: fail when current mean > {:.2}× baseline mean.\n\n",
            self.tolerance
        ));
        out.push_str("| bench | baseline | current | ratio | verdict |\n");
        out.push_str("|---|---:|---:|---:|---|\n");
        for d in &self.deltas {
            let verdict = match d.verdict {
                Verdict::Ok => "ok",
                Verdict::Improved => "improved",
                Verdict::Regressed => "**REGRESSED**",
            };
            out.push_str(&format!(
                "| `{}` | {} | {} | {:.2}× | {} |\n",
                d.id,
                format_ns(d.baseline_ns),
                format_ns(d.current_ns),
                d.ratio,
                verdict
            ));
        }
        if !self.only_current.is_empty() {
            out.push_str(&format!(
                "\nNot in baseline (add by re-recording `BENCH_RESULTS.json`): {}\n",
                self.only_current
                    .iter()
                    .map(|s| format!("`{s}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        let n_reg = self.regressions().count();
        out.push_str(&format!(
            "\n**{}** — {} compared, {} regressed.\n",
            if self.passes() { "PASS" } else { "FAIL" },
            self.deltas.len(),
            n_reg
        ));
        out
    }
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Compares `current` means against `baseline` means under `tolerance`.
/// Only ids present in both reports are compared; baseline-only ids are
/// ignored (CI measures a subset), current-only ids are listed for
/// visibility.
pub fn compare(
    baseline: &BTreeMap<String, BenchEntry>,
    current: &BTreeMap<String, BenchEntry>,
    tolerance: f64,
) -> Comparison {
    assert!(tolerance >= 1.0, "a tolerance below 1× fails every bench");
    let mut deltas = Vec::new();
    let mut only_current = Vec::new();
    for (id, cur) in current {
        match baseline.get(id) {
            None => only_current.push(id.clone()),
            Some(base) => {
                let ratio = if base.mean_ns == 0 {
                    f64::INFINITY
                } else {
                    cur.mean_ns as f64 / base.mean_ns as f64
                };
                let verdict = if ratio > tolerance {
                    Verdict::Regressed
                } else if ratio < 1.0 / tolerance {
                    Verdict::Improved
                } else {
                    Verdict::Ok
                };
                deltas.push(Delta {
                    id: id.clone(),
                    baseline_ns: base.mean_ns,
                    current_ns: cur.mean_ns,
                    ratio,
                    verdict,
                });
            }
        }
    }
    Comparison {
        deltas,
        only_current,
        tolerance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(mean: u128) -> BenchEntry {
        BenchEntry {
            mean_ns: mean,
            min_ns: mean / 2,
            iters: 3,
        }
    }

    #[test]
    fn parses_the_shim_report_shape() {
        let json = r#"{
  "a/b": {"mean_ns": 120, "min_ns": 100, "iters": 3},
  "c": {"mean_ns": 5, "min_ns": 4, "iters": 10}
}"#;
        let report = parse_report(json).unwrap();
        assert_eq!(report.len(), 2);
        assert_eq!(report["a/b"], entry_exact(120, 100, 3));
        assert_eq!(report["c"], entry_exact(5, 4, 10));
        assert_eq!(parse_report("{}").unwrap().len(), 0);
    }

    fn entry_exact(mean_ns: u128, min_ns: u128, iters: u64) -> BenchEntry {
        BenchEntry {
            mean_ns,
            min_ns,
            iters,
        }
    }

    #[test]
    fn parse_round_trips_the_committed_baseline() {
        let committed = include_str!("../../../BENCH_RESULTS.json");
        let report = parse_report(committed).unwrap();
        assert!(
            report.len() > 50,
            "the committed baseline has many entries, parsed {}",
            report.len()
        );
        assert!(report.values().all(|e| e.mean_ns > 0 && e.iters > 0));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "[]", "{\"a\": 1}", "{\"a\": {\"mean_ns\": }}"] {
            assert!(parse_report(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn gate_passes_an_unchanged_tree() {
        let base: BTreeMap<String, BenchEntry> =
            [("x".to_string(), entry(100)), ("y".to_string(), entry(50))].into();
        let cmp = compare(&base, &base, 2.5);
        assert!(cmp.passes());
        assert!(cmp.deltas.iter().all(|d| d.verdict == Verdict::Ok));
        assert!(cmp.markdown().contains("PASS"));
    }

    #[test]
    fn gate_fails_on_an_inflated_mean() {
        let base: BTreeMap<String, BenchEntry> =
            [("x".to_string(), entry(100)), ("y".to_string(), entry(50))].into();
        let mut cur = base.clone();
        cur.insert("x".to_string(), entry(260)); // 2.6× > 2.5×
        let cmp = compare(&base, &cur, 2.5);
        assert!(!cmp.passes());
        let regs: Vec<_> = cmp.regressions().collect();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].id, "x");
        assert!(cmp.markdown().contains("REGRESSED"));
        assert!(cmp.markdown().contains("FAIL"));
    }

    #[test]
    fn tolerance_is_generous_in_both_directions() {
        let base: BTreeMap<String, BenchEntry> = [("x".to_string(), entry(100))].into();
        // 2.4× slower: noisy, but passes at 2.5×.
        let slower: BTreeMap<String, BenchEntry> = [("x".to_string(), entry(240))].into();
        assert!(compare(&base, &slower, 2.5).passes());
        // 3× faster: flagged as improved, still passes.
        let faster: BTreeMap<String, BenchEntry> = [("x".to_string(), entry(33))].into();
        let cmp = compare(&base, &faster, 2.5);
        assert!(cmp.passes());
        assert_eq!(cmp.deltas[0].verdict, Verdict::Improved);
    }

    #[test]
    fn subset_runs_compare_only_the_intersection() {
        let base: BTreeMap<String, BenchEntry> =
            [("x".to_string(), entry(100)), ("y".to_string(), entry(50))].into();
        let cur: BTreeMap<String, BenchEntry> =
            [("x".to_string(), entry(110)), ("z".to_string(), entry(9))].into();
        let cmp = compare(&base, &cur, 2.5);
        assert_eq!(cmp.deltas.len(), 1);
        assert_eq!(cmp.only_current, vec!["z".to_string()]);
        assert!(cmp.passes());
        assert!(cmp.markdown().contains("Not in baseline"));
    }

    #[test]
    fn empty_intersection_fails_the_gate() {
        let base: BTreeMap<String, BenchEntry> = [("x".to_string(), entry(100))].into();
        let cur: BTreeMap<String, BenchEntry> = [("z".to_string(), entry(9))].into();
        assert!(!compare(&base, &cur, 2.5).passes());
    }
}

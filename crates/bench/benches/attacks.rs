//! E2/E3 — cost of the impossibility constructions.
//!
//! Measures the full pipeline of Lemma 1 / Theorem 3.2: FTT search, the
//! per-`k` continuations, plan assembly and execution. Expect growth with
//! the omission bound `o` (the FTT — and hence the number of `I_k`
//! sub-runs — is `2(o+1)`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppfts_core::{Skno, SknoState};
use ppfts_engine::OneWayModel;
use ppfts_protocols::Pairing;
use ppfts_verify::{lemma1_attack, thm32_attack, Optimist, OptimistState};

fn bench_lemma1(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma1_attack");
    group.sample_size(10);
    for o in [1u32, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(o), &o, |b, &o| {
            b.iter(|| {
                let report = lemma1_attack(
                    OneWayModel::I3,
                    Skno::new(Pairing, o),
                    SknoState::new,
                    128,
                    512,
                )
                .unwrap();
                assert!(report.violated_safety());
                report.plan_len
            });
        });
    }
    group.finish();
}

fn bench_thm32(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm32_attack");
    group.sample_size(10);
    for model in [OneWayModel::I1, OneWayModel::I2] {
        group.bench_with_input(
            BenchmarkId::from_parameter(model.to_string()),
            &model,
            |b, &model| {
                b.iter(|| {
                    let report =
                        thm32_attack(model, Optimist::new(Pairing), OptimistState::new, 64, 256)
                            .unwrap();
                    assert!(report.violated_safety());
                    report.plan_len
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lemma1, bench_thm32);
criterion_main!(benches);

//! E1 — raw interaction throughput of each interaction model (Figure 1).
//!
//! Measures the cost of one engine step for every model in both families,
//! on the epidemic payload. The shape to expect: one-way models are
//! cheaper than two-way (one update instead of two); omissive decoration
//! adds a constant overhead for the adversary consultation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppfts_engine::{
    OneWayModel, OneWayProgram, OneWayRunner, RateStrategy, TwoWayModel, TwoWayRunner,
};
use ppfts_population::Configuration;
use ppfts_protocols::Epidemic;

struct OneWayEpidemic;
impl OneWayProgram for OneWayEpidemic {
    type State = bool;
    fn on_receive(&self, s: &bool, r: &bool) -> bool {
        *s || *r
    }
}

fn config(n: usize) -> Configuration<bool> {
    Configuration::new((0..n).map(|i| i == 0).collect())
}

fn bench_models(c: &mut Criterion) {
    let n = 64;
    let steps = 10_000u64;
    let mut group = c.benchmark_group("models");
    group.sample_size(10);

    for model in TwoWayModel::ALL {
        group.bench_with_input(
            BenchmarkId::new("two_way", model.to_string()),
            &model,
            |b, &model| {
                b.iter(|| {
                    let mut runner = TwoWayRunner::builder(model, Epidemic)
                        .config(config(n))
                        .adversary(RateStrategy::new(0.05))
                        .seed(1)
                        .build()
                        .unwrap();
                    runner.run(steps).unwrap();
                    runner.stats().steps
                });
            },
        );
    }

    for model in OneWayModel::ALL {
        group.bench_with_input(
            BenchmarkId::new("one_way", model.to_string()),
            &model,
            |b, &model| {
                b.iter(|| {
                    let mut runner = OneWayRunner::builder(model, OneWayEpidemic)
                        .config(config(n))
                        .adversary(RateStrategy::new(0.05))
                        .seed(1)
                        .build()
                        .unwrap();
                    runner.run(steps).unwrap();
                    runner.stats().steps
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);

//! E5/E7 — simulator convergence vs population size (Theorems 4.1, 4.5).
//!
//! Measures time-to-stabilization of the simulated Pairing workload for
//! `SID` (IO + IDs) and `SKnO` (I3 + omission bound) across `n`. The
//! shape to expect: superlinear growth in `n` (token/handshake round
//! trips dominate), with SKnO slower than SID by roughly the run-length
//! factor `o + 1`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppfts_bench::pairing_inputs;
use ppfts_core::{project, Sid, Skno};
use ppfts_engine::{BoundedStrategy, OneWayModel, OneWayRunner};
use ppfts_protocols::{Pairing, PairingState};

fn bench_sid(c: &mut Criterion) {
    let mut group = c.benchmark_group("sid_convergence");
    group.sample_size(10);
    for n in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let sims = pairing_inputs(n);
                let expected = n / 2;
                let mut runner = OneWayRunner::builder(OneWayModel::Io, Sid::new(Pairing))
                    .config(Sid::<Pairing>::initial(&sims))
                    .seed(7)
                    .build()
                    .unwrap();
                let out = runner.run_until(50_000_000, |c| {
                    project(c).count_state(&PairingState::Paired) == expected
                });
                assert!(out.is_satisfied());
                out.steps()
            });
        });
    }
    group.finish();
}

fn bench_skno(c: &mut Criterion) {
    let mut group = c.benchmark_group("skno_convergence");
    group.sample_size(10);
    for n in [4usize, 8, 16] {
        for o in [0u32, 2] {
            group.bench_with_input(
                BenchmarkId::new(format!("o{o}"), n),
                &(n, o),
                |b, &(n, o)| {
                    b.iter(|| {
                        let sims = pairing_inputs(n);
                        let expected = n / 2;
                        let mut runner =
                            OneWayRunner::builder(OneWayModel::I3, Skno::new(Pairing, o))
                                .config(Skno::<Pairing>::initial(&sims))
                                .adversary(BoundedStrategy::new(0.02, o as u64))
                                .seed(7)
                                .build()
                                .unwrap();
                        let out = runner.run_until(50_000_000, |c| {
                            project(c).count_state(&PairingState::Paired) == expected
                        });
                        assert!(out.is_satisfied());
                        out.steps()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sid, bench_skno);
criterion_main!(benches);

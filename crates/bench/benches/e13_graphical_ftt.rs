//! E13 — graphical fault-tolerant simulation: SKnO and SID on restricted
//! interaction graphs.
//!
//! The workload is the simulated two-way epidemic (seeded at vertex 0,
//! run to stable full *simulated* infection) through the graphical
//! simulators, over ring / grid / random-regular(4) / complete at
//! n ∈ {64, 256, 1024}:
//!
//! * `sid_<family>_n<n>` — graphical `SID` (fault-free IO). Its
//!   three-observation handshake must *re-meet* the same partner, so low
//!   degree helps and the complete graph is its worst case at scale —
//!   the opposite ordering of the raw epidemic's conductance story.
//! * `skno_o<o>_<family>_n<n>`, o ∈ {0, 1, 2} — graphical `SKnO` under
//!   I3 with the omission adversary spending bound `o` at rate 0.02.
//!   Graphical runs are keyed per announcer, so completing a run of
//!   length o+1 requires reassembling one announcer's tokens at one of
//!   its neighbors: o = 0 tracks the graph's broadcast time, while
//!   o ≥ 1 pays a reassembly cost that explodes as conductance drops.
//!
//! Cells that cannot converge within the fixed step budget execute the
//! full budget and report `converged = 0` — deliberately: the committed
//! numbers chart *where* omission tolerance stops being practical on
//! each graph family, and budget-capped cells stay deterministic for
//! the bench-regression gate. The checksum folds both the convergence
//! count and the mean steps so neither is optimized away.
//!
//! Run with `BENCH_JSON=$PWD/BENCH_RESULTS.json cargo bench -p
//! ppfts-bench --bench e13_graphical_ftt` from the workspace root to
//! record the numbers into the committed baseline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ppfts_bench::{e13_families, measure_sid_epidemic_graphical, measure_skno_epidemic_graphical};

/// Step budget per seed: enough for every cell that converges at all at
/// these sizes (calibrated: SKnO o=1 on rr4 at n=64 needs ~31M), small
/// enough that budget-capped cells stay in bench-friendly wall-clock.
const BUDGET: u64 = 48_000_000;
const OMISSION_RATE: f64 = 0.02;

fn bench_graphical_ftt(c: &mut Criterion) {
    // Every run is seed-deterministic; three samples per cell give the
    // shim a real p50/p95 now that the indexed hot path (PR 9) makes
    // even the budget-capped cells affordable to repeat.
    let mut group = c.benchmark_group("e13_graphical_ftt");
    group.sample_size(3);
    for n in [64usize, 256, 1024] {
        for (family, topology) in e13_families(n) {
            group.bench_function(format!("sid_{family}_n{n}"), |b| {
                b.iter(|| {
                    let conv = measure_sid_epidemic_graphical(&topology, 1, BUDGET);
                    black_box((conv.converged, conv.mean_steps))
                });
            });
            for o in [0u32, 1, 2] {
                group.bench_function(format!("skno_o{o}_{family}_n{n}"), |b| {
                    b.iter(|| {
                        let conv =
                            measure_skno_epidemic_graphical(&topology, o, OMISSION_RATE, 1, BUDGET);
                        black_box((conv.converged, conv.mean_steps))
                    });
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_graphical_ftt);
criterion_main!(benches);

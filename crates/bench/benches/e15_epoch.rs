//! E15 — the batch-epoch count backend at scale: the giant-n epidemic of
//! E11 driven through `run_epochs_until`, swept over six decades of
//! population size. Each epoch samples its collision-free length
//! ℓ ≈ 0.63√n in closed form and applies all ℓ interactions as one
//! multivariate draw, so the cost per epoch is O(distinct state pairs) —
//! per-interaction work *shrinks* as n grows.
//!
//! * `epidemic_epoch_n1e2` … `epidemic_epoch_n1e8` — one seed of the
//!   epidemic at n = 10²…10⁸ run to stable full infection on the epoch
//!   path. The n = 10⁶ entry is the headline: the acceptance bar is
//!   ≤ 10 ms/seed against the 0.26 s interleaved floor committed as
//!   `e11_giant/epidemic_count_n1e6`.
//! * `epidemic_epoch_n1e9` — the open-regime size the interleaved path
//!   cannot reach in reasonable time; single sample.
//!
//! Run with `BENCH_JSON=$PWD/BENCH_RESULTS.json cargo bench -p
//! ppfts-bench --bench e15_epoch` from the workspace root to record the
//! numbers into the committed baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use ppfts_bench::measure_epidemic_epoch;

/// Interaction budget per size: 400·n covers the Θ(n log n) epidemic with
/// the same headroom E11 gives its n = 10⁶ runs.
fn budget(n: usize) -> u64 {
    (n as u64).saturating_mul(400)
}

fn bench_e15(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_epoch");
    group.sample_size(10);
    for (id, n) in [
        ("epidemic_epoch_n1e2", 100),
        ("epidemic_epoch_n1e3", 1_000),
        ("epidemic_epoch_n1e4", 10_000),
        ("epidemic_epoch_n1e5", 100_000),
        ("epidemic_epoch_n1e6", 1_000_000),
    ] {
        group.bench_function(id, |b| {
            b.iter(|| {
                let conv = measure_epidemic_epoch(n, 1, budget(n));
                assert_eq!(conv.converged, 1, "seed 0 must converge in budget");
                conv.mean_steps
            });
        });
    }
    group.sample_size(3);
    group.bench_function("epidemic_epoch_n1e7", |b| {
        b.iter(|| {
            let conv = measure_epidemic_epoch(10_000_000, 1, budget(10_000_000));
            assert_eq!(conv.converged, 1, "seed 0 must converge in budget");
            conv.mean_steps
        });
    });
    group.bench_function("epidemic_epoch_n1e8", |b| {
        b.iter(|| {
            let conv = measure_epidemic_epoch(100_000_000, 1, budget(100_000_000));
            assert_eq!(conv.converged, 1, "seed 0 must converge in budget");
            conv.mean_steps
        });
    });
    group.sample_size(1);
    group.bench_function("epidemic_epoch_n1e9", |b| {
        b.iter(|| {
            let conv = measure_epidemic_epoch(1_000_000_000, 1, budget(1_000_000_000));
            assert_eq!(conv.converged, 1, "seed 0 must converge in budget");
            conv.mean_steps
        });
    });
    group.finish();
}

criterion_group!(benches, bench_e15);
criterion_main!(benches);

//! E11 — giant-n epidemic on the count-based population backend, the
//! scale lever the `Population` refactor unlocks: one seed of the
//! n = 10⁶ epidemic run to stable full infection (`run_batched_until` +
//! `stably`), measured on both backends.
//!
//! * `epidemic_count_n1e6` — `CountConfiguration`: O(1) memory, O(1)
//!   boundary predicate. This is the committed throughput floor; the
//!   acceptance bar is < 5 s per seed.
//! * `epidemic_dense_n1e6` — dense `Configuration` at the same n, the
//!   largest size both backends run: same dynamics, but an O(n) boundary
//!   predicate and O(n) memory. The gap between the two entries is the
//!   count backend's win.
//! * `per_interaction_interleaved_x1e6` / `per_interaction_epoch_x1e6` —
//!   exactly 10⁶ interactions of the same workload on each execution
//!   path, so `mean_ns / 10⁶` reads directly as nanoseconds per
//!   interaction and the committed ratio is the epoch path's
//!   per-interaction speedup.
//!
//! Run with `BENCH_JSON=$PWD/BENCH_RESULTS.json cargo bench -p
//! ppfts-bench --bench e11_giant` from the workspace root to record the
//! numbers into the committed baseline (the bench binary's working
//! directory is the package, so a relative path lands in
//! `crates/bench/`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ppfts_bench::{
    epidemic_fixed_steps_epoch, epidemic_fixed_steps_interleaved, measure_epidemic_giant,
    measure_epidemic_giant_dense,
};

const N: usize = 1_000_000;
const BUDGET: u64 = 400_000_000;

/// Fixed interaction count of the per-interaction entries: divide their
/// `mean_ns` by this to get nanoseconds per interaction.
const FIXED_STEPS: u64 = 1_000_000;

fn bench_e11(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_giant");
    group.sample_size(3);
    group.bench_function("epidemic_count_n1e6", |b| {
        b.iter(|| {
            let conv = measure_epidemic_giant(N, 1, BUDGET);
            assert_eq!(conv.converged, 1, "seed 0 must converge in budget");
            conv.mean_steps
        });
    });
    group.bench_function("epidemic_dense_n1e6", |b| {
        b.iter(|| {
            let conv = measure_epidemic_giant_dense(N, 1, BUDGET);
            assert_eq!(conv.converged, 1, "seed 0 must converge in budget");
            conv.mean_steps
        });
    });
    group.bench_function("per_interaction_interleaved_x1e6", |b| {
        b.iter(|| black_box(epidemic_fixed_steps_interleaved(N, FIXED_STEPS, 0)));
    });
    group.bench_function("per_interaction_epoch_x1e6", |b| {
        b.iter(|| black_box(epidemic_fixed_steps_epoch(N, FIXED_STEPS, 0)));
    });
    group.finish();
}

criterion_group!(benches, bench_e11);
criterion_main!(benches);

//! E8 — the naming protocol `Nn` (Lemma 3, Theorem 4.6).
//!
//! Measures interactions until every agent has acquired its unique name
//! and started simulating, vs `n`. Expect superlinear growth: the last
//! collision at each level is a rendezvous of two specific agents, a
//! Θ(n²)-expected event under uniform scheduling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppfts_bench::pairing_inputs;
use ppfts_core::NamedSid;
use ppfts_engine::{OneWayModel, OneWayRunner};
use ppfts_protocols::Pairing;

fn bench_naming(c: &mut Criterion) {
    let mut group = c.benchmark_group("naming_phase");
    group.sample_size(10);
    for n in [4usize, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let sims = pairing_inputs(n);
                let mut runner = OneWayRunner::builder(OneWayModel::Io, NamedSid::new(Pairing, n))
                    .config(NamedSid::<Pairing>::initial(&sims))
                    .seed(13)
                    .build()
                    .unwrap();
                let out = runner.run_until(100_000_000, |c| {
                    c.as_slice()
                        .iter()
                        .all(ppfts_core::NamedState::is_simulating)
                });
                assert!(out.is_satisfied());
                out.steps()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_naming);
criterion_main!(benches);

//! D3 (DESIGN.md ablation) — scheduler choice.
//!
//! Compares uniform-random scheduling (the probabilistic realization of
//! global fairness) against the deterministic round-robin rotation on the
//! SID-simulated Pairing workload. Expect round-robin to be somewhat
//! faster at equal `n` (its hard fairness bound removes the coupon-
//! collector tail) while uniform matches the model assumptions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppfts_bench::pairing_inputs;
use ppfts_core::{project, Sid};
use ppfts_engine::{OneWayModel, OneWayRunner, RoundRobinScheduler, UniformScheduler};
use ppfts_protocols::{Pairing, PairingState};

fn bench_schedulers(c: &mut Criterion) {
    let n = 8usize;
    let mut group = c.benchmark_group("schedulers");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("uniform", n), |b| {
        b.iter(|| {
            let sims = pairing_inputs(n);
            let expected = n / 2;
            let mut runner = OneWayRunner::builder(OneWayModel::Io, Sid::new(Pairing))
                .config(Sid::<Pairing>::initial(&sims))
                .scheduler(UniformScheduler::new())
                .seed(2)
                .build()
                .unwrap();
            let out = runner.run_until(50_000_000, |c| {
                project(c).count_state(&PairingState::Paired) == expected
            });
            assert!(out.is_satisfied());
            out.steps()
        });
    });

    group.bench_function(BenchmarkId::new("round_robin", n), |b| {
        b.iter(|| {
            let sims = pairing_inputs(n);
            let expected = n / 2;
            let mut runner = OneWayRunner::builder(OneWayModel::Io, Sid::new(Pairing))
                .config(Sid::<Pairing>::initial(&sims))
                .scheduler(RoundRobinScheduler::new())
                .seed(2)
                .build()
                .unwrap();
            let out = runner.run_until(50_000_000, |c| {
                project(c).count_state(&PairingState::Paired) == expected
            });
            assert!(out.is_satisfied());
            out.steps()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);

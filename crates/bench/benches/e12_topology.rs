//! E12 — graph-aware scheduling: ring vs. random-regular vs. complete.
//!
//! Two measurements per topology family, sweeping n = 10³…10⁵:
//!
//! * `draws_<family>_n1e{3,4,5}` — the scheduling-layer cost alone: 10⁶
//!   edge draws through `TopologyScheduler` (checksum-folded so nothing
//!   is elided). This is the number that must stay flat across `n` and
//!   across families — CSR arc sampling is one range draw regardless of
//!   graph size, and the complete graph keeps the classic two-draw
//!   uniform path — i.e. graph-aware scheduling batches edge draws as
//!   cheaply as pair draws.
//! * `epidemic_<family>_n1e{3,4}` — the scenario dynamics: seeded
//!   epidemic broadcast to stable full infection
//!   (`measure_epidemic_topology`, 1 seed). Expect Θ(n log n)
//!   interactions on the complete graph and the degree-4 random-regular
//!   expander versus Θ(n²) on the ring (its two infection frontiers are
//!   hit with probability ~2/n per step) — which is also why the ring
//!   row stops at n = 10⁴: at 10⁵ the ring alone would need ~5·10⁹
//!   interactions per seed. The n = 10⁵ scheduling cost is covered by
//!   the `draws_*` rows.
//!
//! Run with `BENCH_JSON=$PWD/BENCH_RESULTS.json cargo bench -p
//! ppfts-bench --bench e12_topology` from the workspace root to record
//! the numbers into the committed baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use ppfts_bench::{measure_epidemic_topology, topology_draw_checksum};
use ppfts_population::Topology;

const DRAWS: u64 = 1_000_000;
const RR_DEGREE: usize = 4;
const TOPOLOGY_SEED: u64 = 12;

fn families(n: usize) -> Vec<(&'static str, Topology)> {
    vec![
        ("ring", Topology::ring(n).unwrap()),
        (
            "rr4",
            Topology::random_regular(n, RR_DEGREE, TOPOLOGY_SEED).unwrap(),
        ),
        ("complete", Topology::complete(n).unwrap()),
    ]
}

fn exp_label(n: usize) -> &'static str {
    match n {
        1_000 => "n1e3",
        10_000 => "n1e4",
        100_000 => "n1e5",
        _ => unreachable!("unlabeled size"),
    }
}

fn bench_draws(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_topology");
    group.sample_size(5);
    for n in [1_000usize, 10_000, 100_000] {
        for (family, topology) in families(n) {
            group.bench_function(format!("draws_{family}_{}", exp_label(n)), |b| {
                b.iter(|| topology_draw_checksum(&topology, DRAWS, 1));
            });
        }
    }
    group.finish();
}

fn bench_epidemic(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_topology");
    group.sample_size(3);
    for n in [1_000usize, 10_000] {
        for family in ["ring", "rr4", "complete"] {
            // Ring broadcast is Θ(n²): give every family the budget the
            // slowest one needs at this n.
            let budget = (n as u64) * (n as u64) * 4;
            group.bench_function(format!("epidemic_{family}_{}", exp_label(n)), |b| {
                b.iter(|| {
                    let conv = measure_epidemic_topology(
                        || match family {
                            "ring" => Topology::ring(n).unwrap(),
                            "rr4" => Topology::random_regular(n, RR_DEGREE, TOPOLOGY_SEED).unwrap(),
                            _ => Topology::complete(n).unwrap(),
                        },
                        1,
                        budget,
                    );
                    assert_eq!(conv.converged, 1, "seed 0 must converge in budget");
                    conv.mean_steps
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_draws, bench_epidemic);
criterion_main!(benches);

//! E16 — sharded dense stepping: the graphical-SKnO simulated epidemic
//! of E13 (the heaviest per-step hooks in the suite) executed for a
//! fixed interaction budget through `run_sharded`, at shard counts
//! 1/2/4/8, on the E13 random 4-regular family.
//!
//! The sharded path is *bit-identical* to the sequential batched path
//! at every shard count (`tests/shard_equivalence.rs`), so the only
//! thing that varies across the `shards*` entries is wall-clock: the
//! batch is drawn sequentially, partitioned into agent-disjoint levels,
//! and the level application fans out over `shards` worker threads.
//! With batches of 8192 over n = 1024 agents, levels hold ≈ n/2
//! independent interactions — enough parallel work per level to
//! amortize the barrier on multi-core hosts. On a single-core host the
//! `shards > 1` entries honestly price the partition-plus-barrier
//! overhead instead (see EXPERIMENTS.md E16).
//!
//! * `skno_rr4_n1024_shards{1,2,4,8}` — 64k interactions, o = 1
//!   (token-heavy announcements in flight), fixed seed.
//! * `skno_rr4_n4096_shards{1,8}` — the larger population, bounding the
//!   scaling trend with one pair of entries.
//!
//! Run with `BENCH_JSON=$PWD/BENCH_RESULTS.json cargo bench -p
//! ppfts-bench --bench e16_shard` from the workspace root to record the
//! numbers into the committed baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use ppfts_bench::{skno_graphical_fixed_steps_sharded, E13_RR_DEGREE, E13_TOPOLOGY_SEED};
use ppfts_population::Topology;

const STEPS: u64 = 65_536;
const O: u32 = 1;
const RATE: f64 = 0.02;
const SEED: u64 = 7;

fn bench_e16(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_shard");
    group.sample_size(10);

    let rr_1024 = Topology::random_regular(1024, E13_RR_DEGREE, E13_TOPOLOGY_SEED)
        .expect("rr4 is feasible at n = 1024");
    for shards in [1usize, 2, 4, 8] {
        group.bench_function(format!("skno_rr4_n1024_shards{shards}"), |b| {
            b.iter(|| skno_graphical_fixed_steps_sharded(&rr_1024, O, RATE, shards, STEPS, SEED));
        });
    }

    group.sample_size(5);
    let rr_4096 = Topology::random_regular(4096, E13_RR_DEGREE, E13_TOPOLOGY_SEED)
        .expect("rr4 is feasible at n = 4096");
    for shards in [1usize, 8] {
        group.bench_function(format!("skno_rr4_n4096_shards{shards}"), |b| {
            b.iter(|| skno_graphical_fixed_steps_sharded(&rr_4096, O, RATE, shards, STEPS, SEED));
        });
    }

    group.finish();
}

criterion_group!(benches, bench_e16);
criterion_main!(benches);

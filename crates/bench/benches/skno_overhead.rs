//! E5/E6 — SKnO's overhead in the omission bound `o` (Theorem 4.1,
//! Corollary 1).
//!
//! Two measurements on a fixed population:
//!
//! * convergence time vs `o` — expect roughly linear growth in the run
//!   length `o + 1` (every announcement ships `o + 1` tokens);
//! * peak per-agent token footprint vs `o` — the measured side of the
//!   Θ(|Q_P|·(o+1)·log n) memory bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppfts_bench::{pairing_inputs, skno_peak_tokens};
use ppfts_core::{project, Skno};
use ppfts_engine::{BoundedStrategy, OneWayModel, OneWayRunner};
use ppfts_protocols::{Pairing, PairingState};

fn bench_convergence_vs_bound(c: &mut Criterion) {
    let n = 8usize;
    let mut group = c.benchmark_group("skno_vs_bound");
    group.sample_size(10);
    for o in [0u32, 1, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(o), &o, |b, &o| {
            b.iter(|| {
                let sims = pairing_inputs(n);
                let expected = n / 2;
                let mut runner = OneWayRunner::builder(OneWayModel::I3, Skno::new(Pairing, o))
                    .config(Skno::<Pairing>::initial(&sims))
                    .adversary(BoundedStrategy::new(0.02, o as u64))
                    .seed(3)
                    .build()
                    .unwrap();
                let out = runner.run_until(50_000_000, |c| {
                    project(c).count_state(&PairingState::Paired) == expected
                });
                assert!(out.is_satisfied());
                out.steps()
            });
        });
    }
    group.finish();
}

fn bench_memory_vs_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("skno_peak_tokens");
    group.sample_size(10);
    for o in [0u32, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(o), &o, |b, &o| {
            b.iter(|| skno_peak_tokens(8, o, 20_000, 5));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_convergence_vs_bound, bench_memory_vs_bound);
criterion_main!(benches);

//! E5 at scale — the SKnO convergence workload at o=2, n=16 (Theorem
//! 4.1), the runner hot path the ROADMAP names as the first perf target.
//!
//! One seed to convergence (~2.4M engine steps), measured twice: on the
//! pre-batching scalar path (`measure_skno_scalar`: per-step projection
//! predicate, default sink) and on the batched `StatsOnly` path
//! (`measure_skno`: `run_batched_until` + `stably`).
//!
//! Run with `BENCH_JSON=$PWD/BENCH_RESULTS.json cargo bench -p
//! ppfts-bench --bench e5_scale` from the workspace root to record the
//! numbers into the committed baseline (the bench binary's working
//! directory is the package, so a relative path lands in
//! `crates/bench/`).
//! The `scalar_seed` entry in that file was captured at the pre-refactor
//! seed (commit 5083bc7) and is the floor the batched path is measured
//! against; `scalar` re-measures the current scalar path (already faster
//! than the seed: no per-step state clones).

use criterion::{criterion_group, criterion_main, Criterion};
use ppfts_bench::{measure_skno, measure_skno_scalar};

fn bench_e5(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_skno_o2_n16");
    group.sample_size(3);
    group.bench_function("scalar", |b| {
        b.iter(|| {
            let conv = measure_skno_scalar(16, 2, 1, 30_000_000);
            assert_eq!(conv.converged, 1, "seed 0 must converge in budget");
            conv.mean_steps
        });
    });
    group.bench_function("batched_statsonly", |b| {
        b.iter(|| {
            let conv = measure_skno(16, 2, 1, 30_000_000);
            assert_eq!(conv.converged, 1, "seed 0 must converge in budget");
            conv.mean_steps
        });
    });
    group.finish();
}

criterion_group!(benches, bench_e5);
criterion_main!(benches);

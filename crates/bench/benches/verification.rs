//! Cost of the simulation-verification pipeline (Definitions 3–4).
//!
//! Measures event extraction, matching construction and derived-execution
//! verification as a function of trace length, for both the ID-exact
//! (`SID`) and anonymous (`SKnO`) paths. Expect near-linear growth: the
//! matcher is bucketed-FIFO and the verifier a greedy fixpoint.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppfts_bench::pairing_inputs;
use ppfts_core::{build_matching, extract_events, project, Sid, Skno};
use ppfts_engine::{OneWayModel, OneWayRunner};
use ppfts_protocols::Pairing;

fn bench_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("verification");
    group.sample_size(10);

    for steps in [2_000u64, 8_000, 32_000] {
        // Pre-build the trace once per size; measure only the pipeline.
        let sims = pairing_inputs(8);
        let mut runner = OneWayRunner::builder(OneWayModel::Io, Sid::new(Pairing))
            .config(Sid::<Pairing>::initial(&sims))
            .record_trace(true)
            .seed(9)
            .build()
            .unwrap();
        let initial = project(runner.config());
        runner.run(steps).unwrap();
        let trace = runner.take_trace().unwrap();

        group.bench_with_input(BenchmarkId::new("sid_pipeline", steps), &steps, |b, _| {
            b.iter(|| {
                let events = extract_events(&trace);
                let matching = build_matching(&Pairing, &events).unwrap();
                let derived =
                    ppfts_core::verify_derived_execution(&Pairing, &initial, &events, &matching)
                        .unwrap();
                (events.len(), matching.len(), derived.len())
            });
        });
    }

    for steps in [2_000u64, 8_000] {
        let sims = pairing_inputs(8);
        let mut runner = OneWayRunner::builder(OneWayModel::It, Skno::new(Pairing, 0))
            .config(Skno::<Pairing>::initial(&sims))
            .record_trace(true)
            .seed(9)
            .build()
            .unwrap();
        let initial = project(runner.config());
        runner.run(steps).unwrap();
        let trace = runner.take_trace().unwrap();

        group.bench_with_input(BenchmarkId::new("skno_pipeline", steps), &steps, |b, _| {
            b.iter(|| {
                let events = extract_events(&trace);
                let matching = build_matching(&Pairing, &events).unwrap();
                let derived =
                    ppfts_core::verify_derived_execution(&Pairing, &initial, &events, &matching)
                        .unwrap();
                (events.len(), matching.len(), derived.len())
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_verification);
criterion_main!(benches);

//! E17 — the indexed simulation hot path: wall-clock of the graphical
//! fault-tolerant simulators after PR 9's `RunIndex` + batched-arc work.
//!
//! The workload is the same simulated two-way epidemic as E13 (seeded at
//! vertex 0, run to stable full *simulated* infection), but the grid is
//! chosen to expose exactly what the hot-path work changed:
//!
//! * `sid_<family>_n<n>` — graphical `SID` (fault-free IO): the cached
//!   adjacency-filtering flag plus the monomorphized batched arc draw.
//! * `skno_o<o>_<family>_n<n>`, o ∈ {0, 1, 2} — graphical `SKnO` under
//!   I3 with the bounded omission adversary at rate 0.02: the per-agent
//!   `RunIndex` replaces the O(queue) census that used to dominate every
//!   reactor check, so cost per step no longer grows with the number of
//!   parked announcement tokens.
//!
//! Families are complete / rr4 / ring at n ∈ {256, 1024, 4096} — one
//! conductance extreme on each side of rr4. The complete-graph n = 1024
//! cells overlap E13 deliberately: comparing `e17_simulator_hotpath/
//! skno_o2_complete_n1024` (and `sid_complete_n1024`) against the E13
//! numbers committed before this PR is the speedup acceptance check.
//! Budget-capped cells execute the full budget and report
//! `converged = 0`, which keeps every cell deterministic for the
//! bench-regression gate.
//!
//! Run with `BENCH_JSON=$PWD/BENCH_RESULTS.json cargo bench -p
//! ppfts-bench --bench e17_simulator_hotpath` from the workspace root to
//! record the numbers into the committed baseline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ppfts_bench::{
    measure_sid_epidemic_graphical, measure_skno_epidemic_graphical, E13_RR_DEGREE,
    E13_TOPOLOGY_SEED,
};
use ppfts_population::Topology;

/// Same per-seed step budget as E13, so the overlapping complete-graph
/// cells are directly comparable across the two baselines.
const BUDGET: u64 = 48_000_000;
const OMISSION_RATE: f64 = 0.02;

/// E17 graph families: the SID-worst/SKnO-best complete graph, the
/// expander middle ground, and the low-conductance ring. Grid is left to
/// E13 — it needs perfect-square n and adds no new regime here.
fn e17_families(n: usize) -> Vec<(&'static str, Topology)> {
    vec![
        ("complete", Topology::complete(n).expect("n ≥ 2")),
        (
            "rr4",
            Topology::random_regular(n, E13_RR_DEGREE, E13_TOPOLOGY_SEED)
                .expect("rr4 is feasible at every E17 size"),
        ),
        ("ring", Topology::ring(n).expect("n ≥ 4")),
    ]
}

fn bench_simulator_hotpath(c: &mut Criterion) {
    // Every run is seed-deterministic; three samples give the shim a
    // real p50/p95 while keeping the budget-capped cells affordable.
    let mut group = c.benchmark_group("e17_simulator_hotpath");
    group.sample_size(3);
    for n in [256usize, 1024, 4096] {
        for (family, topology) in e17_families(n) {
            group.bench_function(format!("sid_{family}_n{n}"), |b| {
                b.iter(|| {
                    let conv = measure_sid_epidemic_graphical(&topology, 1, BUDGET);
                    black_box((conv.converged, conv.mean_steps))
                });
            });
            for o in [0u32, 1, 2] {
                group.bench_function(format!("skno_o{o}_{family}_n{n}"), |b| {
                    b.iter(|| {
                        let conv =
                            measure_skno_epidemic_graphical(&topology, o, OMISSION_RATE, 1, BUDGET);
                        black_box((conv.converged, conv.mean_steps))
                    });
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_simulator_hotpath);
criterion_main!(benches);

//! The manifest → expand → run → kill → resume → verify round trip —
//! the contract the CI sweep-smoke job exercises end to end, pinned
//! here at test scale.

use std::path::PathBuf;

use ppfts_sweep::{expand, load_ledger, run_sweep, summarize, verify};

const MANIFEST: &str = r#"{
    "name": "roundtrip",
    "seeds": 3,
    "budget": 400000,
    "grids": [
        {"family": "sid", "topology": ["ring", "star"], "n": [16]},
        {"family": "sid_pairing", "n": [8]}
    ]
}"#;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ppfts_sweep_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn capped_sweep_resumes_to_a_complete_duplicate_free_ledger() {
    let manifest = expand(MANIFEST).unwrap();
    assert_eq!(manifest.jobs.len(), 9);
    let out = scratch("resume.jsonl");
    let _ = std::fs::remove_file(&out);

    // Leg 1: a capped invocation simulates a mid-sweep kill after 4 jobs.
    let first = run_sweep(&manifest, &out, 2, Some(4), None).unwrap();
    assert_eq!((first.ran, first.skipped, first.failed), (4, 0, 0));
    assert_eq!(first.remaining, 5);
    let mid = verify(&manifest, &out).unwrap();
    assert!(!mid.is_complete());
    assert_eq!(mid.recorded, 4);
    assert_eq!(mid.missing.len(), 5);

    // Leg 2: rerunning with the same arguments picks up the remainder
    // and only the remainder.
    let second = run_sweep(&manifest, &out, 2, None, None).unwrap();
    assert_eq!((second.ran, second.skipped, second.failed), (5, 4, 0));
    assert_eq!(second.remaining, 0);

    // The union is complete and duplicate-free.
    let done = verify(&manifest, &out).unwrap();
    assert!(done.is_complete(), "verify: {done:?}");
    assert_eq!(done.recorded, 9);

    // A third invocation is a no-op.
    let third = run_sweep(&manifest, &out, 2, None, None).unwrap();
    assert_eq!((third.ran, third.skipped), (0, 9));

    // And the resumed ledger is bit-identical to a straight-through
    // sweep (job results are deterministic in the job): compare as
    // id-sorted multisets since completion order differs.
    let straight = scratch("straight.jsonl");
    let _ = std::fs::remove_file(&straight);
    run_sweep(&manifest, &straight, 2, None, None).unwrap();
    let mut resumed = load_ledger(&out).unwrap();
    let mut oneshot = load_ledger(&straight).unwrap();
    resumed.sort_by(|a, b| a.id.cmp(&b.id));
    oneshot.sort_by(|a, b| a.id.cmp(&b.id));
    assert_eq!(resumed, oneshot);

    // Summaries group the 3 seeds of each of the 3 grid cells.
    let summaries = summarize(&resumed);
    assert_eq!(summaries.len(), 3);
    for s in &summaries {
        assert_eq!(s.seeds, 3, "{}", s.group);
        assert_eq!(s.converged, 3, "{}", s.group);
        assert!(s.steps.unwrap().min > 0.0);
    }
}

#[test]
fn progress_watermark_reaches_the_attempted_count() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let manifest = expand(MANIFEST).unwrap();
    let out = scratch("progress.jsonl");
    let _ = std::fs::remove_file(&out);
    let high_water = AtomicUsize::new(0);
    let progress = |done: usize, total: usize| {
        assert_eq!(total, 6);
        high_water.fetch_max(done, Ordering::Relaxed);
    };
    let report = run_sweep(&manifest, &out, 3, Some(6), Some(&progress)).unwrap();
    assert_eq!(report.ran, 6);
    assert_eq!(high_water.load(Ordering::Relaxed), 6);
}

#[test]
fn shipped_manifests_expand_cleanly() {
    for name in ["smoke.json", "e13_grid.json"] {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("manifests")
            .join(name);
        let document = std::fs::read_to_string(&path).unwrap();
        let manifest = expand(&document).unwrap();
        assert!(!manifest.jobs.is_empty(), "{name} expands to zero jobs");
    }
    // The e13 grid is the paper-scale E13 table: 4 graphs × 2 sizes ×
    // (1 SID + 2 SKnO bounds) × 5 seeds.
    let e13 = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("manifests/e13_grid.json");
    let manifest = expand(&std::fs::read_to_string(e13).unwrap()).unwrap();
    assert_eq!(manifest.jobs.len(), 4 * 2 * 3 * 5);
}

//! Sweep orchestration for the experiment suite: declarative scenario
//! manifests in, a checkpointed JSONL result ledger out.
//!
//! The experiment grids this repository charts (E5's size sweep, E13's
//! topology × omission-bound grid, …) are cartesian products of a few
//! axes — protocol family, interaction topology, population size,
//! omission bound, seed — run for thousands of seeded jobs. This crate
//! industrializes that: a JSON **manifest** ([`manifest::expand`])
//! declares the grid; the **orchestrator** ([`orchestrator::run_sweep`])
//! fans the expanded jobs over threads (reusing the engine's
//! atomic-cursor dispatcher), streams each finished job as one JSONL
//! line, and treats that same file as the **checkpoint ledger**: a
//! killed or capped sweep resumes by rerunning with the same arguments —
//! recorded jobs are skipped, and because every job is deterministic in
//! its manifest coordinates, the resumed union is bit-identical to a
//! straight-through run.
//!
//! Workload bodies are the single-seed harnesses of [`ppfts_bench`], so
//! orchestrated sweeps measure exactly the dynamics of the `measure_*`
//! aggregators and the committed bench baseline.
//!
//! The `ppfts_sweep` binary is the CLI:
//!
//! ```text
//! ppfts_sweep --manifest crates/sweep/manifests/e13_grid.json --out e13.jsonl
//! ppfts_sweep --manifest … --out e13.jsonl --max-jobs 50   # partial leg
//! ppfts_sweep --manifest … --out e13.jsonl                 # resume the rest
//! ppfts_sweep --manifest … --out e13.jsonl --verify        # audit: exit 0 iff complete
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ppfts_verify::json;
pub mod manifest;
pub mod orchestrator;
pub mod scenario;

pub use manifest::{expand, Family, Job, Manifest, ManifestError, TopologyKind};
pub use orchestrator::{
    load_ledger, run_sweep, summarize, summary_table, verify, GroupSummary, SweepReport,
    VerifyReport,
};
pub use scenario::{run_job, JobResult};

//! Scenario manifests: a declarative grid description — protocol
//! family × topology × n × omission bound × seed range — that expands
//! into a flat, deduplicated job list with stable job ids.
//!
//! A manifest is one JSON object:
//!
//! ```json
//! {
//!   "name": "e13-grid",
//!   "seeds": 5,
//!   "budget": 2000000,
//!   "grids": [
//!     {"family": "skno", "topology": ["ring", "rr4"], "n": [256], "o": [0, 1]},
//!     {"family": "sid",  "topology": ["rr4"], "n": [256], "budget": 500000}
//!   ]
//! }
//! ```
//!
//! Each grid block is a cartesian product over its list-valued axes
//! (`topology`, `n`, `o`) crossed with seeds `0..seeds`; scalar knobs
//! (`rate`, `budget`, `seeds`) default from the manifest top level.
//! Families that take no omission bound reject an `o` axis instead of
//! silently ignoring it, and two blocks that expand to the same job id
//! are a manifest error, not a silent overwrite — the id is the
//! checkpoint ledger key, so uniqueness is what makes resume sound.
//!
//! Job ids are stable across releases by construction:
//! `family/topology/n{n}/o{o}/s{seed}` with absent axes omitted, e.g.
//! `skno/rr4/n256/o1/s3` or `sid_pairing/n64/s0`.

use std::collections::BTreeSet;
use std::fmt;

use ppfts_bench::{E13_RR_DEGREE, E13_TOPOLOGY_SEED};
use ppfts_population::Topology;

use crate::json::{self, Value};

/// Default omission rate handed to the bounded adversary of SKnO jobs.
pub const DEFAULT_RATE: f64 = 0.02;

/// The protocol families a manifest can sweep. Graphical families run
/// on an explicit interaction topology; pairing families run the
/// classic complete-graph Pairing workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// Graphical SKnO simulating the epidemic on a topology (E13).
    Skno,
    /// Graphical SID simulating the epidemic on a topology (E13).
    Sid,
    /// Plain (unsimulated) epidemic on a topology (E12).
    Epidemic,
    /// Classic SKnO on the Pairing workload (E5).
    SknoPairing,
    /// Classic SID on the Pairing workload (E5).
    SidPairing,
    /// The naming-composed simulator on the Pairing workload (E7).
    NamedPairing,
}

impl Family {
    /// The manifest spelling (also the id prefix).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Family::Skno => "skno",
            Family::Sid => "sid",
            Family::Epidemic => "epidemic",
            Family::SknoPairing => "skno_pairing",
            Family::SidPairing => "sid_pairing",
            Family::NamedPairing => "named_pairing",
        }
    }

    fn from_name(name: &str) -> Option<Family> {
        Some(match name {
            "skno" => Family::Skno,
            "sid" => Family::Sid,
            "epidemic" => Family::Epidemic,
            "skno_pairing" => Family::SknoPairing,
            "sid_pairing" => Family::SidPairing,
            "named_pairing" => Family::NamedPairing,
            _ => return None,
        })
    }

    /// Whether jobs of this family run on an explicit topology.
    #[must_use]
    pub fn graphical(self) -> bool {
        matches!(self, Family::Skno | Family::Sid | Family::Epidemic)
    }

    /// Whether this family takes an omission bound `o`.
    #[must_use]
    pub fn takes_o(self) -> bool {
        matches!(self, Family::Skno | Family::SknoPairing)
    }
}

/// One fully instantiated unit of work: a single seeded run.
#[derive(Clone, Debug, PartialEq)]
pub struct Job {
    /// Stable ledger key, e.g. `skno/rr4/n256/o1/s3`.
    pub id: String,
    /// Protocol family.
    pub family: Family,
    /// Topology name for graphical families (`None` otherwise).
    pub topology: Option<TopologyKind>,
    /// Population / graph size.
    pub n: usize,
    /// Omission bound (0 for families that don't take one).
    pub o: u32,
    /// Adversary omission rate (SKnO families).
    pub rate: f64,
    /// Scheduler seed.
    pub seed: u64,
    /// Interaction budget.
    pub budget: u64,
}

/// The topology families jobs can run on, mirroring the E13 set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// Cycle.
    Ring,
    /// √n×√n grid (requires a perfect-square `n`).
    Grid,
    /// Random 4-regular graph (the E13 family, fixed generation seed).
    Rr4,
    /// Star.
    Star,
    /// Complete graph.
    Complete,
}

impl TopologyKind {
    /// The manifest spelling (also the id segment).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::Ring => "ring",
            TopologyKind::Grid => "grid",
            TopologyKind::Rr4 => "rr4",
            TopologyKind::Star => "star",
            TopologyKind::Complete => "complete",
        }
    }

    fn from_name(name: &str) -> Option<TopologyKind> {
        Some(match name {
            "ring" => TopologyKind::Ring,
            "grid" => TopologyKind::Grid,
            "rr4" => TopologyKind::Rr4,
            "star" => TopologyKind::Star,
            "complete" => TopologyKind::Complete,
            _ => return None,
        })
    }

    /// Materializes the graph at size `n`. Deterministic: random
    /// families use the fixed E13 generation seed, so every job (and
    /// every resume) sees the same graph.
    ///
    /// # Errors
    ///
    /// Returns the population layer's `TopologyError` when `n` doesn't
    /// fit the family; [`expand`] pre-validates sizes so orchestrated
    /// jobs never hit this.
    pub fn build(self, n: usize) -> Result<Topology, ppfts_population::TopologyError> {
        match self {
            TopologyKind::Ring => Topology::ring(n),
            TopologyKind::Grid => {
                let side = (n as f64).sqrt() as usize;
                Topology::grid2d(side, side)
            }
            TopologyKind::Rr4 => Topology::random_regular(n, E13_RR_DEGREE, E13_TOPOLOGY_SEED),
            TopologyKind::Star => Topology::star(n),
            TopologyKind::Complete => Topology::complete(n),
        }
    }

    /// Whether size `n` is constructible for this family (the eager
    /// check [`expand`] runs so sweeps fail at parse time, not mid-run).
    #[must_use]
    pub fn admits(self, n: usize) -> bool {
        match self {
            TopologyKind::Grid => {
                let side = (n as f64).sqrt() as usize;
                side >= 2 && side * side == n
            }
            TopologyKind::Rr4 => n > E13_RR_DEGREE && (n * E13_RR_DEGREE).is_multiple_of(2),
            TopologyKind::Ring => n >= 3,
            TopologyKind::Star | TopologyKind::Complete => n >= 2,
        }
    }
}

/// A parsed, validated manifest.
#[derive(Clone, Debug, PartialEq)]
pub struct Manifest {
    /// Human-readable sweep name.
    pub name: String,
    /// The expanded, deduplicated job list, in manifest order.
    pub jobs: Vec<Job>,
}

/// What's wrong with a manifest.
#[derive(Clone, Debug, PartialEq)]
pub enum ManifestError {
    /// The document isn't JSON.
    Json(json::ParseError),
    /// A required field is missing or has the wrong type.
    Field {
        /// Which field.
        field: &'static str,
        /// What it must be.
        expected: &'static str,
    },
    /// An unknown protocol family name.
    UnknownFamily(String),
    /// An unknown topology name.
    UnknownTopology(String),
    /// A family that takes no omission bound was given an `o` axis.
    OAxisUnsupported(&'static str),
    /// A graphical family without a topology axis, or a pairing family
    /// with one.
    TopologyAxisMismatch(&'static str),
    /// A size that doesn't fit a requested topology family.
    SizeUnsupported {
        /// The topology family.
        topology: &'static str,
        /// The offending size.
        n: usize,
    },
    /// A pairing-workload size that isn't even and at least 2 (the
    /// workload is n/2 consumers and n/2 producers).
    OddPairingSize(usize),
    /// Two grid blocks expanded to the same job id.
    DuplicateJob(String),
    /// The expansion produced no jobs at all.
    Empty,
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Json(e) => write!(f, "manifest is not JSON: {e}"),
            ManifestError::Field { field, expected } => {
                write!(f, "manifest field `{field}` must be {expected}")
            }
            ManifestError::UnknownFamily(name) => write!(
                f,
                "unknown family `{name}` (expected skno, sid, epidemic, \
                 skno_pairing, sid_pairing or named_pairing)"
            ),
            ManifestError::UnknownTopology(name) => write!(
                f,
                "unknown topology `{name}` (expected ring, grid, rr4, star or complete)"
            ),
            ManifestError::OAxisUnsupported(family) => {
                write!(
                    f,
                    "family `{family}` takes no omission bound: drop the `o` axis"
                )
            }
            ManifestError::TopologyAxisMismatch(family) => write!(
                f,
                "family `{family}` and the `topology` axis don't fit: graphical families \
                 require it, pairing families reject it"
            ),
            ManifestError::SizeUnsupported { topology, n } => {
                write!(f, "topology `{topology}` is not constructible at n = {n}")
            }
            ManifestError::OddPairingSize(n) => write!(
                f,
                "pairing workloads need an even n >= 2 (n/2 consumers, n/2 producers), got {n}"
            ),
            ManifestError::DuplicateJob(id) => write!(
                f,
                "job `{id}` is produced by more than one grid block; ids must be unique \
                 (they key the checkpoint ledger)"
            ),
            ManifestError::Empty => write!(f, "manifest expands to zero jobs"),
        }
    }
}

impl std::error::Error for ManifestError {}

impl From<json::ParseError> for ManifestError {
    fn from(e: json::ParseError) -> Self {
        ManifestError::Json(e)
    }
}

/// Parses and expands a manifest document into its job list.
///
/// # Errors
///
/// Every way a manifest can be malformed maps to a [`ManifestError`]
/// variant; see the enum. Validation is eager and total: a returned
/// `Manifest` is fully runnable.
pub fn expand(document: &str) -> Result<Manifest, ManifestError> {
    let doc = json::parse(document)?;
    let name = doc
        .get("name")
        .and_then(Value::as_str)
        .ok_or(ManifestError::Field {
            field: "name",
            expected: "a string",
        })?
        .to_string();
    let default_seeds = get_u64(&doc, "seeds")?;
    let default_budget = get_u64(&doc, "budget")?;
    let default_rate = get_f64_opt(&doc, "rate")?;
    let grids = doc
        .get("grids")
        .and_then(Value::as_arr)
        .ok_or(ManifestError::Field {
            field: "grids",
            expected: "an array of grid blocks",
        })?;

    let mut jobs = Vec::new();
    let mut seen = BTreeSet::new();
    for grid in grids {
        let family_name =
            grid.get("family")
                .and_then(Value::as_str)
                .ok_or(ManifestError::Field {
                    field: "family",
                    expected: "a string",
                })?;
        let family = Family::from_name(family_name)
            .ok_or_else(|| ManifestError::UnknownFamily(family_name.to_string()))?;

        let ns = axis_u64(grid, "n")?.ok_or(ManifestError::Field {
            field: "n",
            expected: "a number or array of numbers",
        })?;

        let topologies: Vec<Option<TopologyKind>> = match (family.graphical(), grid.get("topology"))
        {
            (true, Some(_)) => axis_str(grid, "topology")?
                .unwrap()
                .iter()
                .map(|name| {
                    TopologyKind::from_name(name)
                        .map(Some)
                        .ok_or_else(|| ManifestError::UnknownTopology(name.clone()))
                })
                .collect::<Result<_, _>>()?,
            (false, None) => vec![None],
            _ => return Err(ManifestError::TopologyAxisMismatch(family.name())),
        };

        let os: Vec<u64> = match (family.takes_o(), grid.get("o")) {
            (true, Some(_)) => axis_u64(grid, "o")?.unwrap(),
            (true, None) => vec![0],
            (false, None) => vec![0],
            (false, Some(_)) => return Err(ManifestError::OAxisUnsupported(family.name())),
        };

        let seeds = get_u64_opt(grid, "seeds")?
            .or(default_seeds)
            .ok_or(ManifestError::Field {
                field: "seeds",
                expected: "a number (top level or per grid)",
            })?;
        let budget =
            get_u64_opt(grid, "budget")?
                .or(default_budget)
                .ok_or(ManifestError::Field {
                    field: "budget",
                    expected: "a number (top level or per grid)",
                })?;
        let rate = get_f64_opt(grid, "rate")?
            .or(default_rate)
            .unwrap_or(DEFAULT_RATE);

        for &topology in &topologies {
            for &n in &ns {
                let n = n as usize;
                if let Some(kind) = topology {
                    if !kind.admits(n) {
                        return Err(ManifestError::SizeUnsupported {
                            topology: kind.name(),
                            n,
                        });
                    }
                } else if n < 2 || !n.is_multiple_of(2) {
                    return Err(ManifestError::OddPairingSize(n));
                }
                for &o in &os {
                    for seed in 0..seeds {
                        let mut id = family.name().to_string();
                        if let Some(kind) = topology {
                            id.push('/');
                            id.push_str(kind.name());
                        }
                        id.push_str(&format!("/n{n}"));
                        if family.takes_o() {
                            id.push_str(&format!("/o{o}"));
                        }
                        id.push_str(&format!("/s{seed}"));
                        if !seen.insert(id.clone()) {
                            return Err(ManifestError::DuplicateJob(id));
                        }
                        jobs.push(Job {
                            id,
                            family,
                            topology,
                            n,
                            o: o as u32,
                            rate,
                            seed,
                            budget,
                        });
                    }
                }
            }
        }
    }
    if jobs.is_empty() {
        return Err(ManifestError::Empty);
    }
    Ok(Manifest { name, jobs })
}

/// The group key of a job id: the id with its trailing `/s{seed}`
/// segment removed — what result summaries aggregate over.
#[must_use]
pub fn group_of(id: &str) -> &str {
    id.rfind("/s").map_or(id, |cut| &id[..cut])
}

fn get_u64(doc: &Value, field: &'static str) -> Result<Option<u64>, ManifestError> {
    get_u64_opt(doc, field)
}

fn get_u64_opt(doc: &Value, field: &'static str) -> Result<Option<u64>, ManifestError> {
    match doc.get(field) {
        None => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or(ManifestError::Field {
            field,
            expected: "a non-negative integer",
        }),
    }
}

fn get_f64_opt(doc: &Value, field: &'static str) -> Result<Option<f64>, ManifestError> {
    match doc.get(field) {
        None => Ok(None),
        Some(v) => v.as_f64().map(Some).ok_or(ManifestError::Field {
            field,
            expected: "a number",
        }),
    }
}

/// Reads `field` as a scalar-or-array axis of non-negative integers.
fn axis_u64(doc: &Value, field: &'static str) -> Result<Option<Vec<u64>>, ManifestError> {
    let wrong = ManifestError::Field {
        field,
        expected: "a non-negative integer or array thereof",
    };
    match doc.get(field) {
        None => Ok(None),
        Some(Value::Arr(items)) => items
            .iter()
            .map(|v| v.as_u64().ok_or(wrong.clone()))
            .collect::<Result<Vec<_>, _>>()
            .map(Some),
        Some(v) => v.as_u64().map(|n| Some(vec![n])).ok_or(wrong),
    }
}

/// Reads `field` as a scalar-or-array axis of strings.
fn axis_str(doc: &Value, field: &'static str) -> Result<Option<Vec<String>>, ManifestError> {
    let wrong = ManifestError::Field {
        field,
        expected: "a string or array of strings",
    };
    match doc.get(field) {
        None => Ok(None),
        Some(Value::Arr(items)) => items
            .iter()
            .map(|v| v.as_str().map(String::from).ok_or(wrong.clone()))
            .collect::<Result<Vec<_>, _>>()
            .map(Some),
        Some(v) => v.as_str().map(|s| Some(vec![s.to_string()])).ok_or(wrong),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = r#"{
        "name": "t",
        "seeds": 2,
        "budget": 1000,
        "grids": [
            {"family": "skno", "topology": ["ring", "rr4"], "n": [16], "o": [0, 1]},
            {"family": "sid_pairing", "n": [8, 16], "seeds": 3}
        ]
    }"#;

    #[test]
    fn expands_the_full_cartesian_product() {
        let m = expand(SMALL).unwrap();
        assert_eq!(m.name, "t");
        // skno: 2 topologies × 1 n × 2 o × 2 seeds = 8; sid_pairing:
        // 2 n × 3 seeds = 6.
        assert_eq!(m.jobs.len(), 14);
        assert!(m.jobs.iter().any(|j| j.id == "skno/rr4/n16/o1/s1"));
        assert!(m.jobs.iter().any(|j| j.id == "sid_pairing/n8/s2"));
        let pairing_budget = m
            .jobs
            .iter()
            .find(|j| j.family == Family::SidPairing)
            .unwrap();
        assert_eq!(pairing_budget.budget, 1000);
        assert_eq!(pairing_budget.seed, 0);
    }

    #[test]
    fn job_ids_are_unique_and_stable() {
        let m = expand(SMALL).unwrap();
        let ids: BTreeSet<&str> = m.jobs.iter().map(|j| j.id.as_str()).collect();
        assert_eq!(ids.len(), m.jobs.len());
        assert_eq!(group_of("skno/rr4/n16/o1/s1"), "skno/rr4/n16/o1");
        assert_eq!(group_of("sid_pairing/n8/s2"), "sid_pairing/n8");
    }

    #[test]
    fn duplicate_blocks_are_rejected() {
        let doc = r#"{"name": "d", "seeds": 1, "budget": 10, "grids": [
            {"family": "sid_pairing", "n": 8},
            {"family": "sid_pairing", "n": [8, 16]}
        ]}"#;
        assert_eq!(
            expand(doc).unwrap_err(),
            ManifestError::DuplicateJob("sid_pairing/n8/s0".into())
        );
    }

    #[test]
    fn o_axis_on_sid_is_rejected_not_ignored() {
        let doc = r#"{"name": "o", "seeds": 1, "budget": 10, "grids": [
            {"family": "sid", "topology": "ring", "n": 8, "o": [0, 1]}
        ]}"#;
        assert_eq!(
            expand(doc).unwrap_err(),
            ManifestError::OAxisUnsupported("sid")
        );
    }

    #[test]
    fn topology_axis_mismatches_are_rejected_both_ways() {
        let graphical_without = r#"{"name": "x", "seeds": 1, "budget": 10, "grids": [
            {"family": "skno", "n": 8}
        ]}"#;
        assert_eq!(
            expand(graphical_without).unwrap_err(),
            ManifestError::TopologyAxisMismatch("skno")
        );
        let pairing_with = r#"{"name": "x", "seeds": 1, "budget": 10, "grids": [
            {"family": "sid_pairing", "topology": "ring", "n": 8}
        ]}"#;
        assert_eq!(
            expand(pairing_with).unwrap_err(),
            ManifestError::TopologyAxisMismatch("sid_pairing")
        );
    }

    #[test]
    fn infeasible_sizes_fail_at_expansion_not_mid_sweep() {
        let doc = r#"{"name": "g", "seeds": 1, "budget": 10, "grids": [
            {"family": "epidemic", "topology": "grid", "n": 12}
        ]}"#;
        assert_eq!(
            expand(doc).unwrap_err(),
            ManifestError::SizeUnsupported {
                topology: "grid",
                n: 12
            }
        );
    }

    #[test]
    fn every_topology_kind_builds_what_it_admits() {
        for kind in [
            TopologyKind::Ring,
            TopologyKind::Grid,
            TopologyKind::Rr4,
            TopologyKind::Star,
            TopologyKind::Complete,
        ] {
            for n in [2usize, 3, 9, 12, 16, 25] {
                if kind.admits(n) {
                    let t = kind.build(n).unwrap();
                    assert_eq!(t.len(), n, "{} at n = {n}", kind.name());
                }
            }
        }
    }

    #[test]
    fn unknown_names_are_typed_errors() {
        let f =
            r#"{"name": "u", "seeds": 1, "budget": 10, "grids": [{"family": "sknoo", "n": 8}]}"#;
        assert!(matches!(
            expand(f).unwrap_err(),
            ManifestError::UnknownFamily(_)
        ));
        let t = r#"{"name": "u", "seeds": 1, "budget": 10, "grids": [
            {"family": "skno", "topology": "torus", "n": 8}
        ]}"#;
        assert!(matches!(
            expand(t).unwrap_err(),
            ManifestError::UnknownTopology(_)
        ));
    }

    #[test]
    fn empty_expansion_is_an_error() {
        let doc = r#"{"name": "e", "seeds": 0, "budget": 10, "grids": [
            {"family": "sid_pairing", "n": 8}
        ]}"#;
        assert_eq!(expand(doc).unwrap_err(), ManifestError::Empty);
    }
}

//! From a [`Job`] to a result: dispatches each manifest family to the
//! corresponding single-seed harness in `ppfts_bench` — the *same*
//! workload bodies the `measure_*` aggregators and the committed bench
//! baseline run, so orchestrated sweeps and ad-hoc experiment tables
//! can never drift onto different dynamics.

use ppfts_bench::{
    epidemic_topology_run, named_pairing_run, sid_epidemic_graphical_run, sid_pairing_run,
    skno_epidemic_graphical_run, skno_pairing_run,
};
use ppfts_engine::RunOutcome;

use crate::manifest::{Family, Job};

/// The outcome of one job, as recorded in the sweep ledger.
#[derive(Clone, Debug, PartialEq)]
pub struct JobResult {
    /// The job's ledger key.
    pub id: String,
    /// Whether the run converged within its budget.
    pub converged: bool,
    /// Engine interactions executed when the run stopped.
    pub steps: u64,
    /// The simulated-step denominator of the workload (`n` for
    /// epidemics, `n/2` pairings for the Pairing workload).
    pub simulated: u64,
}

/// Runs one job to completion on the current thread.
///
/// Deterministic in the job (topologies are generated with fixed seeds,
/// runs with the job's seed), so a resumed sweep reproduces exactly the
/// results a straight-through sweep would have written.
///
/// # Panics
///
/// Panics only on internal invariant violations (the manifest layer
/// pre-validated sizes and axes); the orchestrator catches panics and
/// reports the job as failed without writing a ledger entry.
#[must_use]
pub fn run_job(job: &Job) -> JobResult {
    let topology = job
        .topology
        .map(|kind| kind.build(job.n).expect("expand() pre-validated the size"));
    let (out, simulated): (RunOutcome, u64) = match job.family {
        Family::Skno => skno_epidemic_graphical_run(
            topology.as_ref().expect("graphical family has a topology"),
            job.o,
            job.rate,
            job.seed,
            job.budget,
        ),
        Family::Sid => sid_epidemic_graphical_run(
            topology.as_ref().expect("graphical family has a topology"),
            job.seed,
            job.budget,
        ),
        Family::Epidemic => epidemic_topology_run(
            topology.as_ref().expect("graphical family has a topology"),
            job.seed,
            job.budget,
        ),
        Family::SknoPairing => skno_pairing_run(job.n, job.o, job.seed, job.budget),
        Family::SidPairing => sid_pairing_run(job.n, job.seed, job.budget),
        Family::NamedPairing => named_pairing_run(job.n, job.seed, job.budget),
    };
    JobResult {
        id: job.id.clone(),
        converged: out.is_satisfied(),
        steps: out.steps(),
        simulated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::expand;

    #[test]
    fn every_family_runs_at_smoke_scale() {
        let doc = r#"{
            "name": "families",
            "seeds": 1,
            "budget": 400000,
            "grids": [
                {"family": "skno", "topology": "complete", "n": 16, "o": 0},
                {"family": "sid", "topology": "ring", "n": 16},
                {"family": "epidemic", "topology": "star", "n": 16},
                {"family": "skno_pairing", "n": 8, "o": 1, "budget": 1000000},
                {"family": "sid_pairing", "n": 8},
                {"family": "named_pairing", "n": 8}
            ]
        }"#;
        let manifest = expand(doc).unwrap();
        assert_eq!(manifest.jobs.len(), 6);
        for job in &manifest.jobs {
            let result = run_job(job);
            assert_eq!(result.id, job.id);
            assert!(result.converged, "{} should converge at n = 16", job.id);
            assert!(result.steps > 0);
            assert!(result.simulated > 0);
        }
    }

    #[test]
    fn job_results_are_deterministic_in_the_job() {
        let doc = r#"{"name": "det", "seeds": 2, "budget": 300000, "grids": [
            {"family": "sid", "topology": "rr4", "n": 16}
        ]}"#;
        let manifest = expand(doc).unwrap();
        let first: Vec<JobResult> = manifest.jobs.iter().map(run_job).collect();
        let second: Vec<JobResult> = manifest.jobs.iter().map(run_job).collect();
        // Step counts are batch-aligned, so distinct seeds may well
        // coincide — determinism is the only contract here.
        assert_eq!(first, second);
    }
}

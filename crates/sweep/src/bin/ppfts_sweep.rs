//! CLI for manifest-driven experiment sweeps.
//!
//! ```text
//! ppfts_sweep --manifest M.json --out runs.jsonl [--threads N] [--max-jobs K]
//! ppfts_sweep --manifest M.json --list
//! ppfts_sweep --manifest M.json --out runs.jsonl --verify
//! ppfts_sweep --manifest M.json --out runs.jsonl --summarize
//! ```
//!
//! Exit codes: `0` success (for `--verify`: ledger complete; for a run:
//! every attempted job recorded), `1` incomplete or failed jobs, `2`
//! usage or manifest errors.

use std::path::PathBuf;
use std::process::ExitCode;

use ppfts_sweep::{expand, load_ledger, run_sweep, summarize, summary_table, verify};

struct Args {
    manifest: PathBuf,
    out: Option<PathBuf>,
    threads: usize,
    max_jobs: Option<usize>,
    mode: Mode,
}

#[derive(PartialEq, Eq)]
enum Mode {
    Run,
    List,
    Verify,
    Summarize,
}

const USAGE: &str = "\
usage: ppfts_sweep --manifest <file> [options] [mode]

modes (default: run the sweep)
  --list       print the expanded job ids (no --out needed)
  --verify     check the ledger covers every manifest job; exit 1 if not
  --summarize  aggregate the ledger into a per-grid convergence table

options
  --out <ledger.jsonl>  checkpoint ledger (required for run/verify/
                        summarize; finished jobs are skipped on re-run)
  --threads <n>         worker threads                 [default: cores]
  --max-jobs <k>        stop after k jobs this invocation

exit codes: 0 success (verify: ledger complete; run: every attempted
job recorded), 1 incomplete or failed jobs, 2 usage or manifest errors";

fn parse_args() -> Result<Args, String> {
    let mut manifest = None;
    let mut out = None;
    let mut threads = ppfts_bench::workers();
    let mut max_jobs = None;
    let mut mode = Mode::Run;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--manifest" => {
                manifest = Some(PathBuf::from(argv.next().ok_or("--manifest needs a path")?));
            }
            "--out" => out = Some(PathBuf::from(argv.next().ok_or("--out needs a path")?)),
            "--threads" => {
                threads = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&t: &usize| t > 0)
                    .ok_or("--threads needs a positive integer")?;
            }
            "--max-jobs" => {
                max_jobs = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--max-jobs needs an integer")?,
                );
            }
            "--list" => mode = Mode::List,
            "--verify" => mode = Mode::Verify,
            "--summarize" => mode = Mode::Summarize,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args {
        manifest: manifest.ok_or("--manifest is required")?,
        out,
        threads,
        max_jobs,
        mode,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let document = match std::fs::read_to_string(&args.manifest) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", args.manifest.display());
            return ExitCode::from(2);
        }
    };
    let manifest = match expand(&document) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {}: {e}", args.manifest.display());
            return ExitCode::from(2);
        }
    };

    if args.mode == Mode::List {
        for job in &manifest.jobs {
            println!("{}", job.id);
        }
        eprintln!("{} jobs ({})", manifest.jobs.len(), manifest.name);
        return ExitCode::SUCCESS;
    }

    let Some(out) = args.out else {
        eprintln!("error: --out is required for this mode\n{USAGE}");
        return ExitCode::from(2);
    };

    match args.mode {
        Mode::Verify => {
            let report = match verify(&manifest, &out) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: reading {}: {e}", out.display());
                    return ExitCode::from(2);
                }
            };
            println!(
                "{}: {}/{} jobs recorded, {} missing, {} unknown, {} duplicate",
                manifest.name,
                report.recorded,
                report.expected,
                report.missing.len(),
                report.unknown.len(),
                report.duplicates.len()
            );
            for id in report.missing.iter().take(10) {
                println!("  missing: {id}");
            }
            if report.is_complete() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Mode::Summarize => {
            let results = match load_ledger(&out) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: reading {}: {e}", out.display());
                    return ExitCode::from(2);
                }
            };
            print!("{}", summary_table(&summarize(&results)));
            ExitCode::SUCCESS
        }
        Mode::Run | Mode::List => {
            let progress = |done: usize, total: usize| {
                eprintln!("[{}] {done}/{total} jobs", manifest.name);
            };
            let report = match run_sweep(
                &manifest,
                &out,
                args.threads,
                args.max_jobs,
                Some(&progress),
            ) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: writing {}: {e}", out.display());
                    return ExitCode::from(2);
                }
            };
            println!(
                "{}: ran {} (skipped {}, failed {}), {} of {} remaining",
                manifest.name,
                report.ran,
                report.skipped,
                report.failed,
                report.remaining,
                report.total
            );
            if report.failed > 0 {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
    }
}

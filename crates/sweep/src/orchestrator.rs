//! The sweep driver: runs a manifest's pending jobs across threads,
//! streaming each finished job as one JSONL line that doubles as the
//! checkpoint ledger.
//!
//! # Checkpoint / resume
//!
//! The output file is the *only* state. Every completed job appends
//! (and flushes) one line `{"id": …, "converged": …, "steps": …,
//! "simulated": …}` under a mutex, so after a kill the file holds every
//! finished job plus at most one torn line. On the next invocation
//! [`load_ledger`] drops unparseable lines (rewriting the file so later
//! appends don't glue onto a torn tail), [`run_sweep`] skips every
//! recorded id, and the interrupted or failed jobs — never written —
//! simply run again. Job results are deterministic in the job
//! ([`run_job`]), so a resumed sweep is bit-identical to a
//! straight-through one.
//!
//! Dispatch reuses the engine's chunked atomic-cursor fan-out
//! ([`run_seeds`] /  [`run_seeds_with_progress`]) over pending-job
//! indices: no queue mutex, work-stealing tail balance, and the same
//! per-chunk progress watermark the experiment harnesses use.

use std::collections::BTreeSet;
use std::fs::OpenOptions;
use std::io::{self, BufWriter, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ppfts_engine::{run_seeds, run_seeds_with_progress, DistSummary};

use crate::json;
use crate::manifest::{group_of, Manifest};
use crate::scenario::{run_job, JobResult};

/// What one [`run_sweep`] invocation did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepReport {
    /// Jobs the manifest expands to.
    pub total: usize,
    /// Jobs already in the ledger, skipped.
    pub skipped: usize,
    /// Jobs run and recorded by this invocation.
    pub ran: usize,
    /// Jobs that panicked; not recorded, so a rerun retries them.
    pub failed: usize,
    /// Jobs still missing from the ledger after this invocation
    /// (failed ones, plus everything beyond a `max_jobs` cap).
    pub remaining: usize,
}

/// Renders one ledger line (no trailing newline).
#[must_use]
pub fn render_result(r: &JobResult) -> String {
    format!(
        "{{\"id\": \"{}\", \"converged\": {}, \"steps\": {}, \"simulated\": {}}}",
        json::escape(&r.id),
        r.converged,
        r.steps,
        r.simulated
    )
}

fn parse_result(line: &str) -> Option<JobResult> {
    let v = json::parse(line).ok()?;
    Some(JobResult {
        id: v.get("id")?.as_str()?.to_string(),
        converged: v.get("converged")?.as_bool()?,
        steps: v.get("steps")?.as_u64()?,
        simulated: v.get("simulated")?.as_u64()?,
    })
}

/// Reads a ledger file into its recorded results, in file order.
///
/// A missing file is an empty ledger. Unparseable lines — a torn tail
/// from a kill mid-append, or hand-editing damage — are dropped, and
/// when any are found the file is rewritten to the surviving records so
/// subsequent appends start on a clean line boundary. The jobs on
/// dropped lines are thereby un-done and will rerun.
///
/// # Errors
///
/// Propagates I/O failures reading or rewriting the file.
pub fn load_ledger(path: &Path) -> io::Result<Vec<JobResult>> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut results = Vec::new();
    let mut dropped = false;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_result(line) {
            Some(r) => results.push(r),
            None => dropped = true,
        }
    }
    if dropped {
        let mut clean = String::new();
        for r in &results {
            clean.push_str(&render_result(r));
            clean.push('\n');
        }
        std::fs::write(path, clean)?;
    }
    Ok(results)
}

/// Runs every manifest job not yet in the ledger at `out`, appending
/// one JSONL line per finished job, fanned out over `threads` workers.
///
/// `max_jobs` caps how many pending jobs this invocation attempts —
/// the CI smoke uses it to simulate a mid-sweep kill, and it gives
/// long sweeps a natural session granularity. `progress(done, total)`
/// is forwarded to the dispatcher's per-chunk watermark (`total` is
/// this invocation's attempted-job count).
///
/// # Errors
///
/// Propagates ledger I/O failures. A job that *panics* is not an
/// error: it is counted in [`SweepReport::failed`], left out of the
/// ledger, and retried by the next invocation.
///
/// # Panics
///
/// Panics if `threads == 0`, or if the ledger mutex was poisoned.
pub fn run_sweep(
    manifest: &Manifest,
    out: &Path,
    threads: usize,
    max_jobs: Option<usize>,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
) -> io::Result<SweepReport> {
    assert!(threads > 0, "need at least one worker thread");
    let done: BTreeSet<String> = load_ledger(out)?.into_iter().map(|r| r.id).collect();
    let pending: Vec<_> = manifest
        .jobs
        .iter()
        .filter(|j| !done.contains(&j.id))
        .collect();
    let attempt = max_jobs.map_or(pending.len(), |cap| cap.min(pending.len()));
    let batch = &pending[..attempt];

    let file = OpenOptions::new().create(true).append(true).open(out)?;
    let writer = Mutex::new(BufWriter::new(file));
    let failed = AtomicUsize::new(0);
    let io_error: Mutex<Option<io::Error>> = Mutex::new(None);

    let run_one = |i: u64| {
        let job = batch[i as usize];
        // A panicking job must not take the whole sweep (and the other
        // workers' finished-but-unwritten jobs) down with it.
        match catch_unwind(AssertUnwindSafe(|| run_job(job))) {
            Ok(result) => {
                let mut w = writer.lock().expect("ledger writer poisoned");
                // Flush per job: a kill loses at most one torn line,
                // which load_ledger repairs on resume.
                let wrote = writeln!(w, "{}", render_result(&result)).and_then(|()| w.flush());
                if let Err(e) = wrote {
                    io_error
                        .lock()
                        .expect("error slot poisoned")
                        .get_or_insert(e);
                }
            }
            Err(_) => {
                failed.fetch_add(1, Ordering::Relaxed);
            }
        }
    };
    match progress {
        Some(report) => {
            run_seeds_with_progress(0..attempt as u64, threads, run_one, |done, total| {
                report(done, total);
            });
        }
        None => {
            run_seeds(0..attempt as u64, threads, run_one);
        }
    }
    if let Some(e) = io_error.lock().expect("error slot poisoned").take() {
        return Err(e);
    }

    let failed = failed.load(Ordering::Relaxed);
    Ok(SweepReport {
        total: manifest.jobs.len(),
        skipped: done.len(),
        ran: attempt - failed,
        failed,
        remaining: manifest.jobs.len() - done.len() - (attempt - failed),
    })
}

/// How a ledger squares with its manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyReport {
    /// Jobs the manifest expands to.
    pub expected: usize,
    /// Distinct manifest jobs the ledger records.
    pub recorded: usize,
    /// Manifest jobs with no ledger entry.
    pub missing: Vec<String>,
    /// Ledger ids the manifest doesn't produce (stale file, wrong
    /// manifest).
    pub unknown: Vec<String>,
    /// Ids recorded more than once.
    pub duplicates: Vec<String>,
}

impl VerifyReport {
    /// Complete and clean: every job exactly once, nothing else.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.missing.is_empty() && self.unknown.is_empty() && self.duplicates.is_empty()
    }
}

/// Audits the ledger at `out` against `manifest`: completeness (every
/// job recorded), provenance (no foreign ids) and uniqueness (no
/// duplicates).
///
/// # Errors
///
/// Propagates ledger I/O failures.
pub fn verify(manifest: &Manifest, out: &Path) -> io::Result<VerifyReport> {
    let recorded = load_ledger(out)?;
    let expected: BTreeSet<&str> = manifest.jobs.iter().map(|j| j.id.as_str()).collect();
    let mut seen = BTreeSet::new();
    let mut duplicates = Vec::new();
    let mut unknown = Vec::new();
    for r in &recorded {
        if !seen.insert(r.id.as_str()) {
            duplicates.push(r.id.clone());
        }
        if !expected.contains(r.id.as_str()) {
            unknown.push(r.id.clone());
        }
    }
    let missing: Vec<String> = manifest
        .jobs
        .iter()
        .filter(|j| !seen.contains(j.id.as_str()))
        .map(|j| j.id.clone())
        .collect();
    Ok(VerifyReport {
        expected: expected.len(),
        recorded: seen.iter().filter(|id| expected.contains(**id)).count(),
        missing,
        unknown,
        duplicates,
    })
}

/// Per-group aggregate of a sweep's results: one row per job id with
/// the `/s{seed}` segment stripped.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupSummary {
    /// The group key (job id minus seed).
    pub group: String,
    /// Seeds recorded.
    pub seeds: usize,
    /// Seeds that converged within budget.
    pub converged: usize,
    /// Distribution of interaction counts over *converged* seeds;
    /// `None` when none converged.
    pub steps: Option<DistSummary>,
}

/// Groups ledger results by [`group_of`] and summarizes each group's
/// convergence-step distribution, sorted by group key.
#[must_use]
pub fn summarize(results: &[JobResult]) -> Vec<GroupSummary> {
    let mut groups: Vec<(String, Vec<&JobResult>)> = Vec::new();
    for r in results {
        let key = group_of(&r.id);
        match groups.iter_mut().find(|(g, _)| g == key) {
            Some((_, members)) => members.push(r),
            None => groups.push((key.to_string(), vec![r])),
        }
    }
    groups.sort_by(|a, b| a.0.cmp(&b.0));
    groups
        .into_iter()
        .map(|(group, members)| {
            let converged: Vec<f64> = members
                .iter()
                .filter(|r| r.converged)
                .map(|r| r.steps as f64)
                .collect();
            GroupSummary {
                group,
                seeds: members.len(),
                converged: converged.len(),
                steps: DistSummary::of(&converged),
            }
        })
        .collect()
}

/// Renders [`summarize`]'s rows as an aligned text table.
#[must_use]
pub fn summary_table(summaries: &[GroupSummary]) -> String {
    let mut out = String::from(
        "group                                    | conv  | mean steps   | p50          | p95\n",
    );
    out.push_str(
        "-----------------------------------------|-------|--------------|--------------|-------------\n",
    );
    for s in summaries {
        let (mean, p50, p95) = s.steps.map_or_else(
            || ("-".to_string(), "-".to_string(), "-".to_string()),
            |d| {
                (
                    format!("{:.1}", d.mean),
                    format!("{:.0}", d.p50),
                    format!("{:.0}", d.p95),
                )
            },
        );
        out.push_str(&format!(
            "{:<40} | {:>2}/{:<2} | {:>12} | {:>12} | {:>12}\n",
            s.group, s.converged, s.seeds, mean, p50, p95
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(id: &str, converged: bool, steps: u64) -> JobResult {
        JobResult {
            id: id.to_string(),
            converged,
            steps,
            simulated: 16,
        }
    }

    #[test]
    fn ledger_lines_round_trip() {
        let r = result("skno/rr4/n16/o1/s3", true, 123_456);
        assert_eq!(parse_result(&render_result(&r)), Some(r));
    }

    #[test]
    fn torn_trailing_line_is_dropped_and_repaired() {
        let dir = std::env::temp_dir().join(format!("ppfts_sweep_torn_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.jsonl");
        let good = render_result(&result("a/n2/s0", true, 10));
        std::fs::write(&path, format!("{good}\n{{\"id\": \"a/n2/s1\", \"conv")).unwrap();
        let loaded = load_ledger(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].id, "a/n2/s0");
        // The file was rewritten to end on a clean line boundary.
        let repaired = std::fs::read_to_string(&path).unwrap();
        assert_eq!(repaired, format!("{good}\n"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_ledger_is_empty() {
        let path = std::env::temp_dir().join("ppfts_sweep_never_written.jsonl");
        assert!(load_ledger(&path).unwrap().is_empty());
    }

    #[test]
    fn summarize_groups_by_id_minus_seed() {
        let results = vec![
            result("skno/rr4/n16/o0/s0", true, 100),
            result("skno/rr4/n16/o0/s1", true, 300),
            result("skno/rr4/n16/o0/s2", false, 999),
            result("sid/ring/n16/s0", true, 50),
        ];
        let summaries = summarize(&results);
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].group, "sid/ring/n16");
        let skno = &summaries[1];
        assert_eq!(skno.group, "skno/rr4/n16/o0");
        assert_eq!((skno.seeds, skno.converged), (3, 2));
        let d = skno.steps.unwrap();
        assert_eq!((d.count, d.mean, d.min), (2, 200.0, 100.0));
        let table = summary_table(&summaries);
        assert!(table.contains("skno/rr4/n16/o0"));
        assert!(table.contains("2/3"));
    }

    #[test]
    fn summarize_handles_groups_with_no_convergence() {
        let summaries = summarize(&[result("x/n2/s0", false, 7)]);
        assert_eq!(summaries[0].steps, None);
        assert!(summary_table(&summaries).contains('-'));
    }
}

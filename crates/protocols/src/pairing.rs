//! The paper's Pairing protocol `P_IP` (Definition 5).

use ppfts_population::{Configuration, EnumerableStates, Multiset, TwoWayProtocol};

/// Local states of the [`Pairing`] protocol.
///
/// The paper's `cs` is [`Paired`](PairingState::Paired), `c` is
/// [`Consumer`](PairingState::Consumer), `p` is
/// [`Producer`](PairingState::Producer) and `⊥` is
/// [`Spent`](PairingState::Spent).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PairingState {
    /// `cs`: a consumer that has been irrevocably paired with a producer.
    Paired,
    /// `c`: an unpaired consumer.
    Consumer,
    /// `p`: an unspent producer.
    Producer,
    /// `⊥`: a producer that has been consumed.
    Spent,
}

/// The Pairing problem protocol `P_IP` of the reproduced paper.
///
/// Consumers (`c`) and producers (`p`) pair up one-to-one:
///
/// ```text
/// (c, p) ↦ (cs, ⊥)        (p, c) ↦ (⊥, cs)
/// ```
///
/// all other pairs are left unchanged. In the fault-free two-way model this
/// trivially solves the Pairing problem (Definition 5):
///
/// * **Irrevocability** — only a `c` can become `cs`, and a `cs` never
///   changes again;
/// * **Safety** — at most `|producers|` agents are ever in `cs` (each
///   pairing spends one producer);
/// * **Liveness** — under global fairness the count of `cs` stabilizes to
///   `min(|consumers|, |producers|)`.
///
/// Every impossibility proof of the paper (Theorems 3.1–3.3) works by
/// exhibiting a run in which a purported simulator drives *more* agents
/// into `cs` than there are producers — a safety violation. The checkers
/// in `ppfts-verify` test exactly these properties.
///
/// # Example
///
/// ```
/// use ppfts_population::TwoWayProtocol;
/// use ppfts_protocols::{Pairing, PairingState::*};
///
/// assert_eq!(Pairing.delta(&Consumer, &Producer), (Paired, Spent));
/// assert_eq!(Pairing.delta(&Producer, &Consumer), (Spent, Paired));
/// assert_eq!(Pairing.delta(&Paired, &Producer), (Paired, Producer));
/// assert!(Pairing.is_symmetric_on(&Consumer, &Producer));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Pairing;

impl Pairing {
    /// The number of agents in the irrevocable `cs` state.
    pub fn paired_count(config: &Configuration<PairingState>) -> usize {
        config.count_state(&PairingState::Paired)
    }

    /// The value `min(|consumers|, |producers|)` for an *initial*
    /// configuration — what liveness says the `cs` count must stabilize to.
    pub fn expected_pairs(initial: &Configuration<PairingState>) -> usize {
        let counts: Multiset<PairingState> = initial.counts();
        counts
            .count(&PairingState::Consumer)
            .min(counts.count(&PairingState::Producer))
    }

    /// Convenience: the initial configuration with `consumers` agents in
    /// `c` followed by `producers` agents in `p`.
    pub fn initial(consumers: usize, producers: usize) -> Configuration<PairingState> {
        Configuration::from_groups([
            (PairingState::Consumer, consumers),
            (PairingState::Producer, producers),
        ])
    }
}

impl TwoWayProtocol for Pairing {
    type State = PairingState;

    fn delta(&self, s: &PairingState, r: &PairingState) -> (PairingState, PairingState) {
        use PairingState::*;
        match (s, r) {
            (Consumer, Producer) => (Paired, Spent),
            (Producer, Consumer) => (Spent, Paired),
            _ => (*s, *r),
        }
    }
}

impl EnumerableStates for Pairing {
    type State = PairingState;
    fn states(&self) -> Vec<PairingState> {
        vec![
            PairingState::Paired,
            PairingState::Consumer,
            PairingState::Producer,
            PairingState::Spent,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfts_engine::{TwoWayModel, TwoWayRunner};
    use PairingState::*;

    #[test]
    fn only_consumer_producer_pairs_react() {
        for s in Pairing.states() {
            for r in Pairing.states() {
                let out = Pairing.delta(&s, &r);
                if (s, r) == (Consumer, Producer) {
                    assert_eq!(out, (Paired, Spent));
                } else if (s, r) == (Producer, Consumer) {
                    assert_eq!(out, (Spent, Paired));
                } else {
                    assert_eq!(out, (s, r), "({s:?}, {r:?}) must be identity");
                }
            }
        }
    }

    #[test]
    fn paired_state_is_irrevocable_in_delta() {
        for r in Pairing.states() {
            assert_eq!(Pairing.delta(&Paired, &r).0, Paired);
            assert_eq!(Pairing.delta(&r, &Paired).1, Paired);
        }
    }

    #[test]
    fn initial_layout_and_expected_pairs() {
        let c0 = Pairing::initial(3, 5);
        assert_eq!(c0.len(), 8);
        assert_eq!(Pairing::expected_pairs(&c0), 3);
        assert_eq!(Pairing::paired_count(&c0), 0);
    }

    #[test]
    fn liveness_under_tw_global_fairness() {
        for (consumers, producers) in [(3, 2), (2, 3), (4, 4), (1, 6)] {
            let c0 = Pairing::initial(consumers, producers);
            let expected = Pairing::expected_pairs(&c0);
            let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, Pairing)
                .config(c0)
                .seed(consumers as u64 * 31 + producers as u64)
                .build()
                .unwrap();
            let out = runner.run_until(200_000, |c| Pairing::paired_count(c) == expected);
            assert!(
                out.is_satisfied(),
                "{consumers}c/{producers}p never stabilized"
            );
            // Safety held throughout (checked here at the end; the
            // verify crate checks it per-step).
            assert!(Pairing::paired_count(runner.config()) <= producers);
        }
    }

    #[test]
    fn safety_invariant_holds_per_step() {
        let c0 = Pairing::initial(5, 2);
        let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, Pairing)
            .config(c0)
            .seed(99)
            .build()
            .unwrap();
        for _ in 0..5000 {
            runner.step().unwrap();
            assert!(Pairing::paired_count(runner.config()) <= 2);
        }
    }
}

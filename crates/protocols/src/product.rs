//! Parallel composition of two protocols.

use ppfts_population::{EnumerableStates, Semantics, TwoWayProtocol};

/// Runs two protocols in lock-step on paired states.
///
/// Every interaction applies both components' transitions to the
/// respective halves of the state. Parallel composition is the classic way
/// to close stable predicates under boolean combination: compute both
/// atoms simultaneously, then combine the component outputs (the
/// [`Semantics`] impl outputs the pair).
///
/// # Example
///
/// "At least 2 marked agents AND the total sum is even":
///
/// ```
/// use ppfts_population::{Semantics, TwoWayProtocol};
/// use ppfts_protocols::{FlockOfBirds, Product, Remainder};
///
/// let both = Product::new(FlockOfBirds::new(2), Remainder::new(2, 0));
/// let inputs = vec![(true, 3u32), (true, 5u32), (false, 0u32)];
/// let (ge2, even) = both.expected(&inputs);
/// assert!(ge2);       // two marked agents
/// assert!(even);      // 3 + 5 + 0 = 8
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Product<P1, P2> {
    first: P1,
    second: P2,
}

impl<P1, P2> Product<P1, P2> {
    /// Composes `first` and `second` in parallel.
    pub fn new(first: P1, second: P2) -> Self {
        Product { first, second }
    }

    /// The first component.
    pub fn first(&self) -> &P1 {
        &self.first
    }

    /// The second component.
    pub fn second(&self) -> &P2 {
        &self.second
    }
}

impl<P1, P2> TwoWayProtocol for Product<P1, P2>
where
    P1: TwoWayProtocol,
    P2: TwoWayProtocol,
{
    type State = (P1::State, P2::State);

    fn delta(&self, s: &Self::State, r: &Self::State) -> (Self::State, Self::State) {
        let (s1, r1) = self.first.delta(&s.0, &r.0);
        let (s2, r2) = self.second.delta(&s.1, &r.1);
        ((s1, s2), (r1, r2))
    }
}

impl<P1, P2> Semantics for Product<P1, P2>
where
    P1: Semantics,
    P2: Semantics,
    P1::Input: Clone,
    P2::Input: Clone,
{
    type Input = (P1::Input, P2::Input);
    type Output = (P1::Output, P2::Output);

    fn encode(&self, input: &Self::Input) -> Self::State {
        (self.first.encode(&input.0), self.second.encode(&input.1))
    }

    fn output(&self, q: &Self::State) -> Self::Output {
        (self.first.output(&q.0), self.second.output(&q.1))
    }

    fn expected(&self, inputs: &[Self::Input]) -> Self::Output {
        let firsts: Vec<P1::Input> = inputs.iter().map(|i| i.0.clone()).collect();
        let seconds: Vec<P2::Input> = inputs.iter().map(|i| i.1.clone()).collect();
        (self.first.expected(&firsts), self.second.expected(&seconds))
    }
}

impl<P1, P2> EnumerableStates for Product<P1, P2>
where
    P1: EnumerableStates,
    P2: EnumerableStates,
{
    type State = (P1::State, P2::State);

    fn states(&self) -> Vec<Self::State> {
        let seconds = self.second.states();
        self.first
            .states()
            .into_iter()
            .flat_map(|a| seconds.iter().map(move |b| (a.clone(), b.clone())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Epidemic, FlockOfBirds, Remainder};
    use ppfts_engine::{TwoWayModel, TwoWayRunner};
    use ppfts_population::unanimous_output;

    #[test]
    fn delta_acts_componentwise() {
        let p = Product::new(Epidemic, Epidemic);
        let (s, r) = p.delta(&(true, false), &(false, true));
        assert_eq!(s, (true, true));
        assert_eq!(r, (true, true));
    }

    #[test]
    fn state_space_is_cartesian() {
        let p = Product::new(Epidemic, Epidemic);
        assert_eq!(p.states().len(), 4);
    }

    #[test]
    fn computes_conjunction_of_predicates() {
        let proto = Product::new(FlockOfBirds::new(2), Remainder::new(3, 0));
        let inputs: Vec<(bool, u32)> = vec![(true, 1), (true, 1), (false, 1), (false, 0)];
        let expected = proto.expected(&inputs);
        assert_eq!(expected, (true, true)); // 2 marked, sum 3 ≡ 0 (mod 3)
        let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, proto)
            .config(proto.initial_configuration(&inputs))
            .seed(12)
            .build()
            .unwrap();
        let out = runner.run_until(400_000, |c| {
            unanimous_output(c, |q| proto.output(q)) == Some(expected)
        });
        assert!(out.is_satisfied());
    }

    #[test]
    fn components_do_not_interfere() {
        let p = Product::new(Epidemic, Remainder::new(2, 0));
        let (s, _r) = p.delta(
            &(false, Remainder::new(2, 0).encode(&1)),
            &(true, Remainder::new(2, 0).encode(&1)),
        );
        // Epidemic half infected; remainder half merged independently.
        assert!(s.0);
        assert_eq!(s.1.value, Some(0));
    }
}

//! Remainder predicate: `(Σ inputs) mod m == r`.

use ppfts_population::{EnumerableStates, Semantics, TwoWayProtocol};

/// State of a [`Remainder`] agent.
///
/// Active agents carry a partial sum (mod `m`); passive agents only carry
/// an opinion they copy from actives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RemainderState {
    /// `Some(v)`: active with partial sum `v`; `None`: passive.
    pub value: Option<u32>,
    /// Current output opinion.
    pub opinion: bool,
}

/// The remainder protocol: stably computes `(Σ inputs) mod m == r`.
///
/// Mod-`m` counting is one of the two atom families of semilinear
/// predicates (the exact class computable by standard population
/// protocols), so together with [`FlockOfBirds`](crate::FlockOfBirds)
/// (threshold atoms) and [`Product`](crate::Product) (boolean combination)
/// this crate covers the full expressive power of the model.
///
/// Mechanics: every agent starts *active*, carrying its input mod `m`.
/// When two actives meet the starter absorbs the reactor's sum and the
/// reactor turns passive; actives broadcast their current opinion
/// (`value ≡ r`) to every passive (and freshly-passivated agent) they
/// meet. Under global fairness exactly one active survives, holding the
/// full sum, and its opinion floods the population.
///
/// # Example
///
/// ```
/// use ppfts_population::Semantics;
/// use ppfts_protocols::Remainder;
///
/// // Parity of the sum: m = 2, r = 1.
/// let parity = Remainder::new(2, 1);
/// assert!(!parity.expected(&[3, 4, 7, 8])); // 22 is even
/// assert!(parity.expected(&[1, 2]));        // 3 is odd
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Remainder {
    modulus: u32,
    residue: u32,
}

impl Remainder {
    /// Creates the protocol for `(Σ inputs) mod modulus == residue`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus < 2` or `residue >= modulus`.
    pub fn new(modulus: u32, residue: u32) -> Self {
        assert!(modulus >= 2, "modulus must be at least 2");
        assert!(residue < modulus, "residue must be below the modulus");
        Remainder { modulus, residue }
    }

    /// The modulus `m`.
    pub fn modulus(&self) -> u32 {
        self.modulus
    }

    /// The residue `r` being tested.
    pub fn residue(&self) -> u32 {
        self.residue
    }

    fn opinion_of(&self, value: u32) -> bool {
        value % self.modulus == self.residue
    }
}

impl TwoWayProtocol for Remainder {
    type State = RemainderState;

    fn delta(&self, s: &RemainderState, r: &RemainderState) -> (RemainderState, RemainderState) {
        match (s.value, r.value) {
            // Two actives: the starter absorbs, the reactor passivates.
            (Some(u), Some(v)) => {
                let merged = (u + v) % self.modulus;
                let opinion = self.opinion_of(merged);
                (
                    RemainderState {
                        value: Some(merged),
                        opinion,
                    },
                    RemainderState {
                        value: None,
                        opinion,
                    },
                )
            }
            // Active meets passive (either role): the passive copies the
            // active's current opinion.
            (Some(u), None) => {
                let opinion = self.opinion_of(u);
                (
                    RemainderState {
                        value: Some(u),
                        opinion,
                    },
                    RemainderState {
                        value: None,
                        opinion,
                    },
                )
            }
            (None, Some(v)) => {
                let opinion = self.opinion_of(v);
                (
                    RemainderState {
                        value: None,
                        opinion,
                    },
                    RemainderState {
                        value: Some(v),
                        opinion,
                    },
                )
            }
            // Two passives: nothing to learn.
            (None, None) => (*s, *r),
        }
    }
}

impl Semantics for Remainder {
    type Input = u32;
    type Output = bool;

    fn encode(&self, input: &u32) -> RemainderState {
        let v = input % self.modulus;
        RemainderState {
            value: Some(v),
            opinion: self.opinion_of(v),
        }
    }

    fn output(&self, q: &RemainderState) -> bool {
        q.opinion
    }

    fn expected(&self, inputs: &[u32]) -> bool {
        let sum: u64 = inputs.iter().map(|&v| v as u64).sum();
        (sum % self.modulus as u64) as u32 == self.residue
    }
}

impl EnumerableStates for Remainder {
    type State = RemainderState;
    fn states(&self) -> Vec<RemainderState> {
        let mut v = Vec::new();
        for opinion in [false, true] {
            v.push(RemainderState {
                value: None,
                opinion,
            });
            for value in 0..self.modulus {
                v.push(RemainderState {
                    value: Some(value),
                    opinion,
                });
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfts_engine::{TwoWayModel, TwoWayRunner};
    use ppfts_population::unanimous_output;

    #[test]
    fn merging_conserves_sum_mod_m() {
        let p = Remainder::new(5, 0);
        let active = |v| RemainderState {
            value: Some(v),
            opinion: false,
        };
        let total = |a: &RemainderState, b: &RemainderState| {
            (a.value.unwrap_or(0) + b.value.unwrap_or(0)) % 5
        };
        for u in 0..5 {
            for v in 0..5 {
                let (s2, r2) = p.delta(&active(u), &active(v));
                assert_eq!(total(&s2, &r2), (u + v) % 5);
            }
        }
    }

    #[test]
    fn exactly_one_active_survives() {
        let p = Remainder::new(3, 1);
        let inputs = vec![1, 1, 1, 2, 2];
        let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, p)
            .config(p.initial_configuration(&inputs))
            .seed(6)
            .build()
            .unwrap();
        runner.run(50_000).unwrap();
        let actives = runner
            .config()
            .as_slice()
            .iter()
            .filter(|q| q.value.is_some())
            .count();
        assert_eq!(actives, 1);
    }

    #[test]
    fn stably_computes_remainder() {
        for (m, r, inputs) in [
            (2, 1, vec![1, 1, 1]),     // 3 mod 2 == 1 → true
            (2, 0, vec![1, 1, 1]),     // false
            (3, 2, vec![4, 4]),        // 8 mod 3 == 2 → true
            (7, 3, vec![10, 0, 0, 0]), // 10 mod 7 == 3 → true
        ] {
            let p = Remainder::new(m, r);
            let expected = p.expected(&inputs);
            let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, p)
                .config(p.initial_configuration(&inputs))
                .seed(m as u64 * 100 + r as u64)
                .build()
                .unwrap();
            let out = runner.run_until(300_000, |c| {
                unanimous_output(c, |q| p.output(q)) == Some(expected)
            });
            assert!(out.is_satisfied(), "m={m} r={r} inputs={inputs:?}");
        }
    }

    #[test]
    fn encode_reduces_inputs_mod_m() {
        let p = Remainder::new(4, 1);
        assert_eq!(p.encode(&9).value, Some(1));
        assert!(p.encode(&9).opinion);
        assert_eq!(p.encode(&8).value, Some(0));
        assert!(!p.encode(&8).opinion);
    }

    #[test]
    fn state_space_size_is_2_times_m_plus_1() {
        assert_eq!(Remainder::new(3, 0).states().len(), 8); // 2·(3+1)
    }

    #[test]
    fn table_port_runs_on_the_count_backend() {
        use ppfts_engine::convergence::stably;
        use ppfts_engine::StatsOnly;
        use ppfts_population::{unanimous_output_counts, CountConfiguration, TableProtocol};
        let p = Remainder::new(3, 1);
        let table = TableProtocol::from_protocol(&p);
        for s in p.states() {
            for r in p.states() {
                assert_eq!(table.delta(&s, &r), p.delta(&s, &r));
            }
        }
        // 100 agents with input 2 each: 200 mod 3 == 2 ≠ 1 → all false.
        let inputs = vec![2u32; 100];
        let expected = p.expected(&inputs);
        assert!(!expected);
        let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, table)
            .population(p.initial_counts(&inputs))
            .seed(8)
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
        let out = runner.run_batched_until(
            5_000_000,
            256,
            stably(
                |c: &CountConfiguration<RemainderState>| {
                    unanimous_output_counts(&c.counts(), |q| p.output(q)) == Some(expected)
                },
                2,
            ),
        );
        assert!(out.is_satisfied());
    }

    #[test]
    #[should_panic(expected = "modulus")]
    fn modulus_one_rejected() {
        let _ = Remainder::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "residue")]
    fn residue_must_be_reduced() {
        let _ = Remainder::new(3, 3);
    }
}

//! Max-gossip: everyone learns the maximum input.

use ppfts_population::{Semantics, TwoWayProtocol};

/// Max-gossip: on every meeting both agents keep the larger value.
///
/// ```text
/// (u, v) ↦ (max(u, v), max(u, v))
/// ```
///
/// The population stably computes the maximum of the inputs. Unlike the
/// predicates in this crate the output alphabet is unbounded, which
/// exercises the simulators on protocols with large state spaces.
///
/// # Example
///
/// ```
/// use ppfts_population::{Semantics, TwoWayProtocol};
/// use ppfts_protocols::MaxGossip;
///
/// assert_eq!(MaxGossip.delta(&3, &8), (8, 8));
/// assert_eq!(MaxGossip.expected(&[4, 9, 1]), 9);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaxGossip;

impl TwoWayProtocol for MaxGossip {
    type State = u64;

    fn delta(&self, s: &u64, r: &u64) -> (u64, u64) {
        let m = (*s).max(*r);
        (m, m)
    }
}

impl Semantics for MaxGossip {
    type Input = u64;
    type Output = u64;

    fn encode(&self, input: &u64) -> u64 {
        *input
    }

    fn output(&self, q: &u64) -> u64 {
        *q
    }

    /// # Panics
    ///
    /// Panics on an empty input vector (the maximum is undefined).
    fn expected(&self, inputs: &[u64]) -> u64 {
        inputs
            .iter()
            .copied()
            .max()
            .expect("max of an empty population is undefined")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfts_engine::{TwoWayModel, TwoWayRunner};
    use ppfts_population::unanimous_output;

    #[test]
    fn delta_is_idempotent_and_symmetric() {
        assert_eq!(MaxGossip.delta(&5, &5), (5, 5));
        assert!(MaxGossip.is_symmetric_on(&2, &9));
    }

    #[test]
    fn converges_to_global_max() {
        let inputs = vec![3, 1, 4, 1, 5, 9, 2, 6];
        let expected = MaxGossip.expected(&inputs);
        let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, MaxGossip)
            .config(MaxGossip.initial_configuration(&inputs))
            .seed(8)
            .build()
            .unwrap();
        let out = runner.run_until(100_000, |c| {
            unanimous_output(c, |q| MaxGossip.output(q)) == Some(expected)
        });
        assert!(out.is_satisfied());
        assert_eq!(runner.config().as_slice().iter().max(), Some(&9));
    }

    #[test]
    fn max_never_decreases_during_execution() {
        let inputs = vec![7, 2, 2];
        let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, MaxGossip)
            .config(MaxGossip.initial_configuration(&inputs))
            .seed(1)
            .build()
            .unwrap();
        for _ in 0..1000 {
            runner.step().unwrap();
            assert_eq!(runner.config().as_slice().iter().max(), Some(&7));
        }
    }

    #[test]
    #[should_panic(expected = "empty population")]
    fn empty_max_is_undefined() {
        let _ = MaxGossip.expected(&[]);
    }
}

//! A library of classic two-way population protocols.
//!
//! These are the *payloads* of the reproduced paper: concrete two-way
//! protocols that the fault-tolerant simulators in `ppfts-core` must run
//! correctly on weaker interaction models. The collection covers the
//! protocols the paper itself uses plus the standard workloads of the PP
//! literature:
//!
//! * [`Pairing`] — the paper's Pairing protocol `P_IP` (Definition 5), the
//!   counterexample driving every impossibility proof;
//! * [`Epidemic`] — one-bit infection (logical OR), the simplest stable
//!   predicate;
//! * [`ApproximateMajority`] — the 3-state approximate-majority protocol;
//! * [`ExactMajority`] — the 4-state exact-majority protocol
//!   (strong/weak opinions with cancellation);
//! * [`FlockOfBirds`] — the threshold-counting protocol behind the paper's
//!   motivating "sensor on every bird" scenario: does the number of
//!   *marked* agents reach `k`?;
//! * [`Remainder`] — sum of inputs modulo `m` compared against `r`;
//! * [`MaxGossip`] — all agents learn the maximum input;
//! * [`LeaderElection`] — classic `(L, L) → (L, F)` leader election;
//! * [`Product`] — run two protocols in lock-step and combine their
//!   outputs, giving boolean combinations of stable predicates;
//! * [`SemilinearProtocol`] — a compiler from arbitrary semilinear
//!   predicates (boolean combinations of threshold and remainder atoms —
//!   the exact expressive power of standard population protocols) to
//!   concrete two-way protocols;
//! * [`scenario`] — graph-aware workloads: epidemic broadcast and
//!   max-gossip placed on explicit interaction
//!   [`Topology`](ppfts_population::Topology)s (ring, star, grid,
//!   random-regular), the payloads of experiment E12.
//!
//! Every protocol implements
//! [`TwoWayProtocol`](ppfts_population::TwoWayProtocol); those that compute
//! something also implement [`Semantics`](ppfts_population::Semantics) with
//! a ground-truth `expected` oracle, which the correctness harnesses
//! compare simulated executions against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod epidemic;
mod flock;
mod gossip;
mod leader;
mod majority;
mod pairing;
mod product;
mod remainder;
pub mod scenario;
pub mod semilinear;

pub use epidemic::Epidemic;
pub use flock::{FlockOfBirds, FlockState};
pub use gossip::MaxGossip;
pub use leader::{LeaderElection, LeaderState};
pub use majority::{
    majority_states, ApproximateMajority, ExactMajority, ExactMajorityState, MajorityOpinion,
    MajorityState,
};
pub use pairing::{Pairing, PairingState};
pub use product::Product;
pub use remainder::{Remainder, RemainderState};
pub use semilinear::{Atom, AtomState, PredicateExpr, SemilinearError, SemilinearProtocol};

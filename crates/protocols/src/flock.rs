//! Flock-of-birds threshold counting.

use ppfts_population::{EnumerableStates, Semantics, TwoWayProtocol};

/// State of a [`FlockOfBirds`] agent: an accumulated count plus a detection
/// flag.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlockState {
    /// Accumulated count, saturated at the threshold `k`.
    pub count: u32,
    /// Whether this agent knows the threshold has been reached.
    pub detected: bool,
}

/// The classic threshold ("flock of birds") protocol: *do at least `k`
/// agents carry a mark?*
///
/// This is the paper's own motivating scenario (§1.1): each bird carries a
/// sensor, and the flock must detect when the number of birds with, say,
/// elevated temperature reaches a critical threshold `k`, so that a sensor
/// can intervene.
///
/// Each marked agent starts with count 1. When two agents meet, the
/// starter takes as much of the joint count as fits below `k` and the
/// reactor keeps the remainder, so the total count is conserved:
///
/// ```text
/// (u, v) ↦ (min(u + v, k), (u + v) − min(u + v, k))
/// ```
///
/// An agent whose merged count reaches `k` raises `detected`, and the flag
/// spreads epidemically in both roles. Under global fairness some agent
/// eventually accumulates `min(total, k)`, so `detected` stabilizes to
/// `total ≥ k` at every agent.
///
/// # Example
///
/// ```
/// use ppfts_population::{Semantics, TwoWayProtocol};
/// use ppfts_protocols::{FlockOfBirds, FlockState};
///
/// let flock = FlockOfBirds::new(3);
/// let (s, r) = flock.delta(
///     &FlockState { count: 2, detected: false },
///     &FlockState { count: 2, detected: false },
/// );
/// assert_eq!((s.count, r.count), (3, 1)); // total conserved, capped at k
/// assert!(s.detected && r.detected);      // threshold reached
/// assert!(flock.expected(&[true, true, true, false]));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlockOfBirds {
    threshold: u32,
}

impl FlockOfBirds {
    /// Creates the protocol detecting "at least `threshold` marked agents".
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0` (the predicate would be constantly true).
    pub fn new(threshold: u32) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        FlockOfBirds { threshold }
    }

    /// The detection threshold `k`.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }
}

impl TwoWayProtocol for FlockOfBirds {
    type State = FlockState;

    fn delta(&self, s: &FlockState, r: &FlockState) -> (FlockState, FlockState) {
        let k = self.threshold;
        let total = s.count + r.count;
        let kept = total.min(k);
        let reached = total >= k || s.detected || r.detected;
        (
            FlockState {
                count: kept,
                detected: reached,
            },
            FlockState {
                count: total - kept,
                detected: reached,
            },
        )
    }
}

impl Semantics for FlockOfBirds {
    type Input = bool;
    type Output = bool;

    fn encode(&self, marked: &bool) -> FlockState {
        FlockState {
            count: *marked as u32,
            detected: self.threshold == 1 && *marked,
        }
    }

    fn output(&self, q: &FlockState) -> bool {
        q.detected
    }

    fn expected(&self, inputs: &[bool]) -> bool {
        inputs.iter().filter(|b| **b).count() as u32 >= self.threshold
    }
}

impl EnumerableStates for FlockOfBirds {
    type State = FlockState;
    fn states(&self) -> Vec<FlockState> {
        let mut v = Vec::new();
        for count in 0..=self.threshold {
            for detected in [false, true] {
                v.push(FlockState { count, detected });
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfts_engine::{TwoWayModel, TwoWayRunner};
    use ppfts_population::unanimous_output;

    fn run_flock(k: u32, marked: usize, unmarked: usize, seed: u64) -> Option<bool> {
        let flock = FlockOfBirds::new(k);
        let inputs: Vec<bool> = std::iter::repeat_n(true, marked)
            .chain(std::iter::repeat_n(false, unmarked))
            .collect();
        let expected = flock.expected(&inputs);
        let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, flock)
            .config(flock.initial_configuration(&inputs))
            .seed(seed)
            .build()
            .unwrap();
        let out = runner.run_until(400_000, |c| {
            unanimous_output(c, |q| flock.output(q)) == Some(expected)
        });
        out.is_satisfied().then_some(expected)
    }

    #[test]
    fn count_is_conserved_by_every_meeting() {
        let flock = FlockOfBirds::new(5);
        for u in 0..=5 {
            for v in 0..=5u32.saturating_sub(u) {
                let (s, r) = flock.delta(
                    &FlockState {
                        count: u,
                        detected: false,
                    },
                    &FlockState {
                        count: v,
                        detected: false,
                    },
                );
                assert_eq!(s.count + r.count, u + v);
                assert!(s.count <= 5);
            }
        }
    }

    #[test]
    fn detects_threshold_reached() {
        assert_eq!(run_flock(3, 4, 3, 1), Some(true));
        assert_eq!(run_flock(5, 5, 0, 2), Some(true));
    }

    #[test]
    fn stays_quiet_below_threshold() {
        assert_eq!(run_flock(4, 3, 5, 3), Some(false));
        // Extra paranoia: detection never fires spuriously mid-run.
        let flock = FlockOfBirds::new(4);
        let inputs = vec![true, true, true, false, false];
        let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, flock)
            .config(flock.initial_configuration(&inputs))
            .seed(4)
            .build()
            .unwrap();
        for _ in 0..20_000 {
            runner.step().unwrap();
            assert!(runner.config().as_slice().iter().all(|q| !q.detected));
        }
    }

    #[test]
    fn threshold_one_detects_immediately() {
        let flock = FlockOfBirds::new(1);
        let c = flock.initial_configuration(&[true, false]);
        assert!(flock.output(&c.as_slice()[0]));
    }

    #[test]
    fn detection_flag_spreads_both_ways() {
        let flock = FlockOfBirds::new(2);
        let lit = FlockState {
            count: 0,
            detected: true,
        };
        let dark = FlockState {
            count: 0,
            detected: false,
        };
        let (s, r) = flock.delta(&lit, &dark);
        assert!(s.detected && r.detected);
        let (s, r) = flock.delta(&dark, &lit);
        assert!(s.detected && r.detected);
    }

    #[test]
    fn enumerated_state_space_has_expected_size() {
        assert_eq!(FlockOfBirds::new(3).states().len(), 8); // (k+1) × 2
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        let _ = FlockOfBirds::new(0);
    }

    #[test]
    fn table_port_runs_on_the_count_backend() {
        use ppfts_engine::convergence::stably;
        use ppfts_engine::StatsOnly;
        use ppfts_population::{unanimous_output_counts, CountConfiguration, TableProtocol};
        let flock = FlockOfBirds::new(3);
        let table = TableProtocol::from_protocol(&flock);
        for s in flock.states() {
            for r in flock.states() {
                assert_eq!(table.delta(&s, &r), flock.delta(&s, &r));
            }
        }
        // 5 marked birds among 200, threshold 3: everyone must detect.
        let inputs: Vec<bool> = std::iter::repeat_n(true, 5)
            .chain(std::iter::repeat_n(false, 195))
            .collect();
        let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, table)
            .population(flock.initial_counts(&inputs))
            .seed(6)
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
        let out = runner.run_batched_until(
            5_000_000,
            256,
            stably(
                |c: &CountConfiguration<FlockState>| {
                    unanimous_output_counts(&c.counts(), |q| flock.output(q)) == Some(true)
                },
                2,
            ),
        );
        assert!(out.is_satisfied());
    }
}

//! One-bit epidemic: the logical OR of the inputs.

use ppfts_population::{EnumerableStates, Semantics, TwoWayProtocol};

/// One-bit epidemic (logical OR).
///
/// An infected agent (state `true`) infects anyone it meets, in either
/// role:
///
/// ```text
/// (true, false) ↦ (true, true)       (false, true) ↦ (true, true)
/// ```
///
/// The population stably computes "is any input `true`?" — the simplest
/// non-trivial stable predicate, used throughout this workspace as the
/// smoke-test payload for simulators.
///
/// # Example
///
/// ```
/// use ppfts_population::{Semantics, TwoWayProtocol};
/// use ppfts_protocols::Epidemic;
///
/// assert_eq!(Epidemic.delta(&true, &false), (true, true));
/// assert_eq!(Epidemic.delta(&false, &false), (false, false));
/// assert!(Epidemic.expected(&[false, true, false]));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Epidemic;

impl TwoWayProtocol for Epidemic {
    type State = bool;

    fn delta(&self, s: &bool, r: &bool) -> (bool, bool) {
        let infected = *s || *r;
        (infected, infected)
    }
}

impl Semantics for Epidemic {
    type Input = bool;
    type Output = bool;

    fn encode(&self, input: &bool) -> bool {
        *input
    }

    fn output(&self, q: &bool) -> bool {
        *q
    }

    fn expected(&self, inputs: &[bool]) -> bool {
        inputs.iter().any(|b| *b)
    }
}

impl EnumerableStates for Epidemic {
    type State = bool;
    fn states(&self) -> Vec<bool> {
        vec![false, true]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfts_engine::{TwoWayModel, TwoWayRunner};
    use ppfts_population::unanimous_output;

    #[test]
    fn infection_is_symmetric() {
        assert!(Epidemic.is_symmetric_on(&true, &false));
        assert_eq!(Epidemic.delta(&false, &true), (true, true));
    }

    #[test]
    fn stably_computes_or_under_tw() {
        for inputs in [
            vec![false, false, false],
            vec![true, false, false, false, false],
            vec![true, true],
        ] {
            let expected = Epidemic.expected(&inputs);
            let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, Epidemic)
                .config(Epidemic.initial_configuration(&inputs))
                .seed(17)
                .build()
                .unwrap();
            let out = runner.run_until(50_000, |c| {
                unanimous_output(c, |q| Epidemic.output(q)) == Some(expected)
            });
            assert!(out.is_satisfied(), "inputs {inputs:?}");
        }
    }

    #[test]
    fn all_false_is_already_stable() {
        let c = Epidemic.initial_configuration(&[false, false]);
        assert_eq!(unanimous_output(&c, |q| Epidemic.output(q)), Some(false));
    }

    #[test]
    fn table_port_runs_on_the_count_backend() {
        use ppfts_engine::StatsOnly;
        use ppfts_population::{CountConfiguration, TableProtocol};
        let table = TableProtocol::from_protocol(&Epidemic);
        for s in [false, true] {
            for r in [false, true] {
                assert_eq!(table.delta(&s, &r), Epidemic.delta(&s, &r));
            }
        }
        let n = 500;
        let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, table)
            .population(CountConfiguration::from_groups([(true, 1), (false, n - 1)]))
            .seed(9)
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
        let out = runner.run_batched_until(2_000_000, 256, |c: &CountConfiguration<bool>| {
            c.count_state(&true) == n
        });
        assert!(out.is_satisfied());
    }
}

//! Classic leader election.

use ppfts_population::{Configuration, CountConfiguration, EnumerableStates, TwoWayProtocol};

/// State of a [`LeaderElection`] agent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LeaderState {
    /// Still a leader candidate.
    Leader,
    /// Demoted to follower.
    Follower,
}

/// The classic one-rule leader-election protocol.
///
/// ```text
/// (L, L) ↦ (L, F)
/// ```
///
/// Starting from all-`Leader`, the number of leaders decreases by one each
/// time two leaders meet, and never increases; under global fairness it
/// stabilizes at exactly one. The specification is the configuration
/// predicate [`LeaderElection::is_elected`], not a consensus output —
/// which is why this protocol exercises a different corner of the
/// simulation checkers than the predicate protocols.
///
/// # Example
///
/// ```
/// use ppfts_population::TwoWayProtocol;
/// use ppfts_protocols::{LeaderElection, LeaderState::*};
///
/// assert_eq!(LeaderElection.delta(&Leader, &Leader), (Leader, Follower));
/// assert_eq!(LeaderElection.delta(&Leader, &Follower), (Leader, Follower));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LeaderElection;

impl LeaderElection {
    /// The all-candidates initial configuration for `n` agents.
    pub fn initial(n: usize) -> Configuration<LeaderState> {
        Configuration::uniform(LeaderState::Leader, n)
    }

    /// The all-candidates initial population for `n` agents, count-backed
    /// — O(1) memory however large the flock.
    pub fn initial_counts(n: usize) -> CountConfiguration<LeaderState> {
        CountConfiguration::uniform(LeaderState::Leader, n)
    }

    /// Number of remaining leader candidates.
    pub fn leader_count(config: &Configuration<LeaderState>) -> usize {
        config.count_state(&LeaderState::Leader)
    }

    /// Whether election has completed: exactly one leader remains.
    pub fn is_elected(config: &Configuration<LeaderState>) -> bool {
        Self::leader_count(config) == 1
    }
}

impl TwoWayProtocol for LeaderElection {
    type State = LeaderState;

    fn delta(&self, s: &LeaderState, r: &LeaderState) -> (LeaderState, LeaderState) {
        use LeaderState::*;
        match (s, r) {
            (Leader, Leader) => (Leader, Follower),
            _ => (*s, *r),
        }
    }
}

impl EnumerableStates for LeaderElection {
    type State = LeaderState;
    fn states(&self) -> Vec<LeaderState> {
        vec![LeaderState::Leader, LeaderState::Follower]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfts_engine::{TwoWayModel, TwoWayRunner};

    #[test]
    fn followers_never_return() {
        use LeaderState::*;
        for r in [Leader, Follower] {
            assert_eq!(LeaderElection.delta(&Follower, &r).0, Follower);
            assert_eq!(LeaderElection.delta(&r, &Follower).1, Follower);
        }
    }

    #[test]
    fn leader_count_is_monotonically_decreasing() {
        let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, LeaderElection)
            .config(LeaderElection::initial(8))
            .seed(2)
            .build()
            .unwrap();
        let mut last = 8;
        for _ in 0..5000 {
            runner.step().unwrap();
            let now = LeaderElection::leader_count(runner.config());
            assert!(now <= last && now >= 1);
            last = now;
        }
    }

    #[test]
    fn elects_exactly_one_leader() {
        for n in [2, 5, 16] {
            let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, LeaderElection)
                .config(LeaderElection::initial(n))
                .seed(n as u64)
                .build()
                .unwrap();
            let out = runner.run_until(100_000, LeaderElection::is_elected);
            assert!(out.is_satisfied(), "n = {n}");
        }
    }

    #[test]
    fn table_port_runs_on_the_count_backend() {
        use ppfts_engine::convergence::stably;
        use ppfts_engine::StatsOnly;
        use ppfts_population::TableProtocol;
        let table = TableProtocol::from_protocol(&LeaderElection);
        for s in LeaderElection.states() {
            for r in LeaderElection.states() {
                assert_eq!(table.delta(&s, &r), LeaderElection.delta(&s, &r));
            }
        }
        let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, table)
            .population(LeaderElection::initial_counts(300))
            .seed(4)
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
        let out = runner.run_batched_until(
            10_000_000,
            512,
            stably(
                |c: &CountConfiguration<LeaderState>| c.count_state(&LeaderState::Leader) == 1,
                2,
            ),
        );
        assert!(out.is_satisfied());
        assert_eq!(runner.config().count_state(&LeaderState::Follower), 299);
    }

    #[test]
    fn single_leader_is_stable() {
        let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, LeaderElection)
            .config(Configuration::from_groups([
                (LeaderState::Leader, 1),
                (LeaderState::Follower, 3),
            ]))
            .seed(0)
            .build()
            .unwrap();
        runner.run(2000).unwrap();
        assert!(LeaderElection::is_elected(runner.config()));
    }
}

//! A compiler from semilinear predicates to two-way protocols.
//!
//! Standard population protocols stably compute exactly the *semilinear*
//! predicates (Angluin–Aspnes–Eisenstat): boolean combinations of
//! threshold atoms `Σ cᵢ·xᵢ ≥ k` and remainder atoms
//! `Σ cᵢ·xᵢ ≡ r (mod m)` over the input counts. This module compiles any
//! such predicate into a concrete [`TwoWayProtocol`], giving the
//! simulators of `ppfts-core` an unbounded family of payload protocols —
//! simulating a compiled predicate on a weak model exercises the full
//! computational power the paper's theorems quantify over.
//!
//! Mechanics: the compiled state is a vector with one slot per atom.
//! Threshold slots run the flock-of-birds dynamics (cap-and-conserve
//! merge plus an epidemically spreading `detected` flag); remainder slots
//! run the active/passive mod-`m` merge with opinion flooding. An agent's
//! output evaluates the boolean expression over its per-atom opinions,
//! and stabilizes because each atom's opinion does.

use ppfts_population::{Semantics, TwoWayProtocol};

/// One atom of a semilinear predicate over `arity` input symbols.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Atom {
    /// `Σ coeffs[σ]·count(σ) ≥ threshold` (non-negative coefficients).
    Threshold {
        /// Contribution of each input symbol.
        coeffs: Vec<u32>,
        /// The bound `k ≥ 1` being tested.
        threshold: u32,
    },
    /// `Σ coeffs[σ]·count(σ) ≡ residue (mod modulus)`.
    Remainder {
        /// Contribution of each input symbol.
        coeffs: Vec<u32>,
        /// The modulus `m ≥ 2`.
        modulus: u32,
        /// The residue `r < m` being tested.
        residue: u32,
    },
}

impl Atom {
    fn arity(&self) -> usize {
        match self {
            Atom::Threshold { coeffs, .. } | Atom::Remainder { coeffs, .. } => coeffs.len(),
        }
    }

    fn ground_truth(&self, counts: &[u64]) -> bool {
        match self {
            Atom::Threshold { coeffs, threshold } => {
                let sum: u64 = coeffs.iter().zip(counts).map(|(&c, &n)| c as u64 * n).sum();
                sum >= *threshold as u64
            }
            Atom::Remainder {
                coeffs,
                modulus,
                residue,
            } => {
                let sum: u64 = coeffs.iter().zip(counts).map(|(&c, &n)| c as u64 * n).sum();
                sum % *modulus as u64 == *residue as u64
            }
        }
    }
}

/// A boolean combination of atom outputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PredicateExpr {
    /// The `i`-th atom's truth value.
    Atom(usize),
    /// Logical negation.
    Not(Box<PredicateExpr>),
    /// Logical conjunction.
    And(Box<PredicateExpr>, Box<PredicateExpr>),
    /// Logical disjunction.
    Or(Box<PredicateExpr>, Box<PredicateExpr>),
    /// A constant.
    Const(bool),
}

impl PredicateExpr {
    /// The `i`-th atom as an expression.
    pub fn atom(i: usize) -> Self {
        PredicateExpr::Atom(i)
    }

    /// `self AND other`.
    pub fn and(self, other: PredicateExpr) -> Self {
        PredicateExpr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: PredicateExpr) -> Self {
        PredicateExpr::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        PredicateExpr::Not(Box::new(self))
    }

    fn eval(&self, atoms: &[bool]) -> bool {
        match self {
            PredicateExpr::Atom(i) => atoms[*i],
            PredicateExpr::Not(e) => !e.eval(atoms),
            PredicateExpr::And(a, b) => a.eval(atoms) && b.eval(atoms),
            PredicateExpr::Or(a, b) => a.eval(atoms) || b.eval(atoms),
            PredicateExpr::Const(b) => *b,
        }
    }

    fn max_atom(&self) -> Option<usize> {
        match self {
            PredicateExpr::Atom(i) => Some(*i),
            PredicateExpr::Not(e) => e.max_atom(),
            PredicateExpr::And(a, b) | PredicateExpr::Or(a, b) => a.max_atom().max(b.max_atom()),
            PredicateExpr::Const(_) => None,
        }
    }
}

/// Per-atom slot of the compiled protocol's state.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AtomState {
    /// Flock-of-birds slot: capped count plus the irreversible flag.
    Threshold {
        /// Accumulated weight, saturated at the atom's threshold.
        value: u32,
        /// Whether the threshold is known to be reached.
        detected: bool,
    },
    /// Remainder slot: active partial sum or passive, plus the opinion.
    Remainder {
        /// `Some(v)`: active with partial sum `v`; `None`: passive.
        value: Option<u32>,
        /// Current output opinion of this slot.
        opinion: bool,
    },
}

/// A semilinear predicate compiled to a two-way population protocol.
///
/// # Example
///
/// "At least two marked agents, and the total weight is even":
///
/// ```
/// use ppfts_population::{Semantics, TwoWayProtocol};
/// use ppfts_protocols::semilinear::{Atom, PredicateExpr, SemilinearProtocol};
///
/// // Symbols: 0 = unmarked (weight 1), 1 = marked (weight 2).
/// let pred = SemilinearProtocol::new(
///     vec![
///         Atom::Threshold { coeffs: vec![0, 1], threshold: 2 }, // ≥ 2 marked
///         Atom::Remainder { coeffs: vec![1, 2], modulus: 2, residue: 0 }, // even weight
///     ],
///     PredicateExpr::atom(0).and(PredicateExpr::atom(1)),
/// )?;
///
/// // 2 marked + 2 unmarked: 2 ≥ 2 ✓ and weight 2·2+1·2 = 6 even ✓.
/// assert!(pred.expected(&[1, 1, 0, 0]));
/// // 1 marked + 1 unmarked: 1 < 2 ✗.
/// assert!(!pred.expected(&[1, 0]));
/// # Ok::<(), ppfts_protocols::semilinear::SemilinearError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SemilinearProtocol {
    atoms: Vec<Atom>,
    expr: PredicateExpr,
    arity: usize,
}

/// Construction errors for [`SemilinearProtocol`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SemilinearError {
    /// The atom list was empty and the expression references atoms.
    AtomIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of atoms supplied.
        atoms: usize,
    },
    /// Atoms disagree on the number of input symbols.
    ArityMismatch,
    /// A threshold atom had `threshold == 0` (constantly true) or a
    /// remainder atom had `modulus < 2` or `residue >= modulus`.
    DegenerateAtom {
        /// Position of the offending atom.
        index: usize,
    },
}

impl std::fmt::Display for SemilinearError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SemilinearError::AtomIndexOutOfRange { index, atoms } => {
                write!(
                    f,
                    "expression references atom {index} but only {atoms} atoms exist"
                )
            }
            SemilinearError::ArityMismatch => {
                write!(f, "atoms disagree on the number of input symbols")
            }
            SemilinearError::DegenerateAtom { index } => {
                write!(
                    f,
                    "atom {index} is degenerate (zero threshold or bad modulus)"
                )
            }
        }
    }
}

impl std::error::Error for SemilinearError {}

impl SemilinearProtocol {
    /// Compiles `expr` over `atoms` into a protocol.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range atom references, mismatched arities and
    /// degenerate atoms.
    pub fn new(atoms: Vec<Atom>, expr: PredicateExpr) -> Result<Self, SemilinearError> {
        if let Some(max) = expr.max_atom() {
            if max >= atoms.len() {
                return Err(SemilinearError::AtomIndexOutOfRange {
                    index: max,
                    atoms: atoms.len(),
                });
            }
        }
        let arity = atoms.first().map_or(0, Atom::arity);
        for (index, atom) in atoms.iter().enumerate() {
            if atom.arity() != arity {
                return Err(SemilinearError::ArityMismatch);
            }
            match atom {
                Atom::Threshold { threshold, .. } if *threshold == 0 => {
                    return Err(SemilinearError::DegenerateAtom { index })
                }
                Atom::Remainder {
                    modulus, residue, ..
                } if *modulus < 2 || residue >= modulus => {
                    return Err(SemilinearError::DegenerateAtom { index })
                }
                _ => {}
            }
        }
        Ok(SemilinearProtocol { atoms, expr, arity })
    }

    /// Number of input symbols.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of atoms.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    fn atom_delta(&self, atom: &Atom, s: &AtomState, r: &AtomState) -> (AtomState, AtomState) {
        match (atom, s, r) {
            (
                Atom::Threshold { threshold, .. },
                AtomState::Threshold {
                    value: u,
                    detected: du,
                },
                AtomState::Threshold {
                    value: v,
                    detected: dv,
                },
            ) => {
                let k = *threshold;
                let total = u + v;
                let kept = total.min(k);
                let reached = total >= k || *du || *dv;
                (
                    AtomState::Threshold {
                        value: kept,
                        detected: reached,
                    },
                    AtomState::Threshold {
                        value: total - kept,
                        detected: reached,
                    },
                )
            }
            (
                Atom::Remainder {
                    modulus, residue, ..
                },
                AtomState::Remainder { value: sv, .. },
                AtomState::Remainder {
                    value: rv,
                    opinion: ro,
                },
            ) => {
                let m = *modulus;
                let test = |v: u32| v % m == *residue;
                match (sv, rv) {
                    (Some(u), Some(v)) => {
                        let merged = (u + v) % m;
                        let opinion = test(merged);
                        (
                            AtomState::Remainder {
                                value: Some(merged),
                                opinion,
                            },
                            AtomState::Remainder {
                                value: None,
                                opinion,
                            },
                        )
                    }
                    (Some(u), None) => {
                        let opinion = test(*u);
                        (
                            AtomState::Remainder {
                                value: Some(*u),
                                opinion,
                            },
                            AtomState::Remainder {
                                value: None,
                                opinion,
                            },
                        )
                    }
                    (None, Some(v)) => {
                        let opinion = test(*v);
                        (
                            AtomState::Remainder {
                                value: None,
                                opinion,
                            },
                            AtomState::Remainder {
                                value: Some(*v),
                                opinion,
                            },
                        )
                    }
                    (None, None) => (
                        s.clone(),
                        AtomState::Remainder {
                            value: None,
                            opinion: *ro,
                        },
                    ),
                }
            }
            // Mixed slots cannot arise: encode() builds slots per atom.
            _ => (s.clone(), r.clone()),
        }
    }

    fn opinions(&self, q: &[AtomState]) -> Vec<bool> {
        q.iter()
            .map(|slot| match slot {
                AtomState::Threshold { detected, .. } => *detected,
                AtomState::Remainder { opinion, .. } => *opinion,
            })
            .collect()
    }
}

impl TwoWayProtocol for SemilinearProtocol {
    type State = Vec<AtomState>;

    fn delta(&self, s: &Self::State, r: &Self::State) -> (Self::State, Self::State) {
        debug_assert_eq!(s.len(), self.atoms.len());
        debug_assert_eq!(r.len(), self.atoms.len());
        let mut s2 = Vec::with_capacity(s.len());
        let mut r2 = Vec::with_capacity(r.len());
        for ((atom, sl), rl) in self.atoms.iter().zip(s).zip(r) {
            let (a, b) = self.atom_delta(atom, sl, rl);
            s2.push(a);
            r2.push(b);
        }
        (s2, r2)
    }
}

impl Semantics for SemilinearProtocol {
    /// Input symbol index, `< arity`.
    type Input = usize;
    type Output = bool;

    /// # Panics
    ///
    /// Panics if `input >= arity`.
    fn encode(&self, input: &usize) -> Vec<AtomState> {
        assert!(*input < self.arity, "input symbol out of range");
        self.atoms
            .iter()
            .map(|atom| match atom {
                Atom::Threshold { coeffs, threshold } => {
                    let c = coeffs[*input];
                    AtomState::Threshold {
                        value: c.min(*threshold),
                        detected: c >= *threshold,
                    }
                }
                Atom::Remainder {
                    coeffs,
                    modulus,
                    residue,
                } => {
                    let v = coeffs[*input] % modulus;
                    AtomState::Remainder {
                        value: Some(v),
                        opinion: v == *residue,
                    }
                }
            })
            .collect()
    }

    fn output(&self, q: &Vec<AtomState>) -> bool {
        self.expr.eval(&self.opinions(q))
    }

    fn expected(&self, inputs: &[usize]) -> bool {
        let mut counts = vec![0u64; self.arity];
        for &i in inputs {
            counts[i] += 1;
        }
        let truths: Vec<bool> = self.atoms.iter().map(|a| a.ground_truth(&counts)).collect();
        self.expr.eval(&truths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfts_engine::{TwoWayModel, TwoWayRunner};
    use ppfts_population::unanimous_output;

    fn run_to_expected(p: &SemilinearProtocol, inputs: &[usize], seed: u64) -> bool {
        let expected = p.expected(inputs);
        let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, p.clone())
            .config(p.initial_configuration(inputs))
            .seed(seed)
            .build()
            .unwrap();
        runner
            .run_until(2_000_000, |c| {
                unanimous_output(c, |q| p.output(q)) == Some(expected)
            })
            .is_satisfied()
    }

    fn at_least(coeffs: Vec<u32>, k: u32) -> Atom {
        Atom::Threshold {
            coeffs,
            threshold: k,
        }
    }

    fn modulo(coeffs: Vec<u32>, m: u32, r: u32) -> Atom {
        Atom::Remainder {
            coeffs,
            modulus: m,
            residue: r,
        }
    }

    #[test]
    fn single_threshold_atom_is_flock() {
        let p =
            SemilinearProtocol::new(vec![at_least(vec![0, 1], 3)], PredicateExpr::atom(0)).unwrap();
        assert!(p.expected(&[1, 1, 1, 0]));
        assert!(!p.expected(&[1, 1, 0, 0]));
        assert!(run_to_expected(&p, &[1, 1, 1, 0], 1));
        assert!(run_to_expected(&p, &[1, 1, 0, 0], 2));
    }

    #[test]
    fn conjunction_of_threshold_and_remainder() {
        // "≥ 2 marked AND total weight ≡ 0 (mod 3)", weights: plain 1, marked 2.
        let p = SemilinearProtocol::new(
            vec![at_least(vec![0, 1], 2), modulo(vec![1, 2], 3, 0)],
            PredicateExpr::atom(0).and(PredicateExpr::atom(1)),
        )
        .unwrap();
        // 2 marked + 2 plain: weight 6 ≡ 0 ✓, marked 2 ≥ 2 ✓.
        assert!(p.expected(&[1, 1, 0, 0]));
        assert!(run_to_expected(&p, &[1, 1, 0, 0], 3));
        // 2 marked + 1 plain: weight 5 ≢ 0.
        assert!(!p.expected(&[1, 1, 0]));
        assert!(run_to_expected(&p, &[1, 1, 0], 4));
    }

    #[test]
    fn negation_and_disjunction() {
        // "NOT(≥ 3 a's) OR (count ≡ 1 mod 2)"
        let p = SemilinearProtocol::new(
            vec![at_least(vec![1, 0], 3), modulo(vec![1, 1], 2, 1)],
            PredicateExpr::atom(0).not().or(PredicateExpr::atom(1)),
        )
        .unwrap();
        // 3 a's, total 4 (even): first disjunct false, second false → false.
        assert!(!p.expected(&[0, 0, 0, 1]));
        // 3 a's, total 5 (odd): second true → true.
        assert!(p.expected(&[0, 0, 0, 1, 1]));
        assert!(run_to_expected(&p, &[0, 0, 0, 1], 5));
        assert!(run_to_expected(&p, &[0, 0, 0, 1, 1], 6));
    }

    #[test]
    fn constant_expressions_need_no_atoms() {
        let p = SemilinearProtocol::new(vec![], PredicateExpr::Const(true)).unwrap();
        assert!(p.expected(&[]));
        assert_eq!(p.arity(), 0);
    }

    #[test]
    fn heavy_initial_weights_detect_immediately() {
        // One agent alone can exceed the threshold via its coefficient.
        let p =
            SemilinearProtocol::new(vec![at_least(vec![5], 3)], PredicateExpr::atom(0)).unwrap();
        let q = p.encode(&0);
        assert!(p.output(&q));
    }

    #[test]
    fn construction_errors_are_reported() {
        assert_eq!(
            SemilinearProtocol::new(vec![], PredicateExpr::atom(0)).unwrap_err(),
            SemilinearError::AtomIndexOutOfRange { index: 0, atoms: 0 }
        );
        assert_eq!(
            SemilinearProtocol::new(
                vec![at_least(vec![1], 1), at_least(vec![1, 2], 1)],
                PredicateExpr::Const(true),
            )
            .unwrap_err(),
            SemilinearError::ArityMismatch
        );
        assert_eq!(
            SemilinearProtocol::new(vec![at_least(vec![1], 0)], PredicateExpr::Const(true))
                .unwrap_err(),
            SemilinearError::DegenerateAtom { index: 0 }
        );
        assert_eq!(
            SemilinearProtocol::new(vec![modulo(vec![1], 2, 2)], PredicateExpr::Const(true))
                .unwrap_err(),
            SemilinearError::DegenerateAtom { index: 0 }
        );
    }

    #[test]
    fn randomized_against_oracle() {
        // A fixed moderately complex predicate over 3 symbols, checked on
        // a grid of small populations.
        let p = SemilinearProtocol::new(
            vec![at_least(vec![1, 0, 2], 4), modulo(vec![0, 1, 1], 2, 0)],
            PredicateExpr::atom(0).or(PredicateExpr::atom(1).not()),
        )
        .unwrap();
        let mut seed = 100;
        for a in 0..3usize {
            for b in 0..3usize {
                for c in 0..2usize {
                    let mut inputs = Vec::new();
                    inputs.extend(std::iter::repeat_n(0, a));
                    inputs.extend(std::iter::repeat_n(1, b));
                    inputs.extend(std::iter::repeat_n(2, c));
                    if inputs.len() < 2 {
                        continue;
                    }
                    seed += 1;
                    assert!(
                        run_to_expected(&p, &inputs, seed),
                        "inputs {inputs:?} did not stabilize to oracle value"
                    );
                }
            }
        }
    }
}

//! Majority protocols: 3-state approximate and 4-state exact.

use ppfts_population::{EnumerableStates, Semantics, TwoWayProtocol};

/// The two input opinions of a majority vote.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MajorityOpinion {
    /// Opinion "X".
    X,
    /// Opinion "Y".
    Y,
}

/// States of [`ApproximateMajority`]: the two opinions plus *blank*.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MajorityState {
    /// Committed to opinion X.
    X,
    /// Committed to opinion Y.
    Y,
    /// Blank: converted by whichever opinion it meets.
    Blank,
}

/// The 3-state approximate-majority protocol
/// (Angluin–Aspnes–Eisenstat, "A simple population protocol for fast
/// robust approximate majority").
///
/// ```text
/// (X, Y) ↦ (X, Blank)     (Y, X) ↦ (Y, Blank)
/// (X, Blank) ↦ (X, X)     (Y, Blank) ↦ (Y, Y)
/// ```
///
/// With high probability the population converges to the initial majority
/// opinion; with a large initial margin the failure probability is
/// exponentially small, which is why the oracle
/// [`Semantics::expected`] is only meaningful for clear majorities (our
/// harnesses use margins ≥ 3 so the statistical tests are stable).
///
/// # Example
///
/// ```
/// use ppfts_population::TwoWayProtocol;
/// use ppfts_protocols::{ApproximateMajority, MajorityState::*};
///
/// assert_eq!(ApproximateMajority.delta(&X, &Y), (X, Blank));
/// assert_eq!(ApproximateMajority.delta(&X, &Blank), (X, X));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ApproximateMajority;

impl TwoWayProtocol for ApproximateMajority {
    type State = MajorityState;

    fn delta(&self, s: &MajorityState, r: &MajorityState) -> (MajorityState, MajorityState) {
        use MajorityState::*;
        match (s, r) {
            (X, Y) => (X, Blank),
            (Y, X) => (Y, Blank),
            (X, Blank) => (X, X),
            (Y, Blank) => (Y, Y),
            _ => (*s, *r),
        }
    }
}

impl Semantics for ApproximateMajority {
    type Input = MajorityOpinion;
    type Output = MajorityOpinion;

    fn encode(&self, input: &MajorityOpinion) -> MajorityState {
        match input {
            MajorityOpinion::X => MajorityState::X,
            MajorityOpinion::Y => MajorityState::Y,
        }
    }

    fn output(&self, q: &MajorityState) -> MajorityOpinion {
        match q {
            MajorityState::X | MajorityState::Blank => MajorityOpinion::X,
            MajorityState::Y => MajorityOpinion::Y,
        }
    }

    fn expected(&self, inputs: &[MajorityOpinion]) -> MajorityOpinion {
        let x = inputs.iter().filter(|o| **o == MajorityOpinion::X).count();
        if 2 * x >= inputs.len() {
            MajorityOpinion::X
        } else {
            MajorityOpinion::Y
        }
    }
}

impl EnumerableStates for ApproximateMajority {
    type State = MajorityState;
    fn states(&self) -> Vec<MajorityState> {
        vec![MajorityState::X, MajorityState::Y, MajorityState::Blank]
    }
}

/// States of [`ExactMajority`]: strong and weak versions of each opinion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ExactMajorityState {
    /// Strong X (carries one unit of X's margin).
    StrongX,
    /// Strong Y (carries one unit of Y's margin).
    StrongY,
    /// Weak x (opinion only, no margin).
    WeakX,
    /// Weak y (opinion only, no margin).
    WeakY,
}

/// The 4-state exact-majority protocol (cancellation + conversion).
///
/// ```text
/// (SX, SY) ↦ (wx, wy)   — opposite strongs cancel
/// (SX, wy) ↦ (SX, wx)   — a strong converts opposite weaks
/// (SY, wx) ↦ (SY, wy)
/// ```
///
/// (and symmetrically). Strong agents carry the vote margin: cancellation
/// conserves `#SX − #SY`, so the surviving strong opinion is the true
/// majority and converts every weak agent. This computes majority
/// *exactly* for any non-tied input under global fairness; on a tie all
/// agents end weak and the output never stabilizes, so
/// [`Semantics::expected`] panics on ties to keep harnesses honest.
///
/// # Example
///
/// ```
/// use ppfts_population::TwoWayProtocol;
/// use ppfts_protocols::ExactMajority;
/// use ppfts_protocols::majority_states::*;
///
/// assert_eq!(ExactMajority.delta(&SX, &SY), (WX, WY));
/// assert_eq!(ExactMajority.delta(&SX, &WY), (SX, WX));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExactMajority;

/// Shorthand constants for [`ExactMajorityState`] used in docs and tests.
pub mod majority_states {
    pub use super::ExactMajorityState;
    /// Strong X.
    pub const SX: ExactMajorityState = ExactMajorityState::StrongX;
    /// Strong Y.
    pub const SY: ExactMajorityState = ExactMajorityState::StrongY;
    /// Weak x.
    pub const WX: ExactMajorityState = ExactMajorityState::WeakX;
    /// Weak y.
    pub const WY: ExactMajorityState = ExactMajorityState::WeakY;
}

impl TwoWayProtocol for ExactMajority {
    type State = ExactMajorityState;

    fn delta(
        &self,
        s: &ExactMajorityState,
        r: &ExactMajorityState,
    ) -> (ExactMajorityState, ExactMajorityState) {
        use ExactMajorityState::*;
        match (s, r) {
            // Cancellation (symmetric).
            (StrongX, StrongY) => (WeakX, WeakY),
            (StrongY, StrongX) => (WeakY, WeakX),
            // Conversion of opposite weaks (either role).
            (StrongX, WeakY) => (StrongX, WeakX),
            (WeakY, StrongX) => (WeakX, StrongX),
            (StrongY, WeakX) => (StrongY, WeakY),
            (WeakX, StrongY) => (WeakY, StrongY),
            _ => (*s, *r),
        }
    }
}

impl Semantics for ExactMajority {
    type Input = MajorityOpinion;
    type Output = MajorityOpinion;

    fn encode(&self, input: &MajorityOpinion) -> ExactMajorityState {
        match input {
            MajorityOpinion::X => ExactMajorityState::StrongX,
            MajorityOpinion::Y => ExactMajorityState::StrongY,
        }
    }

    fn output(&self, q: &ExactMajorityState) -> MajorityOpinion {
        match q {
            ExactMajorityState::StrongX | ExactMajorityState::WeakX => MajorityOpinion::X,
            ExactMajorityState::StrongY | ExactMajorityState::WeakY => MajorityOpinion::Y,
        }
    }

    /// # Panics
    ///
    /// Panics on a tied input: the 4-state protocol does not decide ties.
    fn expected(&self, inputs: &[MajorityOpinion]) -> MajorityOpinion {
        let x = inputs.iter().filter(|o| **o == MajorityOpinion::X).count();
        let y = inputs.len() - x;
        assert_ne!(x, y, "exact majority is undefined on ties");
        if x > y {
            MajorityOpinion::X
        } else {
            MajorityOpinion::Y
        }
    }
}

impl EnumerableStates for ExactMajority {
    type State = ExactMajorityState;
    fn states(&self) -> Vec<ExactMajorityState> {
        vec![
            ExactMajorityState::StrongX,
            ExactMajorityState::StrongY,
            ExactMajorityState::WeakX,
            ExactMajorityState::WeakY,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::majority_states::*;
    use super::*;
    use ppfts_engine::{TwoWayModel, TwoWayRunner};
    use ppfts_population::unanimous_output;

    #[test]
    fn approximate_rules_match_literature() {
        use MajorityState::*;
        assert_eq!(ApproximateMajority.delta(&X, &Y), (X, Blank));
        assert_eq!(ApproximateMajority.delta(&Y, &X), (Y, Blank));
        assert_eq!(ApproximateMajority.delta(&Blank, &X), (Blank, X));
        assert_eq!(ApproximateMajority.delta(&Blank, &Blank), (Blank, Blank));
    }

    #[test]
    fn approximate_majority_converges_with_margin() {
        // 7 X vs 2 Y: margin large enough that failures are vanishingly
        // rare at this seed count.
        let inputs: Vec<MajorityOpinion> = std::iter::repeat_n(MajorityOpinion::X, 7)
            .chain(std::iter::repeat_n(MajorityOpinion::Y, 2))
            .collect();
        let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, ApproximateMajority)
            .config(ApproximateMajority.initial_configuration(&inputs))
            .seed(5)
            .build()
            .unwrap();
        let out = runner.run_until(200_000, |c| {
            c.as_slice().iter().all(|q| *q == MajorityState::X)
        });
        assert!(out.is_satisfied());
    }

    #[test]
    fn exact_cancellation_conserves_margin() {
        // #SX − #SY is invariant under every rule.
        let margin = |states: &[ExactMajorityState]| {
            states.iter().filter(|q| **q == SX).count() as i64
                - states.iter().filter(|q| **q == SY).count() as i64
        };
        for s in ExactMajority.states() {
            for r in ExactMajority.states() {
                let (s2, r2) = ExactMajority.delta(&s, &r);
                assert_eq!(
                    margin(&[s, r]),
                    margin(&[s2, r2]),
                    "rule ({s:?}, {r:?}) must conserve the margin"
                );
            }
        }
    }

    #[test]
    fn exact_majority_decides_correctly() {
        for (x, y) in [(3, 2), (2, 5), (6, 1)] {
            let inputs: Vec<MajorityOpinion> = std::iter::repeat_n(MajorityOpinion::X, x)
                .chain(std::iter::repeat_n(MajorityOpinion::Y, y))
                .collect();
            let expected = ExactMajority.expected(&inputs);
            let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, ExactMajority)
                .config(ExactMajority.initial_configuration(&inputs))
                .seed(100 + x as u64 * 10 + y as u64)
                .build()
                .unwrap();
            let out = runner.run_until(500_000, |c| {
                unanimous_output(c, |q| ExactMajority.output(q)) == Some(expected)
            });
            assert!(out.is_satisfied(), "{x} X vs {y} Y");
        }
    }

    #[test]
    #[should_panic(expected = "ties")]
    fn exact_majority_rejects_ties() {
        let _ = ExactMajority.expected(&[MajorityOpinion::X, MajorityOpinion::Y]);
    }

    #[test]
    fn outputs_partition_states() {
        assert_eq!(ExactMajority.output(&SX), MajorityOpinion::X);
        assert_eq!(ExactMajority.output(&WX), MajorityOpinion::X);
        assert_eq!(ExactMajority.output(&SY), MajorityOpinion::Y);
        assert_eq!(ExactMajority.output(&WY), MajorityOpinion::Y);
    }

    #[test]
    fn approximate_table_port_runs_on_the_count_backend() {
        use ppfts_engine::convergence::stably;
        use ppfts_engine::StatsOnly;
        use ppfts_population::{CountConfiguration, TableProtocol};
        let table = TableProtocol::from_protocol(&ApproximateMajority);
        for s in ApproximateMajority.states() {
            for r in ApproximateMajority.states() {
                assert_eq!(table.delta(&s, &r), ApproximateMajority.delta(&s, &r));
            }
        }
        // 2:1 margin at n = 300: the minority dies out w.h.p.
        let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, table)
            .population(CountConfiguration::from_groups([
                (MajorityState::X, 200),
                (MajorityState::Y, 100),
            ]))
            .seed(3)
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
        let out = runner.run_batched_until(
            5_000_000,
            256,
            stably(
                |c: &CountConfiguration<MajorityState>| c.count_state(&MajorityState::X) == 300,
                2,
            ),
        );
        assert!(out.is_satisfied());
    }

    #[test]
    fn exact_table_port_runs_on_the_count_backend() {
        use ppfts_engine::convergence::stably;
        use ppfts_engine::StatsOnly;
        use ppfts_population::{unanimous_output_counts, CountConfiguration, TableProtocol};
        let table = TableProtocol::from_protocol(&ExactMajority);
        for s in ExactMajority.states() {
            for r in ExactMajority.states() {
                assert_eq!(table.delta(&s, &r), ExactMajority.delta(&s, &r));
            }
        }
        // 26 X vs 24 Y: exact majority must decide X despite the margin
        // of only 2.
        let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, table)
            .population(CountConfiguration::from_groups([(SX, 26), (SY, 24)]))
            .seed(11)
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
        let out = runner.run_batched_until(
            20_000_000,
            512,
            stably(
                |c: &CountConfiguration<ExactMajorityState>| {
                    unanimous_output_counts(&c.counts(), |q| ExactMajority.output(q))
                        == Some(MajorityOpinion::X)
                },
                2,
            ),
        );
        assert!(out.is_satisfied());
    }
}

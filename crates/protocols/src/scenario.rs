//! Graph-aware workload scenarios: classic protocols on restricted
//! interaction topologies.
//!
//! The protocols in this crate are transition functions and know nothing
//! about *who may meet whom* — that is the scheduling layer's business.
//! This module packages the two canonical graphical workloads of the
//! population-protocol literature (broadcast/epidemic and max-gossip) as
//! ready-to-run scenarios over an explicit [`Topology`]: seeded initial
//! configurations placed at graph positions, convergence predicates, and
//! assembled runners. They are the payloads of the E12 experiment (ring
//! vs. random-regular vs. complete; see `EXPERIMENTS.md`), where the
//! topology's conductance — not the protocol — dictates the convergence
//! exponent: Θ(n log n) interactions on the complete graph and good
//! expanders versus Θ(n²) on the ring, whose two infection frontiers are
//! hit with probability ~2/n per step.
//!
//! # Example
//!
//! ```
//! use ppfts_population::{Population, Topology};
//! use ppfts_protocols::scenario;
//!
//! let ring = Topology::ring(16)?;
//! let mut runner = scenario::epidemic_on(ring, 7)?;
//! let out = runner.run_batched_until(1_000_000, 256, scenario::all_infected);
//! assert!(out.is_satisfied());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use ppfts_engine::{
    EngineError, NoOmissions, StatsOnly, TopologyScheduler, TwoWayModel, TwoWayRunner,
};
use ppfts_population::{Configuration, Population, Topology};

use crate::{Epidemic, MaxGossip};

/// The epidemic runner type [`epidemic_on`] assembles.
pub type EpidemicRunner =
    TwoWayRunner<Epidemic, TopologyScheduler, NoOmissions, StatsOnly, Configuration<bool>>;

/// The gossip runner type [`gossip_on`] assembles.
pub type GossipRunner =
    TwoWayRunner<MaxGossip, TopologyScheduler, NoOmissions, StatsOnly, Configuration<u64>>;

/// The seeded broadcast configuration for `topology`: agent 0 infected,
/// everyone else susceptible. Vertex 0 is a hub for [`Topology::star`]
/// and a corner for [`Topology::grid2d`], so the seed placement is the
/// interesting one for both.
pub fn seeded_epidemic(topology: &Topology) -> Configuration<bool> {
    Configuration::new((0..topology.len()).map(|v| v == 0).collect())
}

/// Whether the epidemic has reached every agent (works on both
/// population backends).
pub fn all_infected<P: Population<State = bool>>(config: &P) -> bool {
    config.count_state(&true) == config.len()
}

/// The distinct-values gossip configuration for `topology`: agent `v`
/// starts with value `v`, so convergence means the maximum `n − 1` has
/// crossed the whole graph — the all-pairs-distances stress test of a
/// topology, where the epidemic only measures eccentricity of the seed.
pub fn distinct_gossip(topology: &Topology) -> Configuration<u64> {
    Configuration::new((0..topology.len() as u64).collect())
}

/// Whether every agent has learned `max` (for [`distinct_gossip`], pass
/// `topology.len() - 1`).
pub fn gossip_done<P: Population<State = u64>>(config: &P, max: u64) -> bool {
    config.count_state(&max) == config.len()
}

/// Assembles the epidemic broadcast scenario on `topology`: the
/// [`Epidemic`] protocol under the fault-free two-way model, scheduled
/// over the graph's edges, seeded at agent 0, on the zero-allocation
/// [`StatsOnly`] path.
///
/// # Errors
///
/// Propagates builder errors (none are reachable for a valid
/// [`Topology`], which is connected and has ≥ 2 vertices by
/// construction).
pub fn epidemic_on(topology: Topology, seed: u64) -> Result<EpidemicRunner, EngineError> {
    let config = seeded_epidemic(&topology);
    TwoWayRunner::builder(TwoWayModel::Tw, Epidemic)
        .config(config)
        .topology(topology)
        .trace_sink(StatsOnly)
        .seed(seed)
        .build()
}

/// Assembles the distinct-values max-gossip scenario on `topology`; see
/// [`epidemic_on`] for the assembly conventions.
///
/// # Errors
///
/// Propagates builder errors (none are reachable for a valid
/// [`Topology`]).
pub fn gossip_on(topology: Topology, seed: u64) -> Result<GossipRunner, EngineError> {
    let config = distinct_gossip(&topology);
    TwoWayRunner::builder(TwoWayModel::Tw, MaxGossip)
        .config(config)
        .topology(topology)
        .trace_sink(StatsOnly)
        .seed(seed)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epidemic_crosses_every_family() {
        let topologies = [
            Topology::ring(24).unwrap(),
            Topology::star(24).unwrap(),
            Topology::grid2d(4, 6).unwrap(),
            Topology::random_regular(24, 3, 2).unwrap(),
            Topology::complete(24).unwrap(),
        ];
        for t in topologies {
            let label = t.to_string();
            let mut runner = epidemic_on(t, 11).unwrap();
            let out = runner.run_batched_until(5_000_000, 256, all_infected);
            assert!(out.is_satisfied(), "epidemic stalled on {label}");
        }
    }

    #[test]
    fn ring_broadcast_is_slower_than_complete() {
        // Same n, same seed: the ring's two-frontier broadcast needs
        // more interactions than the complete graph's epidemic. Averaged
        // over a few seeds to keep the comparison robust.
        let n = 32;
        let (mut ring_total, mut complete_total) = (0u64, 0u64);
        for seed in 0..3 {
            let mut ring = epidemic_on(Topology::ring(n).unwrap(), seed).unwrap();
            ring_total += ring.run_batched_until(10_000_000, 64, all_infected).steps();
            let mut complete = epidemic_on(Topology::complete(n).unwrap(), seed).unwrap();
            complete_total += complete
                .run_batched_until(10_000_000, 64, all_infected)
                .steps();
        }
        assert!(
            ring_total > complete_total,
            "ring {ring_total} vs complete {complete_total}"
        );
    }

    #[test]
    fn gossip_reaches_the_global_max_on_a_grid() {
        let t = Topology::grid2d(4, 4).unwrap();
        let max = t.len() as u64 - 1;
        let mut runner = gossip_on(t, 5).unwrap();
        let out = runner.run_batched_until(5_000_000, 256, |c| gossip_done(c, max));
        assert!(out.is_satisfied());
    }

    #[test]
    fn initial_configurations_are_placed_by_vertex() {
        let t = Topology::star(5).unwrap();
        let epi = seeded_epidemic(&t);
        assert_eq!(epi.as_slice(), &[true, false, false, false, false]);
        let gos = distinct_gossip(&t);
        assert_eq!(gos.as_slice(), &[0, 1, 2, 3, 4]);
        assert!(!all_infected(&epi));
        assert!(!gossip_done(&gos, 4));
    }
}

//! Verification and adversarial constructions for population-protocol
//! simulation.
//!
//! This crate holds both halves of the reproduced paper's evidence:
//!
//! * **Positive** — checkers that certify a simulator run really simulated
//!   its two-way protocol:
//!   [`audit_pairing`] enforces the
//!   Pairing problem's irrevocability/safety/liveness (Definition 5)
//!   step-by-step ([`audit_pairing_batched`] at batch boundaries, for the
//!   witnesses that only need Pairing's sticky violations);
//!   [`model_check`] explores the *exact*
//!   reachable configuration graph of small systems and decides
//!   stabilization under global fairness via terminal strongly-connected
//!   components; [`topology_audit`] certifies graph-aware scheduling
//!   fairness (every edge of a connected topology dealt uniformly, no
//!   off-graph interactions in a recorded trace).
//! * **Negative** — the impossibility constructions of §3 as executable
//!   attack builders: [`attack::lemma1_attack`] assembles the run `I*` of
//!   Lemma 1 / Theorem 3.1 and drives a real simulator into a Pairing
//!   *safety violation*; [`attack::no1_resilience`] and the
//!   omission-free Theorem 3.2 variant expose the dichotomy in the weak
//!   models I1/I2 (either a candidate is not NO1-resilient, or it can be
//!   made unsafe without a single omission); [`optimist::Optimist`] is the
//!   retransmission-based strawman simulator that realizes the unsafe horn
//!   of that dichotomy.
//!
//! The experiment harness in `ppfts-bench` prints these results in the
//! shape of the paper's Figure 4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod attack;
pub mod json;
pub mod model_check;
pub mod optimist;
pub mod pairing_audit;
pub mod schedule_audit;
pub mod topology_audit;

pub use ablation::{always_elects_one_leader, rummy_ablation, sid_leader_graph, RummyAblation};
pub use attack::{
    degradation_report, lemma1_attack, no1_resilience, thm32_attack, AttackOutcome, AttackReport,
    DegradationReport,
};
pub use model_check::{explore_one_way, explore_two_way, ExploreError, StateGraph};
pub use optimist::{Optimist, OptimistState};
pub use pairing_audit::{
    audit_pairing, audit_pairing_batched, pairing_converged, AuditReport, PairingViolation,
};
pub use schedule_audit::{audit_omission_schedule, ScheduleViolation};
pub use topology_audit::{
    audit_scheduler_coverage, audit_simulation_topology, audit_trace_topology, CoverageReport,
    SimulationTopologyReport, SimulationTopologyViolation, TopologyViolation,
};

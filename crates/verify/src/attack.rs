//! Executable impossibility constructions (paper §3).
//!
//! Every impossibility proof in the paper follows the same recipe, built
//! around the Pairing protocol (Definition 5) and the simulator's FTT
//! (Definition 7):
//!
//! 1. find the fastest fault-free two-agent schedule `I` in which the
//!    simulator completes one simulated `(producer, consumer)` transition
//!    — `t = FTT` interactions;
//! 2. for each `k < t`, build the two-agent run `I_k`: the first `k`
//!    steps of `I`, one omissive interaction, then a fair continuation
//!    until the consumer reaches the irrevocable `cs` state (a working
//!    simulator must get there — it cannot distinguish `I_k` from a run
//!    in which the omission never happened);
//! 3. assemble `I*` on `2t+2` agents (`t` producers, `t+2` consumers):
//!    each pair `(a_2k, a_2k+1)` replays `I_k`, with the omissive step
//!    *redirected* so that `a_2t` receives a real transmission and
//!    `a_2t+1` plays the omission generator;
//! 4. run `I*`: the `t` paired consumers plus `a_2t` all reach `cs` —
//!    `t+1 > t = |producers|`, violating Pairing safety.
//!
//! [`lemma1_attack`] implements steps 1–4 against omissive-model
//! simulators (Lemma 1 / Theorem 3.1; demonstrated against `SKnO` run past
//! its omission budget). [`thm32_attack`] implements the Theorem 3.2
//! variant for the weak models I1/I2, in which the redirected interactions
//! are all *real* — the final run contains **zero** omissions, which is
//! why even the NO1 adversary (and in fact no adversary at all) is needed
//! to break any NO1-resilient candidate (demonstrated against
//! [`Optimist`](crate::Optimist)).

use std::error::Error;
use std::fmt;

use ppfts_core::{fastest_transition_time, project, SimulatorState};
use ppfts_engine::{outcome, OneWayFault, OneWayModel, OneWayProgram, OneWayRunner, Planned};
use ppfts_population::{Configuration, Interaction, State};
use ppfts_protocols::{Pairing, PairingState};

/// How an attack ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttackOutcome {
    /// Pairing safety was violated: more consumers were irrevocably paired
    /// than producers exist — the simulator was fooled (the paper's
    /// impossibility materialized).
    SafetyViolated {
        /// Final count of `cs` agents.
        paired: usize,
        /// Number of producers (the bound that was exceeded).
        producers: usize,
    },
    /// The candidate failed to complete a simulated transition under a
    /// single omission — it is not even NO1-resilient, which for the weak
    /// models is the *other* horn of Theorem 3.2's dichotomy.
    NotResilient {
        /// The prefix length `k` whose run `I_k` never completed.
        failed_k: u32,
    },
    /// The construction did not break the simulator (not expected for
    /// a correct reproduction; kept for honesty of reporting).
    Withstood {
        /// Final count of `cs` agents.
        paired: usize,
    },
}

/// Report of one attack construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttackReport {
    /// The interaction model attacked.
    pub model: OneWayModel,
    /// The simulator's measured FTT `t` (Definition 7).
    pub ftt: u32,
    /// Producers in the attacked population (`t`).
    pub producers: usize,
    /// Consumers in the attacked population (`t + 2`).
    pub consumers: usize,
    /// Omissive interactions contained in the final run `I*`.
    pub omissions_in_run: u64,
    /// Total planned interactions executed.
    pub plan_len: usize,
    /// The verdict.
    pub outcome: AttackOutcome,
}

impl AttackReport {
    /// Whether the attack produced the paper's predicted safety violation.
    pub fn violated_safety(&self) -> bool {
        matches!(self.outcome, AttackOutcome::SafetyViolated { .. })
    }
}

/// Attack construction failed structurally.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AttackError {
    /// No fault-free two-agent schedule completed a simulated transition
    /// within the search depth — FTT is undefined for this candidate.
    NoTransition {
        /// The depth that was searched.
        max_depth: u32,
    },
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::NoTransition { max_depth } => write!(
                f,
                "candidate never simulates a transition within {max_depth} fault-free steps"
            ),
        }
    }
}

impl Error for AttackError {}

/// How the omissive step of each `I_k` is redirected in `I*`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Redirect {
    /// Lemma 1 for I3 (reactor-side detection): the `I_k` omission is
    /// oriented `d0 → d1`; in `I*`, a real transmission goes to `a_2t`
    /// (the starter cannot tell the difference) and an omissive one from
    /// `a_2t+1` hits the paired consumer, which detects it like `d1` did.
    Lemma1I3,
    /// Lemma 1 for I4 (starter-side detection), by the paper's symmetry:
    /// the `I_k` omission is oriented `d1 → d0` (so `d1` detects); in
    /// `I*`, the producer's real transmission still goes to `a_2t` (the
    /// reactor of an I4 omission applies the same `g` as the starter of a
    /// real interaction), and the paired consumer *starts* an omissive
    /// interaction towards `a_2t+1`, detecting the loss like `d1` did.
    Lemma1I4,
    /// Theorem 3.2 for I1: a single real transmission to `a_2t` (the
    /// consumer notices nothing on omission, so nothing replaces it).
    Thm32I1,
    /// Theorem 3.2 for I2: real transmissions to `a_2t` and from the
    /// paired consumer to `a_2t+1` (both parties apply the proximity hook
    /// on an I2 omission).
    Thm32I2,
}

impl Redirect {
    /// Orientation of the single omissive interaction appended to each
    /// `I_k` in the two-agent world (0 = `d0`, 1 = `d1`).
    fn omission_orientation(self) -> (usize, usize) {
        match self {
            Redirect::Lemma1I4 => (1, 0),
            _ => (0, 1),
        }
    }
}

fn plan_interaction(s: usize, r: usize) -> Interaction {
    Interaction::new(s, r).expect("attack plans never use self-interactions")
}

/// Simulates the two-agent pair through `schedule` (interaction plus
/// fault decoration per step), returning the final state pair.
fn replay_pair<Sim>(
    model: OneWayModel,
    sim: &Sim,
    mut d0: Sim::State,
    mut d1: Sim::State,
    schedule: &[(Interaction, OneWayFault)],
) -> (Sim::State, Sim::State)
where
    Sim: OneWayProgram,
    Sim::State: State,
{
    for &(interaction, fault) in schedule {
        let s_is_d0 = interaction.starter().index() == 0;
        let (s, r) = if s_is_d0 { (&d0, &d1) } else { (&d1, &d0) };
        let (s2, r2) =
            outcome::one_way(model, sim, s, r, fault).expect("fault permitted by construction");
        if s_is_d0 {
            d0 = s2;
            d1 = r2;
        } else {
            d1 = s2;
            d0 = r2;
        }
    }
    (d0, d1)
}

/// BFS over fault-free two-agent schedules from `(a, b)` until `target`
/// holds; returns a witness schedule. Under global fairness, reachability
/// of the target from the current configuration is exactly what a working
/// simulator must maintain, so BFS is the faithful liveness check.
fn search_target<Sim>(
    model: OneWayModel,
    sim: &Sim,
    a: Sim::State,
    b: Sim::State,
    max_depth: u32,
    target: impl Fn(&Sim::State, &Sim::State) -> bool,
) -> Option<Vec<Interaction>>
where
    Sim: OneWayProgram,
    Sim::State: SimulatorState<Simulated = PairingState> + State,
{
    use std::collections::{HashMap, VecDeque};
    type Pair<S> = (S, S);
    type ParentMap<S> = HashMap<Pair<S>, (Pair<S>, Interaction)>;
    let forward = plan_interaction(0, 1);
    let backward = plan_interaction(1, 0);
    if target(&a, &b) {
        return Some(Vec::new());
    }
    let mut seen: HashMap<Pair<Sim::State>, u32> = HashMap::new();
    let mut parent: ParentMap<Sim::State> = HashMap::new();
    let start = (a, b);
    seen.insert(start.clone(), 0);
    let mut queue = VecDeque::from([start]);
    while let Some(node) = queue.pop_front() {
        let depth = seen[&node];
        if depth >= max_depth {
            continue;
        }
        for interaction in [forward, backward] {
            let next_pair = replay_pair(
                model,
                sim,
                node.0.clone(),
                node.1.clone(),
                &[(interaction, OneWayFault::None)],
            );
            if seen.contains_key(&next_pair) {
                continue;
            }
            seen.insert(next_pair.clone(), depth + 1);
            parent.insert(next_pair.clone(), (node.clone(), interaction));
            if target(&next_pair.0, &next_pair.1) {
                let mut schedule = Vec::new();
                let mut cursor = next_pair;
                while let Some((prev, i)) = parent.get(&cursor) {
                    schedule.push(*i);
                    cursor = prev.clone();
                }
                schedule.reverse();
                return Some(schedule);
            }
            queue.push_back(next_pair);
        }
    }
    None
}

/// Builds and executes the paper's `I*` against a candidate simulator of
/// the Pairing protocol, returning the forensic report.
///
/// * With `Redirect::Lemma1` (via [`lemma1_attack`]) this is the Lemma 1 /
///   Theorem 3.1 construction for omissive models.
/// * With the Theorem 3.2 redirects (via [`thm32_attack`]) the final run
///   is omission-free.
fn build_and_run<Sim>(
    model: OneWayModel,
    sim: Sim,
    make_state: impl Fn(PairingState) -> Sim::State,
    redirect: Redirect,
    max_depth: u32,
    extension_cap: u32,
) -> Result<AttackReport, AttackError>
where
    Sim: OneWayProgram + Clone,
    Sim::State: SimulatorState<Simulated = PairingState> + State,
{
    let d0 = make_state(PairingState::Producer);
    let d1 = make_state(PairingState::Consumer);

    // Step 1: FTT and its witness schedule `I`.
    let witness = fastest_transition_time(model, &sim, &Pairing, d0.clone(), d1.clone(), max_depth)
        .ok_or(AttackError::NoTransition { max_depth })?;
    let t = witness.steps;
    let schedule_i = witness.schedule;

    // Step 2: continuations of each `I_k` until the consumer pairs. The
    // paper extends `I_k` to an arbitrary globally fair run without
    // further omissions; we search the fault-free schedule tree for a
    // completing continuation (BFS), which exists iff the candidate
    // really tolerates the single omission.
    let (om_s, om_r) = redirect.omission_orientation();
    let omission_step = plan_interaction(om_s, om_r);
    let mut continuations: Vec<Vec<Interaction>> = Vec::with_capacity(t as usize);
    for k in 0..t {
        let mut prefix: Vec<(Interaction, OneWayFault)> = schedule_i[..k as usize]
            .iter()
            .map(|&i| (i, OneWayFault::None))
            .collect();
        prefix.push((omission_step, OneWayFault::Omission)); // the single omission of I_k
        let (a, b) = replay_pair(model, &sim, d0.clone(), d1.clone(), &prefix);

        let consumer_paired =
            |_: &Sim::State, b: &Sim::State| *b.simulated() == PairingState::Paired;
        match search_target(model, &sim, a, b, extension_cap, consumer_paired) {
            Some(continuation) => continuations.push(continuation),
            None => {
                return Ok(AttackReport {
                    model,
                    ftt: t,
                    producers: t as usize,
                    consumers: t as usize + 2,
                    omissions_in_run: 0,
                    plan_len: 0,
                    outcome: AttackOutcome::NotResilient { failed_k: k },
                });
            }
        }
    }

    // Step 3: assemble `I*` on 2t+2 agents. Producers at even indices
    // below 2t; consumers at odd indices, plus a_2t and a_2t+1.
    let t_us = t as usize;
    let receiver = 2 * t_us; // a_2t: the extra consumer to be fooled
    let generator = 2 * t_us + 1; // a_2t+1: the omission generator
    let mut plan: Vec<Planned<OneWayFault>> = Vec::new();
    let mut omissions = 0u64;
    let map_pair = |i: Interaction, k: usize| {
        let (s, r) = (i.starter().index(), i.reactor().index());
        plan_interaction(
            if s == 0 { 2 * k } else { 2 * k + 1 },
            if r == 0 { 2 * k } else { 2 * k + 1 },
        )
    };
    for k in 0..t_us {
        for &i in &schedule_i[..k] {
            plan.push(Planned::ok(map_pair(i, k)));
        }
        match redirect {
            Redirect::Lemma1I3 => {
                plan.push(Planned::ok(plan_interaction(2 * k, receiver)));
                plan.push(Planned::omission(plan_interaction(generator, 2 * k + 1)));
                omissions += 1;
            }
            Redirect::Lemma1I4 => {
                plan.push(Planned::ok(plan_interaction(2 * k, receiver)));
                plan.push(Planned::omission(plan_interaction(2 * k + 1, generator)));
                omissions += 1;
            }
            Redirect::Thm32I1 => {
                plan.push(Planned::ok(plan_interaction(2 * k, receiver)));
            }
            Redirect::Thm32I2 => {
                plan.push(Planned::ok(plan_interaction(2 * k, receiver)));
                plan.push(Planned::ok(plan_interaction(2 * k + 1, generator)));
            }
        }
        for &i in &continuations[k] {
            plan.push(Planned::ok(map_pair(i, k)));
        }
    }

    // Step 4: run `I*` and count irrevocably paired consumers.
    let mut states: Vec<Sim::State> = Vec::with_capacity(2 * t_us + 2);
    for _ in 0..t_us {
        states.push(make_state(PairingState::Producer)); // a_2k
        states.push(make_state(PairingState::Consumer)); // a_2k+1
    }
    states.push(make_state(PairingState::Consumer)); // a_2t
    states.push(make_state(PairingState::Consumer)); // a_2t+1
    let mut runner = OneWayRunner::builder(model, sim)
        .config(Configuration::new(states))
        .build()
        .expect("population of 2t+2 >= 2");
    let plan_len = plan.len();
    runner
        .apply_planned(plan)
        .expect("attack plans only use faults permitted by the model");

    let paired = project(runner.config()).count_state(&PairingState::Paired);
    let producers = t_us;
    let outcome = if paired > producers {
        AttackOutcome::SafetyViolated { paired, producers }
    } else {
        AttackOutcome::Withstood { paired }
    };
    Ok(AttackReport {
        model,
        ftt: t,
        producers,
        consumers: t_us + 2,
        omissions_in_run: omissions,
        plan_len,
        outcome,
    })
}

/// The Lemma 1 / Theorem 3.1 construction: builds `I*` with exactly
/// `FTT` omissions against a simulator for an omissive one-way model
/// (I3 or I4) and reports the resulting Pairing safety violation.
///
/// # Errors
///
/// Returns [`AttackError::NoTransition`] if the candidate cannot even
/// complete one fault-free simulated transition within `max_depth` steps.
///
/// # Example
///
/// ```
/// use ppfts_core::{Skno, SknoState};
/// use ppfts_engine::OneWayModel;
/// use ppfts_protocols::Pairing;
/// use ppfts_verify::lemma1_attack;
///
/// // SKnO tolerates 1 omission; Lemma 1 spends FTT = 4 of them.
/// let report = lemma1_attack(
///     OneWayModel::I3,
///     Skno::new(Pairing, 1),
///     SknoState::new,
///     64,
///     256,
/// )?;
/// assert_eq!(report.ftt, 4);
/// assert!(report.violated_safety());
/// # Ok::<(), ppfts_verify::attack::AttackError>(())
/// ```
pub fn lemma1_attack<Sim>(
    model: OneWayModel,
    sim: Sim,
    make_state: impl Fn(PairingState) -> Sim::State,
    max_depth: u32,
    extension_cap: u32,
) -> Result<AttackReport, AttackError>
where
    Sim: OneWayProgram + Clone,
    Sim::State: SimulatorState<Simulated = PairingState> + State,
{
    let redirect = match model {
        OneWayModel::I4 => Redirect::Lemma1I4,
        _ => Redirect::Lemma1I3,
    };
    build_and_run(model, sim, make_state, redirect, max_depth, extension_cap)
}

/// The Theorem 3.2 construction for the weak models I1/I2: the redirected
/// run `I*` contains **zero omissions**, so an NO1-resilient candidate is
/// broken without the adversary doing anything at all.
///
/// # Errors
///
/// Returns [`AttackError::NoTransition`] if the candidate cannot complete
/// one fault-free simulated transition within `max_depth` steps.
///
/// # Panics
///
/// Panics if `model` is not I1 or I2 (the theorem's scope).
pub fn thm32_attack<Sim>(
    model: OneWayModel,
    sim: Sim,
    make_state: impl Fn(PairingState) -> Sim::State,
    max_depth: u32,
    extension_cap: u32,
) -> Result<AttackReport, AttackError>
where
    Sim: OneWayProgram + Clone,
    Sim::State: SimulatorState<Simulated = PairingState> + State,
{
    let redirect = match model {
        OneWayModel::I1 => Redirect::Thm32I1,
        OneWayModel::I2 => Redirect::Thm32I2,
        other => panic!("Theorem 3.2 concerns I1/I2, not {other}"),
    };
    build_and_run(model, sim, make_state, redirect, max_depth, extension_cap)
}

/// Verdict of the Theorem 3.3 (graceful degradation) analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegradationReport {
    /// Whether the candidate fully simulates under every single-omission
    /// schedule tested — the premise of a threshold `t_O ≥ 2`.
    pub tolerates_one_omission: bool,
    /// The Lemma 1 attack's outcome when the adversary spends `FTT`
    /// omissions.
    pub beyond_threshold: AttackOutcome,
}

impl DegradationReport {
    /// Whether Theorem 3.3 is corroborated: the candidate either fails
    /// the single-omission premise, or fails to stop *consistently*
    /// beyond it (it violates safety instead) — so no gracefully
    /// degrading simulator with threshold above 1 exists here.
    pub fn corroborates_thm33(&self) -> bool {
        !self.tolerates_one_omission
            || matches!(self.beyond_threshold, AttackOutcome::SafetyViolated { .. })
    }
}

/// Runs the Theorem 3.3 analysis against a candidate in an omissive
/// one-way model: check the single-omission premise with
/// [`no1_resilience`], then drive the Lemma 1 construction past it.
///
/// # Errors
///
/// Returns [`AttackError::NoTransition`] if the candidate never completes
/// a fault-free simulated transition.
pub fn degradation_report<Sim>(
    model: OneWayModel,
    sim: Sim,
    make_state: impl Fn(PairingState) -> Sim::State + Copy,
    max_depth: u32,
    extension_cap: u32,
) -> Result<DegradationReport, AttackError>
where
    Sim: OneWayProgram + Clone,
    Sim::State: SimulatorState<Simulated = PairingState> + State,
{
    let failures = no1_resilience(model, &sim, make_state, 6, 10_000);
    let report = lemma1_attack(model, sim, make_state, max_depth, extension_cap)?;
    Ok(DegradationReport {
        tolerates_one_omission: failures.is_empty(),
        beyond_threshold: report.outcome,
    })
}

/// Checks NO1-resilience of a candidate on two agents: for every omission
/// position in `0..positions` along an alternating prefix, the full
/// simulated `(producer, consumer)` transition must remain *reachable*
/// (searched by BFS within `max_steps` depth) — the faithful liveness
/// criterion under global fairness.
///
/// Returns the positions at which the candidate failed (empty = resilient).
pub fn no1_resilience<Sim>(
    model: OneWayModel,
    sim: &Sim,
    make_state: impl Fn(PairingState) -> Sim::State,
    positions: u32,
    max_steps: u32,
) -> Vec<u32>
where
    Sim: OneWayProgram,
    Sim::State: SimulatorState<Simulated = PairingState> + State,
{
    let forward = plan_interaction(0, 1);
    let backward = plan_interaction(1, 0);
    let fully_done = |a: &Sim::State, b: &Sim::State| {
        *a.simulated() == PairingState::Spent && *b.simulated() == PairingState::Paired
    };
    let mut failures = Vec::new();
    for omit_at in 0..positions {
        // Alternating prefix with the single omission at `omit_at`.
        let prefix: Vec<(Interaction, OneWayFault)> = (0..=omit_at)
            .map(|step| {
                let interaction = if step % 2 == 0 { forward } else { backward };
                let fault = if step == omit_at {
                    OneWayFault::Omission
                } else {
                    OneWayFault::None
                };
                (interaction, fault)
            })
            .collect();
        let (d0, d1) = replay_pair(
            model,
            sim,
            make_state(PairingState::Producer),
            make_state(PairingState::Consumer),
            &prefix,
        );
        if search_target(model, sim, d0, d1, max_steps, fully_done).is_none() {
            failures.push(omit_at);
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Optimist;
    use ppfts_core::{Skno, SknoState};
    use ppfts_verify_test_helpers::*;

    // Local alias module so the doctest-style helpers stay in one place.
    mod ppfts_verify_test_helpers {
        pub use crate::optimist::OptimistState;
    }

    #[test]
    fn lemma1_breaks_skno_beyond_its_budget() {
        for o in [1u32, 2] {
            let report = lemma1_attack(
                OneWayModel::I3,
                Skno::new(Pairing, o),
                SknoState::new,
                128,
                512,
            )
            .unwrap();
            assert_eq!(report.ftt, 2 * (o + 1));
            assert_eq!(report.omissions_in_run as u32, report.ftt);
            assert!(
                report.violated_safety(),
                "o = {o}: expected violation, got {:?}",
                report.outcome
            );
            if let AttackOutcome::SafetyViolated { paired, producers } = report.outcome {
                assert!(paired > producers, "Lemma 1 promises ≥ t+1 paired");
            }
        }
    }

    #[test]
    fn lemma1_also_breaks_skno_under_i4() {
        let report = lemma1_attack(
            OneWayModel::I4,
            Skno::new(Pairing, 1),
            SknoState::new,
            128,
            512,
        )
        .unwrap();
        assert!(report.violated_safety(), "got {:?}", report.outcome);
    }

    #[test]
    fn skno_is_not_resilient_in_i1_first_horn_of_thm32() {
        // In I1 nobody detects omissions, so SKnO never mints jokers and a
        // single lost token stalls it: the first horn of the dichotomy.
        let failures = no1_resilience(
            OneWayModel::I1,
            &Skno::new(Pairing, 1),
            SknoState::new,
            4,
            2_000,
        );
        assert!(!failures.is_empty());
    }

    #[test]
    fn optimist_is_resilient_but_thm32_breaks_it_with_zero_omissions() {
        // Second horn: Optimist *is* NO1-resilient…
        let failures = no1_resilience(
            OneWayModel::I1,
            &Optimist::new(Pairing),
            OptimistState::new,
            8,
            2_000,
        );
        assert!(failures.is_empty(), "optimist must be NO1-resilient");
        // …so the construction breaks its safety without any omission.
        let report = thm32_attack(
            OneWayModel::I1,
            Optimist::new(Pairing),
            OptimistState::new,
            64,
            256,
        )
        .unwrap();
        assert_eq!(report.omissions_in_run, 0);
        assert!(report.violated_safety(), "got {:?}", report.outcome);
    }

    #[test]
    fn thm32_variant_for_i2() {
        let report = thm32_attack(
            OneWayModel::I2,
            Optimist::new(Pairing),
            OptimistState::new,
            64,
            256,
        )
        .unwrap();
        assert_eq!(report.omissions_in_run, 0);
        assert!(report.violated_safety(), "got {:?}", report.outcome);
    }

    #[test]
    fn skno_within_budget_reports_not_resilient_rather_than_lying() {
        // SKnO with o = 0 claims nothing about omissions; the attack
        // discovers that I_k never completes and says so.
        let report = lemma1_attack(
            OneWayModel::I3,
            Skno::new(Pairing, 0),
            SknoState::new,
            64,
            128,
        )
        .unwrap();
        assert!(matches!(
            report.outcome,
            AttackOutcome::NotResilient { failed_k: 0 }
        ));
    }

    #[test]
    fn degradation_report_corroborates_thm33() {
        let report = degradation_report(
            OneWayModel::I3,
            Skno::new(Pairing, 1),
            SknoState::new,
            128,
            512,
        )
        .unwrap();
        assert!(report.tolerates_one_omission, "SKnO(1) meets the premise");
        assert!(matches!(
            report.beyond_threshold,
            AttackOutcome::SafetyViolated { .. }
        ));
        assert!(report.corroborates_thm33());
    }

    #[test]
    #[should_panic(expected = "Theorem 3.2 concerns I1/I2")]
    fn thm32_rejects_strong_models() {
        let _ = thm32_attack(
            OneWayModel::I3,
            Optimist::new(Pairing),
            OptimistState::new,
            16,
            64,
        );
    }
}

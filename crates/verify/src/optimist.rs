//! `Optimist` — a retransmission-based strawman simulator for the weak
//! omissive models I1/I2.
//!
//! Theorem 3.2 of the paper says simulation in I1 and I2 is impossible
//! even against an adversary inserting a *single* omission. The proof is a
//! dichotomy: a candidate simulator either fails to make progress under
//! one omission (it is not NO1-resilient), or — if it is — the
//! construction of Theorem 3.2 turns its resilience into a Pairing safety
//! violation using **no omissions at all**.
//!
//! `Optimist` realizes the second horn. It is the natural "just keep
//! retransmitting" design: an agent broadcasts, round-robin and forever,
//! its own state announcement plus every completion notice it has
//! witnessed, so any lost transmission is eventually re-sent and the
//! simulator tolerates *any* finite number of omissions. The price is
//! exactly what the theorem predicts: announcements are not consumed
//! atomically, so two different reactors can consume copies of the same
//! announcement, and the Theorem 3.2 redirection produces more paired
//! consumers than producers without a single omission. The
//! [`attack`](crate::attack) module demonstrates this concretely.

use std::collections::VecDeque;

use ppfts_core::{Commit, Role, SimulatorState};
use ppfts_engine::OneWayProgram;
use ppfts_population::{Configuration, State, TwoWayProtocol};

/// A message broadcast by [`Optimist`] agents.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum OptimistMsg<Q> {
    /// "I am in simulated state `q`" (re-sent indefinitely).
    Announce(Q),
    /// "Some reactor consumed announce(`starter`) while in state
    /// `reactor`" (re-sent indefinitely by everyone who has seen it).
    Done {
        /// The consumed starter state.
        starter: Q,
        /// The consuming reactor's old state.
        reactor: Q,
    },
}

/// Per-agent state of the [`Optimist`] simulator.
///
/// Equality/hashing exclude the ghost commit fields, as for the real
/// simulators.
#[derive(Clone, Debug)]
pub struct OptimistState<Q> {
    sim: Q,
    pending: bool,
    dones: VecDeque<(Q, Q)>,
    cursor: u32,
    commit: Option<Commit<Q>>,
    commits: u64,
}

impl<Q: PartialEq> PartialEq for OptimistState<Q> {
    fn eq(&self, other: &Self) -> bool {
        self.sim == other.sim
            && self.pending == other.pending
            && self.dones == other.dones
            && self.cursor == other.cursor
    }
}

impl<Q: Eq> Eq for OptimistState<Q> {}

impl<Q: std::hash::Hash> std::hash::Hash for OptimistState<Q> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.sim.hash(state);
        self.pending.hash(state);
        self.dones.hash(state);
        self.cursor.hash(state);
    }
}

impl<Q: State> OptimistState<Q> {
    /// Initial state around simulated state `q`.
    pub fn new(q: Q) -> Self {
        OptimistState {
            sim: q,
            pending: false,
            dones: VecDeque::new(),
            cursor: 0,
            commit: None,
            commits: 0,
        }
    }

    /// Whether this agent has an announcement outstanding.
    pub fn is_pending(&self) -> bool {
        self.pending
    }

    /// Number of distinct completion notices this agent re-broadcasts.
    pub fn known_dones(&self) -> usize {
        self.dones.len()
    }
}

/// The optimistic retransmitting simulator (see module docs). Works in
/// any one-way model; *unsafe by design* beyond two agents — that is the
/// point of Theorem 3.2.
#[derive(Clone, Debug)]
pub struct Optimist<P> {
    protocol: P,
}

impl<P: TwoWayProtocol> Optimist<P> {
    /// Creates the simulator for `protocol`.
    pub fn new(protocol: P) -> Self {
        Optimist { protocol }
    }

    /// The simulated protocol.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Initial configuration wrapping the given simulated states.
    pub fn initial(sim_states: &[P::State]) -> Configuration<OptimistState<P::State>> {
        sim_states.iter().cloned().map(OptimistState::new).collect()
    }

    /// The message the starter in state `s` transmits next: slot
    /// `cursor mod (dones + 1)` of its broadcast cycle, where the extra
    /// slot is its own announcement.
    fn outgoing(&self, s: &OptimistState<P::State>) -> OptimistMsg<P::State> {
        let slots = s.dones.len() as u32 + 1;
        let slot = s.cursor % slots;
        match s.dones.get(slot as usize) {
            Some((q_s, q_r)) => OptimistMsg::Done {
                starter: q_s.clone(),
                reactor: q_r.clone(),
            },
            None => OptimistMsg::Announce(s.sim.clone()),
        }
    }

    fn remember_done(state: &mut OptimistState<P::State>, done: (P::State, P::State)) {
        if !state.dones.contains(&done) {
            state.dones.push_back(done);
        }
    }
}

impl<P: TwoWayProtocol> OneWayProgram for Optimist<P> {
    type State = OptimistState<P::State>;

    /// `g`: advance the broadcast cursor; announcing marks the agent
    /// pending.
    fn on_proximity(&self, s: &Self::State) -> Self::State {
        let mut s2 = s.clone();
        if matches!(self.outgoing(s), OptimistMsg::Announce(_)) {
            s2.pending = true;
        }
        s2.cursor = s2.cursor.wrapping_add(1);
        s2
    }

    /// `f`: consume the starter's message.
    fn on_receive(&self, s: &Self::State, r: &Self::State) -> Self::State {
        let mut r2 = r.clone();
        match self.outgoing(s) {
            OptimistMsg::Announce(q_s) => {
                // Optimistically play the simulated reactor immediately —
                // without knowing whether someone else already did.
                if !self.protocol.is_noop(&q_s, &r2.sim) {
                    let old = r2.sim.clone();
                    r2.sim = self.protocol.reactor_out(&q_s, &old);
                    Self::remember_done(&mut r2, (q_s.clone(), old.clone()));
                    r2.commit = Some(Commit {
                        role: Role::Reactor,
                        partner: q_s,
                        partner_id: None,
                        seq: r2.commits,
                    });
                    r2.commits += 1;
                }
            }
            OptimistMsg::Done { starter, reactor } => {
                if r2.pending && starter == r2.sim {
                    // Our announcement was consumed: play the simulated
                    // starter.
                    let old = r2.sim.clone();
                    r2.sim = self.protocol.starter_out(&old, &reactor);
                    r2.pending = false;
                    r2.commit = Some(Commit {
                        role: Role::Starter,
                        partner: reactor.clone(),
                        partner_id: None,
                        seq: r2.commits,
                    });
                    r2.commits += 1;
                }
                // Either way, gossip the notice onward.
                Self::remember_done(&mut r2, (starter, reactor));
            }
        }
        r2
    }

    // No omission-detection hooks: in I1 the reactor never notices, and
    // the starter cannot tell an omission from a delivery — retransmission
    // is the only defence available in the weak models, and `Optimist`
    // embraces it.
}

impl<Q: State> SimulatorState for OptimistState<Q> {
    type Simulated = Q;

    fn simulated(&self) -> &Q {
        &self.sim
    }

    fn commit_count(&self) -> u64 {
        self.commits
    }

    fn last_commit(&self) -> Option<&Commit<Q>> {
        self.commit.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfts_core::project;
    use ppfts_engine::{AtMostOneStrategy, OneWayModel, OneWayRunner};
    use ppfts_protocols::{Pairing, PairingState};

    fn sims(c: usize, p: usize) -> Vec<PairingState> {
        Pairing::initial(c, p).as_slice().to_vec()
    }

    fn fully_paired(c: &Configuration<OptimistState<PairingState>>) -> bool {
        let p = project(c);
        p.count_state(&PairingState::Paired) == 1 && p.count_state(&PairingState::Spent) == 1
    }

    #[test]
    fn two_agents_complete_without_omissions() {
        let mut runner = OneWayRunner::builder(OneWayModel::I1, Optimist::new(Pairing))
            .config(Optimist::<Pairing>::initial(&sims(1, 1)))
            .seed(1)
            .build()
            .unwrap();
        let out = runner.run_until(10_000, fully_paired);
        assert!(out.is_satisfied());
    }

    #[test]
    fn no1_resilient_on_two_agents() {
        // One omission anywhere in the first 12 steps cannot stop the full
        // two-way simulation: everything is eventually re-sent.
        for omitted_step in 0..12 {
            let mut runner = OneWayRunner::builder(OneWayModel::I1, Optimist::new(Pairing))
                .config(Optimist::<Pairing>::initial(&sims(1, 1)))
                .adversary(AtMostOneStrategy::at_step(omitted_step))
                .seed(3)
                .build()
                .unwrap();
            let out = runner.run_until(10_000, fully_paired);
            assert!(out.is_satisfied(), "omission at step {omitted_step}");
        }
    }

    #[test]
    fn resilient_in_i2_as_well() {
        for omitted_step in 0..8 {
            let mut runner = OneWayRunner::builder(OneWayModel::I2, Optimist::new(Pairing))
                .config(Optimist::<Pairing>::initial(&sims(1, 1)))
                .adversary(AtMostOneStrategy::at_step(omitted_step))
                .seed(9)
                .build()
                .unwrap();
            let out = runner.run_until(10_000, fully_paired);
            assert!(out.is_satisfied(), "omission at step {omitted_step}");
        }
    }

    #[test]
    fn optimism_is_unsafe_beyond_two_agents() {
        // Even without the Theorem 3.2 construction, duplicated
        // announcements over-pair some schedule: with 3 consumers and 1
        // producer, several consumers can consume the producer's re-sent
        // announcement.
        let mut over_paired = false;
        for seed in 0..20 {
            let mut runner = OneWayRunner::builder(OneWayModel::I1, Optimist::new(Pairing))
                .config(Optimist::<Pairing>::initial(&sims(3, 1)))
                .seed(seed)
                .build()
                .unwrap();
            runner.run(5_000).unwrap();
            if project(runner.config()).count_state(&PairingState::Paired) > 1 {
                over_paired = true;
                break;
            }
        }
        assert!(over_paired, "optimist should over-pair for some schedule");
    }

    #[test]
    fn done_gossip_is_deduplicated() {
        let opt = Optimist::new(Pairing);
        let mut r = OptimistState::new(PairingState::Consumer);
        Optimist::<Pairing>::remember_done(
            &mut r,
            (PairingState::Producer, PairingState::Consumer),
        );
        Optimist::<Pairing>::remember_done(
            &mut r,
            (PairingState::Producer, PairingState::Consumer),
        );
        assert_eq!(r.known_dones(), 1);
        let _ = opt.protocol();
    }
}

//! Replay audits for scheduled-omission adversaries.
//!
//! The schedule fuzzer's core promise is that a found attack is a
//! *faithful* member of the adversary class under test: every omission
//! in the replayed trace was actually scheduled, and the total stays
//! within the class budget (e.g. SKnO's bound `o`). [`audit_omission_schedule`]
//! checks both against a recorded [`Trace`], so a genome that claims to
//! break a simulator can be certified before it is reported.

use ppfts_engine::Trace;
use ppfts_population::{Interaction, State};

/// A way a replayed trace betrayed its claimed omission schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleViolation {
    /// An omissive step the schedule does not permit.
    UnscheduledOmission {
        /// Step index of the rogue omission.
        step: u64,
    },
    /// More omissions than the claimed class budget.
    BudgetExceeded {
        /// Omissions actually observed in the trace.
        injected: u64,
        /// The claimed bound.
        budget: u64,
    },
}

/// Audits a recorded trace against a claimed omission schedule.
///
/// `is_omissive` classifies each step's fault decoration (the caller
/// knows whether `F` is a one-way or two-way fault); `permitted` is the
/// stateless membership test of the claimed schedule — for a compiled
/// genome that is
/// [`OmissionSchedule::permits`](ppfts_engine::OmissionSchedule::permits).
/// `budget` is the adversary-class bound, if any (SKnO's `o`).
///
/// Returns every violation found, in step order with any budget breach
/// last; an empty vector certifies the replay.
///
/// # Example
///
/// ```
/// use ppfts_engine::{OneWayFault, StepRecord, Trace};
/// use ppfts_population::Interaction;
/// use ppfts_verify::{audit_omission_schedule, ScheduleViolation};
///
/// let mut trace: Trace<u8, OneWayFault> = Trace::new();
/// trace.push(StepRecord {
///     index: 0,
///     interaction: Interaction::new(0, 1)?,
///     fault: OneWayFault::Omission,
///     old_starter: 0, old_reactor: 0, new_starter: 0, new_reactor: 0,
/// });
/// // Claimed schedule permits nothing: the omission is rogue.
/// let violations = audit_omission_schedule(
///     &trace,
///     |f| *f == OneWayFault::Omission,
///     |_, _| false,
///     Some(1),
/// );
/// assert_eq!(violations, [ScheduleViolation::UnscheduledOmission { step: 0 }]);
/// # Ok::<(), ppfts_population::PopulationError>(())
/// ```
pub fn audit_omission_schedule<Q: State, F>(
    trace: &Trace<Q, F>,
    mut is_omissive: impl FnMut(&F) -> bool,
    mut permitted: impl FnMut(u64, Interaction) -> bool,
    budget: Option<u64>,
) -> Vec<ScheduleViolation> {
    let mut violations = Vec::new();
    let mut injected = 0u64;
    for record in trace.records() {
        if !is_omissive(&record.fault) {
            continue;
        }
        injected += 1;
        if !permitted(record.index, record.interaction) {
            violations.push(ScheduleViolation::UnscheduledOmission { step: record.index });
        }
    }
    if let Some(budget) = budget {
        if injected > budget {
            violations.push(ScheduleViolation::BudgetExceeded { injected, budget });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfts_engine::{OneWayFault, StepRecord};

    fn record(index: u64, s: usize, r: usize, fault: OneWayFault) -> StepRecord<u8, OneWayFault> {
        StepRecord {
            index,
            interaction: Interaction::new(s, r).unwrap(),
            fault,
            old_starter: 0,
            old_reactor: 0,
            new_starter: 0,
            new_reactor: 0,
        }
    }

    #[test]
    fn faithful_replay_is_certified() {
        let mut trace = Trace::new();
        trace.push(record(0, 0, 1, OneWayFault::None));
        trace.push(record(1, 1, 2, OneWayFault::Omission));
        trace.push(record(2, 2, 3, OneWayFault::None));
        let violations = audit_omission_schedule(
            &trace,
            |f| *f == OneWayFault::Omission,
            |step, _| step == 1,
            Some(1),
        );
        assert!(violations.is_empty());
    }

    #[test]
    fn rogue_omissions_and_budget_breaches_are_reported() {
        let mut trace = Trace::new();
        trace.push(record(0, 0, 1, OneWayFault::Omission));
        trace.push(record(1, 1, 2, OneWayFault::Omission));
        trace.push(record(2, 4, 5, OneWayFault::Omission));
        // Only step 1 is scheduled, and the class allows one omission.
        let violations = audit_omission_schedule(
            &trace,
            |f| *f == OneWayFault::Omission,
            |step, i| step == 1 && i.involves(1.into()),
            Some(1),
        );
        assert_eq!(
            violations,
            [
                ScheduleViolation::UnscheduledOmission { step: 0 },
                ScheduleViolation::UnscheduledOmission { step: 2 },
                ScheduleViolation::BudgetExceeded {
                    injected: 3,
                    budget: 1
                },
            ]
        );
    }

    #[test]
    fn permitted_sees_the_interaction() {
        // A targeted schedule: omissions must involve agent 7.
        let mut trace = Trace::new();
        trace.push(record(0, 7, 1, OneWayFault::Omission));
        trace.push(record(1, 2, 3, OneWayFault::Omission));
        let violations = audit_omission_schedule(
            &trace,
            |f| *f == OneWayFault::Omission,
            |_, i| i.involves(7.into()),
            None,
        );
        assert_eq!(
            violations,
            [ScheduleViolation::UnscheduledOmission { step: 1 }]
        );
    }
}

//! Step-wise auditing of the Pairing problem (paper Definition 5).
//!
//! The Pairing problem is the paper's universal counterexample: every
//! impossibility proof breaks a simulator by driving it into a *safety*
//! violation (more irrevocably-paired consumers than producers), and every
//! possibility proof must preserve all three properties. This module
//! audits an arbitrary execution of a *simulated* Pairing protocol against
//! all three:
//!
//! * **Irrevocability** — only consumers reach `cs`, and an agent in `cs`
//!   never leaves it;
//! * **Safety** — at every step, `#cs ≤ #producers(0)`;
//! * **Liveness** — by the end of the audited window, `#cs` equals
//!   `min(#consumers(0), #producers(0))` and the count is stable.

use ppfts_core::{project, SimulatorState};
use ppfts_engine::{OmissionStrategy, OneWayFault, OneWayRunner, RunOutcome, Scheduler, TraceSink};
use ppfts_population::{AgentId, Configuration, State};
use ppfts_protocols::PairingState;

use ppfts_engine::convergence::stably;
use ppfts_engine::OneWayProgram;

/// A violation of the Pairing problem discovered by the audit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PairingViolation {
    /// An agent left the irrevocable `cs` state.
    Revoked {
        /// The offending agent.
        agent: AgentId,
        /// Engine step at which it happened.
        step: u64,
    },
    /// A non-consumer reached `cs`.
    ForgedPairing {
        /// The offending agent.
        agent: AgentId,
        /// Engine step at which it happened.
        step: u64,
    },
    /// The number of `cs` agents exceeded the number of producers.
    SafetyExceeded {
        /// The observed `cs` count.
        paired: usize,
        /// The initial producer count (the bound).
        producers: usize,
        /// Engine step at which it happened.
        step: u64,
    },
}

/// Outcome of [`audit_pairing`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditReport {
    /// Initial number of consumers.
    pub consumers: usize,
    /// Initial number of producers.
    pub producers: usize,
    /// All violations found, in order of occurrence.
    pub violations: Vec<PairingViolation>,
    /// Final `cs` count.
    pub paired_final: usize,
    /// Whether liveness held: the final `cs` count equals
    /// `min(consumers, producers)`.
    pub live: bool,
    /// Steps executed.
    pub steps: u64,
}

impl AuditReport {
    /// Whether irrevocability and safety held throughout.
    pub fn safe(&self) -> bool {
        self.violations.is_empty()
    }

    /// Whether the execution solved the Pairing problem in the audited
    /// window.
    pub fn solved(&self) -> bool {
        self.safe() && self.live
    }
}

/// Runs `runner` for up to `max_steps`, auditing the projected Pairing
/// protocol at every step; stops early once liveness is reached and the
/// system has been stable for `min(1000, max_steps/10)` further steps.
///
/// The runner's simulator states must project onto [`PairingState`].
///
/// # Example
///
/// See `tests/simulation_correctness.rs` in the repository root, which
/// audits `SKnO` and `SID` end-to-end.
pub fn audit_pairing<P, S, A, T>(
    runner: &mut OneWayRunner<P, S, A, T>,
    max_steps: u64,
) -> AuditReport
where
    P: OneWayProgram,
    P::State: SimulatorState<Simulated = PairingState> + State,
    S: Scheduler,
    A: OmissionStrategy,
    T: TraceSink<P::State, OneWayFault>,
{
    let mut monitor = PairingMonitor::new(runner.config());
    let stability_window = (max_steps / 10).clamp(1, 1000);
    let mut stable_for = 0u64;
    let mut steps = 0u64;
    while steps < max_steps {
        if runner.step().is_err() {
            break;
        }
        steps += 1;
        let paired_now = monitor.observe(runner.config(), steps);
        if paired_now == monitor.expected {
            stable_for += 1;
            if stable_for >= stability_window {
                break;
            }
        } else {
            stable_for = 0;
        }
    }
    monitor.into_report(runner.config(), steps)
}

/// The batched counterpart of [`audit_pairing`]: drives the runner with
/// `run_batched` and audits the projected Pairing protocol at *batch
/// boundaries* instead of every step.
///
/// Sampled auditing trades resolution for speed: a violation that appears
/// and disappears strictly inside one batch escapes it, but Pairing's
/// interesting violations are sticky — `cs` is irrevocable, so a forged
/// or excess pairing persists to the next boundary — which is what makes
/// the boundary audit sound for the possibility witnesses (Figure 4's
/// green cells). The attack constructions keep the exact per-step
/// machinery. Stability is counted in engine steps, like
/// [`audit_pairing`].
///
/// # Panics
///
/// Panics if `batch` is zero.
pub fn audit_pairing_batched<P, S, A, T>(
    runner: &mut OneWayRunner<P, S, A, T>,
    max_steps: u64,
    batch: u64,
) -> AuditReport
where
    P: OneWayProgram,
    P::State: SimulatorState<Simulated = PairingState> + State,
    S: Scheduler,
    A: OmissionStrategy,
    T: TraceSink<P::State, OneWayFault>,
{
    assert!(batch > 0, "batch size must be positive");
    let mut monitor = PairingMonitor::new(runner.config());
    let stability_window = (max_steps / 10).clamp(1, 1000);
    let mut stable_steps = 0u64;
    let mut steps = 0u64;
    while steps < max_steps {
        let take = (max_steps - steps).min(batch);
        if runner.run_batched(take, take).is_err() {
            break;
        }
        steps += take;
        let paired_now = monitor.observe(runner.config(), steps);
        if paired_now == monitor.expected {
            stable_steps += take;
            if stable_steps >= stability_window {
                break;
            }
        } else {
            stable_steps = 0;
        }
    }
    monitor.into_report(runner.config(), steps)
}

/// Convenience: run to completion with a plain convergence predicate, no
/// audit, and report whether Pairing stabilized. Used by benches where
/// the per-step audit would dominate the measurement; runs on the batched
/// path with the predicate wrapped in [`stably`] so a mid-handshake
/// sample cannot end the run.
pub fn pairing_converged<P, S, A, T>(
    runner: &mut OneWayRunner<P, S, A, T>,
    max_steps: u64,
) -> RunOutcome
where
    P: OneWayProgram,
    P::State: SimulatorState<Simulated = PairingState> + State,
    S: Scheduler,
    A: OmissionStrategy,
    T: TraceSink<P::State, OneWayFault>,
{
    let initial = project(runner.config());
    let expected = initial
        .count_state(&PairingState::Consumer)
        .min(initial.count_state(&PairingState::Producer));
    runner.run_batched_until(
        max_steps,
        CONVERGED_BATCH,
        stably(
            |c| project(c).count_state(&PairingState::Paired) == expected,
            2,
        ),
    )
}

/// Batch size of [`pairing_converged`]'s boundary checks.
const CONVERGED_BATCH: u64 = 256;

/// Shared audit state: the initial census plus the per-agent pairing
/// history the irrevocability check needs.
struct PairingMonitor {
    consumers: usize,
    producers: usize,
    expected: usize,
    was_paired: Vec<bool>,
    initially_consumer: Vec<bool>,
    violations: Vec<PairingViolation>,
}

impl PairingMonitor {
    fn new<Q>(config: &Configuration<Q>) -> Self
    where
        Q: SimulatorState<Simulated = PairingState> + State,
    {
        let initial = project(config);
        let consumers = initial.count_state(&PairingState::Consumer);
        let producers = initial.count_state(&PairingState::Producer);
        let mut was_paired = vec![false; initial.len()];
        let mut initially_consumer = vec![false; initial.len()];
        for (agent, q) in initial.iter() {
            initially_consumer[agent.index()] = *q == PairingState::Consumer;
            was_paired[agent.index()] = *q == PairingState::Paired;
        }
        PairingMonitor {
            consumers,
            producers,
            expected: consumers.min(producers),
            was_paired,
            initially_consumer,
            violations: Vec::new(),
        }
    }

    /// Audits the projected configuration at `step`, recording any
    /// violations, and returns the current paired count.
    fn observe<Q>(&mut self, config: &Configuration<Q>, step: u64) -> usize
    where
        Q: SimulatorState<Simulated = PairingState> + State,
    {
        let proj = project(config);
        let paired = proj.count_state(&PairingState::Paired);
        if paired > self.producers {
            self.violations.push(PairingViolation::SafetyExceeded {
                paired,
                producers: self.producers,
                step,
            });
        }
        for (agent, q) in proj.iter() {
            let is_paired = *q == PairingState::Paired;
            if self.was_paired[agent.index()] && !is_paired {
                self.violations
                    .push(PairingViolation::Revoked { agent, step });
            }
            if is_paired
                && !self.was_paired[agent.index()]
                && !self.initially_consumer[agent.index()]
            {
                self.violations
                    .push(PairingViolation::ForgedPairing { agent, step });
            }
            self.was_paired[agent.index()] = is_paired;
        }
        paired
    }

    fn into_report<Q>(self, config: &Configuration<Q>, steps: u64) -> AuditReport
    where
        Q: SimulatorState<Simulated = PairingState> + State,
    {
        let paired_final = project(config).count_state(&PairingState::Paired);
        AuditReport {
            consumers: self.consumers,
            producers: self.producers,
            violations: self.violations,
            paired_final,
            live: paired_final == self.expected,
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfts_core::{Sid, Skno};
    use ppfts_engine::{BoundedStrategy, OneWayModel};
    use ppfts_protocols::Pairing;

    fn sims(c: usize, p: usize) -> Vec<PairingState> {
        Pairing::initial(c, p).as_slice().to_vec()
    }

    #[test]
    fn sid_passes_the_full_audit() {
        let mut runner = OneWayRunner::builder(OneWayModel::Io, Sid::new(Pairing))
            .config(Sid::<Pairing>::initial(&sims(3, 2)))
            .seed(4)
            .build()
            .unwrap();
        let report = audit_pairing(&mut runner, 400_000);
        assert!(report.safe(), "violations: {:?}", report.violations);
        assert!(report.live, "paired {} of 2", report.paired_final);
        assert!(report.solved());
    }

    #[test]
    fn skno_passes_within_its_omission_budget() {
        let o = 1;
        let mut runner = OneWayRunner::builder(OneWayModel::I3, Skno::new(Pairing, o))
            .config(Skno::<Pairing>::initial(&sims(2, 3)))
            .adversary(BoundedStrategy::new(0.02, o as u64))
            .seed(8)
            .build()
            .unwrap();
        let report = audit_pairing(&mut runner, 400_000);
        assert!(report.safe(), "violations: {:?}", report.violations);
        assert!(report.live);
        assert_eq!(report.paired_final, 2);
    }

    #[test]
    fn batched_audit_matches_scalar_verdict() {
        use ppfts_engine::StatsOnly;
        let build = || {
            OneWayRunner::builder(OneWayModel::Io, Sid::new(Pairing))
                .config(Sid::<Pairing>::initial(&sims(3, 2)))
                .seed(4)
                .trace_sink(StatsOnly)
                .build()
                .unwrap()
        };
        let scalar = audit_pairing(&mut build(), 400_000);
        let batched = audit_pairing_batched(&mut build(), 400_000, 128);
        assert!(batched.safe(), "violations: {:?}", batched.violations);
        assert!(batched.live);
        assert!(batched.solved());
        assert_eq!(batched.paired_final, scalar.paired_final);
        assert_eq!(batched.consumers, scalar.consumers);
        assert_eq!(batched.producers, scalar.producers);
        assert!(
            batched.steps.is_multiple_of(128) || batched.steps == 400_000,
            "stops at batch boundaries, got {}",
            batched.steps
        );
    }

    #[test]
    fn pairing_converged_stabilizes_on_the_batched_path() {
        let mut runner = OneWayRunner::builder(OneWayModel::Io, Sid::new(Pairing))
            .config(Sid::<Pairing>::initial(&sims(2, 2)))
            .seed(5)
            .build()
            .unwrap();
        let out = pairing_converged(&mut runner, 2_000_000);
        assert!(out.is_satisfied());
        assert_eq!(
            project(runner.config()).count_state(&PairingState::Paired),
            2
        );
    }

    #[test]
    fn report_counts_initial_groups() {
        let mut runner = OneWayRunner::builder(OneWayModel::Io, Sid::new(Pairing))
            .config(Sid::<Pairing>::initial(&sims(4, 1)))
            .seed(2)
            .build()
            .unwrap();
        let report = audit_pairing(&mut runner, 200_000);
        assert_eq!(report.consumers, 4);
        assert_eq!(report.producers, 1);
        assert_eq!(report.paired_final, 1);
    }
}

//! Step-wise auditing of the Pairing problem (paper Definition 5).
//!
//! The Pairing problem is the paper's universal counterexample: every
//! impossibility proof breaks a simulator by driving it into a *safety*
//! violation (more irrevocably-paired consumers than producers), and every
//! possibility proof must preserve all three properties. This module
//! audits an arbitrary execution of a *simulated* Pairing protocol against
//! all three:
//!
//! * **Irrevocability** — only consumers reach `cs`, and an agent in `cs`
//!   never leaves it;
//! * **Safety** — at every step, `#cs ≤ #producers(0)`;
//! * **Liveness** — by the end of the audited window, `#cs` equals
//!   `min(#consumers(0), #producers(0))` and the count is stable.

use ppfts_core::{project, SimulatorState};
use ppfts_engine::{OmissionStrategy, OneWayRunner, RunOutcome, Scheduler};
use ppfts_population::{AgentId, Configuration, State};
use ppfts_protocols::PairingState;

use ppfts_engine::OneWayProgram;

/// A violation of the Pairing problem discovered by the audit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PairingViolation {
    /// An agent left the irrevocable `cs` state.
    Revoked {
        /// The offending agent.
        agent: AgentId,
        /// Engine step at which it happened.
        step: u64,
    },
    /// A non-consumer reached `cs`.
    ForgedPairing {
        /// The offending agent.
        agent: AgentId,
        /// Engine step at which it happened.
        step: u64,
    },
    /// The number of `cs` agents exceeded the number of producers.
    SafetyExceeded {
        /// The observed `cs` count.
        paired: usize,
        /// The initial producer count (the bound).
        producers: usize,
        /// Engine step at which it happened.
        step: u64,
    },
}

/// Outcome of [`audit_pairing`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditReport {
    /// Initial number of consumers.
    pub consumers: usize,
    /// Initial number of producers.
    pub producers: usize,
    /// All violations found, in order of occurrence.
    pub violations: Vec<PairingViolation>,
    /// Final `cs` count.
    pub paired_final: usize,
    /// Whether liveness held: the final `cs` count equals
    /// `min(consumers, producers)`.
    pub live: bool,
    /// Steps executed.
    pub steps: u64,
}

impl AuditReport {
    /// Whether irrevocability and safety held throughout.
    pub fn safe(&self) -> bool {
        self.violations.is_empty()
    }

    /// Whether the execution solved the Pairing problem in the audited
    /// window.
    pub fn solved(&self) -> bool {
        self.safe() && self.live
    }
}

/// Runs `runner` for up to `max_steps`, auditing the projected Pairing
/// protocol at every step; stops early once liveness is reached and the
/// system has been stable for `min(1000, max_steps/10)` further steps.
///
/// The runner's simulator states must project onto [`PairingState`].
///
/// # Example
///
/// See `tests/simulation_correctness.rs` in the repository root, which
/// audits `SKnO` and `SID` end-to-end.
pub fn audit_pairing<P, S, A>(runner: &mut OneWayRunner<P, S, A>, max_steps: u64) -> AuditReport
where
    P: OneWayProgram,
    P::State: SimulatorState<Simulated = PairingState> + State,
    S: Scheduler,
    A: OmissionStrategy,
{
    let initial = project(runner.config());
    let consumers = initial.count_state(&PairingState::Consumer);
    let producers = initial.count_state(&PairingState::Producer);
    let expected = consumers.min(producers);

    let mut violations = Vec::new();
    let mut was_paired = vec![false; initial.len()];
    let mut initially_consumer = vec![false; initial.len()];
    for (agent, q) in initial.iter() {
        initially_consumer[agent.index()] = *q == PairingState::Consumer;
        was_paired[agent.index()] = *q == PairingState::Paired;
    }

    let check = |config: &Configuration<P::State>,
                 step: u64,
                 was_paired: &mut Vec<bool>,
                 violations: &mut Vec<PairingViolation>| {
        let proj = project(config);
        let paired = proj.count_state(&PairingState::Paired);
        if paired > producers {
            violations.push(PairingViolation::SafetyExceeded {
                paired,
                producers,
                step,
            });
        }
        for (agent, q) in proj.iter() {
            let is_paired = *q == PairingState::Paired;
            if was_paired[agent.index()] && !is_paired {
                violations.push(PairingViolation::Revoked { agent, step });
            }
            if is_paired && !was_paired[agent.index()] && !initially_consumer[agent.index()] {
                violations.push(PairingViolation::ForgedPairing { agent, step });
            }
            was_paired[agent.index()] = is_paired;
        }
    };

    let stability_window = (max_steps / 10).clamp(1, 1000);
    let mut stable_for = 0u64;
    let mut steps = 0u64;
    while steps < max_steps {
        if runner.step().is_err() {
            break;
        }
        steps += 1;
        check(runner.config(), steps, &mut was_paired, &mut violations);
        let paired_now = project(runner.config()).count_state(&PairingState::Paired);
        if paired_now == expected {
            stable_for += 1;
            if stable_for >= stability_window {
                break;
            }
        } else {
            stable_for = 0;
        }
    }

    let paired_final = project(runner.config()).count_state(&PairingState::Paired);
    AuditReport {
        consumers,
        producers,
        violations,
        paired_final,
        live: paired_final == expected,
        steps,
    }
}

/// Convenience: run to completion with a plain predicate, no audit, and
/// report whether Pairing stabilized. Used by benches where the per-step
/// audit would dominate the measurement.
pub fn pairing_converged<P, S, A>(runner: &mut OneWayRunner<P, S, A>, max_steps: u64) -> RunOutcome
where
    P: OneWayProgram,
    P::State: SimulatorState<Simulated = PairingState> + State,
    S: Scheduler,
    A: OmissionStrategy,
{
    let initial = project(runner.config());
    let expected = initial
        .count_state(&PairingState::Consumer)
        .min(initial.count_state(&PairingState::Producer));
    runner.run_until(max_steps, |c| {
        project(c).count_state(&PairingState::Paired) == expected
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfts_core::{Sid, Skno};
    use ppfts_engine::{BoundedStrategy, OneWayModel};
    use ppfts_protocols::Pairing;

    fn sims(c: usize, p: usize) -> Vec<PairingState> {
        Pairing::initial(c, p).as_slice().to_vec()
    }

    #[test]
    fn sid_passes_the_full_audit() {
        let mut runner = OneWayRunner::builder(OneWayModel::Io, Sid::new(Pairing))
            .config(Sid::<Pairing>::initial(&sims(3, 2)))
            .seed(4)
            .build()
            .unwrap();
        let report = audit_pairing(&mut runner, 400_000);
        assert!(report.safe(), "violations: {:?}", report.violations);
        assert!(report.live, "paired {} of 2", report.paired_final);
        assert!(report.solved());
    }

    #[test]
    fn skno_passes_within_its_omission_budget() {
        let o = 1;
        let mut runner = OneWayRunner::builder(OneWayModel::I3, Skno::new(Pairing, o))
            .config(Skno::<Pairing>::initial(&sims(2, 3)))
            .adversary(BoundedStrategy::new(0.02, o as u64))
            .seed(8)
            .build()
            .unwrap();
        let report = audit_pairing(&mut runner, 400_000);
        assert!(report.safe(), "violations: {:?}", report.violations);
        assert!(report.live);
        assert_eq!(report.paired_final, 2);
    }

    #[test]
    fn report_counts_initial_groups() {
        let mut runner = OneWayRunner::builder(OneWayModel::Io, Sid::new(Pairing))
            .config(Sid::<Pairing>::initial(&sims(4, 1)))
            .seed(2)
            .build()
            .unwrap();
        let report = audit_pairing(&mut runner, 200_000);
        assert_eq!(report.consumers, 4);
        assert_eq!(report.producers, 1);
        assert_eq!(report.paired_final, 1);
    }
}

//! Minimal JSON layer: a recursive-descent parser to a [`Value`] tree
//! and a string escaper for emitting JSONL records. The build
//! environment is offline (no serde), and the consumers — scenario
//! manifests and the per-job ledger in `ppfts-sweep` (which re-exports
//! this module), schedule genomes in `ppfts-fuzz` — need exactly
//! standard JSON with no extensions, so the whole layer fits in one
//! small module. It lives here rather than in `ppfts-sweep` so the
//! fuzzer can use it without closing a `bench → fuzz → sweep → bench`
//! dependency cycle. (The `ppfts_bench::regression` parser is
//! shape-specific to the bench report; this one is general.)

use std::fmt;

/// A parsed JSON value. Numbers are `f64` — every quantity a manifest
/// carries (sizes, seeds, budgets up to 2⁵³) is exactly representable.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order (duplicate keys are kept; lookups see
    /// the first).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object; `None` on missing keys or non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly (no fraction, no sign, in `u64` range).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= 9_007_199_254_740_992.0).then_some(n as u64)
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure, with byte offset context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What the parser expected.
    pub expected: &'static str,
    /// Byte offset in the input where parsing stopped.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expected {} at byte {}", self.expected, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(ParseError {
            expected: "end of input",
            at: p.pos,
        });
    }
    Ok(value)
}

/// Escapes `s` for embedding in a JSON string literal (quotes not
/// included).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect(&mut self, b: u8, what: &'static str) -> Result<(), ParseError> {
        if self.next() == Some(b) {
            Ok(())
        } else {
            Err(ParseError {
                expected: what,
                at: self.pos.saturating_sub(1),
            })
        }
    }

    fn literal(&mut self, word: &'static str, what: &'static str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(ParseError {
                expected: what,
                at: self.pos,
            })
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", "'true'").map(|()| Value::Bool(true)),
            Some(b'f') => self
                .literal("false", "'false'")
                .map(|()| Value::Bool(false)),
            Some(b'n') => self.literal("null", "'null'").map(|()| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(ParseError {
                expected: "a JSON value",
                at: self.pos,
            }),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "'{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "':'")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.next() {
                Some(b',') => {}
                Some(b'}') => return Ok(Value::Obj(members)),
                _ => {
                    return Err(ParseError {
                        expected: "',' or '}'",
                        at: self.pos.saturating_sub(1),
                    })
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "'['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.next() {
                Some(b',') => {}
                Some(b']') => return Ok(Value::Arr(items)),
                _ => {
                    return Err(ParseError {
                        expected: "',' or ']'",
                        at: self.pos.saturating_sub(1),
                    })
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "'\"'")?;
        let mut out = String::new();
        loop {
            match self.next() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = self
                            .bytes
                            .get(self.pos..self.pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(ParseError {
                                expected: "four hex digits",
                                at: self.pos,
                            })?;
                        self.pos += 4;
                        // Surrogate pairs don't occur in manifests;
                        // reject rather than mis-decode.
                        out.push(char::from_u32(hex).ok_or(ParseError {
                            expected: "a non-surrogate code point",
                            at: self.pos - 4,
                        })?);
                    }
                    _ => {
                        return Err(ParseError {
                            expected: "a string escape",
                            at: self.pos.saturating_sub(1),
                        })
                    }
                },
                Some(_) => {
                    // Collect the raw UTF-8 run up to the next quote or
                    // backslash in one go.
                    let start = self.pos - 1;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).map_err(
                        |_| ParseError {
                            expected: "valid UTF-8",
                            at: start,
                        },
                    )?);
                }
                None => {
                    return Err(ParseError {
                        expected: "a closing '\"'",
                        at: self.pos,
                    })
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b'0'..=b'9') = self.peek() {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while let Some(b'0'..=b'9') = self.peek() {
                self.pos += 1;
            }
        }
        if let Some(b'e' | b'E') = self.peek() {
            self.pos += 1;
            if let Some(b'+' | b'-') = self.peek() {
                self.pos += 1;
            }
            while let Some(b'0'..=b'9') = self.peek() {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or(ParseError {
                expected: "a number",
                at: start,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Value::Null));
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Value::Num(12.0).as_u64(), Some(12));
        assert_eq!(Value::Num(12.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
        assert_eq!(Value::Str("12".into()).as_u64(), None);
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let err = parse("{} x").unwrap_err();
        assert_eq!(err.expected, "end of input");
    }

    #[test]
    fn torn_documents_are_errors_not_panics() {
        for torn in ["{\"a\": 1", "{\"a\"", "[1, 2", "\"abc", "{\"a\": }", ""] {
            assert!(parse(torn).is_err(), "accepted torn input {torn:?}");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn unicode_escapes_decode() {
        // Both the \uXXXX escape path and the raw multi-byte UTF-8 run.
        let v = parse(r#""A\u00e9 é""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé é"));
    }
}

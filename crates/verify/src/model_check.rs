//! Exhaustive model checking of small populations.
//!
//! Because agents are anonymous, the reachable *multiset* graph of a small
//! system is tiny, and global fairness has an exact finite-state
//! characterization: a GF execution eventually visits exactly the
//! configurations of one **terminal strongly-connected component** of the
//! reachability graph (a closed, successor-complete set of
//! infinitely-recurring configurations is strongly connected and terminal,
//! and conversely). So:
//!
//! > the population *stably computes* `y` from `C₀` **iff** every terminal
//! > SCC reachable from `C₀` consists of configurations with unanimous
//! > output `y`.
//!
//! This turns the paper's GF-liveness claims (e.g. the Pairing problem's
//! liveness, the progress of `SID`'s handshake chain) into decidable
//! checks for small `n` — no sampling, no schedules.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use ppfts_engine::{outcome, OneWayModel, OneWayProgram, TwoWayModel, TwoWayProgram};
use ppfts_population::{Configuration, Multiset, State};

/// Exploration failed.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExploreError {
    /// The reachable configuration graph exceeded the given cap.
    TooManyConfigs {
        /// The cap that was hit.
        limit: usize,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::TooManyConfigs { limit } => {
                write!(
                    f,
                    "reachable configuration graph exceeded {limit} configurations"
                )
            }
        }
    }
}

impl Error for ExploreError {}

/// The reachable configuration graph of an anonymous population.
///
/// Configurations are canonicalized as sorted multisets of interned
/// states, so permutations of agents collapse into one node.
#[derive(Clone, Debug)]
pub struct StateGraph<Q: State> {
    states: Vec<Q>,
    configs: Vec<Vec<u32>>,
    edges: Vec<Vec<usize>>,
}

impl<Q: State> StateGraph<Q> {
    /// Number of reachable (canonical) configurations.
    pub fn config_count(&self) -> usize {
        self.configs.len()
    }

    /// Number of distinct local states discovered.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The multiset view of configuration `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn config(&self, index: usize) -> Multiset<Q> {
        self.configs[index]
            .iter()
            .map(|&id| self.states[id as usize].clone())
            .collect()
    }

    /// The terminal strongly-connected components, as lists of
    /// configuration indices. GF executions converge into exactly one of
    /// these.
    pub fn terminal_sccs(&self) -> Vec<Vec<usize>> {
        let sccs = self.tarjan();
        let mut comp_of = vec![usize::MAX; self.configs.len()];
        for (ci, comp) in sccs.iter().enumerate() {
            for &node in comp {
                comp_of[node] = ci;
            }
        }
        sccs.into_iter()
            .enumerate()
            .filter(|(ci, comp)| {
                comp.iter()
                    .all(|&node| self.edges[node].iter().all(|&succ| comp_of[succ] == *ci))
            })
            .map(|(_, comp)| comp)
            .collect()
    }

    /// Whether **every** GF execution stabilizes into configurations
    /// satisfying `pred` — i.e. every terminal SCC consists of `pred`
    /// configurations only.
    pub fn always_stabilizes(&self, mut pred: impl FnMut(&Multiset<Q>) -> bool) -> bool {
        self.terminal_sccs()
            .iter()
            .all(|comp| comp.iter().all(|&node| pred(&self.config(node))))
    }

    /// Whether some reachable configuration satisfies `pred`.
    pub fn some_reachable(&self, mut pred: impl FnMut(&Multiset<Q>) -> bool) -> bool {
        (0..self.config_count()).any(|i| pred(&self.config(i)))
    }

    /// Whether `pred` holds in every reachable configuration (a global
    /// invariant, e.g. Pairing safety).
    pub fn invariant(&self, mut pred: impl FnMut(&Multiset<Q>) -> bool) -> bool {
        (0..self.config_count()).all(|i| pred(&self.config(i)))
    }

    /// Iterative Tarjan SCC (configurations can number in the tens of
    /// thousands; recursion would overflow).
    fn tarjan(&self) -> Vec<Vec<usize>> {
        let n = self.configs.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut sccs: Vec<Vec<usize>> = Vec::new();
        // Explicit DFS stack: (node, next edge position).
        let mut call: Vec<(usize, usize)> = Vec::new();

        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            call.push((root, 0));
            index[root] = next_index;
            low[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;

            while let Some(&mut (node, ref mut edge_pos)) = call.last_mut() {
                if *edge_pos < self.edges[node].len() {
                    let succ = self.edges[node][*edge_pos];
                    *edge_pos += 1;
                    if index[succ] == usize::MAX {
                        index[succ] = next_index;
                        low[succ] = next_index;
                        next_index += 1;
                        stack.push(succ);
                        on_stack[succ] = true;
                        call.push((succ, 0));
                    } else if on_stack[succ] {
                        low[node] = low[node].min(index[succ]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        low[parent] = low[parent].min(low[node]);
                    }
                    if low[node] == index[node] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == node {
                                break;
                            }
                        }
                        sccs.push(comp);
                    }
                }
            }
        }
        sccs
    }
}

struct Interner<Q: State> {
    table: HashMap<Q, u32>,
    states: Vec<Q>,
}

impl<Q: State> Interner<Q> {
    fn new() -> Self {
        Interner {
            table: HashMap::new(),
            states: Vec::new(),
        }
    }

    fn intern(&mut self, q: &Q) -> u32 {
        if let Some(&id) = self.table.get(q) {
            return id;
        }
        let id = self.states.len() as u32;
        self.table.insert(q.clone(), id);
        self.states.push(q.clone());
        id
    }
}

fn canonical(mut ids: Vec<u32>) -> Vec<u32> {
    ids.sort_unstable();
    ids
}

fn explore<Q: State>(
    c0: &Configuration<Q>,
    max_configs: usize,
    mut successors: impl FnMut(&[Q]) -> Vec<Vec<Q>>,
) -> Result<StateGraph<Q>, ExploreError> {
    let mut interner = Interner::new();
    let root: Vec<u32> = canonical(c0.as_slice().iter().map(|q| interner.intern(q)).collect());
    let mut node_of: HashMap<Vec<u32>, usize> = HashMap::new();
    let mut configs: Vec<Vec<u32>> = vec![root.clone()];
    let mut edges: Vec<Vec<usize>> = vec![Vec::new()];
    node_of.insert(root, 0);

    let mut frontier = vec![0usize];
    while let Some(node) = frontier.pop() {
        let concrete: Vec<Q> = configs[node]
            .iter()
            .map(|&id| interner.states[id as usize].clone())
            .collect();
        for succ_states in successors(&concrete) {
            let ids = canonical(succ_states.iter().map(|q| interner.intern(q)).collect());
            let succ_node = match node_of.get(&ids) {
                Some(&existing) => existing,
                None => {
                    if configs.len() >= max_configs {
                        return Err(ExploreError::TooManyConfigs { limit: max_configs });
                    }
                    let fresh = configs.len();
                    node_of.insert(ids.clone(), fresh);
                    configs.push(ids);
                    edges.push(Vec::new());
                    frontier.push(fresh);
                    fresh
                }
            };
            if !edges[node].contains(&succ_node) {
                edges[node].push(succ_node);
            }
        }
    }

    Ok(StateGraph {
        states: interner.states,
        configs,
        edges,
    })
}

/// Explores the reachable configuration graph of a **two-way** program
/// under `model`. When the model permits omissions, the graph includes
/// every omissive outcome (the UO adversary's choices); pass
/// [`TwoWayModel::Tw`] for fault-free exploration.
///
/// # Errors
///
/// Fails with [`ExploreError::TooManyConfigs`] if more than `max_configs`
/// canonical configurations are reachable.
///
/// # Example
///
/// ```
/// use ppfts_engine::TwoWayModel;
/// use ppfts_population::Configuration;
/// use ppfts_protocols::{Pairing, PairingState};
/// use ppfts_verify::explore_two_way;
///
/// let graph = explore_two_way(
///     TwoWayModel::Tw,
///     &Pairing,
///     &Pairing::initial(2, 1),
///     10_000,
/// )?;
/// // Pairing liveness, *proved* for n = 3: every GF execution stabilizes
/// // with exactly min(2, 1) = 1 paired consumer.
/// assert!(graph.always_stabilizes(|c| c.count(&PairingState::Paired) == 1));
/// // And safety is a global invariant.
/// assert!(graph.invariant(|c| c.count(&PairingState::Paired) <= 1));
/// # Ok::<(), ppfts_verify::ExploreError>(())
/// ```
pub fn explore_two_way<P>(
    model: TwoWayModel,
    program: &P,
    c0: &Configuration<P::State>,
    max_configs: usize,
) -> Result<StateGraph<P::State>, ExploreError>
where
    P: TwoWayProgram,
{
    let faults = model.permitted_faults();
    explore(c0, max_configs, |states| {
        let n = states.len();
        let mut out = Vec::new();
        for s in 0..n {
            for r in 0..n {
                if s == r {
                    continue;
                }
                for &fault in faults {
                    let (s2, r2) = outcome::two_way(model, program, &states[s], &states[r], fault)
                        .expect("fault is permitted by the model");
                    let mut succ = states.to_vec();
                    succ[s] = s2;
                    succ[r] = r2;
                    out.push(succ);
                }
            }
        }
        out
    })
}

/// Explores the reachable configuration graph of a **one-way** program
/// under `model`; omissive outcomes are included for omissive models.
///
/// # Errors
///
/// Fails with [`ExploreError::TooManyConfigs`] if more than `max_configs`
/// canonical configurations are reachable.
pub fn explore_one_way<P>(
    model: OneWayModel,
    program: &P,
    c0: &Configuration<P::State>,
    max_configs: usize,
) -> Result<StateGraph<P::State>, ExploreError>
where
    P: OneWayProgram,
{
    let faults = model.permitted_faults();
    explore(c0, max_configs, |states| {
        let n = states.len();
        let mut out = Vec::new();
        for s in 0..n {
            for r in 0..n {
                if s == r {
                    continue;
                }
                for &fault in faults {
                    let (s2, r2) = outcome::one_way(model, program, &states[s], &states[r], fault)
                        .expect("fault is permitted by the model");
                    let mut succ = states.to_vec();
                    succ[s] = s2;
                    succ[r] = r2;
                    out.push(succ);
                }
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfts_core::{project, Sid, SimulatorState};
    use ppfts_protocols::{Epidemic, LeaderElection, LeaderState, Pairing, PairingState};

    #[test]
    fn epidemic_always_stabilizes_to_or() {
        let c0 = Configuration::new(vec![true, false, false, false]);
        let graph = explore_two_way(TwoWayModel::Tw, &Epidemic, &c0, 1000).unwrap();
        assert!(graph.always_stabilizes(|c| c.count(&true) == 4));

        let all_false = Configuration::new(vec![false, false, false]);
        let graph = explore_two_way(TwoWayModel::Tw, &Epidemic, &all_false, 1000).unwrap();
        assert!(graph.always_stabilizes(|c| c.count(&false) == 3));
    }

    #[test]
    fn pairing_liveness_and_safety_proved_for_small_n() {
        for (c, p) in [(2usize, 2usize), (3, 1), (1, 3), (2, 3)] {
            let expected = c.min(p);
            let graph =
                explore_two_way(TwoWayModel::Tw, &Pairing, &Pairing::initial(c, p), 100_000)
                    .unwrap();
            assert!(
                graph.always_stabilizes(|m| m.count(&PairingState::Paired) == expected),
                "{c} consumers / {p} producers"
            );
            assert!(graph.invariant(|m| m.count(&PairingState::Paired) <= p));
        }
    }

    #[test]
    fn leader_election_terminal_components_have_one_leader() {
        let graph = explore_two_way(
            TwoWayModel::Tw,
            &LeaderElection,
            &LeaderElection::initial(4),
            1000,
        )
        .unwrap();
        assert!(graph.always_stabilizes(|m| m.count(&LeaderState::Leader) == 1));
        // 4 reachable multisets: 4, 3, 2, 1 leaders.
        assert_eq!(graph.config_count(), 4);
        assert_eq!(graph.terminal_sccs().len(), 1);
    }

    #[test]
    fn epidemic_under_t1_with_uo_adversary_still_stabilizes() {
        // Omissions cannot un-infect anyone: even with the UO adversary in
        // the graph, all terminal SCCs are fully infected.
        let c0 = Configuration::new(vec![true, false, false]);
        let graph = explore_two_way(TwoWayModel::T1, &Epidemic, &c0, 1000).unwrap();
        assert!(graph.always_stabilizes(|c| c.count(&true) == 3));
    }

    #[test]
    fn sid_simulation_of_pairing_proved_for_two_agents() {
        // Exact GF verification of SID on a 2-agent system: every terminal
        // SCC has the simulated pair transitioned.
        let sid = Sid::new(Pairing);
        let c0 = Sid::<Pairing>::initial(&[PairingState::Consumer, PairingState::Producer]);
        let graph = explore_one_way(OneWayModel::Io, &sid, &c0, 100_000).unwrap();
        assert!(graph.always_stabilizes(|m| {
            let mut paired = 0;
            let mut spent = 0;
            for (state, count) in m.iter() {
                match state.simulated() {
                    PairingState::Paired => paired += count,
                    PairingState::Spent => spent += count,
                    _ => {}
                }
            }
            paired == 1 && spent == 1
        }));
    }

    #[test]
    fn config_cap_is_enforced() {
        let err = explore_two_way(
            TwoWayModel::Tw,
            &Pairing,
            &Pairing::initial(3, 3),
            2, // absurdly small
        )
        .unwrap_err();
        assert_eq!(err, ExploreError::TooManyConfigs { limit: 2 });
    }

    #[test]
    fn graph_statistics_are_consistent() {
        let graph = explore_two_way(
            TwoWayModel::Tw,
            &Epidemic,
            &Configuration::new(vec![true, false]),
            100,
        )
        .unwrap();
        // {T,F} → {T,T}: two canonical configs.
        assert_eq!(graph.config_count(), 2);
        assert_eq!(graph.state_count(), 2);
        assert!(graph.some_reachable(|m| m.count(&true) == 2));
        let _ = project(&Sid::<Pairing>::initial(&[PairingState::Consumer])); // silence unused import lint paths
    }
}

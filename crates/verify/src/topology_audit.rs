//! Fairness and coverage audits for graph-aware scheduling.
//!
//! Restricted interaction topologies change what *global fairness* means:
//! the scheduler must deal every **edge of the graph** infinitely often,
//! not every ordered pair. Two checkers certify that property for real
//! executions:
//!
//! * [`audit_scheduler_coverage`] drives a
//!   [`TopologyScheduler`] for a fixed
//!   number of draws and tallies per-arc hit counts — the statistical
//!   witness that every arc of a connected topology has probability
//!   `1/2m` per step and is therefore scheduled infinitely often in
//!   expectation;
//! * [`audit_trace_topology`] replays a recorded [`Trace`] against a
//!   topology and rejects the first interaction that is *not* a graph
//!   arc — the safety half (a graph-aware run must never deal an edge
//!   the graph does not have), plus the same coverage tally for the
//!   arcs it did deal.
//!
//! Both return a [`CoverageReport`] whose `min_hits`/`max_hits` bracket
//! the empirical arc distribution; [`CoverageReport::max_deviation`]
//! turns it into the chi-square-style uniformity figure the statistical
//! tests assert on.

use ppfts_core::SimulatorState;
use ppfts_engine::{Scheduler, TopologyScheduler, Trace};
use ppfts_population::{Interaction, State, Topology};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use std::error::Error;
use std::fmt;

/// Per-arc hit statistics of an execution (or scheduler stream) over a
/// topology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoverageReport {
    /// Arcs (ordered edges) the topology has.
    pub arcs: usize,
    /// Arcs hit at least once.
    pub covered: usize,
    /// Total draws tallied.
    pub draws: u64,
    /// Hits of the coldest arc.
    pub min_hits: u64,
    /// Hits of the hottest arc.
    pub max_hits: u64,
}

impl CoverageReport {
    /// Whether every arc was dealt at least once.
    pub fn is_full(&self) -> bool {
        self.covered == self.arcs
    }

    /// Expected hits per arc under the uniform-arc law.
    pub fn expected_hits(&self) -> f64 {
        self.draws as f64 / self.arcs.max(1) as f64
    }

    /// Largest relative deviation of any arc from the uniform
    /// expectation: `max(|hits − e| / e)` over the coldest and hottest
    /// arcs. Small (→ 0 as draws grow) iff the stream is uniform over
    /// arcs.
    pub fn max_deviation(&self) -> f64 {
        let e = self.expected_hits();
        if e == 0.0 {
            return 0.0;
        }
        let lo = (e - self.min_hits as f64).abs() / e;
        let hi = (self.max_hits as f64 - e).abs() / e;
        lo.max(hi)
    }
}

/// A recorded interaction that the audited topology does not contain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopologyViolation {
    /// Step index of the offending record.
    pub index: u64,
    /// The interaction that is not a graph arc.
    pub interaction: Interaction,
}

impl fmt::Display for TopologyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "step {} dealt {}, which is not an edge of the topology",
            self.index, self.interaction
        )
    }
}

impl Error for TopologyViolation {}

/// Tallies `draws` interactions from a fresh
/// [`TopologyScheduler`] over
/// `topology`, seeded with `seed`.
///
/// With `draws` a reasonable multiple of `topology.arc_count()`, a
/// *connected* topology must come back [`is_full`](CoverageReport::is_full)
/// with [`max_deviation`](CoverageReport::max_deviation) shrinking as
/// `O(1/√draws)` — the executable form of "every edge is scheduled
/// infinitely often in expectation".
pub fn audit_scheduler_coverage(topology: &Topology, draws: u64, seed: u64) -> CoverageReport {
    let mut scheduler = TopologyScheduler::new(topology.clone());
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = topology.len();
    let mut hits = vec![0u64; topology.arc_count()];
    for _ in 0..draws {
        let i = scheduler.next_interaction(n, &mut rng);
        let a = topology
            .arc_index(i.starter().index(), i.reactor().index())
            .expect("TopologyScheduler deals only graph arcs");
        hits[a] += 1;
    }
    report_from_hits(&hits, draws)
}

/// Replays `trace` against `topology`: fails on the first recorded
/// interaction that is not a graph arc, otherwise reports arc coverage.
///
/// # Errors
///
/// [`TopologyViolation`] naming the first off-graph step.
pub fn audit_trace_topology<Q: State, F>(
    trace: &Trace<Q, F>,
    topology: &Topology,
) -> Result<CoverageReport, TopologyViolation> {
    let mut hits = vec![0u64; topology.arc_count()];
    let mut draws = 0u64;
    for rec in trace {
        let (s, r) = (
            rec.interaction.starter().index(),
            rec.interaction.reactor().index(),
        );
        match topology.arc_index(s, r) {
            Some(a) => hits[a] += 1,
            None => {
                return Err(TopologyViolation {
                    index: rec.index,
                    interaction: rec.interaction,
                })
            }
        }
        draws += 1;
    }
    Ok(report_from_hits(&hits, draws))
}

/// Report of [`audit_simulation_topology`]: the physical arc coverage
/// plus how many *simulated* transitions were audited through the
/// simulation embedding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimulationTopologyReport {
    /// Arc coverage of the physical interactions (the trace itself).
    pub physical: CoverageReport,
    /// Simulated commits observed across the trace (commit-count
    /// increments on either endpoint).
    pub commits: u64,
    /// Commits that exposed their partner's vertex (`Commit::partner_id`)
    /// and were therefore adjacency-checked — all commits for graphical
    /// `SID`/`SKnO`; zero for anonymous simulators, which have no vertex
    /// to check.
    pub located_commits: u64,
}

/// A violation found by [`audit_simulation_topology`]: either the
/// physical trace left the graph, or a simulated transition paired
/// non-adjacent vertices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimulationTopologyViolation {
    /// A recorded physical interaction is not a graph arc.
    Physical(TopologyViolation),
    /// A committed simulated transition named a partner vertex that is
    /// not adjacent to the committing agent.
    Simulated {
        /// Step index of the offending record.
        index: u64,
        /// Vertex (agent index) of the committing agent.
        agent: usize,
        /// The non-adjacent partner vertex the commit named.
        partner: u64,
    },
}

impl fmt::Display for SimulationTopologyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulationTopologyViolation::Physical(v) => write!(f, "{v}"),
            SimulationTopologyViolation::Simulated {
                index,
                agent,
                partner,
            } => write!(
                f,
                "step {index}: agent {agent} committed a simulated transition against \
                 vertex {partner}, which is not a graph neighbor"
            ),
        }
    }
}

impl Error for SimulationTopologyViolation {}

/// Audits that a *simulated* execution stayed on the graph **through the
/// simulation embedding**: every physical interaction of `trace` must be
/// a graph arc (as in [`audit_trace_topology`]), and every simulated
/// transition an agent commits must pair it with a graph-adjacent
/// vertex.
///
/// The simulated half reads the [`SimulatorState`] ghost commit log:
/// whenever an endpoint's commit count increases across a record, the
/// fresh commit's `partner_id` must place the simulated partner on the
/// graph, in either of the two ways simulators locate partners:
///
/// * **handshake partners** — the commit names the protocol-level ID of
///   the *other endpoint of this very record* (`SID`: the partner's ID;
///   `NamedSid`: the partner's acquired name, which is not a vertex but
///   identifies an agent this one physically — hence adjacently — met);
/// * **vertex partners** — the commit names a graph vertex that must be
///   adjacent to the committing agent's own vertex, its agent index
///   (graphical `SKnO`: the consumed run's origin, possibly several
///   relay hops away from where its tokens were consumed).
///
/// A commit satisfying neither is the violation. Anonymous commits
/// (`partner_id = None`) carry no location claim and are only counted.
///
/// # Errors
///
/// The first [`SimulationTopologyViolation`] encountered, physical or
/// simulated.
pub fn audit_simulation_topology<Q, F>(
    trace: &Trace<Q, F>,
    topology: &Topology,
) -> Result<SimulationTopologyReport, SimulationTopologyViolation>
where
    Q: State + SimulatorState,
{
    let mut hits = vec![0u64; topology.arc_count()];
    let mut draws = 0u64;
    let mut commits = 0u64;
    let mut located = 0u64;
    for rec in trace {
        let (s, r) = (
            rec.interaction.starter().index(),
            rec.interaction.reactor().index(),
        );
        match topology.arc_index(s, r) {
            Some(a) => hits[a] += 1,
            None => {
                return Err(SimulationTopologyViolation::Physical(TopologyViolation {
                    index: rec.index,
                    interaction: rec.interaction,
                }))
            }
        }
        draws += 1;
        for (agent, old, new, other) in [
            (s, &rec.old_starter, &rec.new_starter, &rec.new_reactor),
            (r, &rec.old_reactor, &rec.new_reactor, &rec.new_starter),
        ] {
            if new.commit_count() > old.commit_count() {
                commits += 1;
                let commit = new
                    .last_commit()
                    .expect("a positive commit count implies a last commit");
                if let Some(partner) = commit.partner_id {
                    located += 1;
                    // Handshake partners name the agent physically met in
                    // this record (already proven on-graph above); vertex
                    // partners must be graph-adjacent.
                    let is_handshake_partner = other.protocol_id() == Some(partner);
                    if !is_handshake_partner && !topology.contains_arc(agent, partner as usize) {
                        return Err(SimulationTopologyViolation::Simulated {
                            index: rec.index,
                            agent,
                            partner,
                        });
                    }
                }
            }
        }
    }
    Ok(SimulationTopologyReport {
        physical: report_from_hits(&hits, draws),
        commits,
        located_commits: located,
    })
}

fn report_from_hits(hits: &[u64], draws: u64) -> CoverageReport {
    CoverageReport {
        arcs: hits.len(),
        covered: hits.iter().filter(|&&h| h > 0).count(),
        draws,
        min_hits: hits.iter().copied().min().unwrap_or(0),
        max_hits: hits.iter().copied().max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfts_engine::{OneWayModel, OneWayProgram, OneWayRunner, UniformScheduler};
    use ppfts_population::Configuration;

    struct Or;
    impl OneWayProgram for Or {
        type State = bool;
        fn on_receive(&self, s: &bool, r: &bool) -> bool {
            *s || *r
        }
    }

    #[test]
    fn scheduler_covers_every_arc_roughly_uniformly() {
        for t in [
            Topology::ring(12).unwrap(),
            Topology::grid2d(3, 4).unwrap(),
            Topology::random_regular(12, 3, 1).unwrap(),
            Topology::complete(8).unwrap(),
        ] {
            let draws = (t.arc_count() as u64) * 500;
            let report = audit_scheduler_coverage(&t, draws, 42);
            assert!(report.is_full(), "{t}: cold arcs {report:?}");
            assert!(
                report.max_deviation() < 0.35,
                "{t}: deviation {} too large ({report:?})",
                report.max_deviation()
            );
        }
    }

    #[test]
    fn deviation_shrinks_with_more_draws() {
        let t = Topology::ring(10).unwrap();
        let short = audit_scheduler_coverage(&t, 2_000, 7);
        let long = audit_scheduler_coverage(&t, 200_000, 7);
        assert!(long.max_deviation() < short.max_deviation());
        assert!(long.max_deviation() < 0.1);
    }

    #[test]
    fn traced_topology_run_passes_the_audit() {
        let ring = Topology::ring(6).unwrap();
        let mut runner = OneWayRunner::builder(OneWayModel::Io, Or)
            .config(Configuration::new(vec![
                true, false, false, false, false, false,
            ]))
            .topology(ring.clone())
            .record_trace(true)
            .seed(4)
            .build()
            .unwrap();
        runner.run(4_000).unwrap();
        let report = audit_trace_topology(runner.trace().unwrap(), &ring).unwrap();
        assert_eq!(report.draws, 4_000);
        assert!(report.is_full(), "4k draws over 12 arcs: {report:?}");
    }

    #[test]
    fn uniform_run_violates_a_ring_audit() {
        // The complete-graph uniform scheduler deals chords the ring
        // does not have; the audit names the first one.
        let ring = Topology::ring(8).unwrap();
        let mut runner = OneWayRunner::builder(OneWayModel::Io, Or)
            .config(Configuration::new(vec![false; 8]))
            .scheduler(UniformScheduler::new())
            .record_trace(true)
            .seed(2)
            .build()
            .unwrap();
        runner.run(200).unwrap();
        let err = audit_trace_topology(runner.trace().unwrap(), &ring).unwrap_err();
        let (s, r) = (
            err.interaction.starter().index(),
            err.interaction.reactor().index(),
        );
        assert!(!ring.contains_arc(s, r));
        assert!(err.to_string().contains("not an edge"));
    }

    #[test]
    fn graphical_sid_trace_passes_the_simulation_audit() {
        use ppfts_core::Sid;
        use ppfts_population::TableProtocol;

        let ring = Topology::ring(6).unwrap();
        let pairing = TableProtocol::builder(vec!['s', 'c', 'p', '_'])
            .rule(('c', 'p'), ('s', '_'))
            .rule(('p', 'c'), ('_', 's'))
            .build();
        let sims = ['c', 'p', 'c', 'p', 'c', 'p'];
        let mut runner = OneWayRunner::builder(
            OneWayModel::Io,
            Sid::graphical(pairing.clone(), ring.clone()),
        )
        .config(Sid::<TableProtocol<char>>::initial(&sims))
        .topology(ring.clone())
        .record_trace(true)
        .seed(9)
        .build()
        .unwrap();
        runner.run(6_000).unwrap();
        let report = audit_simulation_topology(runner.trace().unwrap(), &ring).unwrap();
        assert_eq!(report.physical.draws, 6_000);
        assert!(report.commits > 0, "the simulation must make progress");
        // SID commits always carry the partner's ID (= vertex): every
        // commit is locatable and was adjacency-checked.
        assert_eq!(report.commits, report.located_commits);
    }

    #[test]
    fn graphical_skno_trace_passes_the_simulation_audit() {
        use ppfts_core::Skno;
        use ppfts_protocols::Epidemic;

        let ring = Topology::ring(8).unwrap();
        let sims: Vec<bool> = (0..8).map(|v| v == 0).collect();
        let mut runner =
            OneWayRunner::builder(OneWayModel::I3, Skno::graphical(Epidemic, 1, ring.clone()))
                .config(Skno::<Epidemic>::initial(&sims))
                .topology(ring.clone())
                .record_trace(true)
                .seed(4)
                .build()
                .unwrap();
        runner.run(30_000).unwrap();
        let report = audit_simulation_topology(runner.trace().unwrap(), &ring).unwrap();
        assert!(report.commits > 0, "the simulation must make progress");
        // Graphical SKnO fills partner_id with the consumed run's origin
        // vertex, so its commits are locatable too.
        assert_eq!(report.commits, report.located_commits);
    }

    #[test]
    fn named_sid_handshake_partners_are_not_misread_as_vertices() {
        use ppfts_core::{NamedState, Sid, SidState, SimulatorState};
        use ppfts_engine::{OneWayFault, StepRecord};
        use ppfts_population::TableProtocol;

        // NamedSid commits name partners by *acquired name* (a
        // permutation of 1..=n), not by vertex. The audit must recognize
        // a commit whose partner_id equals the physically-met endpoint's
        // protocol ID as a handshake partner — the meeting itself is the
        // on-graph evidence — instead of misreading the name as a vertex
        // (name 5 is not a ring neighbor of vertex 1, yet the commit
        // below is entirely legitimate).
        let ring = Topology::ring(6).unwrap();
        let pairing = TableProtocol::builder(vec!['s', 'c', 'p', '_'])
            .rule(('c', 'p'), ('s', '_'))
            .rule(('p', 'c'), ('_', 's'))
            .build();
        // Vertex 0 acquired name 5, vertex 1 acquired name 2; name 5 is
        // mid-pairing with name 2, and name 2 locks — committing against
        // partner *name* 5.
        let sid = Sid::new(pairing);
        let mut starter_sid = SidState::new(5, 'c');
        let reactor_old_sid = SidState::new(2, 'p');
        starter_sid = sid.on_receive(&reactor_old_sid, &starter_sid);
        let reactor_new_sid = sid.on_receive(&starter_sid, &reactor_old_sid);
        assert_eq!(reactor_new_sid.last_commit().unwrap().partner_id, Some(5));
        let wrap = |sid: SidState<char>| NamedState::Simulating { sid };
        let mut trace: Trace<NamedState<char>, OneWayFault> = Trace::new();
        trace.push(StepRecord {
            index: 0,
            interaction: Interaction::new(0, 1).unwrap(),
            fault: OneWayFault::None,
            old_starter: wrap(starter_sid.clone()),
            old_reactor: wrap(reactor_old_sid),
            new_starter: wrap(starter_sid),
            new_reactor: wrap(reactor_new_sid),
        });
        let report = audit_simulation_topology(&trace, &ring).unwrap();
        assert_eq!(report.commits, 1);
        assert_eq!(report.located_commits, 1);
    }

    #[test]
    fn off_graph_injection_is_rejected_and_commits_nothing() {
        use ppfts_core::{Sid, SimulatorState};
        use ppfts_engine::Planned;
        use ppfts_population::TableProtocol;

        let ring = Topology::ring(6).unwrap();
        let pairing = TableProtocol::builder(vec!['s', 'c', 'p', '_'])
            .rule(('c', 'p'), ('s', '_'))
            .rule(('p', 'c'), ('_', 's'))
            .build();
        let sims = ['c', 'p', 'c', 'p', 'c', 'p'];
        let mut runner =
            OneWayRunner::builder(OneWayModel::Io, Sid::graphical(pairing, ring.clone()))
                .config(Sid::<TableProtocol<char>>::initial(&sims))
                .topology(ring.clone())
                .record_trace(true)
                .build()
                .unwrap();
        // `apply_planned` bypasses the scheduler: deal the chord (0, 3),
        // which the ring does not have, three times — the full handshake
        // length, were it legal.
        let chord = Interaction::new(0, 3).unwrap();
        runner
            .apply_planned([
                Planned::ok(chord),
                Planned::ok(Interaction::new(3, 0).unwrap()),
                Planned::ok(chord),
            ])
            .unwrap();
        // The graphical guard refused the handshake: nobody paired,
        // locked or committed off-graph.
        for q in runner.config().as_slice() {
            assert_eq!(q.commit_count(), 0);
            assert_eq!(q.phase(), ppfts_core::SidPhase::Available);
        }
        // And the audit rejects the trace, naming the chord.
        let err = audit_simulation_topology(runner.trace().unwrap(), &ring).unwrap_err();
        match err {
            SimulationTopologyViolation::Physical(v) => {
                assert_eq!(v.index, 0);
                assert_eq!(v.interaction, chord);
            }
            other => panic!("expected a physical violation, got {other:?}"),
        }
    }

    #[test]
    fn off_graph_commit_is_rejected_by_the_simulation_audit() {
        use ppfts_core::{Sid, SidState};
        use ppfts_engine::{OneWayFault, StepRecord};
        use ppfts_population::TableProtocol;

        let ring = Topology::ring(8).unwrap();
        let pairing = TableProtocol::builder(vec!['s', 'c', 'p', '_'])
            .rule(('c', 'p'), ('s', '_'))
            .rule(('p', 'c'), ('_', 's'))
            .build();
        // Forge a commit whose partner vertex (5) is not a ring neighbor
        // of the committing agent (1): run the *anonymous* Sid handshake
        // between IDs 5 and 1, then wrap the resulting states in a
        // record whose physical interaction is a legal ring arc (0, 1).
        let sid = Sid::new(pairing);
        let mut starter = SidState::new(5, 'c');
        let reactor_old = SidState::new(1, 'p');
        // 5 pairs with 1, then 1 locks onto 5 — committing against
        // partner_id Some(5).
        starter = sid.on_receive(&reactor_old, &starter); // 5 pairs with 1
        let reactor_new = sid.on_receive(&starter, &reactor_old); // 1 locks, commits
        assert_eq!(reactor_new.partner_id(), Some(5));
        let mut trace: Trace<SidState<char>, OneWayFault> = Trace::new();
        trace.push(StepRecord {
            index: 0,
            interaction: Interaction::new(0, 1).unwrap(),
            fault: OneWayFault::None,
            old_starter: SidState::new(0, 'c'),
            old_reactor: reactor_old,
            new_starter: SidState::new(0, 'c'),
            new_reactor: reactor_new,
        });
        let err = audit_simulation_topology(&trace, &ring).unwrap_err();
        assert_eq!(
            err,
            SimulationTopologyViolation::Simulated {
                index: 0,
                agent: 1,
                partner: 5
            }
        );
        assert!(err.to_string().contains("not a graph neighbor"));
    }

    #[test]
    fn empty_trace_reports_zero_coverage() {
        let ring = Topology::ring(4).unwrap();
        let trace: Trace<bool, ppfts_engine::OneWayFault> = Trace::new();
        let report = audit_trace_topology(&trace, &ring).unwrap();
        assert_eq!(report.covered, 0);
        assert_eq!(report.draws, 0);
        assert!(!report.is_full());
        assert_eq!(report.max_deviation(), 0.0);
    }
}

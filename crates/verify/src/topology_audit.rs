//! Fairness and coverage audits for graph-aware scheduling.
//!
//! Restricted interaction topologies change what *global fairness* means:
//! the scheduler must deal every **edge of the graph** infinitely often,
//! not every ordered pair. Two checkers certify that property for real
//! executions:
//!
//! * [`audit_scheduler_coverage`] drives a
//!   [`TopologyScheduler`](ppfts_engine::TopologyScheduler) for a fixed
//!   number of draws and tallies per-arc hit counts — the statistical
//!   witness that every arc of a connected topology has probability
//!   `1/2m` per step and is therefore scheduled infinitely often in
//!   expectation;
//! * [`audit_trace_topology`] replays a recorded [`Trace`] against a
//!   topology and rejects the first interaction that is *not* a graph
//!   arc — the safety half (a graph-aware run must never deal an edge
//!   the graph does not have), plus the same coverage tally for the
//!   arcs it did deal.
//!
//! Both return a [`CoverageReport`] whose `min_hits`/`max_hits` bracket
//! the empirical arc distribution; [`CoverageReport::max_deviation`]
//! turns it into the chi-square-style uniformity figure the statistical
//! tests assert on.

use ppfts_engine::{Scheduler, TopologyScheduler, Trace};
use ppfts_population::{Interaction, State, Topology};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use std::error::Error;
use std::fmt;

/// Per-arc hit statistics of an execution (or scheduler stream) over a
/// topology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoverageReport {
    /// Arcs (ordered edges) the topology has.
    pub arcs: usize,
    /// Arcs hit at least once.
    pub covered: usize,
    /// Total draws tallied.
    pub draws: u64,
    /// Hits of the coldest arc.
    pub min_hits: u64,
    /// Hits of the hottest arc.
    pub max_hits: u64,
}

impl CoverageReport {
    /// Whether every arc was dealt at least once.
    pub fn is_full(&self) -> bool {
        self.covered == self.arcs
    }

    /// Expected hits per arc under the uniform-arc law.
    pub fn expected_hits(&self) -> f64 {
        self.draws as f64 / self.arcs.max(1) as f64
    }

    /// Largest relative deviation of any arc from the uniform
    /// expectation: `max(|hits − e| / e)` over the coldest and hottest
    /// arcs. Small (→ 0 as draws grow) iff the stream is uniform over
    /// arcs.
    pub fn max_deviation(&self) -> f64 {
        let e = self.expected_hits();
        if e == 0.0 {
            return 0.0;
        }
        let lo = (e - self.min_hits as f64).abs() / e;
        let hi = (self.max_hits as f64 - e).abs() / e;
        lo.max(hi)
    }
}

/// A recorded interaction that the audited topology does not contain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopologyViolation {
    /// Step index of the offending record.
    pub index: u64,
    /// The interaction that is not a graph arc.
    pub interaction: Interaction,
}

impl fmt::Display for TopologyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "step {} dealt {}, which is not an edge of the topology",
            self.index, self.interaction
        )
    }
}

impl Error for TopologyViolation {}

/// Tallies `draws` interactions from a fresh
/// [`TopologyScheduler`](ppfts_engine::TopologyScheduler) over
/// `topology`, seeded with `seed`.
///
/// With `draws` a reasonable multiple of `topology.arc_count()`, a
/// *connected* topology must come back [`is_full`](CoverageReport::is_full)
/// with [`max_deviation`](CoverageReport::max_deviation) shrinking as
/// `O(1/√draws)` — the executable form of "every edge is scheduled
/// infinitely often in expectation".
pub fn audit_scheduler_coverage(topology: &Topology, draws: u64, seed: u64) -> CoverageReport {
    let mut scheduler = TopologyScheduler::new(topology.clone());
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = topology.len();
    let mut hits = vec![0u64; topology.arc_count()];
    for _ in 0..draws {
        let i = scheduler.next_interaction(n, &mut rng);
        let a = topology
            .arc_index(i.starter().index(), i.reactor().index())
            .expect("TopologyScheduler deals only graph arcs");
        hits[a] += 1;
    }
    report_from_hits(&hits, draws)
}

/// Replays `trace` against `topology`: fails on the first recorded
/// interaction that is not a graph arc, otherwise reports arc coverage.
///
/// # Errors
///
/// [`TopologyViolation`] naming the first off-graph step.
pub fn audit_trace_topology<Q: State, F>(
    trace: &Trace<Q, F>,
    topology: &Topology,
) -> Result<CoverageReport, TopologyViolation> {
    let mut hits = vec![0u64; topology.arc_count()];
    let mut draws = 0u64;
    for rec in trace.iter() {
        let (s, r) = (
            rec.interaction.starter().index(),
            rec.interaction.reactor().index(),
        );
        match topology.arc_index(s, r) {
            Some(a) => hits[a] += 1,
            None => {
                return Err(TopologyViolation {
                    index: rec.index,
                    interaction: rec.interaction,
                })
            }
        }
        draws += 1;
    }
    Ok(report_from_hits(&hits, draws))
}

fn report_from_hits(hits: &[u64], draws: u64) -> CoverageReport {
    CoverageReport {
        arcs: hits.len(),
        covered: hits.iter().filter(|&&h| h > 0).count(),
        draws,
        min_hits: hits.iter().copied().min().unwrap_or(0),
        max_hits: hits.iter().copied().max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfts_engine::{OneWayModel, OneWayProgram, OneWayRunner, UniformScheduler};
    use ppfts_population::Configuration;

    struct Or;
    impl OneWayProgram for Or {
        type State = bool;
        fn on_receive(&self, s: &bool, r: &bool) -> bool {
            *s || *r
        }
    }

    #[test]
    fn scheduler_covers_every_arc_roughly_uniformly() {
        for t in [
            Topology::ring(12).unwrap(),
            Topology::grid2d(3, 4).unwrap(),
            Topology::random_regular(12, 3, 1).unwrap(),
            Topology::complete(8).unwrap(),
        ] {
            let draws = (t.arc_count() as u64) * 500;
            let report = audit_scheduler_coverage(&t, draws, 42);
            assert!(report.is_full(), "{t}: cold arcs {report:?}");
            assert!(
                report.max_deviation() < 0.35,
                "{t}: deviation {} too large ({report:?})",
                report.max_deviation()
            );
        }
    }

    #[test]
    fn deviation_shrinks_with_more_draws() {
        let t = Topology::ring(10).unwrap();
        let short = audit_scheduler_coverage(&t, 2_000, 7);
        let long = audit_scheduler_coverage(&t, 200_000, 7);
        assert!(long.max_deviation() < short.max_deviation());
        assert!(long.max_deviation() < 0.1);
    }

    #[test]
    fn traced_topology_run_passes_the_audit() {
        let ring = Topology::ring(6).unwrap();
        let mut runner = OneWayRunner::builder(OneWayModel::Io, Or)
            .config(Configuration::new(vec![
                true, false, false, false, false, false,
            ]))
            .topology(ring.clone())
            .record_trace(true)
            .seed(4)
            .build()
            .unwrap();
        runner.run(4_000).unwrap();
        let report = audit_trace_topology(runner.trace().unwrap(), &ring).unwrap();
        assert_eq!(report.draws, 4_000);
        assert!(report.is_full(), "4k draws over 12 arcs: {report:?}");
    }

    #[test]
    fn uniform_run_violates_a_ring_audit() {
        // The complete-graph uniform scheduler deals chords the ring
        // does not have; the audit names the first one.
        let ring = Topology::ring(8).unwrap();
        let mut runner = OneWayRunner::builder(OneWayModel::Io, Or)
            .config(Configuration::new(vec![false; 8]))
            .scheduler(UniformScheduler::new())
            .record_trace(true)
            .seed(2)
            .build()
            .unwrap();
        runner.run(200).unwrap();
        let err = audit_trace_topology(runner.trace().unwrap(), &ring).unwrap_err();
        let (s, r) = (
            err.interaction.starter().index(),
            err.interaction.reactor().index(),
        );
        assert!(!ring.contains_arc(s, r));
        assert!(err.to_string().contains("not an edge"));
    }

    #[test]
    fn empty_trace_reports_zero_coverage() {
        let ring = Topology::ring(4).unwrap();
        let trace: Trace<bool, ppfts_engine::OneWayFault> = Trace::new();
        let report = audit_trace_topology(&trace, &ring).unwrap();
        assert_eq!(report.covered, 0);
        assert_eq!(report.draws, 0);
        assert!(!report.is_full());
        assert_eq!(report.max_deviation(), 0.0);
    }
}

//! Ablation studies of the simulators' design choices (DESIGN.md D1/D2).
//!
//! The paper's simulators contain two easy-to-underestimate mechanisms:
//! `SKnO`'s Rummy-style joker re-minting and `SID`'s rollback rule
//! (Figure 3 lines 14–16). This module removes each one and exhibits the
//! resulting failure — statistically for the Rummy ablation (a liveness
//! gap across seeds) and *exactly* for the rollback ablation (the model
//! checker finds a terminal component in which the simulated protocol is
//! permanently stuck).

use ppfts_core::{project, JokerBookkeeping, RollbackPolicy, Sid, SidState, Skno};
use ppfts_engine::{BoundedStrategy, OneWayModel, OneWayRunner};
use ppfts_population::Configuration;
use ppfts_protocols::{LeaderElection, LeaderState, Pairing, PairingState};

use crate::model_check::{explore_one_way, StateGraph};

/// Result of the Rummy-bookkeeping ablation (D1): how many seeds
/// converged with the paper's scheme vs the naive one, on identical
/// schedules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RummyAblation {
    /// Seeds tested.
    pub seeds: u64,
    /// Converged with Rummy bookkeeping.
    pub rummy_converged: u64,
    /// Converged with naive bookkeeping.
    pub naive_converged: u64,
}

/// Runs the Pairing workload under identical seeds with both joker
/// bookkeeping policies and reports the convergence counts.
///
/// Expected outcome (asserted by this crate's tests): Rummy converges on
/// every seed; the naive policy loses some runs — jokers spent on tokens
/// that were merely late cannot cover later real losses.
pub fn rummy_ablation(seeds: u64, o: u32, budget: u64) -> RummyAblation {
    let sims: Vec<PairingState> = Pairing::initial(3, 3).as_slice().to_vec();
    let run = |seed: u64, bookkeeping: JokerBookkeeping| -> bool {
        let skno = Skno::with_bookkeeping(Pairing, o, bookkeeping);
        let mut runner = OneWayRunner::builder(OneWayModel::I3, skno)
            .config(Skno::<Pairing>::initial(&sims))
            .adversary(BoundedStrategy::new(0.25, o as u64))
            .seed(seed)
            .build()
            .expect("valid population");
        runner
            .run_until(budget, |c| {
                project(c).count_state(&PairingState::Paired) == 3
            })
            .is_satisfied()
    };
    let mut rummy = 0;
    let mut naive = 0;
    for seed in 0..seeds {
        rummy += run(seed, JokerBookkeeping::Rummy) as u64;
        naive += run(seed, JokerBookkeeping::Naive) as u64;
    }
    RummyAblation {
        seeds,
        rummy_converged: rummy,
        naive_converged: naive,
    }
}

/// Explores the exact reachable graph of `SID` (with the given rollback
/// policy) simulating leader election on `n` agents, and returns the
/// graph for terminal-component analysis.
///
/// # Errors
///
/// Propagates [`ExploreError`](crate::ExploreError) if the reachable
/// graph exceeds `max_configs`.
pub fn sid_leader_graph(
    n: usize,
    rollback: RollbackPolicy,
    max_configs: usize,
) -> Result<StateGraph<SidState<LeaderState>>, crate::ExploreError> {
    let sid = Sid::with_rollback_policy(LeaderElection, rollback);
    let c0: Configuration<SidState<LeaderState>> =
        Sid::<LeaderElection>::initial(&vec![LeaderState::Leader; n]);
    explore_one_way(OneWayModel::Io, &sid, &c0, max_configs)
}

/// Whether every GF execution of the explored graph ends with exactly one
/// simulated leader.
pub fn always_elects_one_leader(graph: &StateGraph<SidState<LeaderState>>) -> bool {
    use ppfts_core::SimulatorState;
    graph.always_stabilizes(|m| {
        let leaders: usize = m
            .iter()
            .filter(|(q, _)| *q.simulated() == LeaderState::Leader)
            .map(|(_, c)| c)
            .sum();
        leaders == 1
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d1_naive_joker_bookkeeping_loses_runs() {
        let report = rummy_ablation(16, 2, 600_000);
        assert_eq!(
            report.rummy_converged, report.seeds,
            "the paper's scheme must converge on every seed"
        );
        assert!(
            report.naive_converged < report.seeds,
            "the naive scheme should stall on some seed (got {}/{})",
            report.naive_converged,
            report.seeds
        );
    }

    #[test]
    fn d2_rollback_is_necessary_exact() {
        // With rollback: every GF execution of the 3-agent system elects
        // exactly one leader — proved exhaustively.
        let with = sid_leader_graph(3, RollbackPolicy::Enabled, 2_000_000).unwrap();
        assert!(always_elects_one_leader(&with));

        // Without rollback: some terminal component keeps ≥ 2 leaders
        // forever (a locked leader can never interact again).
        let without = sid_leader_graph(3, RollbackPolicy::Disabled, 2_000_000).unwrap();
        assert!(
            !always_elects_one_leader(&without),
            "removing lines 14–16 must break liveness"
        );
    }

    #[test]
    fn d2_rollback_graphs_differ_in_size() {
        let with = sid_leader_graph(2, RollbackPolicy::Enabled, 500_000).unwrap();
        let without = sid_leader_graph(2, RollbackPolicy::Disabled, 500_000).unwrap();
        // The no-rollback system has dead-end configurations the real one
        // escapes; both graphs are finite and explorable.
        assert!(with.config_count() > 0 && without.config_count() > 0);
    }
}

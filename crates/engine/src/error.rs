//! Engine error type.

use std::error::Error;
use std::fmt;

use ppfts_population::PopulationError;

use crate::{InteractionLaw, Model};

/// Errors raised while configuring or driving an execution.
///
/// # Example
///
/// ```
/// use ppfts_engine::outcome::one_way;
/// use ppfts_engine::{EngineError, OneWayFault, OneWayModel, OneWayProgram};
///
/// struct Noop;
/// impl OneWayProgram for Noop {
///     type State = u8;
///     fn on_receive(&self, _s: &u8, r: &u8) -> u8 { *r }
/// }
///
/// let err = one_way(OneWayModel::Io, &Noop, &0, &0, OneWayFault::Omission).unwrap_err();
/// assert!(matches!(err, EngineError::FaultNotInRelation { .. }));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// The requested fault decoration is not part of the model's transition
    /// relation (e.g. any omission under TW/IT/IO, a both-sides omission
    /// under T1).
    FaultNotInRelation {
        /// The interaction model in force.
        model: Model,
        /// Display form of the rejected fault.
        fault: String,
    },
    /// A runner was built without a configuration, or with fewer than two
    /// agents.
    InvalidPopulation {
        /// Number of agents supplied.
        len: usize,
    },
    /// An underlying population operation failed.
    Population(PopulationError),
    /// The operation attributes interactions to individual agents, which
    /// a count-based population backend cannot do. Per-agent records
    /// ([`step`](crate::OneWayRunner::step), recording
    /// [`TraceSink`](crate::TraceSink)s) and planned interaction
    /// sequences require the dense backend.
    PerAgentBackendRequired {
        /// The per-agent operation that was attempted.
        operation: &'static str,
    },
    /// A count-based population backend was assembled with a scheduler
    /// whose [`InteractionLaw`] it cannot realize: counts sample pairs
    /// straight from state multiplicities, which reproduces exactly the
    /// uniform complete-graph law and nothing else. Restricted
    /// topologies and index-addressed schedules need the dense backend.
    CompleteInteractionLawRequired {
        /// The law the rejected scheduler deals from.
        law: InteractionLaw,
    },
    /// The batch-epoch path ([`run_epochs`](crate::OneWayRunner::run_epochs))
    /// was asked to honor a feature it cannot express: epochs apply whole
    /// pair-groups at once, so omission adversaries must be reducible to a
    /// fixed i.i.d. rate
    /// ([`OmissionStrategy::iid_rate`](crate::OmissionStrategy::iid_rate)).
    /// Step-indexed, budgeted, or scripted fault schedules need the
    /// interleaved path (`run`/`run_batched`).
    EpochIncompatible {
        /// The feature the epoch path cannot honor.
        feature: &'static str,
    },
    /// A runner was assembled with `shards(k)` for `k > 1` but a feature
    /// of the assembly cannot be executed shard-parallel: the count
    /// backend (no per-agent state slab to partition) or a program whose
    /// in-place hooks declare themselves shard-unsafe
    /// ([`shard_safe`](crate::OneWayProgram::shard_safe)` == false`).
    ShardIncompatible {
        /// The feature the sharded path cannot honor.
        feature: &'static str,
    },
    /// A topology-bound scheduler was assembled with a population of a
    /// different size than its interaction graph.
    TopologySizeMismatch {
        /// Vertices of the scheduler's topology.
        topology: usize,
        /// Agents in the supplied population.
        population: usize,
    },
    /// A topology-bound *program* (a graphical simulator) was assembled
    /// with a scheduler that does not deal exactly its interaction graph.
    /// Graphical simulators restrict run formation to graph-adjacent
    /// agents, so scheduling any other law would silently change the
    /// simulated semantics; the mismatch is rejected when the runner is
    /// built.
    ProgramTopologyMismatch {
        /// Display form of the topology the program is bound to.
        program_topology: String,
        /// The law the offending scheduler deals from.
        law: InteractionLaw,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::FaultNotInRelation { model, fault } => {
                write!(
                    f,
                    "fault `{fault}` is not in the transition relation of model {model}"
                )
            }
            EngineError::InvalidPopulation { len } => {
                write!(
                    f,
                    "runner needs a population of at least 2 agents, got {len}"
                )
            }
            EngineError::Population(e) => write!(f, "population error: {e}"),
            EngineError::PerAgentBackendRequired { operation } => {
                write!(
                    f,
                    "{operation} requires a per-agent (dense) population backend; \
                     the count backend stores state multiplicities only"
                )
            }
            EngineError::CompleteInteractionLawRequired { law } => {
                write!(
                    f,
                    "count-based populations realize the interaction distribution from \
                     state counts, which is only possible for the uniform complete-graph \
                     law; got a scheduler dealing the {law} law — use the dense backend"
                )
            }
            EngineError::EpochIncompatible { feature } => {
                write!(
                    f,
                    "the batch-epoch path cannot honor {feature}; use the \
                     interleaved path (`run`/`run_batched`) instead"
                )
            }
            EngineError::ShardIncompatible { feature } => {
                write!(
                    f,
                    "the sharded path cannot honor {feature}; build with \
                     `shards(1)` and use the sequential batched path \
                     (`run_batched`) instead"
                )
            }
            EngineError::TopologySizeMismatch {
                topology,
                population,
            } => {
                write!(
                    f,
                    "scheduler topology spans {topology} agents but the population has \
                     {population}; build the topology for the population you run"
                )
            }
            EngineError::ProgramTopologyMismatch {
                program_topology,
                law,
            } => {
                write!(
                    f,
                    "the program is bound to the interaction graph {program_topology} but \
                     the scheduler deals the {law} law; schedule the same topology the \
                     graphical program was built on"
                )
            }
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Population(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PopulationError> for EngineError {
    fn from(e: PopulationError) -> Self {
        EngineError::Population(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TwoWayModel;

    #[test]
    fn displays_are_informative() {
        let e = EngineError::FaultNotInRelation {
            model: Model::TwoWay(TwoWayModel::Tw),
            fault: "omit@both".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("TW"));
        assert!(msg.contains("omit@both"));
    }

    #[test]
    fn negotiation_errors_name_the_offenders() {
        let e = EngineError::CompleteInteractionLawRequired {
            law: InteractionLaw::Topological,
        };
        assert!(e.to_string().contains("topological"));
        let e = EngineError::TopologySizeMismatch {
            topology: 8,
            population: 6,
        };
        let msg = e.to_string();
        assert!(msg.contains('8') && msg.contains('6'));
        let e = EngineError::EpochIncompatible {
            feature: "step-indexed omission schedules",
        };
        let msg = e.to_string();
        assert!(msg.contains("step-indexed omission schedules"));
        assert!(msg.contains("interleaved"));
    }

    #[test]
    fn population_errors_are_wrapped_with_source() {
        let e: EngineError = PopulationError::SelfInteraction { agent: 1 }.into();
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<EngineError>();
    }
}

//! Convergence detection helpers.
//!
//! A population protocol never halts — it *stabilizes*: eventually no
//! reachable interaction changes any state (the configuration is
//! **silent**), or at least the output stops changing. This module offers
//! the exact, protocol-level silence checks that complement the runners'
//! observational [`run_until_stable`](crate::OneWayRunner::run_until_stable)
//! heuristic, plus the [`stably`] predicate combinator that makes
//! sampled convergence checks quiescence-aware.

use ppfts_population::{Multiset, Population, State};

use crate::{
    outcome, OneWayFault, OneWayModel, OneWayProgram, TwoWayFault, TwoWayModel, TwoWayProgram,
};

/// Whether `config` is **silent** under a two-way program: no ordered pair
/// of (distinct) present states changes under any fault the model
/// permits.
///
/// Cost: O(d² · f) where `d` is the number of *distinct* states present
/// and `f` the number of permitted faults — silence is a property of the
/// multiset, not of agent identities.
///
/// # Example
///
/// ```
/// use ppfts_engine::convergence::silent_two_way;
/// use ppfts_engine::TwoWayModel;
/// use ppfts_population::{Configuration, FunctionProtocol};
///
/// let or = FunctionProtocol::new(
///     |s: &bool, r: &bool| *s || *r,
///     |s: &bool, r: &bool| *s || *r,
/// );
/// assert!(silent_two_way(TwoWayModel::Tw, &or, &Configuration::uniform(true, 4)));
/// assert!(!silent_two_way(TwoWayModel::Tw, &or, &Configuration::new(vec![true, false])));
/// ```
pub fn silent_two_way<P: TwoWayProgram>(
    model: TwoWayModel,
    program: &P,
    config: &impl Population<State = P::State>,
) -> bool {
    let counts = config.counts();
    silent_over_pairs(&counts, |s, r| {
        model.permitted_faults().iter().all(|&fault| {
            let (s2, r2) = outcome::two_way(model, program, s, r, fault)
                .expect("fault permitted by the model");
            s2 == *s && r2 == *r
        })
    })
}

/// Whether `config` is **silent** under a one-way program: no ordered
/// pair of (distinct) present states changes under any fault the model
/// permits.
pub fn silent_one_way<P: OneWayProgram>(
    model: OneWayModel,
    program: &P,
    config: &impl Population<State = P::State>,
) -> bool {
    let faults: &[OneWayFault] = if model.allows_omissions() {
        &[OneWayFault::None, OneWayFault::Omission]
    } else {
        &[OneWayFault::None]
    };
    let counts = config.counts();
    silent_over_pairs(&counts, |s, r| {
        faults.iter().all(|&fault| {
            let (s2, r2) = outcome::one_way(model, program, s, r, fault)
                .expect("fault permitted by the model");
            s2 == *s && r2 == *r
        })
    })
}

fn silent_over_pairs<Q: State>(
    counts: &Multiset<Q>,
    mut pair_is_noop: impl FnMut(&Q, &Q) -> bool,
) -> bool {
    for (s, cs) in counts.iter() {
        for (r, _) in counts.iter() {
            if s == r && cs < 2 {
                continue; // a lone agent cannot meet itself
            }
            if !pair_is_noop(s, r) {
                return false;
            }
        }
    }
    true
}

/// Faults that may occur for a two-way model — re-exported for silence
/// analysis of custom tooling.
pub fn permitted_two_way_faults(model: TwoWayModel) -> &'static [TwoWayFault] {
    model.permitted_faults()
}

/// Wraps a configuration predicate so it only reports `true` after
/// holding at `window` *consecutive* checks — the quiescence-aware
/// convergence combinator.
///
/// A raw predicate like `|c| paired(c) == k` can be satisfied by a
/// configuration sampled *mid-handshake*: the projected count momentarily
/// reads `k` while a counterpart agent is still inside a simulated
/// interaction, so stopping there hands back a non-quiescent state
/// (the `run_until` sampling hazard the ROADMAP records). Requiring the
/// predicate to survive a window of consecutive samples filters those
/// transients out: with [`run_until`](crate::OneWayRunner::run_until) the
/// window is counted in steps, with
/// [`run_batched_until`](crate::OneWayRunner::run_batched_until) in batch
/// boundaries (i.e. `window × batch` engine steps).
///
/// `window` of 1 is the raw predicate; a `window` of 0 is rejected.
///
/// # Example
///
/// ```
/// use ppfts_engine::convergence::stably;
/// use ppfts_population::Configuration;
///
/// let mut pred = stably(|c: &Configuration<u8>| c.count_state(&1) == 2, 2);
/// let target = Configuration::new(vec![1, 1]);
/// assert!(!pred(&target)); // first hit: not yet stable
/// assert!(pred(&target));  // second consecutive hit: stable
///
/// let mut pred = stably(|c: &Configuration<u8>| c.count_state(&1) == 2, 2);
/// assert!(!pred(&target));
/// assert!(!pred(&Configuration::new(vec![1, 0]))); // transient dip resets
/// assert!(!pred(&target));
/// assert!(pred(&target));
/// ```
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn stably<C>(mut predicate: impl FnMut(&C) -> bool, window: u64) -> impl FnMut(&C) -> bool {
    assert!(window > 0, "stability window must be positive");
    let mut streak = 0u64;
    move |config| {
        if predicate(config) {
            streak += 1;
        } else {
            streak = 0;
        }
        streak >= window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfts_population::{Configuration, FunctionProtocol};

    fn epidemic() -> impl TwoWayProgram<State = bool> {
        FunctionProtocol::new(|s: &bool, r: &bool| *s || *r, |s: &bool, r: &bool| *s || *r)
    }

    struct OneWayOr;
    impl OneWayProgram for OneWayOr {
        type State = bool;
        fn on_receive(&self, s: &bool, r: &bool) -> bool {
            *s || *r
        }
    }

    #[test]
    fn all_infected_is_silent() {
        assert!(silent_two_way(
            TwoWayModel::Tw,
            &epidemic(),
            &Configuration::uniform(true, 5)
        ));
        assert!(silent_one_way(
            OneWayModel::Io,
            &OneWayOr,
            &Configuration::uniform(true, 5)
        ));
    }

    #[test]
    fn mixed_is_not_silent() {
        assert!(!silent_two_way(
            TwoWayModel::Tw,
            &epidemic(),
            &Configuration::new(vec![true, false, false])
        ));
        assert!(!silent_one_way(
            OneWayModel::Io,
            &OneWayOr,
            &Configuration::new(vec![false, true])
        ));
    }

    #[test]
    fn all_clear_is_silent_too() {
        assert!(silent_two_way(
            TwoWayModel::Tw,
            &epidemic(),
            &Configuration::uniform(false, 3)
        ));
    }

    #[test]
    fn lone_state_needs_two_copies_to_self_meet() {
        // A protocol where (q, q) reacts but nothing else: a single copy
        // of q is silent, two copies are not.
        let p = FunctionProtocol::new(
            |s: &u8, r: &u8| if *s == 1 && *r == 1 { 2 } else { *s },
            |s: &u8, r: &u8| if *s == 1 && *r == 1 { 2 } else { *r },
        );
        assert!(silent_two_way(
            TwoWayModel::Tw,
            &p,
            &Configuration::new(vec![1, 0])
        ));
        assert!(!silent_two_way(
            TwoWayModel::Tw,
            &p,
            &Configuration::new(vec![1, 1])
        ));
    }

    #[test]
    fn omissive_models_check_faulty_outcomes_as_well() {
        // A program whose omission-detection hook changes state: silent
        // under TW dynamics but not under T3, where the adversary can
        // trigger `h`.
        struct Detect;
        impl TwoWayProgram for Detect {
            type State = u8;
            fn starter_update(&self, s: &u8, _r: &u8) -> u8 {
                *s
            }
            fn reactor_update(&self, _s: &u8, r: &u8) -> u8 {
                *r
            }
            fn reactor_omission(&self, r: &u8) -> u8 {
                r + 1
            }
        }
        let c = Configuration::new(vec![0u8, 0]);
        assert!(silent_two_way(TwoWayModel::Tw, &Detect, &c));
        assert!(!silent_two_way(TwoWayModel::T3, &Detect, &c));
    }

    #[test]
    fn stably_requires_a_consecutive_streak() {
        let hot = Configuration::new(vec![true, true]);
        let cold = Configuration::new(vec![true, false]);
        let mut pred = stably(|c: &Configuration<bool>| c.count_state(&true) == 2, 3);
        assert!(!pred(&hot));
        assert!(!pred(&hot));
        assert!(pred(&hot), "third consecutive success fires");
        assert!(pred(&hot), "and stays fired while the predicate holds");
        assert!(!pred(&cold), "a miss resets the streak");
        assert!(!pred(&hot));
        assert!(!pred(&hot));
        assert!(pred(&hot));
    }

    #[test]
    #[should_panic(expected = "stability window")]
    fn stably_rejects_zero_window() {
        let _ = stably(|_: &Configuration<bool>| true, 0)(&Configuration::uniform(true, 2));
    }

    #[test]
    fn stably_filters_batched_transients() {
        // An epidemic under run_batched_until with stably(…, 2): the
        // outcome steps land on a batch boundary and the predicate held at
        // two consecutive boundaries.
        use crate::{OneWayModel, OneWayProgram, OneWayRunner, StatsOnly};
        struct Or;
        impl OneWayProgram for Or {
            type State = bool;
            fn on_receive(&self, s: &bool, r: &bool) -> bool {
                *s || *r
            }
        }
        let mut runner = OneWayRunner::builder(OneWayModel::Io, Or)
            .config(Configuration::new(vec![true, false, false, false]))
            .seed(6)
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
        let everyone = |c: &Configuration<bool>| c.as_slice().iter().all(|b| *b);
        let out = runner.run_batched_until(100_000, 32, stably(everyone, 2));
        assert!(out.is_satisfied());
        assert!(out.steps().is_multiple_of(32));
        assert!(out.steps() >= 64, "needs two boundary confirmations");
    }

    #[test]
    fn runners_detect_observed_stability() {
        use crate::{OneWayRunner, RunOutcome};
        let mut runner = OneWayRunner::builder(OneWayModel::Io, OneWayOr)
            .config(Configuration::new(vec![true, false, false]))
            .seed(4)
            .build()
            .unwrap();
        let out = runner.run_until_stable(100_000, 200);
        assert!(matches!(out, RunOutcome::Satisfied { .. }));
        // Once observationally stable here, truly silent too.
        assert!(silent_one_way(OneWayModel::Io, &OneWayOr, runner.config()));
    }
}

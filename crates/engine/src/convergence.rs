//! Convergence detection helpers.
//!
//! A population protocol never halts — it *stabilizes*: eventually no
//! reachable interaction changes any state (the configuration is
//! **silent**), or at least the output stops changing. This module offers
//! the exact, protocol-level silence checks that complement the runners'
//! observational [`run_until_stable`](crate::OneWayRunner::run_until_stable)
//! heuristic.

use ppfts_population::{Configuration, Multiset, State};

use crate::{
    outcome, OneWayFault, OneWayModel, OneWayProgram, TwoWayFault, TwoWayModel, TwoWayProgram,
};

/// Whether `config` is **silent** under a two-way program: no ordered pair
/// of (distinct) present states changes under any fault the model
/// permits.
///
/// Cost: O(d² · f) where `d` is the number of *distinct* states present
/// and `f` the number of permitted faults — silence is a property of the
/// multiset, not of agent identities.
///
/// # Example
///
/// ```
/// use ppfts_engine::convergence::silent_two_way;
/// use ppfts_engine::TwoWayModel;
/// use ppfts_population::{Configuration, FunctionProtocol};
///
/// let or = FunctionProtocol::new(
///     |s: &bool, r: &bool| *s || *r,
///     |s: &bool, r: &bool| *s || *r,
/// );
/// assert!(silent_two_way(TwoWayModel::Tw, &or, &Configuration::uniform(true, 4)));
/// assert!(!silent_two_way(TwoWayModel::Tw, &or, &Configuration::new(vec![true, false])));
/// ```
pub fn silent_two_way<P: TwoWayProgram>(
    model: TwoWayModel,
    program: &P,
    config: &Configuration<P::State>,
) -> bool {
    let counts = config.counts();
    silent_over_pairs(&counts, |s, r| {
        model.permitted_faults().iter().all(|&fault| {
            let (s2, r2) = outcome::two_way(model, program, s, r, fault)
                .expect("fault permitted by the model");
            s2 == *s && r2 == *r
        })
    })
}

/// Whether `config` is **silent** under a one-way program: no ordered
/// pair of (distinct) present states changes under any fault the model
/// permits.
pub fn silent_one_way<P: OneWayProgram>(
    model: OneWayModel,
    program: &P,
    config: &Configuration<P::State>,
) -> bool {
    let faults: &[OneWayFault] = if model.allows_omissions() {
        &[OneWayFault::None, OneWayFault::Omission]
    } else {
        &[OneWayFault::None]
    };
    let counts = config.counts();
    silent_over_pairs(&counts, |s, r| {
        faults.iter().all(|&fault| {
            let (s2, r2) = outcome::one_way(model, program, s, r, fault)
                .expect("fault permitted by the model");
            s2 == *s && r2 == *r
        })
    })
}

fn silent_over_pairs<Q: State>(
    counts: &Multiset<Q>,
    mut pair_is_noop: impl FnMut(&Q, &Q) -> bool,
) -> bool {
    for (s, cs) in counts.iter() {
        for (r, _) in counts.iter() {
            if s == r && cs < 2 {
                continue; // a lone agent cannot meet itself
            }
            if !pair_is_noop(s, r) {
                return false;
            }
        }
    }
    true
}

/// Faults that may occur for a two-way model — re-exported for silence
/// analysis of custom tooling.
pub fn permitted_two_way_faults(model: TwoWayModel) -> &'static [TwoWayFault] {
    model.permitted_faults()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfts_population::FunctionProtocol;

    fn epidemic() -> impl TwoWayProgram<State = bool> {
        FunctionProtocol::new(|s: &bool, r: &bool| *s || *r, |s: &bool, r: &bool| *s || *r)
    }

    struct OneWayOr;
    impl OneWayProgram for OneWayOr {
        type State = bool;
        fn on_receive(&self, s: &bool, r: &bool) -> bool {
            *s || *r
        }
    }

    #[test]
    fn all_infected_is_silent() {
        assert!(silent_two_way(
            TwoWayModel::Tw,
            &epidemic(),
            &Configuration::uniform(true, 5)
        ));
        assert!(silent_one_way(
            OneWayModel::Io,
            &OneWayOr,
            &Configuration::uniform(true, 5)
        ));
    }

    #[test]
    fn mixed_is_not_silent() {
        assert!(!silent_two_way(
            TwoWayModel::Tw,
            &epidemic(),
            &Configuration::new(vec![true, false, false])
        ));
        assert!(!silent_one_way(
            OneWayModel::Io,
            &OneWayOr,
            &Configuration::new(vec![false, true])
        ));
    }

    #[test]
    fn all_clear_is_silent_too() {
        assert!(silent_two_way(
            TwoWayModel::Tw,
            &epidemic(),
            &Configuration::uniform(false, 3)
        ));
    }

    #[test]
    fn lone_state_needs_two_copies_to_self_meet() {
        // A protocol where (q, q) reacts but nothing else: a single copy
        // of q is silent, two copies are not.
        let p = FunctionProtocol::new(
            |s: &u8, r: &u8| if *s == 1 && *r == 1 { 2 } else { *s },
            |s: &u8, r: &u8| if *s == 1 && *r == 1 { 2 } else { *r },
        );
        assert!(silent_two_way(
            TwoWayModel::Tw,
            &p,
            &Configuration::new(vec![1, 0])
        ));
        assert!(!silent_two_way(
            TwoWayModel::Tw,
            &p,
            &Configuration::new(vec![1, 1])
        ));
    }

    #[test]
    fn omissive_models_check_faulty_outcomes_as_well() {
        // A program whose omission-detection hook changes state: silent
        // under TW dynamics but not under T3, where the adversary can
        // trigger `h`.
        struct Detect;
        impl TwoWayProgram for Detect {
            type State = u8;
            fn starter_update(&self, s: &u8, _r: &u8) -> u8 {
                *s
            }
            fn reactor_update(&self, _s: &u8, r: &u8) -> u8 {
                *r
            }
            fn reactor_omission(&self, r: &u8) -> u8 {
                r + 1
            }
        }
        let c = Configuration::new(vec![0u8, 0]);
        assert!(silent_two_way(TwoWayModel::Tw, &Detect, &c));
        assert!(!silent_two_way(TwoWayModel::T3, &Detect, &c));
    }

    #[test]
    fn runners_detect_observed_stability() {
        use crate::{OneWayRunner, RunOutcome};
        let mut runner = OneWayRunner::builder(OneWayModel::Io, OneWayOr)
            .config(Configuration::new(vec![true, false, false]))
            .seed(4)
            .build()
            .unwrap();
        let out = runner.run_until_stable(100_000, 200);
        assert!(matches!(out, RunOutcome::Satisfied { .. }));
        // Once observationally stable here, truly silent too.
        assert!(silent_one_way(OneWayModel::Io, &OneWayOr, runner.config()));
    }
}

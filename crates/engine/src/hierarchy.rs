//! The inclusion hierarchy of interaction models (paper Figure 1).
//!
//! An arrow `A → B` means: every problem solvable under model `A` is
//! solvable under model `B`. The paper derives its arrows from two
//! principles (§2.3), which we encode explicitly:
//!
//! 1. **Relation specialization** — the transition relation of the source
//!    is a special case of the destination's (instantiate a detection hook
//!    with a concrete function). E.g. T2 → T3 by `h := id`, IO → IT by
//!    `g := id`, I2 → I3 by `h := g`.
//! 2. **Adversary avoidance** — the destination's adversary may simply
//!    insert no omissions, so an omissive model includes its fault-free
//!    base. E.g. T3 → TW (the paper's own example), I_k → IT.
//!
//! [`includes`] answers reachability over the reflexive–transitive closure
//! of those arrows. The per-arrow justification is kept in
//! [`direct_inclusions`] so tests (and the Figure 1 reproduction harness)
//! can audit each edge.

use crate::{Model, OneWayModel, TwoWayModel};

/// Why an inclusion arrow holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrowReason {
    /// The source relation is a special case of the destination relation
    /// (a detection hook instantiated with the named function).
    Specialization(&'static str),
    /// The destination adversary can refuse to insert omissions.
    AdversaryAvoidance,
}

/// One inclusion arrow of Figure 1 with its justification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrow {
    /// Weaker model (solvable problems form a subset).
    pub from: Model,
    /// Stronger model.
    pub to: Model,
    /// The paper's justification for the arrow.
    pub reason: ArrowReason,
}

const TW: Model = Model::TwoWay(TwoWayModel::Tw);
const T1: Model = Model::TwoWay(TwoWayModel::T1);
const T2: Model = Model::TwoWay(TwoWayModel::T2);
const T3: Model = Model::TwoWay(TwoWayModel::T3);
const IT: Model = Model::OneWay(OneWayModel::It);
const IO: Model = Model::OneWay(OneWayModel::Io);
const I1: Model = Model::OneWay(OneWayModel::I1);
const I2: Model = Model::OneWay(OneWayModel::I2);
const I3: Model = Model::OneWay(OneWayModel::I3);
const I4: Model = Model::OneWay(OneWayModel::I4);

/// The direct inclusion arrows with their justifications.
///
/// # Example
///
/// ```
/// use ppfts_engine::hierarchy::{direct_inclusions, ArrowReason};
///
/// // T3 → TW is the adversary-avoidance example given in the paper.
/// assert!(direct_inclusions().iter().any(|a| {
///     a.from.to_string() == "T3"
///         && a.to.to_string() == "TW"
///         && a.reason == ArrowReason::AdversaryAvoidance
/// }));
/// ```
pub fn direct_inclusions() -> &'static [Arrow] {
    use ArrowReason::*;
    &[
        // Two-way chain: less detection → more detection.
        Arrow {
            from: T1,
            to: T2,
            reason: Specialization("o := id (plus the pruned no-op outcome)"),
        },
        Arrow {
            from: T2,
            to: T3,
            reason: Specialization("h := id"),
        },
        // Omissive models include their fault-free base.
        Arrow {
            from: T1,
            to: TW,
            reason: AdversaryAvoidance,
        },
        Arrow {
            from: T2,
            to: TW,
            reason: AdversaryAvoidance,
        },
        Arrow {
            from: T3,
            to: TW,
            reason: AdversaryAvoidance,
        },
        Arrow {
            from: I1,
            to: IT,
            reason: AdversaryAvoidance,
        },
        Arrow {
            from: I2,
            to: IT,
            reason: AdversaryAvoidance,
        },
        Arrow {
            from: I3,
            to: IT,
            reason: AdversaryAvoidance,
        },
        Arrow {
            from: I4,
            to: IT,
            reason: AdversaryAvoidance,
        },
        // One-way omissive lattice: weak detection → strong detection.
        Arrow {
            from: I1,
            to: I3,
            reason: Specialization("h := id"),
        },
        Arrow {
            from: I2,
            to: I3,
            reason: Specialization("h := g"),
        },
        Arrow {
            from: I2,
            to: I4,
            reason: Specialization("o := g"),
        },
        // One-way bases into the stronger worlds.
        Arrow {
            from: IO,
            to: IT,
            reason: Specialization("g := id"),
        },
        Arrow {
            from: IT,
            to: TW,
            reason: Specialization("fs(s, r) := g(s), fr := f"),
        },
    ]
}

/// Whether every problem solvable under `weaker` is solvable under
/// `stronger`, per the reflexive–transitive closure of Figure 1's arrows.
///
/// # Example
///
/// ```
/// use ppfts_engine::hierarchy::includes;
/// use ppfts_engine::{Model, OneWayModel, TwoWayModel};
///
/// let io = Model::OneWay(OneWayModel::Io);
/// let tw = Model::TwoWay(TwoWayModel::Tw);
/// assert!(includes(io, tw));  // IO-solvable ⊆ TW-solvable
/// assert!(!includes(tw, io)); // … and not conversely (paper [4])
/// ```
pub fn includes(weaker: Model, stronger: Model) -> bool {
    if weaker == stronger {
        return true;
    }
    // Tiny graph: depth-first search over the static arrows.
    let mut stack = vec![weaker];
    let mut visited = Vec::new();
    while let Some(m) = stack.pop() {
        if m == stronger {
            return true;
        }
        if visited.contains(&m) {
            continue;
        }
        visited.push(m);
        for a in direct_inclusions() {
            if a.from == m {
                stack.push(a.to);
            }
        }
    }
    false
}

/// All models `m` with `includes(m, of)`: the cone of models whose
/// solvable problems are contained in `of`'s.
pub fn weaker_models(of: Model) -> Vec<Model> {
    Model::ALL
        .iter()
        .copied()
        .filter(|&m| includes(m, of))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_reaches_tw_from_everything() {
        for m in Model::ALL {
            assert!(includes(m, TW), "{m} must be included in TW");
        }
    }

    #[test]
    fn tw_is_strictly_strongest() {
        for m in Model::ALL {
            if m != TW {
                assert!(!includes(TW, m), "TW must not be included in {m}");
            }
        }
    }

    #[test]
    fn one_way_lattice() {
        assert!(includes(I1, I3));
        assert!(includes(I2, I3));
        assert!(includes(I2, I4));
        assert!(includes(I1, IT));
        assert!(includes(IO, IT));
        // The strong omissive models are incomparable with each other.
        assert!(!includes(I3, I4));
        assert!(!includes(I4, I3));
        // And nothing flows back down from IT.
        assert!(!includes(IT, I3));
        assert!(!includes(IT, IO));
    }

    #[test]
    fn two_way_chain() {
        assert!(includes(T1, T2));
        assert!(includes(T1, T3)); // via T2
        assert!(includes(T2, T3));
        assert!(!includes(T3, T2));
        assert!(!includes(T2, T1));
    }

    #[test]
    fn families_only_meet_at_the_top() {
        // No two-way omissive model is included in any one-way model.
        for t in [T1, T2, T3] {
            for i in [IT, IO, I1, I2, I3, I4] {
                assert!(!includes(t, i), "{t} must not be included in {i}");
            }
        }
    }

    #[test]
    fn reflexivity() {
        for m in Model::ALL {
            assert!(includes(m, m));
        }
    }

    #[test]
    fn weaker_models_of_it_contains_all_one_way() {
        let w = weaker_models(IT);
        for m in [IT, IO, I1, I2, I3, I4] {
            assert!(w.contains(&m));
        }
        assert!(!w.contains(&TW));
        assert!(!w.contains(&T3));
    }

    #[test]
    fn every_arrow_connects_distinct_models() {
        for a in direct_inclusions() {
            assert_ne!(a.from, a.to);
        }
    }

    #[test]
    fn arrows_are_acyclic() {
        // includes() in both directions would indicate a cycle (the paper's
        // figure is a DAG after pruning equivalent models).
        for a in direct_inclusions() {
            assert!(
                !includes(a.to, a.from),
                "cycle through {} → {}",
                a.from,
                a.to
            );
        }
    }
}

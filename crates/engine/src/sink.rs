//! Pluggable trace sinks.
//!
//! Runners report every executed step to a [`TraceSink`] instead of an
//! hard-wired optional [`Trace`]. The sink decides, *before* the runner
//! pays for cloning endpoint states into a [`StepRecord`], whether it
//! wants the record at all:
//!
//! * [`FullTrace`] — records every step (the builder default, toggled by
//!   `record_trace`); certification in `ppfts-core` (event extraction,
//!   matching construction) requires it;
//! * [`SampledTrace`] — records every k-th step plus every omissive or
//!   state-changing step, bounding memory on long quiescent runs while
//!   keeping everything forensically interesting;
//! * [`StatsOnly`] — keeps nothing; the runner's [`RunStats`] counters
//!   (which are maintained unconditionally) are the only output. This is
//!   the zero-allocation path the experiment harnesses run on.
//!
//! [`RunStats`]: crate::RunStats

use ppfts_population::State;

use crate::{StepRecord, Trace};

/// Receives the per-step records of a runner.
///
/// The two-phase protocol ([`wants_record`](TraceSink::wants_record) then
/// [`accept`](TraceSink::accept)) lets the runner skip building — and
/// cloning states into — a [`StepRecord`] entirely whenever the sink
/// declines the step.
pub trait TraceSink<Q: State, F> {
    /// Whether the sink wants the full record of the step about to be
    /// committed: its zero-based `index`, whether its fault is omissive,
    /// and whether it changed at least one endpoint's state.
    fn wants_record(&self, index: u64, omissive: bool, changed: bool) -> bool;

    /// Whether the sink currently declines *every* record. Runners hoist
    /// this out of their batched inner loops; sinks whose
    /// [`wants_record`](TraceSink::wants_record) can ever return `true`
    /// must leave it at the default `false`.
    fn is_passive(&self) -> bool {
        false
    }

    /// Delivers a record the sink asked for.
    fn accept(&mut self, record: StepRecord<Q, F>);

    /// The trace retained so far, for sinks that keep one.
    fn trace(&self) -> Option<&Trace<Q, F>> {
        None
    }

    /// Removes and returns the retained trace, leaving an empty one in
    /// place (recording stays configured as before).
    fn take_trace(&mut self) -> Option<Trace<Q, F>> {
        None
    }
}

/// Keeps no records at all: the zero-allocation sink for measurement
/// runs, where the runner's [`RunStats`](crate::RunStats) suffice.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsOnly;

impl<Q: State, F> TraceSink<Q, F> for StatsOnly {
    fn wants_record(&self, _index: u64, _omissive: bool, _changed: bool) -> bool {
        false
    }

    fn is_passive(&self) -> bool {
        true
    }

    fn accept(&mut self, _record: StepRecord<Q, F>) {}
}

/// Records every step — today's [`Trace`] behavior behind the sink
/// interface. Builders default to a *disabled* `FullTrace` (equivalent to
/// [`StatsOnly`], kept as the default so `record_trace(bool)` can toggle
/// recording without changing the runner's type).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FullTrace<Q: State, F> {
    enabled: bool,
    trace: Trace<Q, F>,
}

impl<Q: State, F> FullTrace<Q, F> {
    /// A sink that records every step.
    pub fn new() -> Self {
        FullTrace {
            enabled: true,
            trace: Trace::new(),
        }
    }

    /// A sink that records nothing (the builder default).
    pub fn disabled() -> Self {
        FullTrace {
            enabled: false,
            trace: Trace::new(),
        }
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

impl<Q: State, F> Default for FullTrace<Q, F> {
    fn default() -> Self {
        FullTrace::disabled()
    }
}

impl<Q: State, F> TraceSink<Q, F> for FullTrace<Q, F> {
    fn wants_record(&self, _index: u64, _omissive: bool, _changed: bool) -> bool {
        self.enabled
    }

    fn is_passive(&self) -> bool {
        !self.enabled
    }

    fn accept(&mut self, record: StepRecord<Q, F>) {
        self.trace.push(record);
    }

    fn trace(&self) -> Option<&Trace<Q, F>> {
        self.enabled.then_some(&self.trace)
    }

    fn take_trace(&mut self) -> Option<Trace<Q, F>> {
        self.enabled.then(|| std::mem::take(&mut self.trace))
    }
}

/// Records every `k`-th step plus every omissive and every
/// state-changing step.
///
/// On long convergence runs the overwhelming majority of steps are
/// post-stabilization no-ops; this sink drops exactly those, keeping the
/// full forensic signal (all faults, all state changes) and a periodic
/// heartbeat at a fraction of the memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SampledTrace<Q: State, F> {
    every: u64,
    trace: Trace<Q, F>,
}

impl<Q: State, F> SampledTrace<Q, F> {
    /// A sink keeping steps whose index is a multiple of `every`, plus
    /// all omissive and all state-changing steps.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn every(every: u64) -> Self {
        assert!(every > 0, "sampling stride must be positive");
        SampledTrace {
            every,
            trace: Trace::new(),
        }
    }

    /// The sampling stride.
    pub fn stride(&self) -> u64 {
        self.every
    }
}

impl<Q: State, F> TraceSink<Q, F> for SampledTrace<Q, F> {
    fn wants_record(&self, index: u64, omissive: bool, changed: bool) -> bool {
        omissive || changed || index.is_multiple_of(self.every)
    }

    fn accept(&mut self, record: StepRecord<Q, F>) {
        self.trace.push(record);
    }

    fn trace(&self) -> Option<&Trace<Q, F>> {
        Some(&self.trace)
    }

    fn take_trace(&mut self) -> Option<Trace<Q, F>> {
        Some(std::mem::take(&mut self.trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OneWayFault;
    use ppfts_population::Interaction;

    fn rec(index: u64, fault: OneWayFault, changed: bool) -> StepRecord<u8, OneWayFault> {
        StepRecord {
            index,
            interaction: Interaction::new(0, 1).unwrap(),
            fault,
            old_starter: 0,
            old_reactor: 0,
            new_starter: 0,
            new_reactor: changed as u8,
        }
    }

    #[test]
    fn stats_only_declines_everything() {
        let sink = StatsOnly;
        assert!(!TraceSink::<u8, OneWayFault>::wants_record(
            &sink, 0, true, true
        ));
        assert!(TraceSink::<u8, OneWayFault>::is_passive(&sink));
        assert!(TraceSink::<u8, OneWayFault>::trace(&sink).is_none());
    }

    #[test]
    fn full_trace_toggles_with_enabled() {
        let mut on: FullTrace<u8, OneWayFault> = FullTrace::new();
        assert!(on.wants_record(5, false, false));
        assert!(!on.is_passive());
        on.accept(rec(5, OneWayFault::None, false));
        assert_eq!(on.trace().unwrap().len(), 1);
        assert_eq!(on.take_trace().unwrap().len(), 1);
        assert_eq!(on.trace().unwrap().len(), 0, "take leaves recording on");

        let off: FullTrace<u8, OneWayFault> = FullTrace::default();
        assert!(!off.is_enabled());
        assert!(!off.wants_record(0, true, true));
        assert!(off.is_passive());
        assert!(off.trace().is_none());
    }

    #[test]
    fn sampled_trace_keeps_strided_and_interesting_steps() {
        let sink: SampledTrace<u8, OneWayFault> = SampledTrace::every(10);
        assert_eq!(sink.stride(), 10);
        assert!(sink.wants_record(0, false, false), "stride hit");
        assert!(sink.wants_record(20, false, false), "stride hit");
        assert!(!sink.wants_record(7, false, false), "quiet off-stride step");
        assert!(sink.wants_record(7, true, false), "omissive step kept");
        assert!(sink.wants_record(7, false, true), "changed step kept");
        assert!(!sink.is_passive());
    }

    #[test]
    #[should_panic(expected = "sampling stride")]
    fn sampled_trace_rejects_zero_stride() {
        let _: SampledTrace<u8, OneWayFault> = SampledTrace::every(0);
    }
}

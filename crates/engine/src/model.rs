//! The ten interaction models of the paper's Figure 1.

use std::fmt;

/// One of the ten interaction models studied in the paper.
///
/// The two families differ in who learns what during an interaction:
///
/// * [`TwoWayModel`] — both parties read each other's state
///   (`δ(s, r) = (fs(s, r), fr(s, r))` when fault-free);
/// * [`OneWayModel`] — only the reactor reads the starter's state
///   (`δ(s, r) = (g(s), f(s, r))` when fault-free; `g` is the starter's
///   *proximity detection* hook, forced to the identity in IO).
///
/// # Example
///
/// ```
/// use ppfts_engine::{Model, OneWayModel, TwoWayModel};
///
/// assert!(Model::TwoWay(TwoWayModel::Tw).is_fault_free());
/// assert!(Model::OneWay(OneWayModel::I3).allows_omissions());
/// assert_eq!(Model::OneWay(OneWayModel::Io).to_string(), "IO");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Model {
    /// A model in the two-way family (TW, T1, T2, T3).
    TwoWay(TwoWayModel),
    /// A model in the one-way family (IT, IO, I1–I4).
    OneWay(OneWayModel),
}

impl Model {
    /// All ten models, in the order used by the paper's Figure 4.
    pub const ALL: [Model; 10] = [
        Model::TwoWay(TwoWayModel::Tw),
        Model::TwoWay(TwoWayModel::T1),
        Model::TwoWay(TwoWayModel::T2),
        Model::TwoWay(TwoWayModel::T3),
        Model::OneWay(OneWayModel::It),
        Model::OneWay(OneWayModel::Io),
        Model::OneWay(OneWayModel::I1),
        Model::OneWay(OneWayModel::I2),
        Model::OneWay(OneWayModel::I3),
        Model::OneWay(OneWayModel::I4),
    ];

    /// Whether the model's transition relation contains omissive outcomes.
    pub fn allows_omissions(self) -> bool {
        match self {
            Model::TwoWay(m) => m.allows_omissions(),
            Model::OneWay(m) => m.allows_omissions(),
        }
    }

    /// Whether the model is one of the fault-free bases (TW, IT, IO).
    pub fn is_fault_free(self) -> bool {
        !self.allows_omissions()
    }

    /// Whether the model is in the one-way family.
    pub fn is_one_way(self) -> bool {
        matches!(self, Model::OneWay(_))
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Model::TwoWay(m) => write!(f, "{m}"),
            Model::OneWay(m) => write!(f, "{m}"),
        }
    }
}

/// The two-way interaction models: TW and its omissive weakenings T1–T3.
///
/// Transition relations (from Figure 1; `s`/`r` are the starter's and
/// reactor's states, `o`/`h` the starter-/reactor-side omission-detection
/// functions):
///
/// | model | fault-free | starter-side omission | reactor-side | both sides |
/// |-------|-----------|----------------------|--------------|------------|
/// | `Tw`  | `(fs, fr)` | —                    | —            | —          |
/// | `T1`  | `(fs, fr)` | `(s, fr)`            | `(fs, r)`    | not in the relation |
/// | `T2`  | `(fs, fr)` | `(o(s), fr)`         | `(fs, r)`    | `(o(s), r)` |
/// | `T3`  | `(fs, fr)` | `(o(s), fr)`         | `(fs, h(r))` | `(o(s), h(r))` |
///
/// "Starter-side omission" means the starter did not receive the reactor's
/// state (so it cannot apply `fs`); symmetrically for the reactor. In T1
/// neither party can detect an omission, so an interaction omissive on both
/// sides would change nothing and is pruned from the relation. In T2 only
/// the starter detects omissions (the paper fixes this orientation WLOG).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TwoWayModel {
    /// The standard fault-free two-way model.
    Tw,
    /// Omissive, no detection on either side.
    T1,
    /// Omissive, detection on the starter's side only.
    T2,
    /// Omissive, detection on both sides.
    T3,
}

impl TwoWayModel {
    /// All two-way models.
    pub const ALL: [TwoWayModel; 4] = [
        TwoWayModel::Tw,
        TwoWayModel::T1,
        TwoWayModel::T2,
        TwoWayModel::T3,
    ];

    /// Whether the model's relation contains omissive outcomes.
    pub fn allows_omissions(self) -> bool {
        self != TwoWayModel::Tw
    }

    /// The faults this model's transition relation contains.
    pub fn permitted_faults(self) -> &'static [TwoWayFault] {
        use TwoWayFault::*;
        match self {
            TwoWayModel::Tw => &[None],
            TwoWayModel::T1 => &[None, Starter, Reactor],
            TwoWayModel::T2 | TwoWayModel::T3 => &[None, Starter, Reactor, Both],
        }
    }

    /// Whether the *starter* can detect an omission on its side (`o` is not
    /// forced to the identity).
    pub fn starter_detects(self) -> bool {
        matches!(self, TwoWayModel::T2 | TwoWayModel::T3)
    }

    /// Whether the *reactor* can detect an omission on its side (`h` is not
    /// forced to the identity).
    pub fn reactor_detects(self) -> bool {
        self == TwoWayModel::T3
    }
}

impl fmt::Display for TwoWayModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TwoWayModel::Tw => "TW",
            TwoWayModel::T1 => "T1",
            TwoWayModel::T2 => "T2",
            TwoWayModel::T3 => "T3",
        })
    }
}

/// The one-way interaction models: IT, IO and the omissive I1–I4.
///
/// Transition relations (from Figure 1):
///
/// | model | fault-free | omissive |
/// |-------|------------|----------|
/// | `It`  | `(g(s), f(s, r))` | — |
/// | `Io`  | `(s, f(s, r))`    | — |
/// | `I1`  | `(g(s), f(s, r))` | `(g(s), r)` |
/// | `I2`  | `(g(s), f(s, r))` | `(g(s), g(r))` |
/// | `I3`  | `(g(s), f(s, r))` | `(g(s), h(r))` |
/// | `I4`  | `(g(s), f(s, r))` | `(o(s), g(r))` |
///
/// A one-way omission loses the single `starter → reactor` transmission.
/// In I1 nothing is detected (the reactor does not even notice the
/// meeting). In I2 both parties detect *proximity* (apply `g`) but cannot
/// tell the omission apart from an ordinary meeting. In I3 the reactor
/// detects the omission (`h`); in I4 the starter does (`o`). I3 and I4 are
/// the "strong" omissive one-way models in which the paper's simulator
/// `SKnO` works.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OneWayModel {
    /// Immediate Transmission: fault-free, starter applies `g`.
    It,
    /// Immediate Observation: fault-free, starter unaware (`g = id`).
    Io,
    /// Omissive, no detection of any kind.
    I1,
    /// Omissive, both parties detect proximity only.
    I2,
    /// Omissive, reactor-side omission detection.
    I3,
    /// Omissive, starter-side omission detection.
    I4,
}

impl OneWayModel {
    /// All one-way models.
    pub const ALL: [OneWayModel; 6] = [
        OneWayModel::It,
        OneWayModel::Io,
        OneWayModel::I1,
        OneWayModel::I2,
        OneWayModel::I3,
        OneWayModel::I4,
    ];

    /// Whether the model's relation contains omissive outcomes.
    pub fn allows_omissions(self) -> bool {
        !matches!(self, OneWayModel::It | OneWayModel::Io)
    }

    /// The faults this model's transition relation contains — the one-way
    /// sibling of [`TwoWayModel::permitted_faults`], used by the exhaustive
    /// explorers to enumerate fault-decorated edges.
    pub fn permitted_faults(self) -> &'static [OneWayFault] {
        if self.allows_omissions() {
            &[OneWayFault::None, OneWayFault::Omission]
        } else {
            &[OneWayFault::None]
        }
    }

    /// Whether the starter's proximity hook `g` is applied at all. Only IO
    /// forces `g` to the identity.
    pub fn starter_applies_g(self) -> bool {
        self != OneWayModel::Io
    }

    /// Whether the reactor can detect omissions (`h` is available).
    pub fn reactor_detects_omission(self) -> bool {
        self == OneWayModel::I3
    }

    /// Whether the starter can detect omissions (`o` is available).
    pub fn starter_detects_omission(self) -> bool {
        self == OneWayModel::I4
    }
}

impl fmt::Display for OneWayModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OneWayModel::It => "IT",
            OneWayModel::Io => "IO",
            OneWayModel::I1 => "I1",
            OneWayModel::I2 => "I2",
            OneWayModel::I3 => "I3",
            OneWayModel::I4 => "I4",
        })
    }
}

/// Fault decoration of one two-way interaction: which side(s) failed to
/// receive the other party's state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TwoWayFault {
    /// Fault-free interaction.
    #[default]
    None,
    /// The starter did not receive the reactor's state.
    Starter,
    /// The reactor did not receive the starter's state.
    Reactor,
    /// Neither party received the other's state.
    Both,
}

impl TwoWayFault {
    /// Whether any information was lost.
    pub fn is_omissive(self) -> bool {
        self != TwoWayFault::None
    }
}

impl fmt::Display for TwoWayFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TwoWayFault::None => "ok",
            TwoWayFault::Starter => "omit@starter",
            TwoWayFault::Reactor => "omit@reactor",
            TwoWayFault::Both => "omit@both",
        })
    }
}

/// Fault decoration of one one-way interaction: the single
/// `starter → reactor` transmission is either delivered or lost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum OneWayFault {
    /// Transmission delivered.
    #[default]
    None,
    /// Transmission lost.
    Omission,
}

impl OneWayFault {
    /// Whether the transmission was lost.
    pub fn is_omissive(self) -> bool {
        self == OneWayFault::Omission
    }
}

impl fmt::Display for OneWayFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OneWayFault::None => "ok",
            OneWayFault::Omission => "omit",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_models_total() {
        assert_eq!(Model::ALL.len(), 10);
        assert_eq!(TwoWayModel::ALL.len() + OneWayModel::ALL.len(), 10);
    }

    #[test]
    fn fault_free_bases() {
        assert!(Model::TwoWay(TwoWayModel::Tw).is_fault_free());
        assert!(Model::OneWay(OneWayModel::It).is_fault_free());
        assert!(Model::OneWay(OneWayModel::Io).is_fault_free());
        let omissive = Model::ALL.iter().filter(|m| m.allows_omissions()).count();
        assert_eq!(omissive, 7);
    }

    #[test]
    fn t1_relation_prunes_both_sides_omission() {
        assert!(!TwoWayModel::T1
            .permitted_faults()
            .contains(&TwoWayFault::Both));
        assert!(TwoWayModel::T2
            .permitted_faults()
            .contains(&TwoWayFault::Both));
        assert!(TwoWayModel::T3
            .permitted_faults()
            .contains(&TwoWayFault::Both));
    }

    #[test]
    fn detection_capabilities_match_figure_1() {
        assert!(!TwoWayModel::T1.starter_detects() && !TwoWayModel::T1.reactor_detects());
        assert!(TwoWayModel::T2.starter_detects() && !TwoWayModel::T2.reactor_detects());
        assert!(TwoWayModel::T3.starter_detects() && TwoWayModel::T3.reactor_detects());

        assert!(OneWayModel::I3.reactor_detects_omission());
        assert!(!OneWayModel::I3.starter_detects_omission());
        assert!(OneWayModel::I4.starter_detects_omission());
        assert!(!OneWayModel::I4.reactor_detects_omission());
        assert!(!OneWayModel::I1.reactor_detects_omission());
        assert!(!OneWayModel::I2.reactor_detects_omission());
    }

    #[test]
    fn io_is_the_only_model_without_g() {
        let without_g: Vec<_> = OneWayModel::ALL
            .iter()
            .filter(|m| !m.starter_applies_g())
            .collect();
        assert_eq!(without_g, vec![&OneWayModel::Io]);
    }

    #[test]
    fn display_names_match_paper() {
        let names: Vec<String> = Model::ALL
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        assert_eq!(
            names,
            ["TW", "T1", "T2", "T3", "IT", "IO", "I1", "I2", "I3", "I4"]
        );
    }

    #[test]
    fn fault_flags() {
        assert!(!TwoWayFault::None.is_omissive());
        assert!(TwoWayFault::Both.is_omissive());
        assert!(!OneWayFault::None.is_omissive());
        assert!(OneWayFault::Omission.is_omissive());
        assert_eq!(TwoWayFault::default(), TwoWayFault::None);
        assert_eq!(OneWayFault::default(), OneWayFault::None);
    }
}

//! Pure semantics of a single (possibly faulty) interaction.
//!
//! These two functions are the authoritative encoding of the transition
//! relations of the paper's Figure 1 (reproduced in the docs of
//! [`TwoWayModel`] and [`OneWayModel`]). Runners, attack builders and the
//! model checker all funnel through them, so the faulty outcomes are
//! defined in exactly one place.

use crate::program::{reactor_hook_on_omission, ReactorOmissionHook};
use crate::{
    EngineError, OneWayFault, OneWayModel, OneWayProgram, TwoWayFault, TwoWayModel, TwoWayProgram,
};

/// Outcome pair of one **two-way** interaction between states `s`
/// (starter) and `r` (reactor) under `model`, decorated with `fault`.
///
/// # Errors
///
/// Returns [`EngineError::FaultNotInRelation`] if `fault` is not part of
/// `model`'s transition relation: any omission under TW, and a both-sides
/// omission under T1 (pruned in Figure 1 because no party could even
/// detect it).
///
/// # Example
///
/// ```
/// use ppfts_engine::outcome::two_way;
/// use ppfts_engine::{TwoWayFault, TwoWayModel};
/// use ppfts_population::{FunctionProtocol, TwoWayProtocol};
///
/// let swap = FunctionProtocol::new(|_s: &u8, r: &u8| *r, |s: &u8, _r: &u8| *s);
///
/// // Fault-free: both sides swap.
/// assert_eq!(two_way(TwoWayModel::Tw, &swap, &1, &2, TwoWayFault::None)?, (2, 1));
/// // T1, starter-side omission: the starter keeps its state (undetected).
/// assert_eq!(two_way(TwoWayModel::T1, &swap, &1, &2, TwoWayFault::Starter)?, (1, 1));
/// # Ok::<(), ppfts_engine::EngineError>(())
/// ```
pub fn two_way<P: TwoWayProgram>(
    model: TwoWayModel,
    program: &P,
    s: &P::State,
    r: &P::State,
    fault: TwoWayFault,
) -> Result<(P::State, P::State), EngineError> {
    if !model.permitted_faults().contains(&fault) {
        return Err(EngineError::FaultNotInRelation {
            model: crate::Model::TwoWay(model),
            fault: fault.to_string(),
        });
    }
    let out = match fault {
        TwoWayFault::None => (program.starter_update(s, r), program.reactor_update(s, r)),
        TwoWayFault::Starter => {
            let s2 = if model.starter_detects() {
                program.starter_omission(s)
            } else {
                s.clone()
            };
            (s2, program.reactor_update(s, r))
        }
        TwoWayFault::Reactor => {
            let r2 = if model.reactor_detects() {
                program.reactor_omission(r)
            } else {
                r.clone()
            };
            (program.starter_update(s, r), r2)
        }
        TwoWayFault::Both => {
            let s2 = if model.starter_detects() {
                program.starter_omission(s)
            } else {
                s.clone()
            };
            let r2 = if model.reactor_detects() {
                program.reactor_omission(r)
            } else {
                r.clone()
            };
            (s2, r2)
        }
    };
    Ok(out)
}

/// Outcome pair of one **one-way** interaction between states `s`
/// (starter) and `r` (reactor) under `model`, decorated with `fault`.
///
/// Under IO the starter's state is returned untouched regardless of the
/// program's `g`: the Immediate Observation model *defines* the starter as
/// unaware, so the engine enforces `g = id` rather than trusting programs
/// (see [`validate_io_program`](crate::validate_io_program)).
///
/// # Errors
///
/// Returns [`EngineError::FaultNotInRelation`] if `fault` is an omission
/// under the fault-free models IT or IO.
///
/// # Example
///
/// ```
/// use ppfts_engine::outcome::one_way;
/// use ppfts_engine::{OneWayFault, OneWayModel, OneWayProgram};
///
/// struct Sum;
/// impl OneWayProgram for Sum {
///     type State = u32;
///     fn on_proximity(&self, q: &u32) -> u32 { q + 100 }
///     fn on_receive(&self, s: &u32, r: &u32) -> u32 { s + r }
///     fn on_omission_reactor(&self, r: &u32) -> u32 { r + 1 }
/// }
///
/// // IT: starter applies g, reactor applies f.
/// assert_eq!(one_way(OneWayModel::It, &Sum, &1, &2, OneWayFault::None)?, (101, 3));
/// // IO: starter is untouched even though g is not the identity.
/// assert_eq!(one_way(OneWayModel::Io, &Sum, &1, &2, OneWayFault::None)?, (1, 3));
/// // I3 omission: reactor detects it via h.
/// assert_eq!(one_way(OneWayModel::I3, &Sum, &1, &2, OneWayFault::Omission)?, (101, 3));
/// # Ok::<(), ppfts_engine::EngineError>(())
/// ```
pub fn one_way<P: OneWayProgram>(
    model: OneWayModel,
    program: &P,
    s: &P::State,
    r: &P::State,
    fault: OneWayFault,
) -> Result<(P::State, P::State), EngineError> {
    match fault {
        OneWayFault::None => {
            let s2 = if model.starter_applies_g() {
                program.on_proximity(s)
            } else {
                s.clone()
            };
            Ok((s2, program.on_receive(s, r)))
        }
        OneWayFault::Omission => {
            let reactor_hook = reactor_hook_on_omission(model);
            if reactor_hook == ReactorOmissionHook::Forbidden {
                return Err(EngineError::FaultNotInRelation {
                    model: crate::Model::OneWay(model),
                    fault: fault.to_string(),
                });
            }
            let s2 = if model.starter_detects_omission() {
                program.on_omission_starter(s)
            } else {
                // The starter cannot tell this meeting was omissive; it
                // still detects proximity in every omissive model.
                program.on_proximity(s)
            };
            let r2 = match reactor_hook {
                ReactorOmissionHook::Identity => r.clone(),
                ReactorOmissionHook::Proximity => program.on_proximity(r),
                ReactorOmissionHook::Detection => program.on_omission_reactor(r),
                ReactorOmissionHook::Forbidden => unreachable!("handled above"),
            };
            Ok((s2, r2))
        }
    }
}

/// In-place form of [`one_way`]: applies the outcome directly to the
/// endpoint states and reports `(starter_changed, reactor_changed)`.
///
/// Exactly equivalent to [`one_way`] followed by a compare-and-store of
/// both endpoints — the runners' record-free fast path uses it to skip
/// the two per-step state constructions for programs that override the
/// `*_in_place` hooks of [`OneWayProgram`].
///
/// # Errors
///
/// Same conditions as [`one_way`]; on error nothing is mutated.
pub fn one_way_in_place<P: OneWayProgram>(
    model: OneWayModel,
    program: &P,
    s: &mut P::State,
    r: &mut P::State,
    fault: OneWayFault,
) -> Result<(bool, bool), EngineError> {
    match fault {
        OneWayFault::None => {
            // The reactor reads the starter's pre-interaction state, so
            // it must update before the starter mutates.
            let r_changed = program.on_receive_in_place(s, r);
            let s_changed = if model.starter_applies_g() {
                program.on_proximity_in_place(s)
            } else {
                false
            };
            Ok((s_changed, r_changed))
        }
        OneWayFault::Omission => {
            let reactor_hook = reactor_hook_on_omission(model);
            if reactor_hook == ReactorOmissionHook::Forbidden {
                return Err(EngineError::FaultNotInRelation {
                    model: crate::Model::OneWay(model),
                    fault: fault.to_string(),
                });
            }
            let s_changed = if model.starter_detects_omission() {
                program.on_omission_starter_in_place(s)
            } else {
                program.on_proximity_in_place(s)
            };
            let r_changed = match reactor_hook {
                ReactorOmissionHook::Identity => false,
                ReactorOmissionHook::Proximity => program.on_proximity_in_place(r),
                ReactorOmissionHook::Detection => program.on_omission_reactor_in_place(r),
                ReactorOmissionHook::Forbidden => unreachable!("handled above"),
            };
            Ok((s_changed, r_changed))
        }
    }
}

/// In-place form of [`two_way`]: both updates read both pre-interaction
/// states, so the outcome pair is computed first and compare-and-stored.
///
/// # Errors
///
/// Same conditions as [`two_way`]; on error nothing is mutated.
pub fn two_way_in_place<P: TwoWayProgram>(
    model: TwoWayModel,
    program: &P,
    s: &mut P::State,
    r: &mut P::State,
    fault: TwoWayFault,
) -> Result<(bool, bool), EngineError> {
    let (s2, r2) = two_way(model, program, s, r, fault)?;
    let s_changed = s2 != *s;
    let r_changed = r2 != *r;
    if s_changed {
        *s = s2;
    }
    if r_changed {
        *r = r2;
    }
    Ok((s_changed, r_changed))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A probe program whose state records which hook last fired.
    /// States: 'i' initial; then one of "gfoh" per the hook applied.
    struct Probe;
    impl TwoWayProgram for Probe {
        type State = char;
        fn starter_update(&self, _s: &char, _r: &char) -> char {
            'S'
        }
        fn reactor_update(&self, _s: &char, _r: &char) -> char {
            'R'
        }
        fn starter_omission(&self, _s: &char) -> char {
            'o'
        }
        fn reactor_omission(&self, _r: &char) -> char {
            'h'
        }
    }

    struct Probe1;
    impl OneWayProgram for Probe1 {
        type State = char;
        fn on_proximity(&self, _q: &char) -> char {
            'g'
        }
        fn on_receive(&self, _s: &char, _r: &char) -> char {
            'f'
        }
        fn on_omission_starter(&self, _s: &char) -> char {
            'o'
        }
        fn on_omission_reactor(&self, _r: &char) -> char {
            'h'
        }
    }

    #[test]
    fn tw_rejects_all_omissions() {
        for fault in [
            TwoWayFault::Starter,
            TwoWayFault::Reactor,
            TwoWayFault::Both,
        ] {
            assert!(two_way(TwoWayModel::Tw, &Probe, &'i', &'i', fault).is_err());
        }
        assert_eq!(
            two_way(TwoWayModel::Tw, &Probe, &'i', &'i', TwoWayFault::None).unwrap(),
            ('S', 'R')
        );
    }

    #[test]
    fn t1_outcomes_match_figure_1() {
        let m = TwoWayModel::T1;
        assert_eq!(
            two_way(m, &Probe, &'i', &'i', TwoWayFault::None).unwrap(),
            ('S', 'R')
        );
        assert_eq!(
            two_way(m, &Probe, &'i', &'i', TwoWayFault::Starter).unwrap(),
            ('i', 'R')
        );
        assert_eq!(
            two_way(m, &Probe, &'i', &'i', TwoWayFault::Reactor).unwrap(),
            ('S', 'i')
        );
        assert!(two_way(m, &Probe, &'i', &'i', TwoWayFault::Both).is_err());
    }

    #[test]
    fn t2_outcomes_match_figure_1() {
        let m = TwoWayModel::T2;
        assert_eq!(
            two_way(m, &Probe, &'i', &'i', TwoWayFault::Starter).unwrap(),
            ('o', 'R')
        );
        // Reactor-side omission is undetectable in T2: identity.
        assert_eq!(
            two_way(m, &Probe, &'i', &'i', TwoWayFault::Reactor).unwrap(),
            ('S', 'i')
        );
        assert_eq!(
            two_way(m, &Probe, &'i', &'i', TwoWayFault::Both).unwrap(),
            ('o', 'i')
        );
    }

    #[test]
    fn t3_outcomes_match_figure_1() {
        let m = TwoWayModel::T3;
        assert_eq!(
            two_way(m, &Probe, &'i', &'i', TwoWayFault::None).unwrap(),
            ('S', 'R')
        );
        assert_eq!(
            two_way(m, &Probe, &'i', &'i', TwoWayFault::Starter).unwrap(),
            ('o', 'R')
        );
        assert_eq!(
            two_way(m, &Probe, &'i', &'i', TwoWayFault::Reactor).unwrap(),
            ('S', 'h')
        );
        assert_eq!(
            two_way(m, &Probe, &'i', &'i', TwoWayFault::Both).unwrap(),
            ('o', 'h')
        );
    }

    #[test]
    fn it_and_io_reject_omissions() {
        for m in [OneWayModel::It, OneWayModel::Io] {
            assert!(one_way(m, &Probe1, &'i', &'i', OneWayFault::Omission).is_err());
        }
    }

    #[test]
    fn it_vs_io_starter_visibility() {
        assert_eq!(
            one_way(OneWayModel::It, &Probe1, &'i', &'i', OneWayFault::None).unwrap(),
            ('g', 'f')
        );
        // IO: starter unaware even though the program defines g.
        assert_eq!(
            one_way(OneWayModel::Io, &Probe1, &'i', &'i', OneWayFault::None).unwrap(),
            ('i', 'f')
        );
    }

    #[test]
    fn omissive_one_way_outcomes_match_figure_1() {
        let om = OneWayFault::Omission;
        // I1: (g(s), r)
        assert_eq!(
            one_way(OneWayModel::I1, &Probe1, &'i', &'i', om).unwrap(),
            ('g', 'i')
        );
        // I2: (g(s), g(r))
        assert_eq!(
            one_way(OneWayModel::I2, &Probe1, &'i', &'i', om).unwrap(),
            ('g', 'g')
        );
        // I3: (g(s), h(r))
        assert_eq!(
            one_way(OneWayModel::I3, &Probe1, &'i', &'i', om).unwrap(),
            ('g', 'h')
        );
        // I4: (o(s), g(r))
        assert_eq!(
            one_way(OneWayModel::I4, &Probe1, &'i', &'i', om).unwrap(),
            ('o', 'g')
        );
    }

    #[test]
    fn fault_free_omissive_models_behave_like_it() {
        for m in [
            OneWayModel::I1,
            OneWayModel::I2,
            OneWayModel::I3,
            OneWayModel::I4,
        ] {
            assert_eq!(
                one_way(m, &Probe1, &'i', &'i', OneWayFault::None).unwrap(),
                ('g', 'f'),
                "model {m} must collapse to IT without omissions"
            );
        }
    }
}

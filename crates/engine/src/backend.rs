//! Execution-level population backends.
//!
//! [`ExecBackend`] is the engine-facing half of the population-backend
//! abstraction (the storage half is
//! [`Population`](ppfts_population::Population) in `ppfts-population`):
//! everything a runner needs to *drive* a population — draw the next
//! interacting pair, read its states, and commit an outcome — expressed
//! so that both the dense per-agent vector and the count-based multiset
//! can implement it.
//!
//! The two implementations differ in what a "pair" is:
//!
//! * [`DenseConfiguration`] — a pair is an [`Interaction`] (two agent
//!   indices) produced by the runner's [`Scheduler`]. All per-agent
//!   machinery (step records, scripted schedules, planned sequences)
//!   is available.
//! * [`CountConfiguration`] — a pair is the two drawn *states*; agent
//!   identities never exist. Pairs are sampled straight from the counts
//!   with exactly the uniform scheduler's law (see
//!   [`CountConfiguration::sample_pair`]), so only schedulers whose
//!   [`law`](Scheduler::law) is count-realizable
//!   ([`InteractionLaw::Uniform`](crate::InteractionLaw::Uniform)) are
//!   accepted — builders reject anything else with
//!   [`EngineError::CompleteInteractionLawRequired`] before the run
//!   starts. Operations that name agents return
//!   [`EngineError::PerAgentBackendRequired`].

use ppfts_population::{CountConfiguration, DenseConfiguration, Interaction, Population, State};
use rand::RngCore;

use crate::{EngineError, Scheduler};

/// What a runner needs from a population backend, beyond the storage view
/// of [`Population`].
///
/// The in-place contract of [`update_pair`](ExecBackend::update_pair)
/// mirrors the program hooks: `f` receives mutable access to the two
/// endpoint states, mutates them to the post-interaction states, and
/// reports `(starter_changed, reactor_changed)` under the state's
/// `PartialEq`. The backend is responsible for making those mutations
/// visible — directly for dense storage, via count adjustment for the
/// count backend.
pub trait ExecBackend: Population {
    /// Address of an interacting pair: agent indices for the dense
    /// backend ([`Interaction`]), the drawn states themselves for the
    /// count backend.
    type Pair: Clone + std::fmt::Debug;

    /// Whether this backend has per-agent identities.
    ///
    /// Builders use this to reject incompatible assemblies *at
    /// construction* instead of mid-run: a backend without agent
    /// identities cannot feed a recording [`TraceSink`] (a `StepRecord`
    /// names its endpoints) and cannot realize an index-addressed
    /// (non-uniform) [`Scheduler`].
    ///
    /// [`TraceSink`]: crate::TraceSink
    const PER_AGENT: bool;

    /// Whether pairs drawn now remain valid addresses after *other*
    /// pairs are applied.
    ///
    /// Index-addressed backends are stable: agent 3 is agent 3 no matter
    /// what happened in between, so a whole batch of pairs can be drawn
    /// up front. State-addressed pairs are not: applying one interaction
    /// changes the counts the next draw must see (and could even consume
    /// the last copy of a drawn state). Runners fall back to interleaved
    /// draw-and-apply — the exact sequential law, with every draw
    /// collision-aware by construction — when this is `false`.
    const STABLE_PAIRS: bool;

    /// Draws the next interacting pair through the scheduler layer.
    ///
    /// # Panics
    ///
    /// Panics if the population has fewer than two agents, or (count
    /// backend) if `scheduler` does not realize the uniform law.
    fn draw_pair(&self, scheduler: &mut dyn Scheduler, rng: &mut dyn RngCore) -> Self::Pair;

    /// [`draw_pair`](ExecBackend::draw_pair) with concrete scheduler and
    /// RNG types, so the draw monomorphizes end to end (no virtual call
    /// per range draw). Same pair, same RNG consumption. `where Self:
    /// Sized` keeps the trait object-safe.
    fn draw_pair_with<S: Scheduler, R: RngCore>(&self, scheduler: &mut S, rng: &mut R) -> Self::Pair
    where
        Self: Sized,
    {
        self.draw_pair(scheduler, rng)
    }

    /// Draws `k` pairs into `out` (appending), consuming the RNG stream
    /// exactly as `k` successive [`draw_pair`](ExecBackend::draw_pair)
    /// calls would.
    ///
    /// Only meaningful on [`STABLE_PAIRS`](ExecBackend::STABLE_PAIRS)
    /// backends — drawn pairs must stay valid while the rest of the
    /// batch is drawn. The dense backend routes this through
    /// [`Scheduler::next_interactions_into`], the schedulers' hoisted
    /// monomorphized bulk path; the default loops over
    /// [`draw_pair_with`](ExecBackend::draw_pair_with).
    fn draw_pairs_into<S: Scheduler, R: RngCore>(
        &self,
        out: &mut Vec<Self::Pair>,
        k: usize,
        scheduler: &mut S,
        rng: &mut R,
    ) where
        Self: Sized,
    {
        out.reserve(k);
        for _ in 0..k {
            out.push(self.draw_pair_with(scheduler, rng));
        }
    }

    /// Borrows the states of both endpoints of `pair`.
    ///
    /// # Errors
    ///
    /// Returns an error if the pair does not address two agents of this
    /// population (dense: an endpoint out of bounds).
    fn pair_states<'a>(
        &'a self,
        pair: &'a Self::Pair,
    ) -> Result<(&'a Self::State, &'a Self::State), EngineError>;

    /// Writes the outcome pair to the endpoints of `pair`, returning the
    /// replaced states (free for the dense backend, which swaps them out
    /// by move; the count backend clones them from the pair).
    ///
    /// # Errors
    ///
    /// Same conditions as [`pair_states`](ExecBackend::pair_states);
    /// count backend additionally if the addressed states are not
    /// present with sufficient multiplicity.
    fn commit_pair(
        &mut self,
        pair: &Self::Pair,
        outcome: (Self::State, Self::State),
    ) -> Result<(Self::State, Self::State), EngineError>;

    /// In-place update: hands `f` mutable access to both endpoint states
    /// and commits whatever `f` leaves behind, forwarding its
    /// `(starter_changed, reactor_changed)` report.
    ///
    /// # Errors
    ///
    /// Propagates `f`'s error (nothing is committed then) and the same
    /// addressing conditions as [`pair_states`](ExecBackend::pair_states).
    fn update_pair(
        &mut self,
        pair: &Self::Pair,
        f: impl FnOnce(&mut Self::State, &mut Self::State) -> Result<(bool, bool), EngineError>,
    ) -> Result<(bool, bool), EngineError>;

    /// The pair as a per-agent [`Interaction`], if this backend has agent
    /// identities — `None` on the count backend, which makes the runner
    /// surface [`EngineError::PerAgentBackendRequired`] wherever a step
    /// record would be built.
    fn interaction_of(pair: &Self::Pair) -> Option<Interaction>;

    /// The pair addressed by a per-agent [`Interaction`], for replaying
    /// planned sequences.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PerAgentBackendRequired`] on backends
    /// without agent identities.
    fn pair_of(&self, interaction: Interaction) -> Result<Self::Pair, EngineError>;

    /// The contiguous per-agent state slab, if this backend stores one —
    /// the entry point of the sharded execution path, which partitions
    /// the slab's indices across worker threads along a
    /// [`LevelPlan`](ppfts_population::LevelPlan). `None` on backends
    /// without per-agent storage (the count backend), which makes
    /// sharded runners fall back to the sequential batched path.
    fn dense_states_mut(&mut self) -> Option<&mut [Self::State]> {
        None
    }

    /// Hints the CPU to pull the states addressed by `pair` into cache.
    ///
    /// Batched runners call this a few plan entries ahead of the one they
    /// are applying: the scheduler's uniform draws make consecutive
    /// endpoint states land on unrelated cache lines, so without the hint
    /// every step of a large population stalls on two cold loads — the
    /// dominant cost of the simulator hot paths (see the E17 analysis in
    /// EXPERIMENTS.md). Purely a hint: no-op by default, never observable
    /// in behavior.
    fn prefetch_pair(&self, _pair: &Self::Pair) {}
}

/// Issues a best-effort cache prefetch for the first cache lines of `t`.
///
/// On non-x86 targets this is a no-op. The simulator states this is used
/// for (`SknoState` with its inline token queue, `SidState`) span a few
/// cache lines, so up to four leading lines are requested; trailing cold
/// fields of larger states are left to demand misses.
fn prefetch_state<T>(t: &T) {
    #[cfg(target_arch = "x86_64")]
    {
        let base = std::ptr::from_ref(t).cast::<i8>();
        let lines = std::mem::size_of::<T>().div_ceil(64).min(4);
        for line in 0..lines {
            // SAFETY: `_mm_prefetch` is an architectural hint with no
            // observable effect on memory; it cannot fault, for any
            // address. The offsets stay within (or one line past) the
            // referenced value.
            #[allow(unsafe_code)]
            unsafe {
                std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(
                    base.add(line * 64),
                );
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = t;
}

impl<Q: State> ExecBackend for DenseConfiguration<Q> {
    type Pair = Interaction;

    const PER_AGENT: bool = true;
    const STABLE_PAIRS: bool = true;

    fn draw_pair(&self, scheduler: &mut dyn Scheduler, rng: &mut dyn RngCore) -> Interaction {
        scheduler.next_interaction(DenseConfiguration::len(self), rng)
    }

    fn draw_pair_with<S: Scheduler, R: RngCore>(
        &self,
        scheduler: &mut S,
        rng: &mut R,
    ) -> Interaction {
        scheduler.next_interaction(DenseConfiguration::len(self), rng)
    }

    fn draw_pairs_into<S: Scheduler, R: RngCore>(
        &self,
        out: &mut Vec<Interaction>,
        k: usize,
        scheduler: &mut S,
        rng: &mut R,
    ) {
        scheduler.next_interactions_into(out, k, DenseConfiguration::len(self), rng);
    }

    fn pair_states<'a>(&'a self, pair: &'a Interaction) -> Result<(&'a Q, &'a Q), EngineError> {
        Ok(DenseConfiguration::pair_states(self, *pair)?)
    }

    fn commit_pair(&mut self, pair: &Interaction, outcome: (Q, Q)) -> Result<(Q, Q), EngineError> {
        Ok(self.write_pair(*pair, outcome)?)
    }

    fn update_pair(
        &mut self,
        pair: &Interaction,
        f: impl FnOnce(&mut Q, &mut Q) -> Result<(bool, bool), EngineError>,
    ) -> Result<(bool, bool), EngineError> {
        let (s, r) = self.pair_states_mut(*pair)?;
        f(s, r)
    }

    fn interaction_of(pair: &Interaction) -> Option<Interaction> {
        Some(*pair)
    }

    fn pair_of(&self, interaction: Interaction) -> Result<Interaction, EngineError> {
        Ok(interaction)
    }

    fn dense_states_mut(&mut self) -> Option<&mut [Q]> {
        Some(self.as_mut_slice())
    }

    fn prefetch_pair(&self, pair: &Interaction) {
        let slab = self.as_slice();
        if let (Some(s), Some(r)) = (
            slab.get(pair.starter().index()),
            slab.get(pair.reactor().index()),
        ) {
            prefetch_state(s);
            prefetch_state(r);
        }
    }
}

impl<Q: State> ExecBackend for CountConfiguration<Q> {
    /// The drawn (starter, reactor) states; no agent identities exist.
    type Pair = (Q, Q);

    const PER_AGENT: bool = false;
    const STABLE_PAIRS: bool = false;

    fn draw_pair(&self, scheduler: &mut dyn Scheduler, rng: &mut dyn RngCore) -> (Q, Q) {
        // Builders refuse to assemble this combination
        // (EngineError::CompleteInteractionLawRequired); the assert only
        // guards direct ExecBackend callers.
        assert!(
            scheduler.law().count_realizable(),
            "count-based populations sample pairs from state counts and can only \
             realize the uniform complete-graph law; use the dense backend for \
             restricted topologies and index-addressed schedules"
        );
        self.sample_pair(rng)
    }

    fn pair_states<'a>(&'a self, pair: &'a (Q, Q)) -> Result<(&'a Q, &'a Q), EngineError> {
        Ok((&pair.0, &pair.1))
    }

    fn commit_pair(&mut self, pair: &(Q, Q), outcome: (Q, Q)) -> Result<(Q, Q), EngineError> {
        self.apply_outcome(&pair.0, &pair.1, outcome)?;
        Ok(pair.clone())
    }

    fn update_pair(
        &mut self,
        pair: &(Q, Q),
        f: impl FnOnce(&mut Q, &mut Q) -> Result<(bool, bool), EngineError>,
    ) -> Result<(bool, bool), EngineError> {
        let (mut s, mut r) = pair.clone();
        let (s_changed, r_changed) = f(&mut s, &mut r)?;
        if s_changed || r_changed {
            self.apply_outcome(&pair.0, &pair.1, (s, r))?;
        }
        Ok((s_changed, r_changed))
    }

    fn interaction_of(_pair: &(Q, Q)) -> Option<Interaction> {
        None
    }

    fn pair_of(&self, _interaction: Interaction) -> Result<(Q, Q), EngineError> {
        Err(EngineError::PerAgentBackendRequired {
            operation: "replaying a planned interaction sequence",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RoundRobinScheduler, UniformScheduler};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn dense_pairs_are_scheduler_interactions() {
        let config = DenseConfiguration::new(vec!['a', 'b', 'c']);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sched = UniformScheduler::new();
        let pair = config.draw_pair(&mut sched, &mut rng);
        assert!(pair.check_bounds(3).is_ok());
        assert_eq!(
            DenseConfiguration::<char>::interaction_of(&pair),
            Some(pair)
        );
        assert_eq!(config.pair_of(pair).unwrap(), pair);
    }

    #[test]
    fn count_pairs_are_state_pairs() {
        let config = CountConfiguration::from_groups([('a', 2), ('b', 1)]);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sched = UniformScheduler::new();
        let pair = config.draw_pair(&mut sched, &mut rng);
        let (s, r) = config.pair_states(&pair).unwrap();
        assert!(['a', 'b'].contains(s) && ['a', 'b'].contains(r));
        assert_eq!(CountConfiguration::<char>::interaction_of(&pair), None);
        assert!(matches!(
            config.pair_of(Interaction::new(0, 1).unwrap()),
            Err(EngineError::PerAgentBackendRequired { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "uniform complete-graph law")]
    fn count_backend_rejects_non_uniform_schedulers() {
        let config = CountConfiguration::from_groups([('a', 2)]);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sched = RoundRobinScheduler::new();
        let _ = config.draw_pair(&mut sched, &mut rng);
    }

    #[test]
    fn count_update_pair_commits_only_changes() {
        let mut config = CountConfiguration::from_groups([(1u8, 2), (2u8, 2)]);
        let pair = (1u8, 2u8);
        // A no-op report leaves counts untouched.
        let (cs, cr) = config
            .update_pair(&pair, |_s, _r| Ok((false, false)))
            .unwrap();
        assert!(!cs && !cr);
        assert_eq!(config.count_state(&1), 2);
        // A change moves counts to the mutated states.
        config
            .update_pair(&pair, |s, r| {
                *s = 9;
                *r = 9;
                Ok((true, true))
            })
            .unwrap();
        assert_eq!(config.count_state(&9), 2);
        assert_eq!(config.count_state(&1), 1);
        assert_eq!(config.count_state(&2), 1);
    }
}

//! Sharded application of drawn batches over the dense state slab.
//!
//! This is the execution half of the sharded dense path: the runner
//! draws a batch sequentially (preserving the RNG stream), the
//! [`LevelPlan`] partitions it into agent-disjoint levels, and
//! [`apply_levels`] applies the levels across `std::thread::scope`
//! workers against the backend's state slab.
//!
//! # Why the result is bit-identical to the sequential batched path
//!
//! * Steps inside a level touch pairwise-disjoint agent pairs (the
//!   planner's invariant), and an interaction reads and writes only its
//!   two endpoint states, so the steps of a level commute: any
//!   execution order — including a parallel one — yields the same
//!   post-level slab.
//! * Levels are applied strictly in order, with a [`Barrier`] between
//!   them, and the plan replays each agent's steps in batch order
//!   across levels, so the composition of levels equals the sequential
//!   composition of the batch.
//! * The per-step tallies (applied / changed / omissive counts) are
//!   summed into per-worker locals and merged by addition — an
//!   order-insensitive reduction — so [`RunStats`](crate::RunStats)
//!   come out identical regardless of thread arrival order.
//! * Errors are merged by *minimum batch index*, not thread arrival:
//!   within the earliest level containing a failure, every worker runs
//!   its full chunk and the lowest-indexed error wins, so the reported
//!   error is a deterministic function of the batch.
//!
//! The one intentional divergence: the sequential path stops exactly at
//! a failing step, leaving the precise prefix applied; the sharded path
//! aborts at the next level boundary, so the whole level containing the
//! failure is applied before the run stops (and when several steps can
//! fail, the step reported may differ from the sequential path's).
//! Hook errors are impossible in runner-drawn batches — the adversary
//! only decorates steps with model-permitted faults — so this corner
//! exists for direct/planned misuse only; the bit-identity contract in
//! `tests/shard_equivalence.rs` covers error-free runs.
//!
//! # Why the `unsafe` is sound
//!
//! Workers write the slab through [`StateSlab`], a `Sync` wrapper over a
//! raw pointer. For each level, each step's endpoint indices are (a) in
//! bounds (asserted by the planner against the population size, which
//! equals the slab length) and (b) disjoint from every other step of
//! the level; the level's steps are partitioned across workers by
//! disjoint chunks, so no two threads ever hold references to the same
//! agent state. The `Barrier` between levels orders every write of
//! level `l` before every read of level `l + 1` (barrier waits form a
//! happens-before edge), and the enclosing [`std::thread::scope`] joins
//! all workers before the slab borrow ends.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

use ppfts_population::{Interaction, LevelPlan};

use crate::EngineError;

/// Order-insensitive per-batch tallies, merged by addition.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ShardTally {
    /// Steps actually applied (all of them, on an error-free batch).
    pub applied: u64,
    /// Steps whose fault decoration was omissive.
    pub omissive: u64,
    /// Steps that changed at least one endpoint state.
    pub changed: u64,
}

impl ShardTally {
    fn merge(&mut self, other: ShardTally) {
        self.applied += other.applied;
        self.omissive += other.omissive;
        self.changed += other.changed;
    }
}

/// Shared mutable view of the dense state slab. See the module docs for
/// the aliasing argument.
struct StateSlab<Q> {
    ptr: *mut Q,
    len: usize,
}

// SAFETY: a `StateSlab` is only ever used to hand out `&mut Q` at
// *disjoint* indices to different threads (guaranteed by the level
// plan + chunk partition), which is exactly the access pattern that
// makes sharing `&mut [Q]` across threads sound for `Q: Send`.
unsafe impl<Q: Send> Sync for StateSlab<Q> {}

impl<Q> StateSlab<Q> {
    /// Borrows the states at `i` and `j` mutably.
    ///
    /// # Safety
    ///
    /// `i != j`, both in bounds, and no other thread may access index
    /// `i` or `j` until the returned borrows end.
    // The `&self -> &mut` shape is the point: many workers hold `&self`
    // concurrently and the level plan (not the borrow checker) proves
    // their index sets disjoint, which is what the safety contract
    // below encodes.
    #[allow(clippy::mut_from_ref)]
    unsafe fn pair_mut(&self, i: usize, j: usize) -> (&mut Q, &mut Q) {
        debug_assert!(i != j && i < self.len && j < self.len);
        // SAFETY: caller contract — disjoint in-bounds indices, and
        // exclusive access to both for the lifetime of the borrow.
        unsafe { (&mut *self.ptr.add(i), &mut *self.ptr.add(j)) }
    }
}

/// Applies a drawn batch to `states` along `plan`, level by level,
/// spreading each level across up to `shards` scoped worker threads.
///
/// `steps[k]` is the batch's step `k` (the plan indexes into it);
/// `hook` mutates the two endpoint states exactly like the sequential
/// in-place fast path and reports `(starter_changed, reactor_changed)`;
/// `is_omissive` classifies the fault decoration for the stats tally.
///
/// Returns the merged tallies and, if any step failed, the error of the
/// *lowest-indexed* failing step (the one the sequential path would
/// report). On an error the batch is partially applied at level
/// granularity — see the module docs.
pub(crate) fn apply_levels<Q, F, H, O>(
    shards: usize,
    states: &mut [Q],
    steps: &[(Interaction, F)],
    plan: &LevelPlan,
    hook: &H,
    is_omissive: &O,
) -> (ShardTally, Option<EngineError>)
where
    Q: Send,
    F: Copy + Sync,
    H: Fn(&mut Q, &mut Q, F) -> Result<(bool, bool), EngineError> + Sync,
    O: Fn(&F) -> bool + Sync,
{
    debug_assert_eq!(plan.len(), steps.len());
    // More workers than the widest level can ever feed is pure
    // synchronization overhead.
    let workers = shards.max(1).min(plan.widest_level().max(1));
    if workers == 1 {
        return apply_levels_seq(states, steps, plan, hook, is_omissive);
    }

    let slab = StateSlab {
        ptr: states.as_mut_ptr(),
        len: states.len(),
    };
    let barrier = Barrier::new(workers);
    let abort = AtomicBool::new(false);

    let mut tally = ShardTally::default();
    let mut first_error: Option<(u32, EngineError)> = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let slab = &slab;
            let barrier = &barrier;
            let abort = &abort;
            handles.push(scope.spawn(move || {
                let mut local = ShardTally::default();
                let mut error: Option<(u32, EngineError)> = None;
                let mut aborted = false;
                for level in plan.levels() {
                    if !aborted {
                        // Static contiguous chunk: worker `w` always owns
                        // the same index range, independent of arrival
                        // order. The chunk always runs to completion —
                        // abort is decided only at level boundaries, so
                        // exactly which steps ran never depends on
                        // thread timing.
                        let lo = level.len() * w / workers;
                        let hi = level.len() * (w + 1) / workers;
                        for &k in &level[lo..hi] {
                            let (interaction, fault) = steps[k as usize];
                            let (i, j) =
                                (interaction.starter().index(), interaction.reactor().index());
                            // SAFETY: the level plan guarantees the pairs
                            // of a level are agent-disjoint and in bounds,
                            // and chunks partition the level, so no other
                            // thread touches indices i, j this level;
                            // the barriers below sequence levels.
                            let (s, r) = unsafe { slab.pair_mut(i, j) };
                            match hook(s, r, fault) {
                                Ok((s_changed, r_changed)) => {
                                    local.applied += 1;
                                    local.omissive += u64::from(is_omissive(&fault));
                                    local.changed += u64::from(s_changed || r_changed);
                                }
                                Err(e) => {
                                    if error.as_ref().is_none_or(|(k0, _)| k < *k0) {
                                        error = Some((k, e));
                                    }
                                    abort.store(true, Ordering::Release);
                                }
                            }
                        }
                    }
                    // Every worker must hit every barrier, abort or not,
                    // or the others deadlock. The double barrier brackets
                    // the abort load in a window where no worker can be
                    // storing it, so all workers decide the same levels.
                    barrier.wait();
                    aborted = abort.load(Ordering::Acquire);
                    barrier.wait();
                }
                (local, error)
            }));
        }
        for handle in handles {
            let (local, error) = handle.join().expect("shard worker panicked");
            tally.merge(local);
            if let Some((k, e)) = error {
                if first_error.as_ref().is_none_or(|(k0, _)| k < *k0) {
                    first_error = Some((k, e));
                }
            }
        }
    });
    (tally, first_error.map(|(_, e)| e))
}

/// The `workers == 1` spine of [`apply_levels`]: same level walk, no
/// threads, no unsafe. Kept separate both as the cheap path for
/// narrow plans and as an executable statement of what the parallel
/// path computes.
fn apply_levels_seq<Q, F, H, O>(
    states: &mut [Q],
    steps: &[(Interaction, F)],
    plan: &LevelPlan,
    hook: &H,
    is_omissive: &O,
) -> (ShardTally, Option<EngineError>)
where
    F: Copy,
    H: Fn(&mut Q, &mut Q, F) -> Result<(bool, bool), EngineError>,
    O: Fn(&F) -> bool,
{
    let mut tally = ShardTally::default();
    for level in plan.levels() {
        for &k in level {
            let (interaction, fault) = steps[k as usize];
            let (i, j) = (interaction.starter().index(), interaction.reactor().index());
            // Disjointness within the level makes split-borrow safe code
            // possible here, but plain index juggling is simpler: borrow
            // the lower index first.
            let (lo, hi) = if i < j { (i, j) } else { (j, i) };
            let (head, tail) = states.split_at_mut(hi);
            let (a, b) = (&mut head[lo], &mut tail[0]);
            let (s, r) = if i < j { (a, b) } else { (b, a) };
            match hook(s, r, fault) {
                Ok((s_changed, r_changed)) => {
                    tally.applied += 1;
                    tally.omissive += u64::from(is_omissive(&fault));
                    tally.changed += u64::from(s_changed || r_changed);
                }
                Err(e) => return (tally, Some(e)),
            }
        }
    }
    (tally, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_of(steps: &[(Interaction, bool)], n: usize) -> LevelPlan {
        let mut plan = LevelPlan::new();
        plan.compute(steps.iter().map(|(i, _)| *i), n);
        plan
    }

    /// The "epidemic" hook: starter infects reactor unless the fault
    /// (here a plain bool) omits the transmission.
    fn epidemic_hook(s: &mut u32, r: &mut u32, omit: bool) -> Result<(bool, bool), EngineError> {
        if !omit && *s == 1 && *r == 0 {
            *r = 1;
            return Ok((false, true));
        }
        Ok((false, false))
    }

    #[test]
    fn parallel_matches_sequential_on_a_chain() {
        let n = 64;
        let steps: Vec<(Interaction, bool)> = (0..n - 1)
            .map(|i| (Interaction::new(i, i + 1).unwrap(), i % 7 == 3))
            .collect();
        let plan = plan_of(&steps, n);
        let mut seq: Vec<u32> = vec![0; n];
        seq[0] = 1;
        let mut par = seq.clone();
        let (t_seq, e_seq) = apply_levels(1, &mut seq, &steps, &plan, &epidemic_hook, &|&o| o);
        let (t_par, e_par) = apply_levels(8, &mut par, &steps, &plan, &epidemic_hook, &|&o| o);
        assert!(e_seq.is_none() && e_par.is_none());
        assert_eq!(seq, par);
        assert_eq!(t_seq.applied, t_par.applied);
        assert_eq!(t_seq.changed, t_par.changed);
        assert_eq!(t_seq.omissive, t_par.omissive);
    }

    #[test]
    fn error_reported_is_the_lowest_batch_index() {
        let n = 16;
        // Disjoint pairs — one level — with two failing steps; the
        // sharded path must report the lower-indexed one regardless of
        // which worker hits its failure first.
        let steps: Vec<(Interaction, bool)> = (0..8)
            .map(|i| (Interaction::new(2 * i, 2 * i + 1).unwrap(), false))
            .collect();
        let plan = plan_of(&steps, n);
        let hook = |s: &mut u32, _r: &mut u32, _f: bool| match *s {
            6 => Err(EngineError::PerAgentBackendRequired {
                operation: "lower-indexed failure",
            }),
            10 => Err(EngineError::PerAgentBackendRequired {
                operation: "higher-indexed failure",
            }),
            _ => Ok((false, false)),
        };
        for _ in 0..16 {
            let mut states: Vec<u32> = (0..n as u32).collect();
            let (_, err) = apply_levels(4, &mut states, &steps, &plan, &hook, &|_| false);
            // Steps 3 (starter state 6) and 5 (starter state 10) both
            // fail in the same level; batch index 3 must win on every
            // run, regardless of worker arrival order.
            match err {
                Some(EngineError::PerAgentBackendRequired { operation }) => {
                    assert_eq!(operation, "lower-indexed failure");
                }
                other => panic!("unexpected merge result: {other:?}"),
            }
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let steps: Vec<(Interaction, bool)> = Vec::new();
        let plan = plan_of(&steps, 4);
        let mut states = vec![0u32; 4];
        let (tally, err) = apply_levels(8, &mut states, &steps, &plan, &epidemic_hook, &|&o| o);
        assert!(err.is_none());
        assert_eq!(tally.applied, 0);
    }
}

//! Agent programs: what each party computes in an interaction.

use ppfts_population::{State, Topology, TwoWayProtocol};

use crate::OneWayModel;

/// Behaviour of an agent under the two-way family of models (TW, T1–T3).
///
/// The four hooks correspond to the paper's `fs`, `fr`, `o` and `h`. The
/// detection hooks default to the identity ("the omission goes unnoticed");
/// the engine only ever invokes them in models whose relation includes them
/// (`o` in T2/T3, `h` in T3).
///
/// Every [`TwoWayProtocol`] is automatically a `TwoWayProgram` with
/// undetectable omissions, so plain protocols can be run under any two-way
/// model directly.
///
/// # Example
///
/// ```
/// use ppfts_engine::TwoWayProgram;
///
/// /// Counts interactions and detected omissions.
/// struct Meter;
/// impl TwoWayProgram for Meter {
///     type State = (u32, u32); // (interactions seen, omissions detected)
///     fn starter_update(&self, s: &(u32, u32), _r: &(u32, u32)) -> (u32, u32) {
///         (s.0 + 1, s.1)
///     }
///     fn reactor_update(&self, _s: &(u32, u32), r: &(u32, u32)) -> (u32, u32) {
///         (r.0 + 1, r.1)
///     }
///     fn starter_omission(&self, s: &(u32, u32)) -> (u32, u32) {
///         (s.0, s.1 + 1)
///     }
/// }
///
/// assert_eq!(Meter.starter_update(&(0, 0), &(9, 9)), (1, 0));
/// assert_eq!(Meter.starter_omission(&(1, 0)), (1, 1));
/// ```
pub trait TwoWayProgram {
    /// Local state space of the program.
    type State: State;

    /// `fs(s, r)`: the starter's update on a fault-free interaction.
    fn starter_update(&self, s: &Self::State, r: &Self::State) -> Self::State;

    /// `fr(s, r)`: the reactor's update on a fault-free interaction.
    fn reactor_update(&self, s: &Self::State, r: &Self::State) -> Self::State;

    /// `o(s)`: the starter's update upon *detecting* an omission on its
    /// side. Defaults to the identity (undetectable). Called only under T2
    /// and T3.
    fn starter_omission(&self, s: &Self::State) -> Self::State {
        s.clone()
    }

    /// `h(r)`: the reactor's update upon *detecting* an omission on its
    /// side. Defaults to the identity (undetectable). Called only under T3.
    fn reactor_omission(&self, r: &Self::State) -> Self::State {
        r.clone()
    }

    /// The interaction graph this program's semantics are bound to, if
    /// any — see [`OneWayProgram::required_topology`] for the contract.
    /// Defaults to `None` (topology-agnostic).
    fn required_topology(&self) -> Option<&Topology> {
        None
    }

    /// Whether this program's update hooks may be applied from several
    /// worker threads at once on *disjoint* agent pairs — see
    /// [`OneWayProgram::shard_safe`] for the contract. Defaults to
    /// `true`.
    fn shard_safe(&self) -> bool {
        true
    }
}

impl<P: TwoWayProtocol> TwoWayProgram for P {
    type State = P::State;

    fn starter_update(&self, s: &Self::State, r: &Self::State) -> Self::State {
        self.starter_out(s, r)
    }

    fn reactor_update(&self, s: &Self::State, r: &Self::State) -> Self::State {
        self.reactor_out(s, r)
    }
}

/// Behaviour of an agent under the one-way family of models (IT, IO,
/// I1–I4).
///
/// The hooks correspond to the paper's `g`, `f`, `o` and `h`:
///
/// * [`on_proximity`](OneWayProgram::on_proximity) — `g`, applied by an
///   agent that detects the *proximity* of another agent without reading
///   its state: the starter in every model except IO, and the *reactor* of
///   an omissive interaction in I2 and I4. Defaults to the identity.
/// * [`on_receive`](OneWayProgram::on_receive) — `f(s, r)`, the reactor's
///   update when the transmission is delivered.
/// * [`on_omission_starter`](OneWayProgram::on_omission_starter) — `o`,
///   starter-side omission detection. Called only under I4. Defaults to
///   `g`.
/// * [`on_omission_reactor`](OneWayProgram::on_omission_reactor) — `h`,
///   reactor-side omission detection. Called only under I3. Defaults to
///   the identity.
///
/// # Example
///
/// ```
/// use ppfts_engine::OneWayProgram;
///
/// /// Max-gossip, one-way: the reactor learns the starter's value.
/// struct MaxGossip;
/// impl OneWayProgram for MaxGossip {
///     type State = u32;
///     fn on_receive(&self, s: &u32, r: &u32) -> u32 { (*s).max(*r) }
/// }
/// assert_eq!(MaxGossip.on_receive(&7, &3), 7);
/// assert_eq!(MaxGossip.on_proximity(&3), 3); // default: identity
/// ```
pub trait OneWayProgram {
    /// Local state space of the program.
    type State: State;

    /// `g`: update on detecting the proximity of another agent (no state
    /// received). Defaults to the identity.
    fn on_proximity(&self, q: &Self::State) -> Self::State {
        q.clone()
    }

    /// `f(s, r)`: the reactor's update upon receiving the starter's state.
    fn on_receive(&self, s: &Self::State, r: &Self::State) -> Self::State;

    /// `o`: the starter's update upon detecting that its transmission was
    /// lost. Called only under I4. Defaults to [`on_proximity`]
    /// (detection adds nothing unless overridden).
    ///
    /// [`on_proximity`]: OneWayProgram::on_proximity
    fn on_omission_starter(&self, s: &Self::State) -> Self::State {
        self.on_proximity(s)
    }

    /// `h`: the reactor's update upon detecting that an incoming
    /// transmission was lost. Called only under I3. Defaults to the
    /// identity.
    fn on_omission_reactor(&self, r: &Self::State) -> Self::State {
        r.clone()
    }

    // In-place forms, used by the runners' record-free fast path. Each
    // mutates the state directly and reports whether it changed; the
    // contract is exact equivalence with its pure form:
    // `hook_in_place(q)` must leave `q == hook(&old_q)` and return
    // `q != old_q` under the state's `PartialEq`. The defaults delegate
    // to the pure hooks, so only programs with allocation-heavy states
    // (e.g. `SKnO`'s token queues) need to override them.

    /// In-place [`on_proximity`](Self::on_proximity).
    fn on_proximity_in_place(&self, q: &mut Self::State) -> bool {
        let next = self.on_proximity(q);
        let changed = next != *q;
        if changed {
            *q = next;
        }
        changed
    }

    /// In-place [`on_receive`](Self::on_receive) (the starter is read
    /// only, exactly like the pure form).
    fn on_receive_in_place(&self, s: &Self::State, r: &mut Self::State) -> bool {
        let next = self.on_receive(s, r);
        let changed = next != *r;
        if changed {
            *r = next;
        }
        changed
    }

    /// In-place [`on_omission_starter`](Self::on_omission_starter).
    fn on_omission_starter_in_place(&self, s: &mut Self::State) -> bool {
        let next = self.on_omission_starter(s);
        let changed = next != *s;
        if changed {
            *s = next;
        }
        changed
    }

    /// In-place [`on_omission_reactor`](Self::on_omission_reactor).
    fn on_omission_reactor_in_place(&self, r: &mut Self::State) -> bool {
        let next = self.on_omission_reactor(r);
        let changed = next != *r;
        if changed {
            *r = next;
        }
        changed
    }

    /// The interaction graph this program's semantics are bound to, if
    /// any. Defaults to `None` (topology-agnostic, the classic case).
    ///
    /// Graphical programs — e.g. the simulators of `ppfts-core` built
    /// with their `graphical` constructors — return the topology their
    /// per-agent state was laid out for (agent index = graph vertex).
    /// Runner builders then refuse to assemble such a program with a
    /// scheduler that deals any other interaction law: the population
    /// must span exactly the graph's vertices
    /// ([`TopologySizeMismatch`](crate::EngineError::TopologySizeMismatch))
    /// and the scheduler must deal exactly this graph's arcs (or the
    /// uniform law, when the required topology is complete) —
    /// anything else fails at `build()` with
    /// [`ProgramTopologyMismatch`](crate::EngineError::ProgramTopologyMismatch).
    fn required_topology(&self) -> Option<&Topology> {
        None
    }

    /// Whether this program's update hooks may be applied from several
    /// worker threads at once on *disjoint* agent pairs.
    ///
    /// Hooks that are pure functions of their endpoint-state arguments —
    /// every protocol and simulator in this workspace — are shard-safe,
    /// so this defaults to `true`. A program must return `false` if its
    /// hooks carry *interior mutability* observable across calls (a
    /// `Cell`/`RefCell`/`Mutex` counter, a memo table, an event log):
    /// under sharded execution, hook calls on disjoint pairs race in
    /// wall-clock order, so such side state would diverge from the
    /// sequential batched path even though the agent states themselves
    /// cannot.
    ///
    /// Runner builders reject `shards(k > 1)` with a shard-unsafe
    /// program at `build()` with
    /// [`ShardIncompatible`](crate::EngineError::ShardIncompatible).
    fn shard_safe(&self) -> bool {
        true
    }
}

/// Checks that a program is a valid **IO** program on the sampled states:
/// IO forces the proximity hook `g` to be the identity, since the starter
/// of an Immediate Observation interaction is completely unaware of it.
///
/// Returns the states (if any) on which `g` deviates from the identity.
/// The engine never *calls* `g` under IO, so a deviating program would run
/// but not faithfully represent an IO algorithm; this helper lets tests
/// assert faithfulness.
///
/// # Example
///
/// ```
/// use ppfts_engine::{validate_io_program, OneWayProgram};
///
/// struct Bad;
/// impl OneWayProgram for Bad {
///     type State = u8;
///     fn on_proximity(&self, q: &u8) -> u8 { q + 1 } // not identity!
///     fn on_receive(&self, s: &u8, r: &u8) -> u8 { s + r }
/// }
///
/// let offenders = validate_io_program(&Bad, [1u8, 2, 3]);
/// assert_eq!(offenders, vec![1, 2, 3]);
/// ```
pub fn validate_io_program<P: OneWayProgram>(
    program: &P,
    sample: impl IntoIterator<Item = P::State>,
) -> Vec<P::State> {
    sample
        .into_iter()
        .filter(|q| program.on_proximity(q) != *q)
        .collect()
}

/// Convenience extension: query which hooks a model will actually invoke.
pub(crate) fn reactor_hook_on_omission(model: OneWayModel) -> ReactorOmissionHook {
    match model {
        OneWayModel::I1 => ReactorOmissionHook::Identity,
        OneWayModel::I2 | OneWayModel::I4 => ReactorOmissionHook::Proximity,
        OneWayModel::I3 => ReactorOmissionHook::Detection,
        OneWayModel::It | OneWayModel::Io => ReactorOmissionHook::Forbidden,
    }
}

/// Which function the reactor applies when an omissive interaction hits it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ReactorOmissionHook {
    /// No omissions exist in this model.
    Forbidden,
    /// The reactor does not notice anything (I1).
    Identity,
    /// The reactor only notices proximity and applies `g` (I2, I4).
    Proximity,
    /// The reactor detects the omission and applies `h` (I3).
    Detection,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfts_population::TableProtocol;

    #[test]
    fn protocols_are_programs_with_identity_detection() {
        let p = TableProtocol::builder(vec![0u8, 1])
            .rule((1, 0), (1, 1))
            .build();
        // fs / fr delegate to the protocol…
        assert_eq!(TwoWayProgram::starter_update(&p, &1, &0), 1);
        assert_eq!(TwoWayProgram::reactor_update(&p, &1, &0), 1);
        // …and detection defaults to the identity.
        assert_eq!(TwoWayProgram::starter_omission(&p, &1), 1);
        assert_eq!(TwoWayProgram::reactor_omission(&p, &0), 0);
    }

    #[test]
    fn one_way_defaults() {
        struct Gossip;
        impl OneWayProgram for Gossip {
            type State = u32;
            fn on_receive(&self, s: &u32, r: &u32) -> u32 {
                (*s).max(*r)
            }
        }
        assert_eq!(Gossip.on_proximity(&5), 5);
        assert_eq!(Gossip.on_omission_starter(&5), 5);
        assert_eq!(Gossip.on_omission_reactor(&5), 5);
    }

    #[test]
    fn omission_starter_defaults_to_proximity() {
        struct Ticker;
        impl OneWayProgram for Ticker {
            type State = u32;
            fn on_proximity(&self, q: &u32) -> u32 {
                q + 1
            }
            fn on_receive(&self, _s: &u32, r: &u32) -> u32 {
                *r
            }
        }
        // `o` falls back to `g` unless overridden.
        assert_eq!(Ticker.on_omission_starter(&3), 4);
    }

    #[test]
    fn io_validation_flags_non_identity_g() {
        struct Ok_;
        impl OneWayProgram for Ok_ {
            type State = u8;
            fn on_receive(&self, s: &u8, r: &u8) -> u8 {
                s | r
            }
        }
        assert!(validate_io_program(&Ok_, [0u8, 1, 2]).is_empty());
    }

    #[test]
    fn reactor_hooks_match_models() {
        assert_eq!(
            reactor_hook_on_omission(OneWayModel::I1),
            ReactorOmissionHook::Identity
        );
        assert_eq!(
            reactor_hook_on_omission(OneWayModel::I2),
            ReactorOmissionHook::Proximity
        );
        assert_eq!(
            reactor_hook_on_omission(OneWayModel::I3),
            ReactorOmissionHook::Detection
        );
        assert_eq!(
            reactor_hook_on_omission(OneWayModel::I4),
            ReactorOmissionHook::Proximity
        );
        assert_eq!(
            reactor_hook_on_omission(OneWayModel::Io),
            ReactorOmissionHook::Forbidden
        );
    }
}

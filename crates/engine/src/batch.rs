//! Parallel batch execution across seeds.
//!
//! Experiment harnesses estimate convergence-time distributions by running
//! the same system under many scheduler seeds. [`run_seeds`] fans the seeds
//! out over a fixed-size thread pool (`std::thread::scope`, so the closure
//! may borrow from the caller) and returns the per-seed results in seed
//! order.
//!
//! Dispatch is a chunked index-stealing scheme: one atomic cursor over the
//! seed list, advanced a chunk at a time. Workers claim disjoint index
//! ranges with a single `fetch_add` — no lock, no per-task channel
//! handshake — so giant-n sweeps (where every seed is expensive and
//! workers finish at very different times) never serialize on a queue
//! mutex, while the chunking keeps cursor traffic negligible for cheap
//! seeds.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Result of one seeded run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedSummary<T> {
    /// The seed the run used.
    pub seed: u64,
    /// Whatever the run produced.
    pub value: T,
}

/// Runs `f(seed)` for every seed, in parallel on `threads` workers, and
/// returns the results sorted by seed.
///
/// `f` must be deterministic in `seed` for experiments to be reproducible;
/// nothing enforces this, but every built-in runner is.
///
/// # Panics
///
/// Panics if `threads == 0` or if `f` panics on any seed.
///
/// # Example
///
/// ```
/// use ppfts_engine::run_seeds;
///
/// let squares = run_seeds(0..5, 2, |seed| seed * seed);
/// let values: Vec<u64> = squares.iter().map(|s| s.value).collect();
/// assert_eq!(values, vec![0, 1, 4, 9, 16]);
/// ```
pub fn run_seeds<T, F>(
    seeds: impl IntoIterator<Item = u64>,
    threads: usize,
    f: F,
) -> Vec<SeedSummary<T>>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    run_seeds_inner(seeds, threads, &f, None)
}

/// [`run_seeds`] with a liveness callback: after each completed chunk of
/// seeds, `progress(done, total)` is called with the global completed
/// count — outside the per-seed hot loop, so cheap seeds pay one atomic
/// add and one callback per *chunk*, not per seed.
///
/// `done` is monotone per caller thread but calls from different workers
/// may arrive out of order; treat it as a watermark, not a sequence.
/// [`run_seeds`] is this with no callback (and no progress accounting at
/// all).
///
/// # Panics
///
/// Same conditions as [`run_seeds`].
///
/// # Example
///
/// ```
/// use ppfts_engine::run_seeds_with_progress;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let high_water = AtomicUsize::new(0);
/// let out = run_seeds_with_progress(0..20, 4, |seed| seed * seed, |done, total| {
///     assert!(done <= total);
///     high_water.fetch_max(done, Ordering::Relaxed);
/// });
/// assert_eq!(out.len(), 20);
/// assert_eq!(high_water.load(Ordering::Relaxed), 20);
/// ```
pub fn run_seeds_with_progress<T, F, G>(
    seeds: impl IntoIterator<Item = u64>,
    threads: usize,
    f: F,
    progress: G,
) -> Vec<SeedSummary<T>>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
    G: Fn(usize, usize) + Sync,
{
    run_seeds_inner(seeds, threads, &f, Some(&progress))
}

fn run_seeds_inner<T, F>(
    seeds: impl IntoIterator<Item = u64>,
    threads: usize,
    f: &F,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
) -> Vec<SeedSummary<T>>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    let seeds: Vec<u64> = seeds.into_iter().collect();
    if seeds.is_empty() {
        return Vec::new();
    }
    let workers = threads.min(seeds.len());
    // Chunk size balances cursor traffic against tail imbalance: a few
    // claims per worker keeps fetch_add contention negligible while the
    // final chunks still even out stragglers.
    let chunk = (seeds.len() / (workers * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);

    let mut results: Vec<SeedSummary<T>> = Vec::with_capacity(seeds.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let cursor = &cursor;
            let completed = &completed;
            let seeds = &seeds;
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= seeds.len() {
                        break;
                    }
                    let end = (start + chunk).min(seeds.len());
                    for &seed in &seeds[start..end] {
                        local.push(SeedSummary {
                            seed,
                            value: f(seed),
                        });
                    }
                    if let Some(report) = progress {
                        let done =
                            completed.fetch_add(end - start, Ordering::Relaxed) + (end - start);
                        report(done, seeds.len());
                    }
                }
                local
            }));
        }
        for handle in handles {
            results.extend(handle.join().expect("worker panicked"));
        }
    });

    results.sort_by_key(|s| s.seed);
    results
}

/// Distribution summary of a sample: mean, min, and nearest-rank p50/p95
/// percentiles — the shape experiment sweeps report alongside point
/// stats.
///
/// # Example
///
/// ```
/// use ppfts_engine::DistSummary;
///
/// let d = DistSummary::of(&[4.0, 1.0, 3.0, 2.0]).unwrap();
/// assert_eq!((d.min, d.p50, d.p95, d.mean), (1.0, 2.0, 4.0, 2.5));
/// assert!(DistSummary::of(&[]).is_none());
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistSummary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Nearest-rank 50th percentile (the lower median).
    pub p50: f64,
    /// Nearest-rank 95th percentile.
    pub p95: f64,
}

impl DistSummary {
    /// Summarizes `values`; `None` on an empty sample. NaN values make
    /// the percentiles meaningless (they sort last) — don't feed them.
    #[must_use]
    pub fn of(values: &[f64]) -> Option<DistSummary> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(DistSummary {
            count: sorted.len(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            min: sorted[0],
            p50: nearest_rank(&sorted, 0.50),
            p95: nearest_rank(&sorted, 0.95),
        })
    }
}

/// Nearest-rank percentile of an ascending-sorted non-empty sample:
/// the smallest element with at least `p` of the sample at or below it.
fn nearest_rank(sorted: &[f64], p: f64) -> f64 {
    let rank = (p * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_results_in_seed_order() {
        let out = run_seeds([9, 1, 5], 3, |s| s + 100);
        let seeds: Vec<u64> = out.iter().map(|s| s.seed).collect();
        assert_eq!(seeds, vec![1, 5, 9]);
        assert_eq!(out[0].value, 101);
    }

    #[test]
    fn handles_more_threads_than_seeds() {
        let out = run_seeds([3], 16, |s| s);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].seed, 3);
    }

    #[test]
    fn empty_seed_set_is_fine() {
        let out: Vec<SeedSummary<u64>> = run_seeds([], 4, |s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn closure_may_borrow_environment() {
        let offset = 7u64;
        let out = run_seeds(0..3, 2, |s| s + offset);
        assert_eq!(out[2].value, 9);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let _ = run_seeds([1], 0, |s| s);
    }

    #[test]
    fn chunked_dispatch_covers_every_seed_exactly_once() {
        // 100 seeds over 4 workers exercises multiple chunk claims per
        // worker (chunk = 100 / 32 = 3) including the ragged tail.
        let out = run_seeds(0..100, 4, |s| s * 2);
        assert_eq!(out.len(), 100);
        for (i, s) in out.iter().enumerate() {
            assert_eq!(s.seed, i as u64);
            assert_eq!(s.value, i as u64 * 2);
        }
    }

    #[test]
    fn progress_watermark_reaches_the_total() {
        use std::sync::atomic::AtomicUsize;
        let high_water = AtomicUsize::new(0);
        let calls = AtomicUsize::new(0);
        let out = run_seeds_with_progress(
            0..50,
            4,
            |s| s,
            |done, total| {
                assert_eq!(total, 50);
                assert!(done >= 1 && done <= total);
                high_water.fetch_max(done, Ordering::Relaxed);
                calls.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(out.len(), 50);
        assert_eq!(high_water.load(Ordering::Relaxed), 50);
        // Called per chunk, not per seed: strictly fewer calls than
        // seeds (chunk = 50 / 32 = 1 only when seeds are scarce; with 50
        // seeds over 4 workers chunk is 1, so allow == here and just
        // check it was called at all).
        assert!(calls.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn progress_chunking_batches_callbacks() {
        use std::sync::atomic::AtomicUsize;
        // 256 seeds over 2 workers: chunk = 256 / 16 = 16, so at most
        // 256 / 16 = 16 callbacks for 256 seeds.
        let calls = AtomicUsize::new(0);
        let _ = run_seeds_with_progress(
            0..256,
            2,
            |s| s,
            |_, _| {
                calls.fetch_add(1, Ordering::Relaxed);
            },
        );
        let calls = calls.load(Ordering::Relaxed);
        assert!((2..=16).contains(&calls), "got {calls} callbacks");
    }

    #[test]
    fn dist_summary_percentiles_are_nearest_rank() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let d = DistSummary::of(&values).unwrap();
        assert_eq!(d.count, 100);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.p50, 50.0);
        assert_eq!(d.p95, 95.0);
        assert!((d.mean - 50.5).abs() < 1e-9);
        // Single-element sample: every statistic is that element.
        let one = DistSummary::of(&[7.0]).unwrap();
        assert_eq!((one.min, one.p50, one.p95, one.mean), (7.0, 7.0, 7.0, 7.0));
    }

    #[test]
    fn imbalanced_seed_durations_still_complete() {
        // Early seeds sleep, late seeds are instant: stealing lets the
        // fast workers drain the tail while the slow ones finish.
        let out = run_seeds(0..16, 4, |s| {
            if s < 2 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            s
        });
        assert_eq!(out.len(), 16);
    }
}

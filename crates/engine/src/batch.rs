//! Parallel batch execution across seeds.
//!
//! Experiment harnesses estimate convergence-time distributions by running
//! the same system under many scheduler seeds. [`run_seeds`] fans the seeds
//! out over a fixed-size thread pool (`std::thread::scope`, so the closure
//! may borrow from the caller) and returns the per-seed results in seed
//! order.
//!
//! Dispatch is a chunked index-stealing scheme: one atomic cursor over the
//! seed list, advanced a chunk at a time. Workers claim disjoint index
//! ranges with a single `fetch_add` — no lock, no per-task channel
//! handshake — so giant-n sweeps (where every seed is expensive and
//! workers finish at very different times) never serialize on a queue
//! mutex, while the chunking keeps cursor traffic negligible for cheap
//! seeds.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Result of one seeded run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedSummary<T> {
    /// The seed the run used.
    pub seed: u64,
    /// Whatever the run produced.
    pub value: T,
}

/// Runs `f(seed)` for every seed, in parallel on `threads` workers, and
/// returns the results sorted by seed.
///
/// `f` must be deterministic in `seed` for experiments to be reproducible;
/// nothing enforces this, but every built-in runner is.
///
/// # Panics
///
/// Panics if `threads == 0` or if `f` panics on any seed.
///
/// # Example
///
/// ```
/// use ppfts_engine::run_seeds;
///
/// let squares = run_seeds(0..5, 2, |seed| seed * seed);
/// let values: Vec<u64> = squares.iter().map(|s| s.value).collect();
/// assert_eq!(values, vec![0, 1, 4, 9, 16]);
/// ```
pub fn run_seeds<T, F>(
    seeds: impl IntoIterator<Item = u64>,
    threads: usize,
    f: F,
) -> Vec<SeedSummary<T>>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    let seeds: Vec<u64> = seeds.into_iter().collect();
    if seeds.is_empty() {
        return Vec::new();
    }
    let workers = threads.min(seeds.len());
    // Chunk size balances cursor traffic against tail imbalance: a few
    // claims per worker keeps fetch_add contention negligible while the
    // final chunks still even out stragglers.
    let chunk = (seeds.len() / (workers * 8)).max(1);
    let cursor = AtomicUsize::new(0);

    let mut results: Vec<SeedSummary<T>> = Vec::with_capacity(seeds.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let cursor = &cursor;
            let seeds = &seeds;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= seeds.len() {
                        break;
                    }
                    let end = (start + chunk).min(seeds.len());
                    for &seed in &seeds[start..end] {
                        local.push(SeedSummary {
                            seed,
                            value: f(seed),
                        });
                    }
                }
                local
            }));
        }
        for handle in handles {
            results.extend(handle.join().expect("worker panicked"));
        }
    });

    results.sort_by_key(|s| s.seed);
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_results_in_seed_order() {
        let out = run_seeds([9, 1, 5], 3, |s| s + 100);
        let seeds: Vec<u64> = out.iter().map(|s| s.seed).collect();
        assert_eq!(seeds, vec![1, 5, 9]);
        assert_eq!(out[0].value, 101);
    }

    #[test]
    fn handles_more_threads_than_seeds() {
        let out = run_seeds([3], 16, |s| s);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].seed, 3);
    }

    #[test]
    fn empty_seed_set_is_fine() {
        let out: Vec<SeedSummary<u64>> = run_seeds([], 4, |s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn closure_may_borrow_environment() {
        let offset = 7u64;
        let out = run_seeds(0..3, 2, |s| s + offset);
        assert_eq!(out[2].value, 9);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let _ = run_seeds([1], 0, |s| s);
    }

    #[test]
    fn chunked_dispatch_covers_every_seed_exactly_once() {
        // 100 seeds over 4 workers exercises multiple chunk claims per
        // worker (chunk = 100 / 32 = 3) including the ragged tail.
        let out = run_seeds(0..100, 4, |s| s * 2);
        assert_eq!(out.len(), 100);
        for (i, s) in out.iter().enumerate() {
            assert_eq!(s.seed, i as u64);
            assert_eq!(s.value, i as u64 * 2);
        }
    }

    #[test]
    fn imbalanced_seed_durations_still_complete() {
        // Early seeds sleep, late seeds are instant: stealing lets the
        // fast workers drain the tail while the slow ones finish.
        let out = run_seeds(0..16, 4, |s| {
            if s < 2 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            s
        });
        assert_eq!(out.len(), 16);
    }
}

//! Parallel batch execution across seeds.
//!
//! Experiment harnesses estimate convergence-time distributions by running
//! the same system under many scheduler seeds. [`run_seeds`] fans the seeds
//! out over a fixed-size thread pool (`std::thread::scope`, so the closure
//! may borrow from the caller) and returns the per-seed results in seed
//! order.

use std::sync::mpsc;
use std::sync::Mutex;

/// Result of one seeded run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedSummary<T> {
    /// The seed the run used.
    pub seed: u64,
    /// Whatever the run produced.
    pub value: T,
}

/// Runs `f(seed)` for every seed, in parallel on `threads` workers, and
/// returns the results sorted by seed.
///
/// `f` must be deterministic in `seed` for experiments to be reproducible;
/// nothing enforces this, but every built-in runner is.
///
/// # Panics
///
/// Panics if `threads == 0` or if `f` panics on any seed.
///
/// # Example
///
/// ```
/// use ppfts_engine::run_seeds;
///
/// let squares = run_seeds(0..5, 2, |seed| seed * seed);
/// let values: Vec<u64> = squares.iter().map(|s| s.value).collect();
/// assert_eq!(values, vec![0, 1, 4, 9, 16]);
/// ```
pub fn run_seeds<T, F>(
    seeds: impl IntoIterator<Item = u64>,
    threads: usize,
    f: F,
) -> Vec<SeedSummary<T>>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    let seeds: Vec<u64> = seeds.into_iter().collect();
    if seeds.is_empty() {
        return Vec::new();
    }
    let (task_tx, task_rx) = mpsc::channel::<u64>();
    let (result_tx, result_rx) = mpsc::channel::<SeedSummary<T>>();
    for &seed in &seeds {
        task_tx.send(seed).expect("receiver alive");
    }
    drop(task_tx);

    // mpsc receivers are single-consumer; a Mutex turns the task queue
    // into the shared work-stealing channel crossbeam provided.
    let task_rx = Mutex::new(task_rx);
    let workers = threads.min(seeds.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let task_rx = &task_rx;
            let result_tx = result_tx.clone();
            let f = &f;
            scope.spawn(move || loop {
                let next = task_rx.lock().expect("queue poisoned").recv();
                match next {
                    Ok(seed) => {
                        let value = f(seed);
                        if result_tx.send(SeedSummary { seed, value }).is_err() {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            });
        }
        drop(result_tx);
    });

    let mut results: Vec<SeedSummary<T>> = result_rx.into_iter().collect();
    results.sort_by_key(|s| s.seed);
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_results_in_seed_order() {
        let out = run_seeds([9, 1, 5], 3, |s| s + 100);
        let seeds: Vec<u64> = out.iter().map(|s| s.seed).collect();
        assert_eq!(seeds, vec![1, 5, 9]);
        assert_eq!(out[0].value, 101);
    }

    #[test]
    fn handles_more_threads_than_seeds() {
        let out = run_seeds([3], 16, |s| s);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].seed, 3);
    }

    #[test]
    fn empty_seed_set_is_fine() {
        let out: Vec<SeedSummary<u64>> = run_seeds([], 4, |s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn closure_may_borrow_environment() {
        let offset = 7u64;
        let out = run_seeds(0..3, 2, |s| s + offset);
        assert_eq!(out[2].value, 9);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let _ = run_seeds([1], 0, |s| s);
    }
}

//! Execution drivers.
//!
//! A runner owns a configuration, a [`Scheduler`], an [`OmissionStrategy`],
//! a [`TraceSink`] and a seeded RNG, and drives a program under a fixed
//! interaction model. Runs are fully deterministic given the seed, which is
//! what makes the experiment harnesses and the adversarial constructions
//! reproducible.
//!
//! Both families share the same surface:
//!
//! * [`step`](OneWayRunner::step) — execute one interaction and return the
//!   full [`StepRecord`];
//! * [`run`](OneWayRunner::run) — execute a step budget without building
//!   records;
//! * [`run_batched`](OneWayRunner::run_batched) — the same step budget,
//!   drawn batch-wise and applied through the in-place fast path;
//!   bit-identical to [`run`](OneWayRunner::run) for the same seed, but
//!   with per-step record construction and state cloning elided when the
//!   sink is passive;
//! * [`run_until`](OneWayRunner::run_until) /
//!   [`run_batched_until`](OneWayRunner::run_batched_until) — run until a
//!   configuration predicate holds (checked per step, resp. per batch
//!   boundary) or the budget is exhausted. Batch-boundary predicates
//!   compose with [`stably`](crate::convergence::stably) to avoid
//!   terminating on transient mid-handshake projections;
//! * [`apply_planned`](OneWayRunner::apply_planned) — execute an exact
//!   sequence of (interaction, fault) pairs, bypassing scheduler and
//!   adversary. This is how the impossibility constructions of the paper
//!   (runs `I_k`, `I*`) are realized.

use ppfts_population::{Configuration, Interaction, LevelPlan, Topology};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::{
    outcome, EngineError, ExecBackend, FullTrace, NoOmissions, OmissionStrategy, OneWayFault,
    OneWayModel, OneWayProgram, RunStats, Scheduler, SidePolicy, StepRecord, TopologyScheduler,
    Trace, TraceSink, TwoWayFault, TwoWayModel, TwoWayProgram, UniformScheduler,
};

/// One pre-planned step: an interaction and its fault decoration.
///
/// # Example
///
/// ```
/// use ppfts_engine::{OneWayFault, Planned};
/// use ppfts_population::Interaction;
///
/// let ok: Planned<OneWayFault> = Planned::ok(Interaction::new(0, 1)?);
/// assert_eq!(ok.fault, OneWayFault::None);
/// let omissive = Planned::new(Interaction::new(0, 1)?, OneWayFault::Omission);
/// assert!(omissive.fault.is_omissive());
/// # Ok::<(), ppfts_population::PopulationError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Planned<F> {
    /// The interacting pair.
    pub interaction: Interaction,
    /// The fault decoration.
    pub fault: F,
}

impl<F> Planned<F> {
    /// Creates a planned step.
    pub fn new(interaction: Interaction, fault: F) -> Self {
        Planned { interaction, fault }
    }
}

impl<F: Default> Planned<F> {
    /// Creates a fault-free planned step.
    pub fn ok(interaction: Interaction) -> Self {
        Planned {
            interaction,
            fault: F::default(),
        }
    }
}

impl Planned<OneWayFault> {
    /// Creates a one-way omissive planned step.
    pub fn omission(interaction: Interaction) -> Self {
        Planned {
            interaction,
            fault: OneWayFault::Omission,
        }
    }
}

/// One drawn-but-not-yet-applied step of a batch: a backend pair address
/// plus its fault decoration. The backend-generic sibling of [`Planned`],
/// which stays per-agent because planned sequences are authored in terms
/// of [`Interaction`]s.
#[derive(Clone, Debug)]
struct Drawn<Pr, F> {
    pair: Pr,
    fault: F,
}

/// Result of [`run_until`](OneWayRunner::run_until).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The predicate held; `steps` is the runner's total interaction count
    /// at that moment.
    Satisfied {
        /// Total interactions executed by the runner so far.
        steps: u64,
    },
    /// The step budget was exhausted without the predicate holding.
    Exhausted {
        /// Total interactions executed by the runner so far.
        steps: u64,
    },
}

impl RunOutcome {
    /// Whether the predicate was satisfied.
    pub fn is_satisfied(self) -> bool {
        matches!(self, RunOutcome::Satisfied { .. })
    }

    /// The runner's total interaction count when the run stopped.
    pub fn steps(self) -> u64 {
        match self {
            RunOutcome::Satisfied { steps } | RunOutcome::Exhausted { steps } => steps,
        }
    }
}

macro_rules! runner_impl {
    (
        $(#[$doc:meta])*
        runner: $Runner:ident,
        builder: $Builder:ident,
        model: $Model:ty,
        fault: $Fault:ty,
        program: $Program:ident,
        compute: |$model_:ident, $program_:ident, $fault_:ident, $s:ident, $r:ident| $compute:expr,
        fast: |$fmodel:ident, $fprogram:ident, $ffault:ident, $fs:ident, $fr:ident| $fast:expr,
        decide: |$dself:ident, $didx:ident, $dint:ident| $decide:expr,
        bulk: |$bself:ident| $bulk:expr,
        mix: |$mmodel:ident, $mpolicy:ident, $mrate:ident| $mix:expr,
    ) => {
        $(#[$doc])*
        pub struct $Runner<
            P: $Program,
            S = UniformScheduler,
            A = NoOmissions,
            T = FullTrace<<P as $Program>::State, $Fault>,
            C = Configuration<<P as $Program>::State>,
        > {
            model: $Model,
            program: P,
            config: C,
            scheduler: S,
            adversary: A,
            // Consulted only by the two-way expansion of this macro.
            #[allow(dead_code)]
            side_policy: SidePolicy,
            rng: SmallRng,
            next_index: u64,
            stats: RunStats,
            sink: T,
            shards: usize,
        }

        impl<P: $Program> $Runner<P> {
            /// Starts building a runner for `program` under `model`.
            pub fn builder(model: $Model, program: P) -> $Builder<P> {
                $Builder {
                    model,
                    program,
                    config: None,
                    scheduler: UniformScheduler::new(),
                    adversary: NoOmissions,
                    side_policy: SidePolicy::Uniform,
                    seed: 0x9f75_53c1,
                    sink: FullTrace::disabled(),
                    shards: 1,
                }
            }
        }

        impl<P, S, A, T, C> $Runner<P, S, A, T, C>
        where
            P: $Program,
            S: Scheduler,
            A: OmissionStrategy,
            T: TraceSink<P::State, $Fault>,
            C: ExecBackend<State = <P as $Program>::State>,
        {
            /// The interaction model in force.
            pub fn model(&self) -> $Model {
                self.model
            }

            /// The program being executed.
            pub fn program(&self) -> &P {
                &self.program
            }

            /// The current population (dense [`Configuration`] by
            /// default; see the builder's `population` method for the
            /// count backend).
            pub fn config(&self) -> &C {
                &self.config
            }

            /// Consumes the runner, returning the final population.
            pub fn into_config(self) -> C {
                self.config
            }

            /// Total interactions executed so far.
            pub fn steps(&self) -> u64 {
                self.next_index
            }

            /// Accumulated statistics.
            pub fn stats(&self) -> RunStats {
                self.stats
            }

            /// The adversary, e.g. to audit [`OmissionStrategy::injected`].
            pub fn adversary(&self) -> &A {
                &self.adversary
            }

            /// The trace sink.
            pub fn sink(&self) -> &T {
                &self.sink
            }

            /// Worker threads the sharded path spreads each batch over
            /// (1 = sequential; set with the builder's `shards` method).
            pub fn shards(&self) -> usize {
                self.shards
            }

            /// The recorded trace so far, if the sink retains one.
            pub fn trace(&self) -> Option<&Trace<P::State, $Fault>> {
                self.sink.trace()
            }

            /// Removes and returns the trace recorded so far, leaving an
            /// empty one in place (the sink keeps recording as before).
            pub fn take_trace(&mut self) -> Option<Trace<P::State, $Fault>> {
                self.sink.take_trace()
            }

            fn execute(
                &mut self,
                pair: C::Pair,
                fault: $Fault,
                want_record: bool,
            ) -> Result<Option<StepRecord<P::State, $Fault>>, EngineError> {
                if !want_record && self.sink.is_passive() {
                    return self.execute_in_place(&pair, fault).map(|()| None);
                }
                // Records attribute the step to two agents, which only
                // per-agent backends can do.
                let interaction = C::interaction_of(&pair).ok_or(
                    EngineError::PerAgentBackendRequired {
                        operation: "building step records",
                    },
                )?;
                let (new_s, new_r) = {
                    let ($s, $r) = self.config.pair_states(&pair)?;
                    let $model_ = self.model;
                    let $program_ = &self.program;
                    let $fault_ = fault;
                    $compute?
                };
                let changed = {
                    let (s, r) = self.config.pair_states(&pair)?;
                    new_s != *s || new_r != *r
                };
                let omissive = is_omissive(&fault);
                let index = self.next_index;
                self.next_index += 1;
                self.stats.record(omissive, changed);
                let sink_wants = self.sink.wants_record(index, omissive, changed);
                if !want_record && !sink_wants {
                    // Zero-clone fast path: nobody needs the record, and
                    // an unchanged pair needs no write either.
                    if changed {
                        self.config.commit_pair(&pair, (new_s, new_r))?;
                    }
                    return Ok(None);
                }
                let (old_starter, old_reactor) = self
                    .config
                    .commit_pair(&pair, (new_s.clone(), new_r.clone()))?;
                let record = StepRecord {
                    index,
                    interaction,
                    fault,
                    old_starter,
                    old_reactor,
                    new_starter: new_s,
                    new_reactor: new_r,
                };
                if !sink_wants {
                    return Ok(Some(record));
                }
                if want_record {
                    self.sink.accept(record.clone());
                    Ok(Some(record))
                } else {
                    self.sink.accept(record);
                    Ok(None)
                }
            }

            /// The record-free fast path: endpoint states mutate in place
            /// through the program's `*_in_place` hooks (exactly
            /// equivalent to the pure outcome followed by a
            /// compare-and-store), so a step costs no state construction
            /// at all for programs that override them.
            fn execute_in_place(
                &mut self,
                pair: &C::Pair,
                fault: $Fault,
            ) -> Result<(), EngineError> {
                let $Runner {
                    model,
                    program,
                    config,
                    ..
                } = self;
                let model = *model;
                let (s_changed, r_changed) = config.update_pair(pair, |$fs, $fr| {
                    let $fmodel = model;
                    let $fprogram = &*program;
                    let $ffault = fault;
                    $fast
                })?;
                self.next_index += 1;
                self.stats
                    .record(is_omissive(&fault), s_changed || r_changed);
                Ok(())
            }

            fn decide_fault(
                &mut self,
                index: u64,
                interaction: Option<ppfts_population::Interaction>,
            ) -> $Fault {
                let $dself = self;
                let $didx = index;
                let $dint = interaction;
                $decide
            }

            /// Whether this run's fault decisions never consume the RNG,
            /// so a whole batch of pairs can be drawn in bulk (through
            /// the scheduler's monomorphized
            /// [`next_interactions_into`](Scheduler::next_interactions_into)
            /// path) and still consume the shared stream exactly as the
            /// interleaved pair/fault loop would.
            fn bulk_pairs_ok(&self) -> bool {
                let $bself = self;
                $bulk
            }

            fn next_fault(&mut self, pair: &C::Pair) -> $Fault {
                self.decide_fault(self.next_index, C::interaction_of(pair))
            }

            /// Executes one scheduled interaction and returns its record.
            ///
            /// # Errors
            ///
            /// Propagates fault-relation violations (cannot happen with the
            /// built-in adversaries and side policies restricted to the
            /// model's permitted faults) and bounds errors from custom
            /// schedulers.
            pub fn step(&mut self) -> Result<StepRecord<P::State, $Fault>, EngineError> {
                let pair = self.config.draw_pair(&mut self.scheduler, &mut self.rng);
                let fault = self.next_fault(&pair);
                Ok(self
                    .execute(pair, fault, true)?
                    .expect("record requested"))
            }

            /// Executes `steps` scheduled interactions without building
            /// per-step records (the sink, if it wants them, is still fed).
            ///
            /// # Errors
            ///
            /// Same conditions as [`step`](Self::step).
            pub fn run(&mut self, steps: u64) -> Result<(), EngineError> {
                for _ in 0..steps {
                    let pair = self
                        .config
                        .draw_pair_with(&mut self.scheduler, &mut self.rng);
                    let fault = self.next_fault(&pair);
                    self.execute(pair, fault, false)?;
                }
                Ok(())
            }

            /// Fills `plan` with the next `take` scheduled steps, drawing
            /// the pair and then the fault of each step in exactly the
            /// order the scalar loop would, so batched and scalar runs
            /// consume the shared RNG stream identically.
            ///
            /// When the fault decisions are RNG-free
            /// ([`bulk_pairs_ok`](Self::bulk_pairs_ok)) the shared stream
            /// is pairs-only, so all `take` pairs are drawn first through
            /// the backend's monomorphized bulk path — same draws, same
            /// stream, no per-draw virtual dispatch — and the fault
            /// decisions (still stateful: budgets, scripts) follow in
            /// index order.
            fn draw_batch(&mut self, plan: &mut Vec<Drawn<C::Pair, $Fault>>, take: u64) {
                plan.clear();
                if C::STABLE_PAIRS && self.bulk_pairs_ok() {
                    let mut pairs: Vec<C::Pair> = Vec::with_capacity(take as usize);
                    self.config.draw_pairs_into(
                        &mut pairs,
                        take as usize,
                        &mut self.scheduler,
                        &mut self.rng,
                    );
                    for (k, pair) in pairs.into_iter().enumerate() {
                        let fault =
                            self.decide_fault(self.next_index + k as u64, C::interaction_of(&pair));
                        plan.push(Drawn { pair, fault });
                    }
                    return;
                }
                for k in 0..take {
                    let pair = self
                        .config
                        .draw_pair_with(&mut self.scheduler, &mut self.rng);
                    let fault = self.decide_fault(self.next_index + k, C::interaction_of(&pair));
                    plan.push(Drawn { pair, fault });
                }
            }

            /// Applies a drawn batch. With a passive sink this runs the
            /// tight loop: endpoint states mutate in place, no clones, no
            /// records.
            fn apply_batch_plan(
                &mut self,
                plan: &[Drawn<C::Pair, $Fault>],
            ) -> Result<(), EngineError> {
                if !self.sink.is_passive() {
                    for p in plan {
                        self.execute(p.pair.clone(), p.fault, false)?;
                    }
                    return Ok(());
                }
                let $Runner {
                    model,
                    program,
                    config,
                    stats,
                    next_index,
                    ..
                } = self;
                let model = *model;
                // Uniform draws scatter the endpoints across the slab, so
                // each step's two state loads start cold in L1; hinting a
                // few plan entries ahead overlaps the line fills with the
                // current step's work (dense backend only — the hint is a
                // no-op elsewhere). Neutral when the whole slab is
                // L2-resident (E17 swept 0/4/16/32 within noise on a 2 MiB
                // L2 part); it pays off only once the population outgrows
                // mid-level cache, so the distance just needs to clear the
                // fill latency without thrashing L1 — 16 entries is ample.
                const PREFETCH_AHEAD: usize = 16;
                for (k, p) in plan.iter().enumerate() {
                    if let Some(ahead) = plan.get(k + PREFETCH_AHEAD) {
                        config.prefetch_pair(&ahead.pair);
                    }
                    let fault = p.fault;
                    let (s_changed, r_changed) = config.update_pair(&p.pair, |$fs, $fr| {
                        let $fmodel = model;
                        let $fprogram = &*program;
                        let $ffault = fault;
                        $fast
                    })?;
                    *next_index += 1;
                    stats.record(is_omissive(&fault), s_changed || r_changed);
                }
                Ok(())
            }

            /// Executes `steps` scheduled interactions in batches of
            /// `batch`: each batch is drawn from the scheduler and
            /// adversary up front, then applied through the in-place
            /// fast path.
            ///
            /// For the same seed this is *bit-identical* to
            /// [`run`](Self::run) — same RNG stream, same configuration,
            /// same [`RunStats`] — the batching only changes how the work
            /// is staged. With a passive sink (e.g.
            /// [`StatsOnly`](crate::StatsOnly), or the default sink before
            /// `record_trace(true)`) no step builds a record or clones a
            /// state.
            ///
            /// # Errors
            ///
            /// Same conditions as [`step`](Self::step); earlier steps of a
            /// failing batch remain applied.
            ///
            /// # Panics
            ///
            /// Panics if `batch` is zero.
            pub fn run_batched(&mut self, steps: u64, batch: u64) -> Result<(), EngineError> {
                assert!(batch > 0, "batch size must be positive");
                if !C::STABLE_PAIRS {
                    // State-addressed pairs (count backend) must see the
                    // counts every earlier step produced: draw and apply
                    // interleaved — the exact sequential law, same RNG
                    // order as the scalar loop.
                    return self.run(steps);
                }
                let mut plan = Vec::with_capacity(batch.min(steps) as usize);
                let mut remaining = steps;
                while remaining > 0 {
                    let take = remaining.min(batch);
                    self.draw_batch(&mut plan, take);
                    self.apply_batch_plan(&plan)?;
                    remaining -= take;
                }
                Ok(())
            }

            /// Runs until `predicate` holds on the population (checked
            /// before the first step and after every step) or `max_steps`
            /// further interactions have executed.
            pub fn run_until(
                &mut self,
                max_steps: u64,
                mut predicate: impl FnMut(&C) -> bool,
            ) -> RunOutcome {
                if predicate(&self.config) {
                    return RunOutcome::Satisfied {
                        steps: self.next_index,
                    };
                }
                for _ in 0..max_steps {
                    let pair = self
                        .config
                        .draw_pair_with(&mut self.scheduler, &mut self.rng);
                    let fault = self.next_fault(&pair);
                    if self.execute(pair, fault, false).is_err() {
                        break;
                    }
                    if predicate(&self.config) {
                        return RunOutcome::Satisfied {
                            steps: self.next_index,
                        };
                    }
                }
                RunOutcome::Exhausted {
                    steps: self.next_index,
                }
            }

            /// Runs until `predicate` holds on the configuration, checking
            /// it before the first step and then only at *batch
            /// boundaries*, or until `max_steps` further interactions have
            /// executed.
            ///
            /// Sampling at boundaries makes an expensive predicate (e.g. a
            /// full projection of a simulator configuration) cost `1/batch`
            /// of its scalar price, at the resolution cost of overshooting
            /// the flip instant by up to `batch - 1` steps. Because the
            /// instant a predicate first holds is already fuzzy under
            /// batching, wrap the predicate in
            /// [`stably`](crate::convergence::stably) when a transiently
            /// true (mid-handshake) sample must not end the run.
            ///
            /// # Panics
            ///
            /// Panics if `batch` is zero.
            pub fn run_batched_until(
                &mut self,
                max_steps: u64,
                batch: u64,
                mut predicate: impl FnMut(&C) -> bool,
            ) -> RunOutcome {
                assert!(batch > 0, "batch size must be positive");
                if predicate(&self.config) {
                    return RunOutcome::Satisfied {
                        steps: self.next_index,
                    };
                }
                let plan_capacity = if C::STABLE_PAIRS {
                    batch.min(max_steps) as usize
                } else {
                    0
                };
                let mut plan = Vec::with_capacity(plan_capacity);
                let mut remaining = max_steps;
                while remaining > 0 {
                    let take = remaining.min(batch);
                    if C::STABLE_PAIRS {
                        self.draw_batch(&mut plan, take);
                        if self.apply_batch_plan(&plan).is_err() {
                            break;
                        }
                    } else {
                        // Interleaved draw-and-apply (see `run_batched`):
                        // batching amortizes only the predicate here.
                        if self.run(take).is_err() {
                            break;
                        }
                    }
                    remaining -= take;
                    if predicate(&self.config) {
                        return RunOutcome::Satisfied {
                            steps: self.next_index,
                        };
                    }
                }
                RunOutcome::Exhausted {
                    steps: self.next_index,
                }
            }

            /// Executes `steps` scheduled interactions exactly like
            /// [`run_batched`](Self::run_batched), but applies each
            /// drawn batch across the builder's `shards` worker
            /// threads.
            ///
            /// Each batch is still drawn *sequentially* (pair then
            /// fault, in step order — the RNG stream is untouched),
            /// then partitioned into agent-disjoint levels by a
            /// [`LevelPlan`](ppfts_population::LevelPlan) and applied
            /// level-parallel with a deterministic merge: commit order
            /// is fixed by batch index, per-step tallies are summed
            /// order-insensitively. For the same seed the result —
            /// configuration, [`RunStats`], RNG position — is
            /// *bit-identical* to [`run_batched`](Self::run_batched)
            /// and therefore to [`run`](Self::run), for any shard
            /// count (certified in `tests/shard_equivalence.rs`).
            ///
            /// With `shards <= 1`, a non-passive sink, or a backend
            /// without a dense state slab, this *is* the sequential
            /// batched path (same code, same result). Parallel
            /// speedup comes from batches much longer than the
            /// population (levels then hold ≈ n/2 independent
            /// interactions each) and hooks that do real work per
            /// step — the fault-tolerant simulators, not the
            /// two-instruction epidemic.
            ///
            /// # Errors
            ///
            /// Same conditions as [`run_batched`](Self::run_batched);
            /// on an error the failing step's whole level is applied
            /// before the run stops (see the shard module docs).
            ///
            /// # Panics
            ///
            /// Panics if `batch` is zero.
            pub fn run_sharded(&mut self, steps: u64, batch: u64) -> Result<(), EngineError>
            where
                P: Sync,
            {
                assert!(batch > 0, "batch size must be positive");
                if !self.shard_fast_path() {
                    return self.run_batched(steps, batch);
                }
                let mut plan = Vec::with_capacity(batch.min(steps) as usize);
                let mut flat = Vec::with_capacity(batch.min(steps) as usize);
                let mut levels = LevelPlan::new();
                let mut remaining = steps;
                while remaining > 0 {
                    let take = remaining.min(batch);
                    self.draw_batch(&mut plan, take);
                    self.apply_batch_sharded(&plan, &mut flat, &mut levels)?;
                    remaining -= take;
                }
                Ok(())
            }

            /// Runs shard-parallel until `predicate` holds on the
            /// configuration — checked before the first step and then
            /// at batch boundaries, exactly like
            /// [`run_batched_until`](Self::run_batched_until), to
            /// which this is bit-identical for any shard count.
            ///
            /// # Panics
            ///
            /// Panics if `batch` is zero.
            pub fn run_sharded_until(
                &mut self,
                max_steps: u64,
                batch: u64,
                mut predicate: impl FnMut(&C) -> bool,
            ) -> RunOutcome
            where
                P: Sync,
            {
                assert!(batch > 0, "batch size must be positive");
                if !self.shard_fast_path() {
                    return self.run_batched_until(max_steps, batch, predicate);
                }
                if predicate(&self.config) {
                    return RunOutcome::Satisfied {
                        steps: self.next_index,
                    };
                }
                let mut plan = Vec::with_capacity(batch.min(max_steps) as usize);
                let mut flat = Vec::with_capacity(batch.min(max_steps) as usize);
                let mut levels = LevelPlan::new();
                let mut remaining = max_steps;
                while remaining > 0 {
                    let take = remaining.min(batch);
                    self.draw_batch(&mut plan, take);
                    if self.apply_batch_sharded(&plan, &mut flat, &mut levels).is_err() {
                        break;
                    }
                    remaining -= take;
                    if predicate(&self.config) {
                        return RunOutcome::Satisfied {
                            steps: self.next_index,
                        };
                    }
                }
                RunOutcome::Exhausted {
                    steps: self.next_index,
                }
            }

            /// Whether `run_sharded*` actually goes shard-parallel, or
            /// falls back to the (bit-identical) sequential batched
            /// path. The builder already rejected `shards > 1` on
            /// assemblies that can never shard; this guards the
            /// remaining run-time conditions.
            fn shard_fast_path(&self) -> bool {
                self.shards > 1 && C::STABLE_PAIRS && C::PER_AGENT && self.sink.is_passive()
            }

            /// Applies a drawn batch level-parallel. `flat` and
            /// `levels` are caller-owned scratch reused across batches.
            fn apply_batch_sharded(
                &mut self,
                plan: &[Drawn<C::Pair, $Fault>],
                flat: &mut Vec<(Interaction, $Fault)>,
                levels: &mut LevelPlan,
            ) -> Result<(), EngineError>
            where
                P: Sync,
            {
                // One walk over the batch: flatten each pair and stream
                // it straight into the level planner, instead of a
                // second pass over the flattened interactions.
                flat.clear();
                levels.begin(self.config.len());
                for p in plan {
                    let interaction =
                        C::interaction_of(&p.pair).ok_or(EngineError::ShardIncompatible {
                            feature: "state-addressed pairs (count-based populations)",
                        })?;
                    flat.push((interaction, p.fault));
                    levels.push(interaction);
                }
                levels.finish();
                let shards = self.shards;
                let $Runner {
                    model,
                    program,
                    config,
                    stats,
                    next_index,
                    ..
                } = self;
                let model = *model;
                let program = &*program;
                let states =
                    config
                        .dense_states_mut()
                        .ok_or(EngineError::ShardIncompatible {
                            feature: "populations without a dense per-agent state slab",
                        })?;
                let hook = |$fs: &mut <P as $Program>::State,
                            $fr: &mut <P as $Program>::State,
                            fault: $Fault|
                 -> Result<(bool, bool), EngineError> {
                    let $fmodel = model;
                    let $fprogram = program;
                    let $ffault = fault;
                    $fast
                };
                let (tally, error) = crate::shard::apply_levels(
                    shards,
                    states,
                    flat,
                    levels,
                    &hook,
                    &|f: &$Fault| is_omissive(f),
                );
                *next_index += tally.applied;
                stats.merge(&RunStats {
                    steps: tally.applied,
                    omissive_steps: tally.omissive,
                    changed_steps: tally.changed,
                    noop_steps: tally.applied - tally.changed,
                });
                match error {
                    Some(e) => Err(e),
                    None => Ok(()),
                }
            }

            /// Runs until no interaction has changed any state for
            /// `window` consecutive steps ("observed stability"), or
            /// `max_steps` interactions have executed.
            ///
            /// Observed stability is a heuristic convergence signal: a
            /// silent window proves nothing for adversarial schedulers,
            /// but under the uniform scheduler the probability that a
            /// non-silent system stays quiet for a long window decays
            /// exponentially. For exact convergence verification use the
            /// model checker in `ppfts-verify`.
            pub fn run_until_stable(&mut self, max_steps: u64, window: u64) -> RunOutcome {
                let mut quiet = 0u64;
                for _ in 0..max_steps {
                    let pair = self.config.draw_pair(&mut self.scheduler, &mut self.rng);
                    let fault = self.next_fault(&pair);
                    let before = self.stats.changed_steps;
                    if self.execute(pair, fault, false).is_err() {
                        break;
                    }
                    if self.stats.changed_steps > before {
                        quiet = 0;
                    } else {
                        quiet += 1;
                        if quiet >= window {
                            return RunOutcome::Satisfied {
                                steps: self.next_index,
                            };
                        }
                    }
                }
                RunOutcome::Exhausted {
                    steps: self.next_index,
                }
            }

            /// Executes an exact pre-planned sequence, bypassing the
            /// scheduler and the adversary. Used by the paper's adversarial
            /// constructions, where both the interactions and the omissions
            /// are chosen by the proof.
            ///
            /// # Errors
            ///
            /// Fails if a planned fault is outside the model's transition
            /// relation or an endpoint is out of bounds; earlier planned
            /// steps remain applied.
            pub fn apply_planned(
                &mut self,
                plan: impl IntoIterator<Item = Planned<$Fault>>,
            ) -> Result<(), EngineError> {
                for p in plan {
                    let pair = self.config.pair_of(p.interaction)?;
                    self.execute(pair, p.fault, false)?;
                }
                Ok(())
            }

            /// Runs `steps` interactions through the *batch-epoch* path:
            /// instead of drawing ordered pairs one at a time, whole
            /// collision-free epochs (expected length ≈ 0.63·√n under the
            /// uniform scheduler) are sampled as bulk hypergeometric
            /// state splits and applied once per (starter-state,
            /// reactor-state, fault) group — O(d²) work per epoch for `d`
            /// distinct states, i.e. *sub-constant* work per interaction
            /// once n ≫ d⁴. See the [`epoch`](crate::epoch) module docs
            /// for the sampling scheme.
            ///
            /// The epoch path reproduces the interleaved path's law
            /// *distributionally* (the same uniform-pair, i.i.d.-fault
            /// process — certified by the `backend_equivalence`
            /// distribution-agreement contracts) but not bit-for-bit: it
            /// consumes the RNG differently, so same-seed runs diverge
            /// from [`run`](Self::run). Omission faults are thinned
            /// binomially per bulk group at the adversary's
            /// [`OmissionStrategy::iid_rate`]; bulk thinning bypasses
            /// [`OmissionStrategy::decide`], so
            /// [`OmissionStrategy::injected`] stays at zero — audit
            /// [`RunStats::omissive_steps`] instead.
            ///
            /// Only state-addressed backends implement
            /// [`EpochBackend`](crate::EpochBackend), so this method
            /// exists only on count-backed runners: per-agent features
            /// (dense backends, recording sinks, restricted topologies)
            /// are ruled out at compile time or already rejected by the
            /// builder.
            ///
            /// # Errors
            ///
            /// [`EngineError::EpochIncompatible`] if the model is
            /// omissive and the adversary has no fixed i.i.d. rate
            /// (step-indexed, budgeted, burst, or scripted schedules);
            /// fault-relation violations as in [`run`](Self::run). On
            /// error the configuration is left at the last completed
            /// epoch boundary.
            pub fn run_epochs(&mut self, steps: u64) -> Result<(), EngineError>
            where
                C: crate::epoch::EpochBackend,
            {
                self.run_epochs_inner(steps, |_| false).map(|_| ())
            }

            /// Runs through the batch-epoch path until `predicate` holds
            /// on the configuration — checked before the first epoch and
            /// then at epoch boundaries, i.e. every ≈ 0.63·√n
            /// interactions — or `max_steps` further interactions have
            /// executed. The epoch in flight when the budget runs out is
            /// truncated exactly at the budget (still the exact law), so
            /// [`steps`](Self::steps) never overshoots.
            ///
            /// # Errors
            ///
            /// Same conditions as [`run_epochs`](Self::run_epochs).
            pub fn run_epochs_until(
                &mut self,
                max_steps: u64,
                mut predicate: impl FnMut(&C) -> bool,
            ) -> Result<RunOutcome, EngineError>
            where
                C: crate::epoch::EpochBackend,
            {
                if predicate(&self.config) {
                    return Ok(RunOutcome::Satisfied {
                        steps: self.next_index,
                    });
                }
                let satisfied = self.run_epochs_inner(max_steps, predicate)?;
                Ok(if satisfied {
                    RunOutcome::Satisfied {
                        steps: self.next_index,
                    }
                } else {
                    RunOutcome::Exhausted {
                        steps: self.next_index,
                    }
                })
            }

            /// The i.i.d. per-interaction fault distribution the epoch
            /// path thins bulk groups with (fault-free entry included;
            /// weights sum to 1).
            fn epoch_fault_mix(&self) -> Result<Vec<($Fault, f64)>, EngineError> {
                let rate = if self.model.allows_omissions() {
                    self.adversary
                        .iid_rate()
                        .ok_or(EngineError::EpochIncompatible {
                            feature: "omission adversaries without a fixed i.i.d. rate \
                                      (step-indexed, budgeted, burst, or scripted schedules)",
                        })?
                } else {
                    0.0
                };
                let $mmodel = self.model;
                let $mpolicy = self.side_policy;
                let $mrate = rate;
                Ok($mix)
            }

            fn run_epochs_inner(
                &mut self,
                budget: u64,
                boundary: impl FnMut(&C) -> bool,
            ) -> Result<bool, EngineError>
            where
                C: crate::epoch::EpochBackend,
            {
                let mix = self.epoch_fault_mix()?;
                let $Runner {
                    model,
                    program,
                    config,
                    rng,
                    next_index,
                    stats,
                    ..
                } = self;
                let model = *model;
                crate::epoch::run_epochs_driver(
                    config,
                    rng,
                    stats,
                    next_index,
                    budget,
                    &mix,
                    |$s: &<P as $Program>::State,
                     $r: &<P as $Program>::State,
                     fault: $Fault| {
                        let $model_ = model;
                        let $program_ = &*program;
                        let $fault_ = fault;
                        $compute
                    },
                    |f: &$Fault| is_omissive(f),
                    boundary,
                )
            }
        }

        /// Builder for the runner; see `builder` on the runner type.
        pub struct $Builder<
            P: $Program,
            S = UniformScheduler,
            A = NoOmissions,
            T = FullTrace<<P as $Program>::State, $Fault>,
            C = Configuration<<P as $Program>::State>,
        > {
            model: $Model,
            program: P,
            config: Option<C>,
            scheduler: S,
            adversary: A,
            side_policy: SidePolicy,
            seed: u64,
            sink: T,
            shards: usize,
        }

        impl<P, S, A, T, C> $Builder<P, S, A, T, C>
        where
            P: $Program,
            S: Scheduler,
            A: OmissionStrategy,
            T: TraceSink<P::State, $Fault>,
            C: ExecBackend<State = <P as $Program>::State>,
        {
            /// Sets the initial population without changing the backend
            /// type (required unless [`population`](Self::population) is
            /// used; the default backend is the dense [`Configuration`]).
            pub fn config(mut self, config: C) -> Self {
                self.config = Some(config);
                self
            }

            /// Sets the initial population *and* selects its backend —
            /// e.g. a [`CountConfiguration`] for giant anonymous runs.
            ///
            /// Count-backed runners support the full batched measurement
            /// surface (`run*`, `run_batched*`, [`StatsOnly`] sinks,
            /// every omission adversary) but no per-agent operations:
            /// assembling one with a recording sink fails at `build()`
            /// with [`EngineError::PerAgentBackendRequired`], a scheduler
            /// whose law counts cannot realize (restricted topology,
            /// scripted, round-robin) fails with
            /// [`EngineError::CompleteInteractionLawRequired`], and
            /// `step` / `apply_planned` report
            /// [`EngineError::PerAgentBackendRequired`] when called.
            ///
            /// [`CountConfiguration`]: ppfts_population::CountConfiguration
            /// [`StatsOnly`]: crate::StatsOnly
            pub fn population<C2: ExecBackend<State = <P as $Program>::State>>(
                self,
                population: C2,
            ) -> $Builder<P, S, A, T, C2> {
                $Builder {
                    model: self.model,
                    program: self.program,
                    config: Some(population),
                    scheduler: self.scheduler,
                    adversary: self.adversary,
                    side_policy: self.side_policy,
                    seed: self.seed,
                    sink: self.sink,
                    shards: self.shards,
                }
            }

            /// Replaces the scheduler (default: [`UniformScheduler`]).
            pub fn scheduler<S2: Scheduler>(self, scheduler: S2) -> $Builder<P, S2, A, T, C> {
                $Builder {
                    model: self.model,
                    program: self.program,
                    config: self.config,
                    scheduler,
                    adversary: self.adversary,
                    side_policy: self.side_policy,
                    seed: self.seed,
                    sink: self.sink,
                    shards: self.shards,
                }
            }

            /// Schedules interactions over an explicit interaction graph
            /// — shorthand for
            /// `scheduler(TopologyScheduler::new(topology))`.
            ///
            /// `build()` checks the topology spans exactly the supplied
            /// population ([`EngineError::TopologySizeMismatch`]) and, on
            /// a count backend, that the topology is complete
            /// ([`EngineError::CompleteInteractionLawRequired`]) —
            /// restricted graphs need agent identities.
            ///
            /// [`Topology`]: ppfts_population::Topology
            pub fn topology(
                self,
                topology: Topology,
            ) -> $Builder<P, TopologyScheduler, A, T, C> {
                self.scheduler(TopologyScheduler::new(topology))
            }

            /// Replaces the omission adversary (default: [`NoOmissions`]).
            /// Only consulted when the model's relation has omissive
            /// outcomes.
            pub fn adversary<A2: OmissionStrategy>(
                self,
                adversary: A2,
            ) -> $Builder<P, S, A2, T, C> {
                $Builder {
                    model: self.model,
                    program: self.program,
                    config: self.config,
                    scheduler: self.scheduler,
                    adversary,
                    side_policy: self.side_policy,
                    seed: self.seed,
                    sink: self.sink,
                    shards: self.shards,
                }
            }

            /// Replaces the trace sink (default: a disabled
            /// [`FullTrace`], i.e. no recording). Use
            /// [`StatsOnly`](crate::StatsOnly) for the zero-allocation
            /// measurement path or
            /// [`SampledTrace`](crate::SampledTrace) for bounded-memory
            /// forensics.
            pub fn trace_sink<T2: TraceSink<P::State, $Fault>>(
                self,
                sink: T2,
            ) -> $Builder<P, S, A, T2, C> {
                $Builder {
                    model: self.model,
                    program: self.program,
                    config: self.config,
                    scheduler: self.scheduler,
                    adversary: self.adversary,
                    side_policy: self.side_policy,
                    seed: self.seed,
                    sink,
                    shards: self.shards,
                }
            }

            /// Sets the side policy used to concretize omissions in
            /// two-way models (ignored by one-way runners).
            pub fn side_policy(mut self, policy: SidePolicy) -> Self {
                self.side_policy = policy;
                self
            }

            /// Seeds the runner's RNG (scheduler + adversary randomness).
            pub fn seed(mut self, seed: u64) -> Self {
                self.seed = seed;
                self
            }

            /// Sets how many worker threads the `run_sharded*` methods
            /// spread each drawn batch over (default 1 = sequential).
            ///
            /// Sharding never changes results — the sharded path is
            /// bit-identical to the sequential batched path — so this
            /// is purely a throughput knob. `build()` rejects
            /// `shards > 1` on assemblies that can never shard: a
            /// count-backed population
            /// ([`EngineError::ShardIncompatible`], no per-agent state
            /// slab to partition) or a program whose hooks declare
            /// themselves shard-unsafe (`shard_safe() == false`).
            ///
            /// # Panics
            ///
            /// Panics if `shards` is zero.
            pub fn shards(mut self, shards: usize) -> Self {
                assert!(shards >= 1, "shards must be at least 1");
                self.shards = shards;
                self
            }

            /// Builds the runner.
            ///
            /// # Errors
            ///
            /// Returns [`EngineError::InvalidPopulation`] if no
            /// population was supplied or it has fewer than two agents;
            /// [`EngineError::TopologySizeMismatch`] if the scheduler is
            /// bound to a topology of a different size than the
            /// population; and, when the backend has no agent identities
            /// (the count backend),
            /// [`EngineError::PerAgentBackendRequired`] for a recording
            /// trace sink (records name their endpoints) or
            /// [`EngineError::CompleteInteractionLawRequired`] for a
            /// scheduler whose [`InteractionLaw`](crate::InteractionLaw)
            /// counts cannot realize — every mismatch is rejected here
            /// rather than mid-run.
            pub fn build(self) -> Result<$Runner<P, S, A, T, C>, EngineError> {
                let config = self
                    .config
                    .ok_or(EngineError::InvalidPopulation { len: 0 })?;
                if config.len() < 2 {
                    return Err(EngineError::InvalidPopulation { len: config.len() });
                }
                if let Some(required) = self.scheduler.required_population() {
                    if required != config.len() {
                        return Err(EngineError::TopologySizeMismatch {
                            topology: required,
                            population: config.len(),
                        });
                    }
                }
                if let Some(required) = self.program.required_topology() {
                    // A graphical program lays its per-agent state out
                    // over the graph's vertices: the population must span
                    // them exactly…
                    if required.len() != config.len() {
                        return Err(EngineError::TopologySizeMismatch {
                            topology: required.len(),
                            population: config.len(),
                        });
                    }
                    // …and the scheduler must deal exactly that graph's
                    // arcs. A complete required topology imposes no
                    // adjacency constraint, so any uniform-law scheduler
                    // realizes it; a restricted one needs a scheduler
                    // bound to a structurally equal topology.
                    let satisfied = if required.is_complete() {
                        self.scheduler.law() == crate::InteractionLaw::Uniform
                    } else {
                        self.scheduler.dealt_topology() == Some(required)
                    };
                    if !satisfied {
                        return Err(EngineError::ProgramTopologyMismatch {
                            program_topology: required.to_string(),
                            law: self.scheduler.law(),
                        });
                    }
                }
                if !C::PER_AGENT {
                    if !self.sink.is_passive() {
                        return Err(EngineError::PerAgentBackendRequired {
                            operation: "recording trace sinks",
                        });
                    }
                    let law = self.scheduler.law();
                    if !law.count_realizable() {
                        return Err(EngineError::CompleteInteractionLawRequired { law });
                    }
                }
                if self.shards > 1 {
                    if !C::PER_AGENT {
                        return Err(EngineError::ShardIncompatible {
                            feature: "count-based populations \
                                      (no per-agent state slab to partition)",
                        });
                    }
                    if !self.program.shard_safe() {
                        return Err(EngineError::ShardIncompatible {
                            feature: "programs whose in-place hooks are not \
                                      shard-safe (shard_safe() == false)",
                        });
                    }
                }
                Ok($Runner {
                    model: self.model,
                    program: self.program,
                    config,
                    scheduler: self.scheduler,
                    adversary: self.adversary,
                    side_policy: self.side_policy,
                    rng: SmallRng::seed_from_u64(self.seed),
                    next_index: 0,
                    stats: RunStats::default(),
                    sink: self.sink,
                    shards: self.shards,
                })
            }
        }

        impl<P, S, A, C> $Builder<P, S, A, FullTrace<<P as $Program>::State, $Fault>, C>
        where
            P: $Program,
            S: Scheduler,
            A: OmissionStrategy,
        {
            /// Enables or disables full trace recording — shorthand for
            /// `trace_sink(FullTrace::new())` resp. the disabled default,
            /// kept so certification call sites read the same as before
            /// sinks existed.
            pub fn record_trace(mut self, record: bool) -> Self {
                self.sink = if record {
                    FullTrace::new()
                } else {
                    FullTrace::disabled()
                };
                self
            }
        }
    };
}

fn is_omissive<F: FaultLike>(f: &F) -> bool {
    f.omissive()
}

trait FaultLike {
    fn omissive(&self) -> bool;
}

impl FaultLike for OneWayFault {
    fn omissive(&self) -> bool {
        self.is_omissive()
    }
}

impl FaultLike for TwoWayFault {
    fn omissive(&self) -> bool {
        self.is_omissive()
    }
}

runner_impl! {
    /// Execution driver for the one-way family (IT, IO, I1–I4).
    ///
    /// See the `runner` module docs for the shared runner surface and
    /// the crate example for end-to-end usage.
    runner: OneWayRunner,
    builder: OneWayRunnerBuilder,
    model: OneWayModel,
    fault: OneWayFault,
    program: OneWayProgram,
    compute: |model, program, fault, s, r| outcome::one_way(model, program, s, r, fault),
    fast: |model, program, fault, s, r| outcome::one_way_in_place(model, program, s, r, fault),
    decide: |this, index, interaction| {
        if this.model.allows_omissions()
            && this.adversary.decide_at(index, interaction, &mut this.rng)
        {
            OneWayFault::Omission
        } else {
            OneWayFault::None
        }
    },
    bulk: |this| {
        // decide() is only reached in omissive models; when it never
        // draws, the shared stream is pairs-only.
        !this.model.allows_omissions() || !this.adversary.uses_rng()
    },
    mix: |model, policy, rate| {
        // One-way models have a single omissive fault; the side policy
        // plays no role.
        let _ = (model, policy);
        if rate > 0.0 {
            vec![
                (OneWayFault::None, 1.0 - rate),
                (OneWayFault::Omission, rate),
            ]
        } else {
            vec![(OneWayFault::None, 1.0)]
        }
    },
}

runner_impl! {
    /// Execution driver for the two-way family (TW, T1–T3).
    ///
    /// In omissive two-way models the adversary decides *whether* a step is
    /// omissive and the builder's [`SidePolicy`] decides *which side(s)*
    /// lose the transmission.
    runner: TwoWayRunner,
    builder: TwoWayRunnerBuilder,
    model: TwoWayModel,
    fault: TwoWayFault,
    program: TwoWayProgram,
    compute: |model, program, fault, s, r| outcome::two_way(model, program, s, r, fault),
    fast: |model, program, fault, s, r| outcome::two_way_in_place(model, program, s, r, fault),
    decide: |this, index, interaction| {
        if this.model.allows_omissions()
            && this.adversary.decide_at(index, interaction, &mut this.rng)
        {
            this.side_policy.pick(this.model, &mut this.rng)
        } else {
            TwoWayFault::None
        }
    },
    bulk: |this| {
        // Beyond decide(), a firing fault also runs SidePolicy::pick,
        // which draws under Uniform — so bulk drawing additionally
        // needs a draw-free side pick (Always) or a fault that can
        // never fire (zero budget).
        !this.model.allows_omissions()
            || (!this.adversary.uses_rng()
                && (matches!(this.side_policy, SidePolicy::Always(_))
                    || this.adversary.budget() == Some(0)))
    },
    mix: |model, policy, rate| {
        // The scalar path draws decide() then SidePolicy::pick() per
        // step; with an i.i.d. adversary that is exactly this fixed
        // categorical mix.
        if rate > 0.0 {
            match policy {
                SidePolicy::Always(f) => {
                    vec![(TwoWayFault::None, 1.0 - rate), (f, rate)]
                }
                SidePolicy::Uniform => {
                    let omissive: Vec<TwoWayFault> = model
                        .permitted_faults()
                        .iter()
                        .copied()
                        .filter(|f| f.is_omissive())
                        .collect();
                    let share = rate / omissive.len() as f64;
                    let mut mix = vec![(TwoWayFault::None, 1.0 - rate)];
                    mix.extend(omissive.into_iter().map(|f| (f, share)));
                    mix
                }
            }
        } else {
            vec![(TwoWayFault::None, 1.0)]
        }
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        AtMostOneStrategy, RateStrategy, SampledTrace, ScriptedOmissions, ScriptedScheduler,
        StatsOnly,
    };
    use ppfts_population::TableProtocol;

    struct Epidemic;
    impl OneWayProgram for Epidemic {
        type State = bool;
        fn on_receive(&self, s: &bool, r: &bool) -> bool {
            *s || *r
        }
    }

    fn pairing() -> TableProtocol<char> {
        TableProtocol::builder(vec!['s', 'c', 'p', '_'])
            .rule(('c', 'p'), ('s', '_'))
            .rule(('p', 'c'), ('_', 's'))
            .build()
    }

    #[test]
    fn epidemic_converges_under_io() {
        let mut runner = OneWayRunner::builder(OneWayModel::Io, Epidemic)
            .config(Configuration::new(vec![true, false, false, false, false]))
            .seed(1)
            .build()
            .unwrap();
        let out = runner.run_until(100_000, |c| c.as_slice().iter().all(|b| *b));
        assert!(out.is_satisfied());
        assert!(out.steps() >= 4, "needs at least one delivery per agent");
    }

    #[test]
    fn determinism_by_seed() {
        let run = |seed: u64| {
            let mut r = OneWayRunner::builder(OneWayModel::I3, Epidemic)
                .config(Configuration::new(vec![true, false, false, false]))
                .adversary(RateStrategy::new(0.3))
                .seed(seed)
                .build()
                .unwrap();
            r.run(500).unwrap();
            (r.config().clone(), r.stats())
        };
        assert_eq!(run(42), run(42));
        let (_, s1) = run(42);
        let (_, s2) = run(43);
        assert_ne!(
            (s1.omissive_steps, s1.changed_steps),
            (s2.omissive_steps, s2.changed_steps)
        );
    }

    #[test]
    fn sharded_run_matches_batched_run() {
        let n = 48;
        let mut init = vec![false; n];
        init[0] = true;
        let batched = {
            let mut r = OneWayRunner::builder(OneWayModel::I3, Epidemic)
                .config(Configuration::new(init.clone()))
                .adversary(RateStrategy::new(0.3))
                .seed(42)
                .build()
                .unwrap();
            r.run_batched(5_000, 512).unwrap();
            (r.config().clone(), r.stats())
        };
        for shards in [1usize, 2, 8] {
            let mut r = OneWayRunner::builder(OneWayModel::I3, Epidemic)
                .config(Configuration::new(init.clone()))
                .adversary(RateStrategy::new(0.3))
                .seed(42)
                .shards(shards)
                .build()
                .unwrap();
            r.run_sharded(5_000, 512).unwrap();
            assert_eq!(r.shards(), shards);
            assert_eq!(
                (r.config().clone(), r.stats()),
                batched,
                "shards = {shards}"
            );
        }
    }

    #[test]
    fn sharding_rejects_count_backend_at_build() {
        let config = ppfts_population::CountConfiguration::from_groups([(true, 1), (false, 9)]);
        let built = OneWayRunner::builder(OneWayModel::Io, Epidemic)
            .population(config)
            .shards(4)
            .build();
        assert!(matches!(
            built.err(),
            Some(EngineError::ShardIncompatible { .. })
        ));
    }

    #[test]
    fn sharding_rejects_shard_unsafe_programs_at_build() {
        struct Logged(std::cell::Cell<u64>);
        impl OneWayProgram for Logged {
            type State = bool;
            fn on_receive(&self, s: &bool, r: &bool) -> bool {
                self.0.set(self.0.get() + 1);
                *s || *r
            }
            fn shard_safe(&self) -> bool {
                false
            }
        }
        let built = OneWayRunner::builder(OneWayModel::Io, Logged(std::cell::Cell::new(0)))
            .config(Configuration::new(vec![true, false]))
            .shards(2)
            .build();
        assert!(matches!(
            built.err(),
            Some(EngineError::ShardIncompatible { .. })
        ));
        // shards(1) with the same program is fine — nothing to race.
        assert!(
            OneWayRunner::builder(OneWayModel::Io, Logged(std::cell::Cell::new(0)))
                .config(Configuration::new(vec![true, false]))
                .shards(1)
                .build()
                .is_ok()
        );
    }

    #[test]
    fn batched_run_matches_scalar_run() {
        let scalar = {
            let mut r = OneWayRunner::builder(OneWayModel::I3, Epidemic)
                .config(Configuration::new(vec![true, false, false, false]))
                .adversary(RateStrategy::new(0.3))
                .seed(42)
                .build()
                .unwrap();
            r.run(500).unwrap();
            (r.config().clone(), r.stats())
        };
        for batch in [1u64, 7, 64, 500, 1000] {
            let mut r = OneWayRunner::builder(OneWayModel::I3, Epidemic)
                .config(Configuration::new(vec![true, false, false, false]))
                .adversary(RateStrategy::new(0.3))
                .seed(42)
                .trace_sink(StatsOnly)
                .build()
                .unwrap();
            r.run_batched(500, batch).unwrap();
            assert_eq!((r.config().clone(), r.stats()), scalar, "batch {batch}");
            assert_eq!(r.steps(), 500);
        }
    }

    #[test]
    fn bulk_drawn_batches_match_scalar_run_bitwise() {
        // ScriptedOmissions decides without the RNG, so batched runs
        // take the bulk pair-drawing path; the stream, configuration,
        // stats, and fault placement must match the scalar loop exactly.
        let build = || {
            OneWayRunner::builder(OneWayModel::I3, Epidemic)
                .config(Configuration::new(vec![true, false, false, false, false]))
                .scheduler(TopologyScheduler::new(Topology::ring(5).unwrap()))
                .adversary(ScriptedOmissions::new([3, 17, 90, 91]))
                .seed(7)
                .record_trace(true)
                .build()
                .unwrap()
        };
        let mut scalar = build();
        scalar.run(200).unwrap();
        for batch in [1u64, 13, 64, 200] {
            let mut batched = build();
            assert!(batched.bulk_pairs_ok());
            batched.run_batched(200, batch).unwrap();
            assert_eq!(batched.config(), scalar.config(), "batch {batch}");
            assert_eq!(batched.stats(), scalar.stats(), "batch {batch}");
            assert_eq!(batched.trace(), scalar.trace(), "batch {batch}");
        }
    }

    #[test]
    fn two_way_bulk_gate_requires_a_draw_free_side_pick() {
        let base = || {
            TwoWayRunner::builder(TwoWayModel::T1, pairing())
                .config(Configuration::new(vec!['c', 'p', 'c', 'p']))
                .adversary(ScriptedOmissions::new([2]))
        };
        // Uniform side pick draws when a fault fires: not bulk-eligible.
        let r = base().build().unwrap();
        assert!(!r.bulk_pairs_ok());
        // A fixed side never draws: bulk-eligible.
        let r = base()
            .side_policy(SidePolicy::Always(TwoWayFault::Reactor))
            .build()
            .unwrap();
        assert!(r.bulk_pairs_ok());
    }

    #[test]
    fn batched_run_feeds_a_recording_sink() {
        let build = || {
            OneWayRunner::builder(OneWayModel::Io, Epidemic)
                .config(Configuration::new(vec![true, false, false]))
                .record_trace(true)
                .seed(9)
                .build()
                .unwrap()
        };
        let mut scalar = build();
        scalar.run(40).unwrap();
        let mut batched = build();
        batched.run_batched(40, 8).unwrap();
        assert_eq!(scalar.trace(), batched.trace());
        assert_eq!(batched.trace().unwrap().len(), 40);
    }

    #[test]
    fn batched_until_checks_at_boundaries_only() {
        let mut runner = OneWayRunner::builder(OneWayModel::Io, Epidemic)
            .config(Configuration::new(vec![true, false, false, false, false]))
            .seed(1)
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
        let out = runner.run_batched_until(100_000, 64, |c| c.as_slice().iter().all(|b| *b));
        assert!(out.is_satisfied());
        assert!(
            out.steps().is_multiple_of(64),
            "stops only at batch boundaries, got {}",
            out.steps()
        );
    }

    #[test]
    fn batched_until_checks_initial_configuration() {
        let mut runner = OneWayRunner::builder(OneWayModel::Io, Epidemic)
            .config(Configuration::new(vec![true, true]))
            .build()
            .unwrap();
        let out = runner.run_batched_until(10, 4, |c| c.as_slice().iter().all(|b| *b));
        assert_eq!(out, RunOutcome::Satisfied { steps: 0 });
    }

    #[test]
    fn batched_until_exhausts_budget_exactly() {
        let mut runner = OneWayRunner::builder(OneWayModel::Io, Epidemic)
            .config(Configuration::new(vec![false, false]))
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
        // 25 is not a multiple of the batch: the tail batch is short.
        let out = runner.run_batched_until(25, 8, |c| c.as_slice().iter().any(|b| *b));
        assert_eq!(out, RunOutcome::Exhausted { steps: 25 });
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_is_rejected() {
        let mut runner = OneWayRunner::builder(OneWayModel::Io, Epidemic)
            .config(Configuration::new(vec![true, false]))
            .build()
            .unwrap();
        let _ = runner.run_batched(10, 0);
    }

    #[test]
    fn sampled_sink_keeps_interesting_steps() {
        let mut runner = OneWayRunner::builder(OneWayModel::I3, Epidemic)
            .config(Configuration::new(vec![true, false, false, false]))
            .adversary(RateStrategy::new(0.2))
            .seed(11)
            .trace_sink(SampledTrace::every(50))
            .build()
            .unwrap();
        runner.run(200).unwrap();
        let trace = runner.trace().unwrap();
        assert!(trace.len() < 200, "no-op steps are dropped");
        let stats = runner.stats();
        assert_eq!(
            trace.omissive_count(|f| f.is_omissive()) as u64,
            stats.omissive_steps,
            "every omissive step is retained"
        );
        assert_eq!(
            trace.changed_count() as u64,
            stats.changed_steps,
            "every state-changing step is retained"
        );
        // The stride heartbeat: indices 0, 50, 100, 150 are all present.
        for idx in [0u64, 50, 100, 150] {
            assert!(trace.iter().any(|r| r.index == idx), "heartbeat {idx}");
        }
    }

    #[test]
    fn adversary_is_not_consulted_in_fault_free_models() {
        // An always-omissive adversary under IO must cause no faults:
        // the model's relation has no omissive outcomes.
        let mut runner = OneWayRunner::builder(OneWayModel::Io, Epidemic)
            .config(Configuration::new(vec![true, false]))
            .adversary(RateStrategy::new(1.0))
            .seed(3)
            .build()
            .unwrap();
        runner.run(100).unwrap();
        assert_eq!(runner.stats().omissive_steps, 0);
        assert_eq!(runner.adversary().injected(), 0);
    }

    #[test]
    fn omissions_fire_in_omissive_models() {
        let mut runner = OneWayRunner::builder(OneWayModel::I1, Epidemic)
            .config(Configuration::new(vec![true, false]))
            .adversary(RateStrategy::new(1.0))
            .seed(3)
            .build()
            .unwrap();
        runner.run(50).unwrap();
        assert_eq!(runner.stats().omissive_steps, 50);
        // Under I1 with all transmissions lost, the epidemic never spreads.
        assert_eq!(runner.config().as_slice(), &[true, false]);
    }

    #[test]
    fn planned_steps_execute_verbatim() {
        let mut runner = OneWayRunner::builder(OneWayModel::I3, Epidemic)
            .config(Configuration::new(vec![true, false, false]))
            .record_trace(true)
            .build()
            .unwrap();
        let plan = vec![
            Planned::omission(Interaction::new(0, 1).unwrap()),
            Planned::ok(Interaction::new(0, 2).unwrap()),
        ];
        runner.apply_planned(plan).unwrap();
        // Omission blocked agent 1; delivery infected agent 2.
        assert_eq!(runner.config().as_slice(), &[true, false, true]);
        let trace = runner.trace().unwrap();
        assert_eq!(trace.len(), 2);
        assert!(trace.records()[0].fault.is_omissive());
        assert!(!trace.records()[1].fault.is_omissive());
    }

    #[test]
    fn planned_omission_in_io_is_rejected() {
        let mut runner = OneWayRunner::builder(OneWayModel::Io, Epidemic)
            .config(Configuration::new(vec![true, false]))
            .build()
            .unwrap();
        let err = runner
            .apply_planned([Planned::omission(Interaction::new(0, 1).unwrap())])
            .unwrap_err();
        assert!(matches!(err, EngineError::FaultNotInRelation { .. }));
    }

    #[test]
    fn builder_rejects_tiny_populations() {
        let err = OneWayRunner::builder(OneWayModel::Io, Epidemic)
            .config(Configuration::new(vec![true]))
            .build();
        assert!(matches!(
            err,
            Err(EngineError::InvalidPopulation { len: 1 })
        ));
        let err = OneWayRunner::builder(OneWayModel::Io, Epidemic).build();
        assert!(matches!(
            err,
            Err(EngineError::InvalidPopulation { len: 0 })
        ));
    }

    #[test]
    fn two_way_pairing_converges_under_tw() {
        let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, pairing())
            .config(Configuration::from_groups([('c', 3), ('p', 2)]))
            .seed(7)
            .build()
            .unwrap();
        let out = runner.run_until(100_000, |c| c.count_state(&'s') == 2);
        assert!(out.is_satisfied());
        // Safety: never more paired consumers than producers.
        assert_eq!(runner.config().count_state(&'s'), 2);
        assert_eq!(runner.config().count_state(&'_'), 2);
        assert_eq!(runner.config().count_state(&'c'), 1);
    }

    #[test]
    fn two_way_batched_matches_scalar() {
        let run = |batched: Option<u64>| {
            let mut r = TwoWayRunner::builder(TwoWayModel::T1, pairing())
                .config(Configuration::from_groups([('c', 3), ('p', 3)]))
                .adversary(RateStrategy::new(0.25))
                .side_policy(SidePolicy::Uniform)
                .seed(13)
                .build()
                .unwrap();
            match batched {
                Some(b) => r.run_batched(400, b).unwrap(),
                None => r.run(400).unwrap(),
            }
            (r.config().clone(), r.stats())
        };
        let scalar = run(None);
        for batch in [1, 32, 400] {
            assert_eq!(run(Some(batch)), scalar, "batch {batch}");
        }
    }

    #[test]
    fn two_way_scripted_omission_changes_outcome() {
        // (c, p) meet but the reactor side omits: in T1 the starter still
        // applies fs, turning c -> s while p survives — the exact hazard
        // the paper's impossibility proofs exploit.
        let script = ScriptedScheduler::new(
            vec![Interaction::new(0, 1).unwrap()],
            UniformScheduler::new(),
        );
        let mut runner = TwoWayRunner::builder(TwoWayModel::T1, pairing())
            .config(Configuration::new(vec!['c', 'p']))
            .scheduler(script)
            .adversary(ScriptedOmissions::new([0]))
            .side_policy(SidePolicy::Always(TwoWayFault::Reactor))
            .build()
            .unwrap();
        let rec = runner.step().unwrap();
        assert_eq!(rec.fault, TwoWayFault::Reactor);
        assert_eq!(runner.config().as_slice(), &['s', 'p']);
    }

    #[test]
    fn count_backend_runs_the_full_batched_surface() {
        use ppfts_population::CountConfiguration;
        let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, pairing())
            .population(CountConfiguration::from_groups([('c', 40), ('p', 60)]))
            .seed(5)
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
        let out = runner.run_batched_until(
            10_000_000,
            256,
            crate::convergence::stably(|c: &CountConfiguration<char>| c.count_state(&'s') == 40, 2),
        );
        assert!(out.is_satisfied());
        // Pairing safety invariants hold on counts exactly as on agents.
        assert_eq!(runner.config().count_state(&'s'), 40);
        assert_eq!(runner.config().count_state(&'_'), 40);
        assert_eq!(runner.config().count_state(&'c'), 0);
        assert_eq!(runner.config().count_state(&'p'), 20);
        assert_eq!(runner.config().len(), 100);
        assert_eq!(runner.stats().steps, out.steps());
    }

    #[test]
    fn count_backend_handles_one_way_omissive_models() {
        use ppfts_population::CountConfiguration;
        let mut runner = OneWayRunner::builder(OneWayModel::I3, Epidemic)
            .population(CountConfiguration::from_groups([(true, 1), (false, 63)]))
            .adversary(RateStrategy::new(0.2))
            .seed(11)
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
        let out = runner.run_batched_until(1_000_000, 64, |c: &CountConfiguration<bool>| {
            c.count_state(&true) == 64
        });
        assert!(out.is_satisfied(), "omissions only delay the epidemic");
        assert!(runner.stats().omissive_steps > 0);
    }

    #[test]
    fn count_backend_rejects_per_agent_operations() {
        use ppfts_population::CountConfiguration;
        let build = || {
            OneWayRunner::builder(OneWayModel::Io, Epidemic)
                .population(CountConfiguration::from_groups([(true, 1), (false, 3)]))
                .trace_sink(StatsOnly)
                .build()
                .unwrap()
        };
        // `step` builds a record, which needs agent identities.
        let err = build().step().unwrap_err();
        assert!(matches!(err, EngineError::PerAgentBackendRequired { .. }));
        // Planned sequences address agents by index.
        let err = build()
            .apply_planned([Planned::ok(Interaction::new(0, 1).unwrap())])
            .unwrap_err();
        assert!(matches!(err, EngineError::PerAgentBackendRequired { .. }));
        // A recording sink would want records that name agents; the
        // mismatch is rejected when the runner is assembled.
        let err = OneWayRunner::builder(OneWayModel::Io, Epidemic)
            .population(CountConfiguration::from_groups([(true, 1), (false, 3)]))
            .trace_sink(FullTrace::<bool, OneWayFault>::new())
            .build()
            .err()
            .expect("recording sink on counts must not build");
        assert!(matches!(err, EngineError::PerAgentBackendRequired { .. }));
        // So is an index-addressed scheduler — the typed law negotiation
        // rejects it at build time, naming the offending law.
        let err = OneWayRunner::builder(OneWayModel::Io, Epidemic)
            .population(CountConfiguration::from_groups([(true, 1), (false, 3)]))
            .scheduler(crate::RoundRobinScheduler::new())
            .trace_sink(StatsOnly)
            .build()
            .err()
            .expect("non-uniform scheduler on counts must not build");
        assert!(matches!(
            err,
            EngineError::CompleteInteractionLawRequired {
                law: crate::InteractionLaw::IndexAddressed
            }
        ));
        // The disabled-FullTrace default is passive and builds fine.
        assert!(OneWayRunner::builder(OneWayModel::Io, Epidemic)
            .population(CountConfiguration::from_groups([(true, 1), (false, 3)]))
            .build()
            .is_ok());
    }

    #[test]
    fn count_backend_run_batched_equals_scalar_run() {
        use ppfts_population::CountConfiguration;
        let run = |batched: Option<u64>| {
            let mut r = TwoWayRunner::builder(TwoWayModel::T1, pairing())
                .population(CountConfiguration::from_groups([('c', 5), ('p', 5)]))
                .adversary(RateStrategy::new(0.25))
                .seed(13)
                .trace_sink(StatsOnly)
                .build()
                .unwrap();
            match batched {
                Some(b) => r.run_batched(400, b).unwrap(),
                None => r.run(400).unwrap(),
            }
            (r.config().clone(), r.stats())
        };
        let scalar = run(None);
        for batch in [1, 32, 400] {
            assert_eq!(run(Some(batch)), scalar, "batch {batch}");
        }
    }

    #[test]
    fn builder_rejects_tiny_count_populations() {
        use ppfts_population::CountConfiguration;
        let err = OneWayRunner::builder(OneWayModel::Io, Epidemic)
            .population(CountConfiguration::from_groups([(true, 1)]))
            .build();
        assert!(matches!(
            err,
            Err(EngineError::InvalidPopulation { len: 1 })
        ));
    }

    #[test]
    fn topology_builder_runs_on_restricted_graphs() {
        let ring = Topology::ring(8).unwrap();
        let mut runner = OneWayRunner::builder(OneWayModel::Io, Epidemic)
            .config(Configuration::new(
                (0..8).map(|i| i == 0).collect::<Vec<_>>(),
            ))
            .topology(ring.clone())
            .seed(3)
            .build()
            .unwrap();
        let out = runner.run_until(200_000, |c| c.as_slice().iter().all(|b| *b));
        assert!(out.is_satisfied(), "epidemic crosses the ring");
        // Every recorded step respects the graph: spot-check via trace.
        let mut traced = OneWayRunner::builder(OneWayModel::Io, Epidemic)
            .config(Configuration::new(vec![true, false, false, false]))
            .topology(Topology::ring(4).unwrap())
            .record_trace(true)
            .seed(5)
            .build()
            .unwrap();
        traced.run(300).unwrap();
        let ring4 = Topology::ring(4).unwrap();
        for rec in traced.trace().unwrap() {
            assert!(ring4.contains_arc(
                rec.interaction.starter().index(),
                rec.interaction.reactor().index()
            ));
        }
    }

    #[test]
    fn builder_rejects_topology_population_mismatch() {
        let err = OneWayRunner::builder(OneWayModel::Io, Epidemic)
            .config(Configuration::new(vec![true, false, false]))
            .topology(Topology::ring(8).unwrap())
            .build()
            .err()
            .expect("mismatched sizes must not build");
        assert!(matches!(
            err,
            EngineError::TopologySizeMismatch {
                topology: 8,
                population: 3
            }
        ));
    }

    #[test]
    fn count_backend_negotiates_topologies_by_law() {
        use ppfts_population::CountConfiguration;
        // A complete topology deals the uniform law: counts accept it.
        let ok = TwoWayRunner::builder(TwoWayModel::Tw, pairing())
            .population(CountConfiguration::from_groups([('c', 3), ('p', 3)]))
            .topology(Topology::complete(6).unwrap())
            .trace_sink(StatsOnly)
            .build();
        assert!(ok.is_ok());
        // A restricted topology cannot be realized from counts: typed
        // builder error, not a mid-run panic.
        let err = TwoWayRunner::builder(TwoWayModel::Tw, pairing())
            .population(CountConfiguration::from_groups([('c', 3), ('p', 3)]))
            .topology(Topology::ring(6).unwrap())
            .trace_sink(StatsOnly)
            .build()
            .err()
            .expect("restricted topology on counts must not build");
        assert!(matches!(
            err,
            EngineError::CompleteInteractionLawRequired {
                law: crate::InteractionLaw::Topological
            }
        ));
    }

    #[test]
    fn run_until_checks_initial_configuration() {
        let mut runner = OneWayRunner::builder(OneWayModel::Io, Epidemic)
            .config(Configuration::new(vec![true, true]))
            .build()
            .unwrap();
        let out = runner.run_until(10, |c| c.as_slice().iter().all(|b| *b));
        assert_eq!(out, RunOutcome::Satisfied { steps: 0 });
    }

    #[test]
    fn run_until_exhausts_budget() {
        let mut runner = OneWayRunner::builder(OneWayModel::Io, Epidemic)
            .config(Configuration::new(vec![false, false]))
            .build()
            .unwrap();
        let out = runner.run_until(25, |c| c.as_slice().iter().any(|b| *b));
        assert_eq!(out, RunOutcome::Exhausted { steps: 25 });
        assert!(!out.is_satisfied());
    }

    #[test]
    fn at_most_one_injects_single_omission() {
        let mut runner = OneWayRunner::builder(OneWayModel::I1, Epidemic)
            .config(Configuration::new(vec![true, false, false]))
            .adversary(AtMostOneStrategy::at_step(0))
            .seed(5)
            .build()
            .unwrap();
        runner.run(200).unwrap();
        assert_eq!(runner.stats().omissive_steps, 1);
        assert_eq!(runner.adversary().injected(), 1);
    }

    #[test]
    fn take_trace_leaves_tracing_enabled() {
        let mut runner = OneWayRunner::builder(OneWayModel::Io, Epidemic)
            .config(Configuration::new(vec![true, false]))
            .record_trace(true)
            .build()
            .unwrap();
        runner.run(3).unwrap();
        let t1 = runner.take_trace().unwrap();
        assert_eq!(t1.len(), 3);
        runner.run(2).unwrap();
        let t2 = runner.take_trace().unwrap();
        assert_eq!(t2.len(), 2);
    }

    #[test]
    fn stats_count_noops_and_changes() {
        let mut runner = OneWayRunner::builder(OneWayModel::Io, Epidemic)
            .config(Configuration::new(vec![true, true]))
            .build()
            .unwrap();
        runner.run(10).unwrap();
        // Everyone already infected: every step is a no-op.
        assert_eq!(runner.stats().noop_steps, 10);
        assert_eq!(runner.stats().changed_steps, 0);
    }

    #[test]
    fn stats_only_runner_exposes_no_trace() {
        let mut runner = OneWayRunner::builder(OneWayModel::Io, Epidemic)
            .config(Configuration::new(vec![true, false]))
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
        runner.run(5).unwrap();
        assert!(runner.trace().is_none());
        assert!(runner.take_trace().is_none());
        assert_eq!(runner.sink(), &StatsOnly);
        assert_eq!(runner.stats().steps, 5);
    }

    #[test]
    fn run_epochs_converges_the_epidemic_on_counts() {
        use ppfts_population::CountConfiguration;
        let n = 10_000;
        let mut runner = OneWayRunner::builder(OneWayModel::Io, Epidemic)
            .population(CountConfiguration::from_groups([(true, 1), (false, n - 1)]))
            .seed(17)
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
        let out = runner
            .run_epochs_until(
                100_000_000,
                crate::convergence::stably(
                    |c: &CountConfiguration<bool>| c.count_state(&true) == n,
                    2,
                ),
            )
            .unwrap();
        assert!(out.is_satisfied());
        assert_eq!(runner.config().len(), n);
        assert_eq!(runner.config().count_state(&true), n);
        assert_eq!(runner.stats().steps, out.steps());
    }

    #[test]
    fn run_epochs_budget_is_exact_and_conserves_protocol_invariants() {
        use ppfts_population::CountConfiguration;
        let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, pairing())
            .population(CountConfiguration::from_groups([('c', 400), ('p', 600)]))
            .seed(5)
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
        runner.run_epochs(12_345).unwrap();
        assert_eq!(runner.steps(), 12_345);
        assert_eq!(runner.stats().steps, 12_345);
        let c = runner.config();
        assert_eq!(c.len(), 1000);
        // Pairing conservation: every 's' is matched by one '_'.
        assert_eq!(c.count_state(&'s'), c.count_state(&'_'));
        // 'c' agents only ever become 's'; 'p' only '_'.
        assert_eq!(c.count_state(&'c') + c.count_state(&'s'), 400);
        assert_eq!(c.count_state(&'p') + c.count_state(&'_'), 600);
    }

    #[test]
    fn run_epochs_thins_omissions_at_the_adversary_rate() {
        use ppfts_population::CountConfiguration;
        let n = 20_000;
        let mut runner = OneWayRunner::builder(OneWayModel::I3, Epidemic)
            .population(CountConfiguration::from_groups([(true, 1), (false, n - 1)]))
            .adversary(RateStrategy::new(0.2))
            .seed(29)
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
        let out = runner
            .run_epochs_until(100_000_000, |c: &CountConfiguration<bool>| {
                c.count_state(&true) == n
            })
            .unwrap();
        assert!(out.is_satisfied(), "omissions only delay the epidemic");
        let frac = runner.stats().omission_fraction();
        assert!(
            (frac - 0.2).abs() < 0.02,
            "omissive fraction {frac} far from the 0.2 rate"
        );
        // Bulk thinning bypasses decide(): the audit lives in RunStats.
        assert_eq!(runner.adversary().injected(), 0);
    }

    #[test]
    fn run_epochs_splits_two_way_omissions_across_sides() {
        use ppfts_population::CountConfiguration;
        // Under T3 + Uniform the mix spreads the rate over
        // starter/reactor/both omissions; the run stays consistent and
        // records the full rate.
        let mut runner = TwoWayRunner::builder(TwoWayModel::T3, pairing())
            .population(CountConfiguration::from_groups([('c', 500), ('p', 500)]))
            .adversary(RateStrategy::new(0.5))
            .side_policy(SidePolicy::Uniform)
            .seed(31)
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
        runner.run_epochs(100_000).unwrap();
        let frac = runner.stats().omission_fraction();
        assert!(
            (frac - 0.5).abs() < 0.02,
            "omissive fraction {frac} far from the 0.5 rate"
        );
        assert_eq!(runner.config().len(), 1000);
    }

    #[test]
    fn run_epochs_rejects_non_iid_adversaries_with_a_typed_error() {
        use ppfts_population::CountConfiguration;
        let mut runner = OneWayRunner::builder(OneWayModel::I3, Epidemic)
            .population(CountConfiguration::from_groups([(true, 1), (false, 9)]))
            .adversary(AtMostOneStrategy::at_step(3))
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
        let err = runner.run_epochs(1_000).unwrap_err();
        assert!(matches!(err, EngineError::EpochIncompatible { .. }));
        // Nothing ran: the rejection happens before the first epoch.
        assert_eq!(runner.steps(), 0);
        assert_eq!(runner.config().count_state(&true), 1);
    }

    #[test]
    fn run_epochs_accepts_any_adversary_under_fault_free_models() {
        use ppfts_population::CountConfiguration;
        // Io has no omissions in its relation, so the (non-i.i.d.)
        // adversary is never consulted and the epoch path runs.
        let mut runner = OneWayRunner::builder(OneWayModel::Io, Epidemic)
            .population(CountConfiguration::from_groups([(true, 1), (false, 9)]))
            .adversary(AtMostOneStrategy::at_step(3))
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
        runner.run_epochs(1_000).unwrap();
        assert_eq!(runner.steps(), 1_000);
        assert_eq!(runner.stats().omissive_steps, 0);
    }

    #[test]
    fn run_epochs_surfaces_fault_relation_violations() {
        use ppfts_population::CountConfiguration;
        // T1 permits single-sided omissions only; forcing Both must fail
        // exactly as it does on the interleaved path.
        let mut runner = TwoWayRunner::builder(TwoWayModel::T1, pairing())
            .population(CountConfiguration::from_groups([('c', 50), ('p', 50)]))
            .adversary(RateStrategy::new(1.0))
            .side_policy(SidePolicy::Always(TwoWayFault::Both))
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
        let err = runner.run_epochs(1_000).unwrap_err();
        assert!(matches!(err, EngineError::FaultNotInRelation { .. }));
    }

    #[test]
    fn run_epochs_until_checks_the_predicate_before_the_first_epoch() {
        use ppfts_population::CountConfiguration;
        let mut runner = OneWayRunner::builder(OneWayModel::Io, Epidemic)
            .population(CountConfiguration::from_groups([(true, 10)]))
            .trace_sink(StatsOnly)
            .build()
            .unwrap();
        let out = runner
            .run_epochs_until(1_000, |c: &CountConfiguration<bool>| {
                c.count_state(&true) == 10
            })
            .unwrap();
        assert_eq!(out, RunOutcome::Satisfied { steps: 0 });
    }
}

//! Embedding one-way programs into two-way models.
//!
//! Figure 1's `IT → TW` arrow says the one-way world is a special case of
//! the two-way world: `fs(s, r) := g(s)` (ignore the reactor's state) and
//! `fr := f`. [`EmbedOneWay`] is that specialization as an executable
//! adapter, so any one-way program — including the simulators of
//! `ppfts-core` — can be run under TW, T1, T2 or T3.
//!
//! # Fault mapping caveats
//!
//! Two-way omissions are richer than one-way ones, and the embedding is
//! exact only for the faults that have one-way counterparts:
//!
//! * **reactor-side omission** — the starter→reactor payload was lost:
//!   maps exactly to the one-way omission (`h` fires, as in I3);
//! * **starter-side omission** — only the (unused!) reactor→starter
//!   payload was lost: a no-event for a one-way program. The adapter maps
//!   the starter's `o` hook to `g`, i.e. the program treats the
//!   interaction as a successful send — which it was;
//! * **both-sides omission** — the payload was lost *and* the starter can
//!   detect it: maps `o` to the program's starter-omission hook (as in
//!   I4) and `h` to the reactor-omission hook (as in I3). Note that a
//!   program counting "one joker per omission" (SKnO) will mint **two**
//!   for a both-sides omission; budget accordingly (or restrict the
//!   adversary's [`SidePolicy`](crate::SidePolicy), as the tests do).
//!
//! Because the two-way `o` hook cannot distinguish "starter-side only"
//! from "both sides", the adapter exposes the distinction through
//! [`EmbedOneWay::new`]'s model-agnostic contract rather than hiding it:
//! under T2 (starter detection only, `h = id`) a lost payload is
//! *undetectable* by the program's reactor, so omission-tolerant one-way
//! programs generally lose their guarantees there — which is consistent
//! with the paper's map of results.

use ppfts_population::State;

use crate::{OneWayProgram, TwoWayProgram};

/// Runs a one-way program under a two-way model; see the module docs for
/// the exact fault mapping.
///
/// # Example
///
/// ```
/// use ppfts_engine::{EmbedOneWay, OneWayProgram, TwoWayModel, TwoWayRunner};
/// use ppfts_population::Configuration;
///
/// struct Gossip;
/// impl OneWayProgram for Gossip {
///     type State = u32;
///     fn on_receive(&self, s: &u32, r: &u32) -> u32 { (*s).max(*r) }
/// }
///
/// let mut runner = TwoWayRunner::builder(TwoWayModel::Tw, EmbedOneWay::new(Gossip))
///     .config(Configuration::new(vec![3, 1, 4]))
///     .seed(1)
///     .build()?;
/// let out = runner.run_until(10_000, |c| c.as_slice().iter().all(|&v| v == 4));
/// assert!(out.is_satisfied());
/// # Ok::<(), ppfts_engine::EngineError>(())
/// ```
#[derive(Clone, Debug)]
pub struct EmbedOneWay<P> {
    inner: P,
}

impl<P: OneWayProgram> EmbedOneWay<P> {
    /// Wraps `program` for execution under two-way models.
    pub fn new(program: P) -> Self {
        EmbedOneWay { inner: program }
    }

    /// The wrapped one-way program.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Unwraps the adapter.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P> TwoWayProgram for EmbedOneWay<P>
where
    P: OneWayProgram,
    P::State: State,
{
    type State = P::State;

    /// `fs(s, r) := g(s)` — the starter ignores the reactor's state.
    fn starter_update(&self, s: &Self::State, _r: &Self::State) -> Self::State {
        self.inner.on_proximity(s)
    }

    /// `fr := f`.
    fn reactor_update(&self, s: &Self::State, r: &Self::State) -> Self::State {
        self.inner.on_receive(s, r)
    }

    /// Starter-side detection: fired for starter-only *and* both-sides
    /// omissions; the adapter forwards the program's starter-omission
    /// hook (which defaults to `g`, the correct no-event behaviour for
    /// programs that never override it).
    fn starter_omission(&self, s: &Self::State) -> Self::State {
        self.inner.on_omission_starter(s)
    }

    /// Reactor-side detection: the payload was lost — exactly the one-way
    /// omission.
    fn reactor_omission(&self, r: &Self::State) -> Self::State {
        self.inner.on_omission_reactor(r)
    }

    /// Graphical one-way programs stay graph-bound under the embedding.
    fn required_topology(&self) -> Option<&ppfts_population::Topology> {
        self.inner.required_topology()
    }

    /// Shard-safety is a property of the inner program's hooks; the
    /// adapter adds no state of its own.
    fn shard_safe(&self) -> bool {
        self.inner.shard_safe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        outcome, OneWayFault, OneWayModel, OneWayRunner, TwoWayFault, TwoWayModel, TwoWayRunner,
    };
    use ppfts_population::Configuration;

    struct Probe;
    impl OneWayProgram for Probe {
        type State = char;
        fn on_proximity(&self, _q: &char) -> char {
            'g'
        }
        fn on_receive(&self, _s: &char, _r: &char) -> char {
            'f'
        }
        fn on_omission_starter(&self, _s: &char) -> char {
            'o'
        }
        fn on_omission_reactor(&self, _r: &char) -> char {
            'h'
        }
    }

    #[test]
    fn fault_free_embedding_equals_it_semantics() {
        let e = EmbedOneWay::new(Probe);
        let two = outcome::two_way(TwoWayModel::Tw, &e, &'i', &'i', TwoWayFault::None).unwrap();
        let one = outcome::one_way(OneWayModel::It, &Probe, &'i', &'i', OneWayFault::None).unwrap();
        assert_eq!(two, one);
    }

    #[test]
    fn reactor_side_omission_matches_i3() {
        let e = EmbedOneWay::new(Probe);
        let two = outcome::two_way(TwoWayModel::T3, &e, &'i', &'i', TwoWayFault::Reactor).unwrap();
        let one =
            outcome::one_way(OneWayModel::I3, &Probe, &'i', &'i', OneWayFault::Omission).unwrap();
        assert_eq!(two, one);
    }

    #[test]
    fn both_sides_omission_fires_both_hooks() {
        let e = EmbedOneWay::new(Probe);
        let (s2, r2) =
            outcome::two_way(TwoWayModel::T3, &e, &'i', &'i', TwoWayFault::Both).unwrap();
        assert_eq!((s2, r2), ('o', 'h'));
    }

    #[test]
    fn same_trajectories_under_tw_and_it() {
        struct Gossip;
        impl OneWayProgram for Gossip {
            type State = u32;
            fn on_receive(&self, s: &u32, r: &u32) -> u32 {
                (*s).max(*r)
            }
        }
        let c0 = Configuration::new(vec![5u32, 2, 9, 1]);
        let mut a = TwoWayRunner::builder(TwoWayModel::Tw, EmbedOneWay::new(Gossip))
            .config(c0.clone())
            .seed(33)
            .build()
            .unwrap();
        let mut b = OneWayRunner::builder(OneWayModel::It, Gossip)
            .config(c0)
            .seed(33)
            .build()
            .unwrap();
        a.run(200).unwrap();
        b.run(200).unwrap();
        assert_eq!(a.config().as_slice(), b.config().as_slice());
    }
}

//! Run statistics.

use std::fmt;

/// Counters accumulated by a runner across its execution.
///
/// # Example
///
/// ```
/// use ppfts_engine::RunStats;
///
/// let mut stats = RunStats::default();
/// stats.record(false, true);
/// stats.record(true, false);
/// assert_eq!(stats.steps, 2);
/// assert_eq!(stats.omissive_steps, 1);
/// assert_eq!(stats.changed_steps, 1);
/// assert_eq!(stats.noop_steps, 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total interactions executed.
    pub steps: u64,
    /// Interactions decorated with an omission.
    pub omissive_steps: u64,
    /// Interactions that changed at least one endpoint's state.
    pub changed_steps: u64,
    /// Interactions that left both endpoints unchanged.
    pub noop_steps: u64,
}

impl RunStats {
    /// Records one executed interaction.
    pub fn record(&mut self, omissive: bool, changed: bool) {
        self.record_bulk(omissive, changed, 1);
    }

    /// Records `count` executed interactions that share one fault decoration
    /// and one outcome shape — the unit of accounting of the batch-epoch
    /// path, which applies a whole (starter-state, reactor-state, fault)
    /// group at once.
    pub fn record_bulk(&mut self, omissive: bool, changed: bool, count: u64) {
        self.steps += count;
        if omissive {
            self.omissive_steps += count;
        }
        if changed {
            self.changed_steps += count;
        } else {
            self.noop_steps += count;
        }
    }

    /// Adds another stats block into this one (e.g. across batch seeds).
    pub fn merge(&mut self, other: &RunStats) {
        self.steps += other.steps;
        self.omissive_steps += other.omissive_steps;
        self.changed_steps += other.changed_steps;
        self.noop_steps += other.noop_steps;
    }

    /// Fraction of steps that were omissive (0 if no steps ran).
    pub fn omission_fraction(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.omissive_steps as f64 / self.steps as f64
        }
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} steps ({} omissive, {} changed, {} no-op)",
            self.steps, self.omissive_steps, self.changed_steps, self.noop_steps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = RunStats {
            steps: 10,
            omissive_steps: 2,
            changed_steps: 7,
            noop_steps: 3,
        };
        let b = RunStats {
            steps: 5,
            omissive_steps: 1,
            changed_steps: 5,
            noop_steps: 0,
        };
        a.merge(&b);
        assert_eq!(a.steps, 15);
        assert_eq!(a.omissive_steps, 3);
        assert_eq!(a.changed_steps, 12);
        assert_eq!(a.noop_steps, 3);
    }

    #[test]
    fn omission_fraction_handles_zero() {
        assert_eq!(RunStats::default().omission_fraction(), 0.0);
        let mut s = RunStats::default();
        s.record(true, true);
        s.record(false, true);
        assert!((s.omission_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_is_compact() {
        let mut s = RunStats::default();
        s.record(false, false);
        assert_eq!(s.to_string(), "1 steps (0 omissive, 0 changed, 1 no-op)");
    }
}
